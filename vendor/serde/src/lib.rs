//! Offline stand-in for `serde`: the marker traits plus re-exported no-op
//! derives. The workspace annotates a few graph/NLP types with
//! `#[derive(Serialize, Deserialize)]` for future interchange but never
//! drives an actual serializer, so empty trait bodies are sufficient.

pub use serde_derive::{Deserialize, Serialize};

pub trait Serialize {}

pub trait Deserialize<'de>: Sized {}
