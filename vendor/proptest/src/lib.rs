//! Offline stand-in for `proptest`, implementing the subset this workspace
//! exercises: the `proptest!`/`prop_assert*`/`prop_oneof!` macros, range and
//! tuple strategies, `prop::collection::vec`, `prop::option::of`, simple
//! `[class]{lo,hi}` string patterns, and the `prop_map`/`prop_flat_map`
//! combinators.
//!
//! Semantics differ from real proptest in two deliberate ways: cases are
//! generated from a seed derived deterministically from the test name (so
//! failures reproduce without a persistence file), and failing inputs are
//! reported but not shrunk. For regression tests that is a quality trade,
//! not a correctness one — the failing input is still printed in full.

pub mod test_runner {
    use rand::rngs::SmallRng;
    use rand::{RngCore, SeedableRng};
    use std::fmt;

    /// Deterministic per-case RNG handed to strategies.
    pub struct TestRng {
        inner: SmallRng,
    }

    impl TestRng {
        pub fn from_seed_u64(seed: u64) -> Self {
            TestRng { inner: SmallRng::seed_from_u64(seed) }
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
    }

    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        Fail(String),
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
            }
        }
    }

    pub type TestCaseResult = Result<(), TestCaseError>;

    fn fnv1a(text: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in text.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Drive `test` over `config.cases` deterministic samples of `strategy`.
    pub fn run_cases<S, F>(name: &str, config: &ProptestConfig, strategy: &S, mut test: F)
    where
        S: crate::strategy::Strategy,
        F: FnMut(S::Value) -> TestCaseResult,
    {
        let base = fnv1a(name);
        for case in 0..u64::from(config.cases) {
            let seed = base ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            let mut rng = TestRng::from_seed_u64(seed);
            let value = strategy.sample(&mut rng);
            let repr = format!("{value:?}");
            match test(value) {
                Ok(()) | Err(TestCaseError::Reject(_)) => {}
                Err(TestCaseError::Fail(msg)) => panic!(
                    "proptest `{name}` failed at case {}/{}: {msg}\n  input: {repr}",
                    case + 1,
                    config.cases
                ),
            }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::fmt::Debug;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for producing random values. Unlike real proptest there is
    /// no value tree / shrinking: `sample` draws a value directly.
    pub trait Strategy {
        type Value: Debug;

        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, map: F) -> Map<Self, F>
        where
            Self: Sized,
            O: Debug,
            F: Fn(Self::Value) -> O,
        {
            Map { base: self, map }
        }

        fn prop_flat_map<S, F>(self, map: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { base: self, map }
        }

        fn prop_filter<F>(self, reason: &'static str, accept: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter { base: self, reason, accept }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy { sample: Box::new(move |rng| self.sample(rng)) }
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        base: S,
        map: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        O: Debug,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.map)(self.base.sample(rng))
        }
    }

    pub struct FlatMap<S, F> {
        base: S,
        map: F,
    }

    impl<S, T, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        T: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T::Value;

        fn sample(&self, rng: &mut TestRng) -> T::Value {
            (self.map)(self.base.sample(rng)).sample(rng)
        }
    }

    pub struct Filter<S, F> {
        base: S,
        reason: &'static str,
        accept: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;

        fn sample(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1_000 {
                let v = self.base.sample(rng);
                if (self.accept)(&v) {
                    return v;
                }
            }
            panic!("prop_filter({}) rejected 1000 consecutive samples", self.reason);
        }
    }

    /// Type-erased strategy, used by `prop_oneof!`.
    pub struct BoxedStrategy<T> {
        sample: Box<dyn Fn(&mut TestRng) -> T>,
    }

    impl<T: Debug> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            (self.sample)(rng)
        }
    }

    /// Uniform choice between boxed alternatives.
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one alternative");
            Union { options }
        }
    }

    impl<T: Debug> Strategy for Union<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.gen_range(0..self.options.len());
            self.options[i].sample(rng)
        }
    }

    macro_rules! numeric_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    numeric_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }

    /// `&'static str` regex-style patterns of the shape `[class]{lo,hi}`:
    /// a single character class (literals and `a-z` ranges) with a length
    /// repetition. This covers every string strategy in the workspace; any
    /// other shape panics loudly rather than silently degrading.
    impl Strategy for &'static str {
        type Value = String;

        fn sample(&self, rng: &mut TestRng) -> String {
            let (chars, lo, hi) = parse_class_pattern(self);
            let len = rng.gen_range(lo..=hi);
            (0..len).map(|_| chars[rng.gen_range(0..chars.len())]).collect()
        }
    }

    fn unsupported(pattern: &str) -> ! {
        panic!("proptest shim supports only `[class]{{lo,hi}}` string patterns, got `{pattern}`")
    }

    fn parse_class_pattern(pattern: &str) -> (Vec<char>, usize, usize) {
        let rest = pattern.strip_prefix('[').unwrap_or_else(|| unsupported(pattern));
        let close = rest.find(']').unwrap_or_else(|| unsupported(pattern));
        let class: Vec<char> = rest[..close].chars().collect();
        let mut chars = Vec::new();
        let mut i = 0;
        while i < class.len() {
            if i + 2 < class.len() && class[i + 1] == '-' {
                let (a, b) = (class[i], class[i + 2]);
                assert!(a <= b, "bad char range in `{pattern}`");
                chars.extend((a..=b).filter(|c| c.is_ascii()));
                i += 3;
            } else {
                chars.push(class[i]);
                i += 1;
            }
        }
        let reps = rest[close + 1..]
            .strip_prefix('{')
            .and_then(|r| r.strip_suffix('}'))
            .unwrap_or_else(|| unsupported(pattern));
        let (lo, hi) = reps.split_once(',').unwrap_or_else(|| unsupported(pattern));
        let lo: usize = lo.trim().parse().unwrap_or_else(|_| unsupported(pattern));
        let hi: usize = hi.trim().parse().unwrap_or_else(|_| unsupported(pattern));
        assert!(!chars.is_empty() && lo <= hi, "bad pattern `{pattern}`");
        (chars, lo, hi)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive length bounds for collection strategies.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty collection size range");
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    pub struct OptionStrategy<S> {
        inner: S,
    }

    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.gen_bool(0.5) {
                Some(self.inner.sample(rng))
            } else {
                None
            }
        }
    }
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body!($config; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body!($crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ($config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let strategy = ($($strat,)+);
            $crate::test_runner::run_cases(
                stringify!($name),
                &config,
                &strategy,
                |($($arg,)+)| {
                    $body
                    Ok(())
                },
            );
        }
    )*};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)+), l, r
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn string_pattern_respects_class_and_length() {
        let strat = "[a-c x]{2,5}";
        let mut rng = crate::test_runner::TestRng::from_seed_u64(11);
        for _ in 0..200 {
            let s = Strategy::sample(&strat, &mut rng);
            assert!((2..=5).contains(&s.chars().count()), "bad len: {s:?}");
            assert!(s.chars().all(|c| "abc x".contains(c)), "bad char: {s:?}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn vec_lengths_in_bounds(v in prop::collection::vec(0u8..4, 1..=3)) {
            prop_assert!((1..=3).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 4));
        }

        #[test]
        fn flat_map_threads_dependent_sizes(pair in (1usize..4).prop_flat_map(|n| {
            (prop::collection::vec(0u8..8, n), prop_oneof![0u32..5, 10u32..15])
        })) {
            let (v, tag) = pair;
            prop_assert!((1..4).contains(&v.len()));
            prop_assert!(tag < 5 || (10..15).contains(&tag), "tag {}", tag);
        }
    }
}
