//! Offline stand-in for `criterion`: enough of the API to compile and run
//! the workspace's benches (`bench_function`, `benchmark_group`,
//! `sample_size`, `Bencher::iter`, plus the `criterion_group!` /
//! `criterion_main!` macros). Measurement is a simple mean over a short
//! timed window — adequate for spotting order-of-magnitude regressions
//! locally, with no statistics, plotting, or CLI filtering.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

pub fn black_box<T>(value: T) -> T {
    std_black_box(value)
}

#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    measure_for: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10, measure_for: Duration::from_millis(200) }
    }
}

impl Criterion {
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(id, self.measure_for, f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { parent: self, name: name.to_owned() }
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }
}

pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.parent.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{id}", self.name);
        run_bench(&full, self.parent.measure_for, f);
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iterations {
            std_black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F>(id: &str, measure_for: Duration, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Warm-up + calibration: find an iteration count that fills the window.
    let mut b = Bencher { iterations: 1, elapsed: Duration::ZERO };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let iterations = (measure_for.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;
    let mut b = Bencher { iterations, elapsed: Duration::ZERO };
    f(&mut b);
    let ns = b.elapsed.as_nanos() as f64 / iterations as f64;
    println!("bench {id:<48} {:>12.1} ns/iter ({iterations} iters)", ns);
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn bencher_runs_routine() {
        let mut hits = 0u64;
        super::run_bench("smoke", std::time::Duration::from_millis(1), |b| b.iter(|| hits += 1));
        assert!(hits > 0);
    }
}
