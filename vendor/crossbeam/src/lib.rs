//! Offline stand-in for the `crossbeam` crate, providing the
//! `crossbeam::thread::scope` API on top of `std::thread::scope`
//! (stable since Rust 1.63, older than this workspace's MSRV).
//!
//! Differences from std that the facade papers over:
//! - crossbeam's `scope` returns `Result` rather than propagating child
//!   panics, so child panics are caught and surfaced as `Err`.
//! - crossbeam's `spawn` closures receive a `&Scope` argument to allow
//!   nested spawns; the wrapper threads one through.

pub mod thread {
    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    /// Wrapper handing out `spawn` with crossbeam's closure signature.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let reentry = Scope { inner: self.inner };
            self.inner.spawn(move || f(&reentry))
        }
    }

    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| std::thread::scope(|s| f(&Scope { inner: s }))))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_share_borrowed_state() {
        let data = vec![1u64, 2, 3, 4];
        let sum = std::sync::atomic::AtomicU64::new(0);
        super::thread::scope(|scope| {
            for chunk in data.chunks(2) {
                let sum = &sum;
                scope.spawn(move |_| {
                    sum.fetch_add(chunk.iter().sum(), std::sync::atomic::Ordering::SeqCst);
                });
            }
        })
        .expect("no panics");
        assert_eq!(sum.load(std::sync::atomic::Ordering::SeqCst), 10);
    }

    #[test]
    fn child_panic_becomes_err() {
        let r = super::thread::scope(|scope| {
            scope.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }
}
