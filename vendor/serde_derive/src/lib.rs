//! No-op derive macros standing in for `serde_derive` in the offline build.
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` as a forward
//! declaration — nothing serializes through serde at runtime (persistence
//! goes through the hand-rolled text formats in `crates/template/src/io.rs`
//! and friends). Expanding to an empty token stream keeps the annotations
//! compiling without pulling in syn/quote, which the build environment
//! cannot download.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
