//! Offline stand-in for `parking_lot`, backed by `std::sync`. The API
//! difference that matters to callers is the absence of lock poisoning:
//! `lock()`/`read()`/`write()` return guards directly. Poisoned std locks
//! are unwrapped into their inner guard, matching parking_lot's behavior
//! of letting a panicked critical section remain observable.

use std::sync;

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock { inner: sync::RwLock::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
        assert_eq!(l.into_inner(), vec![1, 2]);
    }
}
