//! Offline stand-in for the `bytes` crate. The workspace only needs a
//! cheaply-cloneable byte container that derefs to `[u8]` — no split/chain
//! machinery — so `Bytes` wraps an `Arc<[u8]>`.

use std::ops::Deref;
use std::sync::Arc;

#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes { data: Arc::from(&[][..]) }
    }

    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes { data: Arc::from(data) }
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { data: Arc::from(data) }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::from(v.into_boxed_slice()) }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(data: &'static [u8]) -> Self {
        Bytes::from_static(data)
    }
}

impl From<&'static str> for Bytes {
    fn from(data: &'static str) -> Self {
        Bytes::from_static(data.as_bytes())
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::Bytes;

    #[test]
    fn deref_and_clone_share_contents() {
        let b = Bytes::from_static(b"a p b .\n");
        assert_eq!(&b[..], b"a p b .\n");
        let c = b.clone();
        assert_eq!(c.len(), 8);
        assert!(!c.is_empty());
    }
}
