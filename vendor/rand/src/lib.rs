//! Offline stand-in for the `rand` crate, covering exactly the 0.8 API
//! surface this workspace uses: `SmallRng`, `SeedableRng::seed_from_u64`,
//! `Rng::{gen, gen_range, gen_bool}` over integer/float ranges, and
//! `seq::SliceRandom::shuffle`.
//!
//! The build environment has no access to a crates registry, so the
//! workspace vendors minimal shims instead (see DESIGN.md, "Dependency
//! policy"). Determinism matters more than statistical quality here: all
//! workloads seed explicitly and never ask for cryptographic randomness.
//! The generator is xoroshiro128++ seeded through SplitMix64, the same
//! construction the real `SmallRng` family uses.

use std::ops::{Range, RangeInclusive};

/// Core entropy source: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction; only `seed_from_u64` is used in this workspace.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Uniform `f64` in `[0, 1)` using the top 53 bits.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types producible by `Rng::gen()`.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng) as f32
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by `Rng::gen_range`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % width;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let width = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % width;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + (unit_f64(rng) as $t) * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                lo + (unit_f64(rng) as $t) * (hi - lo)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// User-facing convenience methods, blanket-implemented for every source.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        unit_f64(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Small, fast, deterministic generator (xoroshiro128++).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s0: u64,
        s1: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s0 = splitmix64(&mut sm);
            let s1 = splitmix64(&mut sm);
            SmallRng { s0, s1 }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let (s0, mut s1) = (self.s0, self.s1);
            let result = s0.wrapping_add(s1).rotate_left(17).wrapping_add(s0);
            s1 ^= s0;
            self.s0 = s0.rotate_left(49) ^ s1 ^ (s1 << 21);
            self.s1 = s1.rotate_left(28);
            result
        }
    }
}

pub mod seq {
    use super::Rng;

    /// Slice helpers; only `shuffle` is exercised by the workspace.
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: Rng>(&mut self, rng: &mut R);

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_clones() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen_range(0usize..100), b.gen_range(0usize..100));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3u32..9);
            assert!((3..9).contains(&x));
            let y = rng.gen_range(2usize..=5);
            assert!((2..=5).contains(&y));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let unit: f64 = rng.gen();
            assert!((0.0..1.0).contains(&unit));
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = SmallRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "got {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
