//! SimJ: the similarity join between a set `D` of certain graphs (SPARQL
//! queries) and a set `U` of uncertain graphs (natural-language
//! questions), Def. 7 of the paper.
//!
//! The join follows the filtering-and-refinement framework of Sec. 3.3 in
//! three configurations matching the paper's efficiency experiments
//! (Sec. 7.3):
//!
//! * `CSS only` — structural pruning with the CSS bound (Theorem 3), then
//!   verification.
//! * `SimJ` — CSS pruning plus the Markov probabilistic filter
//!   (Theorem 4): Algorithm 1.
//! * `SimJ+opt` — additionally partitions possible worlds into groups
//!   with the cost model of Sec. 6.2 for a tighter probability bound and
//!   group-pruned verification: Algorithm 2.

pub mod cascade;
pub mod filter_eval;
pub mod index;
pub mod join;
mod obs;
pub mod parallel;
pub mod stats;
pub mod topk;

pub use cascade::{CascadeCursor, CascadeMode, CascadePolicy, CascadeReport, CascadeRuntime};
pub use index::{sim_join_indexed, JoinIndex};
pub use join::{sim_join, sim_join_in, JoinMatch, JoinParams, JoinStrategy};
pub use parallel::sim_join_parallel;
pub use stats::JoinStats;
pub use topk::{sim_join_topk, sim_join_topk_with, TopKMatch};
pub use uqsj_ged::GedEngine;
pub use uqsj_sample::{SimpMode, SimpPolicy, Tier};
