//! Generic filter evaluation harness for the filter-comparison experiment
//! (Fig. 15): run any [`LowerBound`] over `D × U`, measure filtering time
//! and candidate ratio, without verification.

use std::time::{Duration, Instant};
use uqsj_ged::bounds::LowerBound;
use uqsj_graph::{Graph, SymbolTable, UncertainGraph};

/// Result of running one filter over the whole cross product.
#[derive(Clone, Debug)]
pub struct FilterReport {
    /// Filter name.
    pub name: &'static str,
    /// `|D| × |U|`.
    pub pairs_total: u64,
    /// Pairs surviving the filter (candidates).
    pub candidates: u64,
    /// Wall time of the filtering pass.
    pub filtering_time: Duration,
}

impl FilterReport {
    /// Candidate ratio in `[0, 1]`.
    pub fn candidate_ratio(&self) -> f64 {
        if self.pairs_total == 0 {
            return 0.0;
        }
        self.candidates as f64 / self.pairs_total as f64
    }
}

/// Apply `bound` to every pair, counting survivors under threshold `tau`.
pub fn evaluate_filter(
    table: &SymbolTable,
    d: &[Graph],
    u: &[UncertainGraph],
    tau: u32,
    bound: &dyn LowerBound,
) -> FilterReport {
    let start = Instant::now();
    let mut candidates = 0u64;
    for g in u {
        for q in d {
            if bound.uncertain(table, q, g) <= tau {
                candidates += 1;
            }
        }
    }
    FilterReport {
        name: bound.name(),
        pairs_total: (d.len() * u.len()) as u64,
        candidates,
        filtering_time: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uqsj_ged::bounds::css::CssBound;
    use uqsj_ged::bounds::path_gram::PathBound;
    use uqsj_ged::bounds::size::SizeBound;
    use uqsj_graph::GraphBuilder;

    fn data(t: &mut SymbolTable) -> (Vec<Graph>, Vec<UncertainGraph>) {
        let mut b = GraphBuilder::new(t);
        b.vertex("x", "?x");
        b.vertex("a", "Actor");
        b.edge("x", "a", "type");
        let q = b.into_graph();
        let mut b = GraphBuilder::new(t);
        b.vertex("x", "?y");
        b.uncertain_vertex("m", &[("Band", 0.5), ("Film", 0.5)]);
        b.edge("x", "m", "type");
        let g = b.into_uncertain();
        let mut b = GraphBuilder::new(t);
        for i in 0..5 {
            b.vertex(&format!("v{i}"), "Album");
        }
        for i in 0..4 {
            b.edge(&format!("v{i}"), &format!("v{}", i + 1), "track");
        }
        let g2 = b.into_uncertain();
        (vec![q], vec![g, g2])
    }

    #[test]
    fn css_prunes_at_least_as_much_as_structure_only_filters() {
        let mut t = SymbolTable::new();
        let (d, u) = data(&mut t);
        for tau in 0..4 {
            let css = evaluate_filter(&t, &d, &u, tau, &CssBound);
            let size = evaluate_filter(&t, &d, &u, tau, &SizeBound);
            let path = evaluate_filter(&t, &d, &u, tau, &PathBound);
            assert!(css.candidates <= size.candidates, "tau={tau}");
            // Structure-only path filter cannot use the label mismatch.
            assert!(css.candidates <= path.candidates, "tau={tau}");
        }
    }

    #[test]
    fn report_counts_pairs() {
        let mut t = SymbolTable::new();
        let (d, u) = data(&mut t);
        let r = evaluate_filter(&t, &d, &u, 10, &CssBound);
        assert_eq!(r.pairs_total, 2);
        assert_eq!(r.candidates, 2); // huge tau keeps everything
        assert!((r.candidate_ratio() - 1.0).abs() < 1e-12);
    }
}
