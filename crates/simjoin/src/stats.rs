//! Join instrumentation: everything the efficiency experiments report.

use std::time::Duration;

/// Counters and timers accumulated over one join run.
#[derive(Clone, Debug, Default)]
pub struct JoinStats {
    /// `|D| × |U|`.
    pub pairs_total: u64,
    /// Pairs discarded by the CSS structural filter (Theorem 3).
    pub pruned_structural: u64,
    /// Pairs discarded by the single-group Markov filter (Theorem 4).
    pub pruned_probabilistic: u64,
    /// Pairs discarded by the group-refined bound (Algorithm 2).
    pub pruned_grouped: u64,
    /// Pairs that reached verification.
    pub candidates: u64,
    /// Pairs verified with `SimP_τ >= α`.
    pub results: u64,
    /// Possible worlds on which A\* ran.
    pub worlds_verified: u64,
    /// Time spent in the pruning phase.
    pub pruning_time: Duration,
    /// Time spent in the refinement (verification) phase.
    pub verification_time: Duration,
}

impl JoinStats {
    /// Candidate ratio: candidates / total pairs (the y-axis of
    /// Figs. 11(b), 12(b), 13(b), 14(b), 15(b)).
    pub fn candidate_ratio(&self) -> f64 {
        if self.pairs_total == 0 {
            return 0.0;
        }
        self.candidates as f64 / self.pairs_total as f64
    }

    /// Result ratio: results / total pairs ("Real" series in the figures).
    pub fn result_ratio(&self) -> f64 {
        if self.pairs_total == 0 {
            return 0.0;
        }
        self.results as f64 / self.pairs_total as f64
    }

    /// Total response time (pruning + verification).
    pub fn response_time(&self) -> Duration {
        self.pruning_time + self.verification_time
    }

    /// Merge another run's counters into this one (used by the parallel
    /// driver; wall-clock times add, which matches the paper's
    /// single-threaded reporting).
    pub fn merge(&mut self, other: &JoinStats) {
        self.pairs_total += other.pairs_total;
        self.pruned_structural += other.pruned_structural;
        self.pruned_probabilistic += other.pruned_probabilistic;
        self.pruned_grouped += other.pruned_grouped;
        self.candidates += other.candidates;
        self.results += other.results;
        self.worlds_verified += other.worlds_verified;
        self.pruning_time += other.pruning_time;
        self.verification_time += other.verification_time;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios() {
        let s = JoinStats { pairs_total: 200, candidates: 10, results: 4, ..Default::default() };
        assert!((s.candidate_ratio() - 0.05).abs() < 1e-12);
        assert!((s.result_ratio() - 0.02).abs() < 1e-12);
    }

    #[test]
    fn empty_join_has_zero_ratios() {
        let s = JoinStats::default();
        assert_eq!(s.candidate_ratio(), 0.0);
        assert_eq!(s.result_ratio(), 0.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = JoinStats { pairs_total: 5, candidates: 2, ..Default::default() };
        let b = JoinStats { pairs_total: 7, candidates: 1, results: 1, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.pairs_total, 12);
        assert_eq!(a.candidates, 3);
        assert_eq!(a.results, 1);
    }
}
