//! Join instrumentation: everything the efficiency experiments report.

use std::time::Duration;

/// Counters and timers accumulated over one join run.
///
/// # Time accounting
///
/// [`JoinStats::pruning_time`] and [`JoinStats::verification_time`] are
/// *CPU* times: per-pair elapsed intervals summed over every pair the run
/// touched, regardless of which worker touched it. In the sequential
/// drivers ([`crate::sim_join`], [`crate::sim_join_indexed`]) this equals
/// wall-clock time — the paper's experiments are single-threaded, so the
/// summed accounting is the paper-faithful figure. The parallel driver
/// ([`crate::sim_join_parallel`]) additionally stamps
/// [`JoinStats::wall_time`] with the driver's true elapsed time;
/// [`JoinStats::response_time`] prefers it when set, so a parallel run no
/// longer reports a "response time" larger than the time it actually took.
#[derive(Clone, Debug, Default)]
pub struct JoinStats {
    /// `|D| × |U|`.
    pub pairs_total: u64,
    /// Pairs discarded by the vertex/edge-count size bound — the same
    /// window [`crate::JoinIndex`] skips without touching the pair.
    pub pruned_size: u64,
    /// Pairs discarded by the label-multiset bound (uncertain lift).
    pub pruned_label_multiset: u64,
    /// Pairs discarded by the CSS structural filter (Theorem 3).
    pub pruned_structural: u64,
    /// Pairs discarded by the single-group Markov filter (Theorem 4).
    pub pruned_probabilistic: u64,
    /// Pairs discarded by the group-refined bound (Algorithm 2).
    pub pruned_grouped: u64,
    /// Pairs that reached verification.
    pub candidates: u64,
    /// Pairs verified with `SimP_τ >= α`.
    pub results: u64,
    /// Possible worlds on which A\* ran.
    pub worlds_verified: u64,
    /// Possible worlds drawn by the Monte-Carlo sampler (memoized draws
    /// included); zero under exact-only verification.
    pub worlds_sampled: u64,
    /// Candidates decided by exact enumeration.
    pub verified_exact: u64,
    /// Candidates decided by the sampling tier.
    pub verified_sampled: u64,
    /// CPU time spent in the pruning phase (summed per pair).
    pub pruning_time: Duration,
    /// CPU time spent in the refinement (verification) phase.
    pub verification_time: Duration,
    /// True elapsed time of the driving call, set only by drivers whose
    /// workers overlap (zero means "not measured": sequential runs, where
    /// [`JoinStats::cpu_time`] already *is* the wall clock).
    pub wall_time: Duration,
}

impl JoinStats {
    /// Candidate ratio: candidates / total pairs (the y-axis of
    /// Figs. 11(b), 12(b), 13(b), 14(b), 15(b)).
    pub fn candidate_ratio(&self) -> f64 {
        uqsj_obs::ratio(self.candidates, self.pairs_total)
    }

    /// Result ratio: results / total pairs ("Real" series in the figures).
    pub fn result_ratio(&self) -> f64 {
        uqsj_obs::ratio(self.results, self.pairs_total)
    }

    /// Pairs discarded before verification, across all filter stages.
    pub fn pruned_total(&self) -> u64 {
        self.pruned_size
            + self.pruned_label_multiset
            + self.pruned_structural
            + self.pruned_probabilistic
            + self.pruned_grouped
    }

    /// Summed per-pair CPU time (pruning + verification) — the paper's
    /// single-threaded response-time metric.
    pub fn cpu_time(&self) -> Duration {
        self.pruning_time + self.verification_time
    }

    /// Total response time: the driver's wall clock when measured
    /// (parallel runs), otherwise the summed CPU time (sequential runs,
    /// where the two coincide).
    pub fn response_time(&self) -> Duration {
        if self.wall_time > Duration::ZERO {
            self.wall_time
        } else {
            self.cpu_time()
        }
    }

    /// Merge another run's counters into this one (used by the parallel
    /// driver and the indexed per-question loop). Counters and CPU times
    /// add; `wall_time` max-merges, because concurrent workers' elapsed
    /// intervals overlap — summing them would double-count the clock.
    pub fn merge(&mut self, other: &JoinStats) {
        self.pairs_total += other.pairs_total;
        self.pruned_size += other.pruned_size;
        self.pruned_label_multiset += other.pruned_label_multiset;
        self.pruned_structural += other.pruned_structural;
        self.pruned_probabilistic += other.pruned_probabilistic;
        self.pruned_grouped += other.pruned_grouped;
        self.candidates += other.candidates;
        self.results += other.results;
        self.worlds_verified += other.worlds_verified;
        self.worlds_sampled += other.worlds_sampled;
        self.verified_exact += other.verified_exact;
        self.verified_sampled += other.verified_sampled;
        self.pruning_time += other.pruning_time;
        self.verification_time += other.verification_time;
        self.wall_time = self.wall_time.max(other.wall_time);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios() {
        let s = JoinStats { pairs_total: 200, candidates: 10, results: 4, ..Default::default() };
        assert!((s.candidate_ratio() - 0.05).abs() < 1e-12);
        assert!((s.result_ratio() - 0.02).abs() < 1e-12);
    }

    #[test]
    fn empty_join_has_zero_ratios() {
        let s = JoinStats::default();
        assert_eq!(s.candidate_ratio(), 0.0);
        assert_eq!(s.result_ratio(), 0.0);
        assert!(s.candidate_ratio().is_finite());
        assert_eq!(s.response_time(), Duration::ZERO);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = JoinStats { pairs_total: 5, candidates: 2, ..Default::default() };
        let b = JoinStats {
            pairs_total: 7,
            candidates: 1,
            results: 1,
            pruned_size: 3,
            pruned_label_multiset: 1,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.pairs_total, 12);
        assert_eq!(a.candidates, 3);
        assert_eq!(a.results, 1);
        assert_eq!(a.pruned_size, 3);
        assert_eq!(a.pruned_label_multiset, 1);
        assert_eq!(a.pruned_total(), 4);
    }

    #[test]
    fn merge_accumulates_tier_counters() {
        let mut a = JoinStats {
            worlds_sampled: 100,
            verified_exact: 2,
            verified_sampled: 1,
            ..Default::default()
        };
        let b = JoinStats {
            worlds_sampled: 50,
            verified_exact: 1,
            verified_sampled: 4,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.worlds_sampled, 150);
        assert_eq!(a.verified_exact, 3);
        assert_eq!(a.verified_sampled, 5);
    }

    #[test]
    fn wall_time_max_merges_and_drives_response_time() {
        let mut a = JoinStats {
            pruning_time: Duration::from_millis(40),
            verification_time: Duration::from_millis(60),
            wall_time: Duration::from_millis(30),
            ..Default::default()
        };
        let b = JoinStats {
            pruning_time: Duration::from_millis(50),
            verification_time: Duration::from_millis(50),
            wall_time: Duration::from_millis(45),
            ..Default::default()
        };
        a.merge(&b);
        // CPU times add across workers; overlapping wall clocks do not.
        assert_eq!(a.cpu_time(), Duration::from_millis(200));
        assert_eq!(a.wall_time, Duration::from_millis(45));
        assert_eq!(a.response_time(), Duration::from_millis(45));
    }

    #[test]
    fn sequential_runs_report_cpu_time_as_response_time() {
        let s = JoinStats {
            pruning_time: Duration::from_millis(2),
            verification_time: Duration::from_millis(3),
            ..Default::default()
        };
        assert_eq!(s.response_time(), Duration::from_millis(5));
        assert_eq!(s.response_time(), s.cpu_time());
    }
}
