//! Join instrumentation: everything the efficiency experiments report.

use crate::cascade::CascadeReport;
use std::time::Duration;

/// Counters and timers accumulated over one join run.
///
/// # Per-stage counters
///
/// Pruned-pair counts are keyed by cascade stage label (the same
/// `stage=...` labels `uqsj_join_pruned_total` carries), so a bound added
/// to the [`uqsj_ged::bounds::all_bounds`] registry gets its own counter
/// without touching this file. The historical per-stage field names
/// survive as accessor methods ([`JoinStats::pruned_size`], ...).
///
/// # Time accounting
///
/// [`JoinStats::pruning_time`] and [`JoinStats::verification_time`] are
/// *CPU* times: per-pair elapsed intervals summed over every pair the run
/// touched, regardless of which worker touched it. In the sequential
/// drivers ([`crate::sim_join`], [`crate::sim_join_indexed`]) this equals
/// wall-clock time — the paper's experiments are single-threaded, so the
/// summed accounting is the paper-faithful figure. The parallel driver
/// ([`crate::sim_join_parallel`]) additionally stamps
/// [`JoinStats::wall_time`] with the driver's true elapsed time;
/// [`JoinStats::response_time`] prefers it when set, so a parallel run no
/// longer reports a "response time" larger than the time it actually took.
#[derive(Clone, Debug, Default)]
pub struct JoinStats {
    /// `|D| × |U|`.
    pub pairs_total: u64,
    /// Pairs discarded per cascade stage, keyed by stage label in the
    /// order the stages first fired. Small (≤ registry size), so a linear
    /// scan beats a hash map on the per-pair hot path.
    pruned: Vec<(&'static str, u64)>,
    /// Pairs that reached verification.
    pub candidates: u64,
    /// Pairs verified with `SimP_τ >= α`.
    pub results: u64,
    /// Possible worlds on which A\* ran.
    pub worlds_verified: u64,
    /// Possible worlds drawn by the Monte-Carlo sampler (memoized draws
    /// included); zero under exact-only verification.
    pub worlds_sampled: u64,
    /// Candidates decided by exact enumeration.
    pub verified_exact: u64,
    /// Candidates decided by the sampling tier.
    pub verified_sampled: u64,
    /// A\* states expanded during verification, summed over every world
    /// the run searched (the per-question EXPLAIN figure).
    pub ged_expanded: u64,
    /// Verification decisions per stopping reason, keyed by
    /// `StopReason::label()` in the order the reasons first fired.
    stops: Vec<(&'static str, u64)>,
    /// CPU time spent in the pruning phase (summed per pair).
    pub pruning_time: Duration,
    /// CPU time spent in the refinement (verification) phase.
    pub verification_time: Duration,
    /// True elapsed time of the driving call, set only by drivers whose
    /// workers overlap (zero means "not measured": sequential runs, where
    /// [`JoinStats::cpu_time`] already *is* the wall clock).
    pub wall_time: Duration,
    /// Final cascade-planner snapshot (chosen plan, per-stage
    /// selectivity/cost), stamped by the drivers when the run ends.
    pub cascade: Option<CascadeReport>,
}

impl JoinStats {
    /// Record `n` pairs discarded by the stage labelled `label`.
    pub fn record_pruned(&mut self, label: &'static str, n: u64) {
        if let Some(entry) = self.pruned.iter_mut().find(|(l, _)| *l == label) {
            entry.1 += n;
        } else {
            self.pruned.push((label, n));
        }
    }

    /// Pairs discarded by the stage labelled `label` (0 if it never ran).
    pub fn pruned_by(&self, label: &str) -> u64 {
        self.pruned.iter().find(|(l, _)| *l == label).map_or(0, |(_, n)| *n)
    }

    /// Every stage that discarded at least one pair, with its count.
    pub fn pruned_stages(&self) -> &[(&'static str, u64)] {
        &self.pruned
    }

    /// Record one verification decision that stopped for `label`.
    pub fn record_stop(&mut self, label: &'static str) {
        if let Some(entry) = self.stops.iter_mut().find(|(l, _)| *l == label) {
            entry.1 += 1;
        } else {
            self.stops.push((label, 1));
        }
    }

    /// Every verification stopping reason seen, with its count.
    pub fn stop_reasons(&self) -> &[(&'static str, u64)] {
        &self.stops
    }

    /// Decisions that stopped for `label` (0 if the reason never fired).
    pub fn stopped_by(&self, label: &str) -> u64 {
        self.stops.iter().find(|(l, _)| *l == label).map_or(0, |(_, n)| *n)
    }

    /// Pairs discarded by the vertex/edge-count size bound — the same
    /// window [`crate::JoinIndex`] skips without touching the pair.
    pub fn pruned_size(&self) -> u64 {
        self.pruned_by("size")
    }

    /// Pairs discarded by the label-multiset bound (uncertain lift).
    pub fn pruned_label_multiset(&self) -> u64 {
        self.pruned_by("label_multiset")
    }

    /// Pairs discarded by the CSS structural filter (Theorem 3).
    pub fn pruned_structural(&self) -> u64 {
        self.pruned_by("css")
    }

    /// Pairs discarded by the single-group Markov filter (Theorem 4),
    /// summed over both probabilistic call sites (the `SimJ` filter and
    /// the `SimJOpt` pre-filter, which report separate stage labels).
    pub fn pruned_probabilistic(&self) -> u64 {
        self.pruned_by("markov") + self.pruned_by("markov_opt")
    }

    /// Pairs discarded by the group-refined bound (Algorithm 2).
    pub fn pruned_grouped(&self) -> u64 {
        self.pruned_by("grouped")
    }

    /// Candidate ratio: candidates / total pairs (the y-axis of
    /// Figs. 11(b), 12(b), 13(b), 14(b), 15(b)).
    pub fn candidate_ratio(&self) -> f64 {
        uqsj_obs::ratio(self.candidates, self.pairs_total)
    }

    /// Result ratio: results / total pairs ("Real" series in the figures).
    pub fn result_ratio(&self) -> f64 {
        uqsj_obs::ratio(self.results, self.pairs_total)
    }

    /// Pairs discarded before verification, across all filter stages.
    pub fn pruned_total(&self) -> u64 {
        self.pruned.iter().map(|(_, n)| n).sum()
    }

    /// Summed per-pair CPU time (pruning + verification) — the paper's
    /// single-threaded response-time metric.
    pub fn cpu_time(&self) -> Duration {
        self.pruning_time + self.verification_time
    }

    /// Total response time: the driver's wall clock when measured
    /// (parallel runs), otherwise the summed CPU time (sequential runs,
    /// where the two coincide).
    pub fn response_time(&self) -> Duration {
        if self.wall_time > Duration::ZERO {
            self.wall_time
        } else {
            self.cpu_time()
        }
    }

    /// Merge another run's counters into this one (used by the parallel
    /// driver and the indexed per-question loop). Counters and CPU times
    /// add; `wall_time` max-merges, because concurrent workers' elapsed
    /// intervals overlap — summing them would double-count the clock.
    pub fn merge(&mut self, other: &JoinStats) {
        self.pairs_total += other.pairs_total;
        for &(label, n) in &other.pruned {
            self.record_pruned(label, n);
        }
        self.candidates += other.candidates;
        self.results += other.results;
        self.worlds_verified += other.worlds_verified;
        self.worlds_sampled += other.worlds_sampled;
        self.verified_exact += other.verified_exact;
        self.verified_sampled += other.verified_sampled;
        self.ged_expanded += other.ged_expanded;
        for &(label, n) in &other.stops {
            if let Some(entry) = self.stops.iter_mut().find(|(l, _)| *l == label) {
                entry.1 += n;
            } else {
                self.stops.push((label, n));
            }
        }
        self.pruning_time += other.pruning_time;
        self.verification_time += other.verification_time;
        self.wall_time = self.wall_time.max(other.wall_time);
        if self.cascade.is_none() {
            self.cascade = other.cascade.clone();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios() {
        let s = JoinStats { pairs_total: 200, candidates: 10, results: 4, ..Default::default() };
        assert!((s.candidate_ratio() - 0.05).abs() < 1e-12);
        assert!((s.result_ratio() - 0.02).abs() < 1e-12);
    }

    #[test]
    fn empty_join_has_zero_ratios() {
        let s = JoinStats::default();
        assert_eq!(s.candidate_ratio(), 0.0);
        assert_eq!(s.result_ratio(), 0.0);
        assert!(s.candidate_ratio().is_finite());
        assert_eq!(s.response_time(), Duration::ZERO);
    }

    #[test]
    fn pruned_counters_are_keyed_by_stage_label() {
        let mut s = JoinStats::default();
        s.record_pruned("size", 3);
        s.record_pruned("css", 2);
        s.record_pruned("size", 1);
        s.record_pruned("markov_opt", 5);
        assert_eq!(s.pruned_size(), 4);
        assert_eq!(s.pruned_structural(), 2);
        assert_eq!(s.pruned_probabilistic(), 5);
        assert_eq!(s.pruned_by("segos"), 0);
        assert_eq!(s.pruned_total(), 11);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = JoinStats { pairs_total: 5, candidates: 2, ..Default::default() };
        let mut b = JoinStats { pairs_total: 7, candidates: 1, results: 1, ..Default::default() };
        b.record_pruned("size", 3);
        b.record_pruned("label_multiset", 1);
        a.record_pruned("size", 2);
        a.merge(&b);
        assert_eq!(a.pairs_total, 12);
        assert_eq!(a.candidates, 3);
        assert_eq!(a.results, 1);
        assert_eq!(a.pruned_size(), 5);
        assert_eq!(a.pruned_label_multiset(), 1);
        assert_eq!(a.pruned_total(), 6);
    }

    #[test]
    fn stop_reasons_key_count_and_merge() {
        let mut a = JoinStats::default();
        a.record_stop("exact_only");
        a.record_stop("certain_accept");
        a.record_stop("exact_only");
        let mut b = JoinStats { ged_expanded: 7, ..Default::default() };
        b.record_stop("certain_accept");
        b.record_stop("resolved");
        a.merge(&b);
        assert_eq!(a.stopped_by("exact_only"), 2);
        assert_eq!(a.stopped_by("certain_accept"), 2);
        assert_eq!(a.stopped_by("resolved"), 1);
        assert_eq!(a.stopped_by("budget_exhausted"), 0);
        assert_eq!(a.ged_expanded, 7);
        assert_eq!(a.stop_reasons().iter().map(|(_, n)| n).sum::<u64>(), 5);
    }

    #[test]
    fn merge_accumulates_tier_counters() {
        let mut a = JoinStats {
            worlds_sampled: 100,
            verified_exact: 2,
            verified_sampled: 1,
            ..Default::default()
        };
        let b = JoinStats {
            worlds_sampled: 50,
            verified_exact: 1,
            verified_sampled: 4,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.worlds_sampled, 150);
        assert_eq!(a.verified_exact, 3);
        assert_eq!(a.verified_sampled, 5);
    }

    #[test]
    fn wall_time_max_merges_and_drives_response_time() {
        let mut a = JoinStats {
            pruning_time: Duration::from_millis(40),
            verification_time: Duration::from_millis(60),
            wall_time: Duration::from_millis(30),
            ..Default::default()
        };
        let b = JoinStats {
            pruning_time: Duration::from_millis(50),
            verification_time: Duration::from_millis(50),
            wall_time: Duration::from_millis(45),
            ..Default::default()
        };
        a.merge(&b);
        // CPU times add across workers; overlapping wall clocks do not.
        assert_eq!(a.cpu_time(), Duration::from_millis(200));
        assert_eq!(a.wall_time, Duration::from_millis(45));
        assert_eq!(a.response_time(), Duration::from_millis(45));
    }

    #[test]
    fn sequential_runs_report_cpu_time_as_response_time() {
        let s = JoinStats {
            pruning_time: Duration::from_millis(2),
            verification_time: Duration::from_millis(3),
            ..Default::default()
        };
        assert_eq!(s.response_time(), Duration::from_millis(5));
        assert_eq!(s.response_time(), s.cpu_time());
    }
}
