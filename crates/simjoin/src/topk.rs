//! Top-k similarity matching: for each uncertain graph (question), the k
//! SPARQL queries with the highest similarity probability.
//!
//! The paper's goal statement is "find some pairs ⟨q, n⟩ … where SPARQL
//! query q is the *best match* for natural language question n" — the
//! threshold join of Def. 7 is its workhorse, and this module provides
//! the direct best-match form. Candidates are ranked by their Markov
//! upper bound and verified in that order with a threshold-algorithm
//! stop: once the k-th exact probability is at least the next upper
//! bound, no unverified candidate can enter the top k.

use crate::cascade::{CascadeCursor, CascadeOutcome, CascadePolicy, CascadeRuntime};
use crate::join::JoinStrategy;
use crate::stats::JoinStats;
use std::time::Instant;
use uqsj_ged::astar::GedResult;
use uqsj_ged::bounds::css::css_terms_uncertain;
use uqsj_ged::GedEngine;
use uqsj_graph::{Graph, SymbolTable, UncertainGraph};
use uqsj_uncertain::prob::verify_simp_with;
use uqsj_uncertain::prob_bound::ub_simp_with_terms;

/// One ranked match for a question.
#[derive(Clone, Debug)]
pub struct TopKMatch {
    /// Index into `D`.
    pub q_index: usize,
    /// Exact `SimP_τ`.
    pub prob: f64,
    /// Witnessing mapping of the most probable qualifying world (present
    /// whenever `prob > 0`).
    pub mapping: Option<GedResult>,
}

/// Statistics of a top-k run.
#[derive(Clone, Debug, Default)]
pub struct TopKStats {
    /// Candidates surviving the structural filter.
    pub candidates: u64,
    /// Candidates whose exact probability was computed.
    pub verified: u64,
    /// Candidates skipped by the threshold-algorithm stop.
    pub ta_skipped: u64,
    /// Total wall time.
    pub elapsed: std::time::Duration,
}

/// For each `g ∈ u`, the top `k` queries of `d` by `SimP_τ`, descending.
/// Queries with zero probability are never reported. Prefilters with the
/// paper's fixed cascade; see [`sim_join_topk_with`] for plan control.
pub fn sim_join_topk(
    table: &SymbolTable,
    d: &[Graph],
    u: &[UncertainGraph],
    tau: u32,
    k: usize,
) -> (Vec<Vec<TopKMatch>>, TopKStats) {
    sim_join_topk_with(table, d, u, tau, k, CascadePolicy::fixed())
}

/// [`sim_join_topk`] with an explicit cascade policy for the τ-prune
/// prefilter. Only the registry's lower-bound stages run (a pruned pair
/// has `SimP_τ = 0` in every plan, so the top-k sets agree across
/// policies); the probabilistic α-stages never apply here because top-k
/// has no α threshold.
pub fn sim_join_topk_with(
    table: &SymbolTable,
    d: &[Graph],
    u: &[UncertainGraph],
    tau: u32,
    k: usize,
    policy: CascadePolicy,
) -> (Vec<Vec<TopKMatch>>, TopKStats) {
    let started = Instant::now();
    let mut stats = TopKStats::default();
    let mut out = Vec::with_capacity(u.len());
    let mut engine = GedEngine::new();
    // `CssOnly` enrolls exactly the bound stages. α is irrelevant without
    // probabilistic stages; the per-pair prune counters land in a scratch
    // JoinStats the top-k report does not consume.
    let cascade = CascadeRuntime::new(policy, JoinStrategy::CssOnly);
    let mut cursor = CascadeCursor::new();
    let mut scratch = JoinStats::default();
    for g in u {
        // Structural filter + upper-bound ranking.
        let mut candidates: Vec<(usize, f64)> = Vec::new();
        for (qi, q) in d.iter().enumerate() {
            let outcome = cascade.run_pair(&mut cursor, table, q, g, tau, 0.0, &mut scratch);
            if matches!(outcome, CascadeOutcome::Candidate(_)) {
                let terms = css_terms_uncertain(table, q, g);
                let ub = ub_simp_with_terms(table, q, g, tau, &terms);
                candidates.push((qi, ub));
            }
        }
        stats.candidates += candidates.len() as u64;
        candidates.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite bound"));

        let mut top: Vec<TopKMatch> = Vec::with_capacity(k + 1);
        for (rank, &(qi, ub)) in candidates.iter().enumerate() {
            let kth = if top.len() >= k { top[k - 1].prob } else { 0.0 };
            if top.len() >= k && ub <= kth {
                // Threshold-algorithm stop: no later candidate can beat
                // the current k-th (bounds are sorted descending).
                stats.ta_skipped += (candidates.len() - rank) as u64;
                break;
            }
            stats.verified += 1;
            let outcome = verify_simp_with(&mut engine, table, &d[qi], g, tau, f64::INFINITY);
            if outcome.prob > 0.0 {
                top.push(TopKMatch {
                    q_index: qi,
                    prob: outcome.prob,
                    mapping: outcome.best_mapping,
                });
                top.sort_by(|a, b| b.prob.partial_cmp(&a.prob).expect("finite probability"));
                top.truncate(k);
            }
        }
        out.push(top);
    }
    stats.elapsed = started.elapsed();
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use uqsj_graph::GraphBuilder;
    use uqsj_uncertain::similarity_probability;

    fn workload(t: &mut SymbolTable) -> (Vec<Graph>, Vec<UncertainGraph>) {
        let mut d = Vec::new();
        for class in ["Actor", "Band", "City"] {
            let mut b = GraphBuilder::new(t);
            b.vertex("x", "?x");
            b.vertex("c", class);
            b.edge("x", "c", "type");
            d.push(b.into_graph());
        }
        let mut b = GraphBuilder::new(t);
        b.vertex("x", "?y");
        b.uncertain_vertex("m", &[("Actor", 0.7), ("Band", 0.3)]);
        b.edge("x", "m", "type");
        let u = vec![b.into_uncertain()];
        (d, u)
    }

    #[test]
    fn topk_agrees_with_bruteforce_ranking() {
        let mut t = SymbolTable::new();
        let (d, u) = workload(&mut t);
        let (results, stats) = sim_join_topk(&t, &d, &u, 0, 2);
        assert_eq!(results.len(), 1);
        let top = &results[0];
        // Brute force.
        let mut expected: Vec<(usize, f64)> = d
            .iter()
            .enumerate()
            .map(|(qi, q)| (qi, similarity_probability(&t, q, &u[0], 0)))
            .filter(|(_, p)| *p > 0.0)
            .collect();
        expected.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        expected.truncate(2);
        assert_eq!(top.len(), expected.len());
        for (m, (qi, p)) in top.iter().zip(&expected) {
            assert_eq!(m.q_index, *qi);
            assert!((m.prob - p).abs() < 1e-9);
            assert!(m.mapping.is_some());
        }
        assert!(stats.verified >= top.len() as u64);
    }

    #[test]
    fn k_one_returns_the_best_match() {
        let mut t = SymbolTable::new();
        let (d, u) = workload(&mut t);
        let (results, _) = sim_join_topk(&t, &d, &u, 0, 1);
        assert_eq!(results[0].len(), 1);
        assert_eq!(results[0][0].q_index, 0); // the Actor query
        assert!((results[0][0].prob - 0.7).abs() < 1e-9);
    }

    #[test]
    fn topk_is_invariant_to_cascade_policy() {
        let mut t = SymbolTable::new();
        let (d, u) = workload(&mut t);
        let run = |policy| {
            let (results, _) = sim_join_topk_with(&t, &d, &u, 1, 2, policy);
            results
                .into_iter()
                .map(|top| top.into_iter().map(|m| (m.q_index, m.prob)).collect::<Vec<_>>())
                .collect::<Vec<_>>()
        };
        let fixed = run(CascadePolicy::fixed());
        for seed in 0..6 {
            assert_eq!(fixed, run(CascadePolicy::shuffled(seed)), "seed {seed}");
        }
        assert_eq!(
            fixed,
            run(CascadePolicy::adaptive().with_calibration_pairs(1).with_epoch_pairs(1))
        );
    }

    #[test]
    fn ta_stop_skips_dominated_candidates() {
        // With tau high, everything qualifies with prob 1; after the
        // first k verifications the rest can be skipped.
        let mut t = SymbolTable::new();
        let (d, u) = workload(&mut t);
        let (results, stats) = sim_join_topk(&t, &d, &u, 4, 1);
        assert_eq!(results[0].len(), 1);
        assert!((results[0][0].prob - 1.0).abs() < 1e-9);
        assert!(stats.ta_skipped > 0, "TA stop never fired");
    }
}
