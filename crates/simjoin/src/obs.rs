//! Metric handles for the join cascade.
//!
//! Per-stage handles (one prune counter + one time histogram, labelled
//! `stage=...`) are keyed by stage label instead of being hard-coded
//! fields, so any bound enrolled in the `ged::bounds::all_bounds()`
//! registry gets metrics without touching this file. The counters mirror
//! the per-run [`crate::JoinStats`] counters but accumulate process-wide,
//! so a serving process exposes its lifetime pruning profile without
//! threading stats through every call site.

use parking_lot::Mutex;
use std::sync::OnceLock;

/// Stage-independent join counters plus the cascade-planner family.
pub(crate) struct JoinObs {
    pub pairs: uqsj_obs::Counter,
    pub candidates: uqsj_obs::Counter,
    pub results: uqsj_obs::Counter,
    /// Per-pair verification time (µs); counts every pair that survived
    /// all filters.
    pub t_verify: uqsj_obs::Histogram,
    /// Pairs evaluated with every candidate stage to warm-start the
    /// adaptive planner's selectivity/cost estimates.
    pub cascade_calibration_pairs: uqsj_obs::Counter,
    /// Probe pairs: post-calibration pairs re-evaluated with every
    /// candidate stage so dropped stages keep fresh estimates.
    pub cascade_probe_pairs: uqsj_obs::Counter,
    /// Re-rank attempts (one per epoch boundary in adaptive mode).
    pub cascade_replans: uqsj_obs::Counter,
    /// Adopted plan changes (re-ranks that survived hysteresis).
    pub cascade_plan_epochs: uqsj_obs::Counter,
    /// Candidate stages left out of an adopted plan, summed over
    /// adoptions (benefit-below-cost drops).
    pub cascade_bounds_skipped: uqsj_obs::Counter,
}

pub(crate) fn join_obs() -> &'static JoinObs {
    static OBS: OnceLock<JoinObs> = OnceLock::new();
    OBS.get_or_init(|| {
        let r = uqsj_obs::global();
        JoinObs {
            pairs: r.counter("uqsj_join_pairs_total", "pairs considered by the join cascade"),
            candidates: r.counter("uqsj_join_candidates_total", "pairs surviving all filters"),
            results: r.counter("uqsj_join_results_total", "pairs verified with SimP >= alpha"),
            t_verify: r.histogram_with(
                "uqsj_join_stage_us",
                &[("stage", "verify")],
                "per-pair time in each cascade stage",
            ),
            cascade_calibration_pairs: r.counter(
                "uqsj_cascade_calibration_pairs_total",
                "pairs evaluated with every stage to warm-start the planner",
            ),
            cascade_probe_pairs: r.counter(
                "uqsj_cascade_probe_pairs_total",
                "pairs re-evaluated with every stage to refresh dropped-stage estimates",
            ),
            cascade_replans: r.counter(
                "uqsj_cascade_replans_total",
                "cascade re-rank attempts (epoch boundaries)",
            ),
            cascade_plan_epochs: r.counter(
                "uqsj_cascade_plan_epochs_total",
                "adopted cascade plan changes (re-ranks surviving hysteresis)",
            ),
            cascade_bounds_skipped: r.counter(
                "uqsj_cascade_bounds_skipped_total",
                "candidate stages dropped from adopted plans (benefit below cost)",
            ),
        }
    })
}

/// Process-global handles for one cascade stage.
#[derive(Clone)]
pub(crate) struct StageHandles {
    /// Pairs discarded by this stage (`uqsj_join_pruned_total{stage=..}`).
    pub pruned: uqsj_obs::Counter,
    /// Per-pair time in this stage, µs (`uqsj_join_stage_us{stage=..}`);
    /// counts every pair that *reached* the stage.
    pub time: uqsj_obs::Histogram,
}

/// Handles for the stage labelled `label`, registered on first use.
///
/// The registry wants `&'static` label slices; each distinct stage label
/// leaks exactly one two-element slice, memoized here — stage labels come
/// from the fixed bound registry plus the probabilistic stages, so the
/// leak is bounded by that set, not by call volume.
pub(crate) fn stage_handles(label: &'static str) -> StageHandles {
    static CACHE: OnceLock<Mutex<Vec<(&'static str, StageHandles)>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(Vec::new()));
    let mut cache = cache.lock();
    if let Some((_, handles)) = cache.iter().find(|(l, _)| *l == label) {
        return handles.clone();
    }
    let labels: &'static [(&'static str, &'static str)] =
        Box::leak(vec![("stage", label)].into_boxed_slice());
    let r = uqsj_obs::global();
    let handles = StageHandles {
        pruned: r.counter_with(
            "uqsj_join_pruned_total",
            labels,
            "pairs discarded by each filter stage",
        ),
        time: r.histogram_with("uqsj_join_stage_us", labels, "per-pair time in each cascade stage"),
    };
    cache.push((label, handles.clone()));
    handles
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_handles_are_memoized_per_label() {
        let a = stage_handles("size");
        a.pruned.add(2);
        let b = stage_handles("size");
        // Same underlying counter: the second lookup sees the first add.
        assert!(b.pruned.value() >= 2);
    }
}
