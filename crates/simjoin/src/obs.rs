//! Metric handles for the join cascade: one counter and one time
//! histogram per filter stage, in cascade order (size → label multiset →
//! CSS → Markov → group-refined → verification). The counters mirror the
//! per-run [`crate::JoinStats`] fields but accumulate process-wide, so a
//! serving process exposes its lifetime pruning profile without threading
//! stats through every call site.

pub(crate) struct JoinObs {
    pub pairs: uqsj_obs::Counter,
    pub candidates: uqsj_obs::Counter,
    pub results: uqsj_obs::Counter,
    /// Pairs discarded per stage, labelled `stage=...`.
    pub pruned_size: uqsj_obs::Counter,
    pub pruned_label_multiset: uqsj_obs::Counter,
    pub pruned_css: uqsj_obs::Counter,
    pub pruned_markov: uqsj_obs::Counter,
    pub pruned_grouped: uqsj_obs::Counter,
    /// Per-pair time spent in each stage (µs), labelled `stage=...`;
    /// a stage's histogram counts every pair that *reached* it.
    pub t_size: uqsj_obs::Histogram,
    pub t_label_multiset: uqsj_obs::Histogram,
    pub t_css: uqsj_obs::Histogram,
    pub t_markov: uqsj_obs::Histogram,
    pub t_grouped: uqsj_obs::Histogram,
    pub t_verify: uqsj_obs::Histogram,
}

pub(crate) fn join_obs() -> &'static JoinObs {
    use std::sync::OnceLock;
    static OBS: OnceLock<JoinObs> = OnceLock::new();
    OBS.get_or_init(|| {
        let r = uqsj_obs::global();
        let pruned = "pairs discarded by each filter stage";
        let stage_us = "per-pair time in each cascade stage";
        JoinObs {
            pairs: r.counter("uqsj_join_pairs_total", "pairs considered by the join cascade"),
            candidates: r.counter("uqsj_join_candidates_total", "pairs surviving all filters"),
            results: r.counter("uqsj_join_results_total", "pairs verified with SimP >= alpha"),
            pruned_size: r.counter_with("uqsj_join_pruned_total", &[("stage", "size")], pruned),
            pruned_label_multiset: r.counter_with(
                "uqsj_join_pruned_total",
                &[("stage", "label_multiset")],
                pruned,
            ),
            pruned_css: r.counter_with("uqsj_join_pruned_total", &[("stage", "css")], pruned),
            pruned_markov: r.counter_with("uqsj_join_pruned_total", &[("stage", "markov")], pruned),
            pruned_grouped: r.counter_with(
                "uqsj_join_pruned_total",
                &[("stage", "grouped")],
                pruned,
            ),
            t_size: r.histogram_with("uqsj_join_stage_us", &[("stage", "size")], stage_us),
            t_label_multiset: r.histogram_with(
                "uqsj_join_stage_us",
                &[("stage", "label_multiset")],
                stage_us,
            ),
            t_css: r.histogram_with("uqsj_join_stage_us", &[("stage", "css")], stage_us),
            t_markov: r.histogram_with("uqsj_join_stage_us", &[("stage", "markov")], stage_us),
            t_grouped: r.histogram_with("uqsj_join_stage_us", &[("stage", "grouped")], stage_us),
            t_verify: r.histogram_with("uqsj_join_stage_us", &[("stage", "verify")], stage_us),
        }
    })
}
