//! Parallel SimJ driver: workers pull uncertain graphs off a shared
//! atomic index (work stealing) under `crossbeam::scope`. Per-pair cost is
//! heavily skewed — one expensive many-world uncertain graph can dwarf the
//! rest of the workload — so static chunking would serialize whole chunks
//! behind it; with dynamic dispatch the tail is bounded by one graph, not
//! one chunk. Pairs are independent, so results are simply concatenated
//! and counters merged.
//!
//! Time accounting: `pruning_time`/`verification_time` stay the *summed*
//! per-pair CPU times, matching the paper's single-threaded accounting
//! (the experiments in Sec. 7 are sequential, so there the sum *is* the
//! response time). Because worker intervals overlap, this driver
//! additionally stamps [`JoinStats::wall_time`] with its true elapsed
//! time, and [`JoinStats::response_time`] reports that instead — a
//! parallel join no longer claims a response time several times larger
//! than the clock on the wall.

use crate::cascade::{CascadeCursor, CascadeRuntime};
use crate::join::{join_pair, JoinMatch, JoinParams};
use crate::stats::JoinStats;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;
use uqsj_ged::GedEngine;
use uqsj_graph::{Graph, SymbolTable, UncertainGraph};

/// Run SimJ over `d × u` with `threads` workers.
///
/// # Panics
/// Panics if `threads == 0`.
pub fn sim_join_parallel(
    table: &SymbolTable,
    d: &[Graph],
    u: &[UncertainGraph],
    params: JoinParams,
    threads: usize,
) -> (Vec<JoinMatch>, JoinStats) {
    assert!(threads >= 1, "need at least one thread");
    if threads == 1 || u.len() <= 1 {
        return crate::join::sim_join(table, d, u, params);
    }
    let started = Instant::now();
    let shared: Mutex<(Vec<JoinMatch>, JoinStats)> = Mutex::new((Vec::new(), JoinStats::default()));
    let next = AtomicUsize::new(0);
    // One cascade runtime for the whole run: workers share the planner's
    // selectivity/cost estimates through its atomics and pick up adopted
    // plans through their per-worker cursors on the next epoch check.
    let cascade = CascadeRuntime::new(params.cascade, params.strategy);
    crossbeam::thread::scope(|scope| {
        for _ in 0..threads.min(u.len()) {
            let shared = &shared;
            let next = &next;
            let cascade = &cascade;
            scope.spawn(move |_| {
                let mut local = Vec::new();
                let mut stats = JoinStats::default();
                // One search workspace per worker, reused across all the
                // uncertain graphs this worker claims.
                let mut engine = GedEngine::new();
                let mut cursor = CascadeCursor::new();
                loop {
                    let gi = next.fetch_add(1, Ordering::Relaxed);
                    let Some(g) = u.get(gi) else { break };
                    for (qi, q) in d.iter().enumerate() {
                        join_pair(
                            &mut engine,
                            cascade,
                            &mut cursor,
                            table,
                            qi,
                            q,
                            gi,
                            g,
                            params,
                            &mut local,
                            &mut stats,
                        );
                    }
                }
                let mut guard = shared.lock();
                guard.0.append(&mut local);
                guard.1.merge(&stats);
            });
        }
    })
    .expect("join worker panicked");
    let (mut matches, mut stats) = shared.into_inner();
    stats.wall_time = started.elapsed();
    stats.cascade = Some(cascade.report());
    matches.sort_by_key(|m| (m.g_index, m.q_index));
    (matches, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::join::sim_join;
    use uqsj_graph::GraphBuilder;

    #[test]
    fn parallel_matches_sequential() {
        let mut t = SymbolTable::new();
        let mut d = Vec::new();
        let mut u = Vec::new();
        for i in 0..6 {
            let mut b = GraphBuilder::new(&mut t);
            b.vertex("x", "?x");
            b.vertex("a", if i % 2 == 0 { "Actor" } else { "Band" });
            b.edge("x", "a", "type");
            d.push(b.into_graph());
            let mut b = GraphBuilder::new(&mut t);
            b.vertex("x", "?y");
            b.uncertain_vertex("m", &[("Actor", 0.5), ("Band", 0.5)]);
            b.edge("x", "m", "type");
            u.push(b.into_uncertain());
        }
        let params = JoinParams::simj(1, 0.4);
        let (seq, seq_stats) = sim_join(&t, &d, &u, params);
        let (par, par_stats) = sim_join_parallel(&t, &d, &u, params, 3);
        let key = |m: &crate::join::JoinMatch| (m.g_index, m.q_index);
        let mut a: Vec<_> = seq.iter().map(key).collect();
        a.sort_unstable();
        let b: Vec<_> = par.iter().map(key).collect();
        assert_eq!(a, b);
        assert_eq!(seq_stats.pairs_total, par_stats.pairs_total);
        assert_eq!(seq_stats.results, par_stats.results);
        // The parallel driver measures its own wall clock and reports it
        // as the response time; sequential runs leave it unset and fall
        // back to the summed CPU time.
        assert!(par_stats.wall_time > std::time::Duration::ZERO);
        assert_eq!(par_stats.response_time(), par_stats.wall_time);
        assert_eq!(seq_stats.wall_time, std::time::Duration::ZERO);
        assert_eq!(seq_stats.response_time(), seq_stats.cpu_time());
    }

    #[test]
    fn more_workers_than_graphs_is_fine() {
        let mut t = SymbolTable::new();
        let mut b = GraphBuilder::new(&mut t);
        b.vertex("x", "Actor");
        let d = vec![b.into_graph()];
        let mut u = Vec::new();
        for _ in 0..2 {
            let mut b = GraphBuilder::new(&mut t);
            b.vertex("x", "Actor");
            u.push(b.into_uncertain());
        }
        let (par, stats) = sim_join_parallel(&t, &d, &u, JoinParams::simj(0, 0.5), 16);
        assert_eq!(par.len(), 2);
        assert_eq!(stats.pairs_total, 2);
    }
}
