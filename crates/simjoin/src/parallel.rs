//! Parallel SimJ driver: partitions the uncertain side across worker
//! threads with `crossbeam::scope`. Pairs are independent, so results are
//! simply concatenated and counters merged. Reported times remain the
//! *summed* per-pair CPU times, matching the paper's single-threaded
//! accounting (wall-clock speedup is a bonus, not a measurement change).

use crate::join::{join_pair, JoinMatch, JoinParams};
use crate::stats::JoinStats;
use parking_lot::Mutex;
use uqsj_graph::{Graph, SymbolTable, UncertainGraph};

/// Run SimJ over `d × u` with `threads` workers.
///
/// # Panics
/// Panics if `threads == 0`.
pub fn sim_join_parallel(
    table: &SymbolTable,
    d: &[Graph],
    u: &[UncertainGraph],
    params: JoinParams,
    threads: usize,
) -> (Vec<JoinMatch>, JoinStats) {
    assert!(threads >= 1, "need at least one thread");
    if threads == 1 || u.len() <= 1 {
        return crate::join::sim_join(table, d, u, params);
    }
    let shared: Mutex<(Vec<JoinMatch>, JoinStats)> = Mutex::new((Vec::new(), JoinStats::default()));
    let chunk = u.len().div_ceil(threads);
    crossbeam::thread::scope(|scope| {
        for (ci, slice) in u.chunks(chunk).enumerate() {
            let shared = &shared;
            scope.spawn(move |_| {
                let mut local = Vec::new();
                let mut stats = JoinStats::default();
                for (off, g) in slice.iter().enumerate() {
                    let gi = ci * chunk + off;
                    for (qi, q) in d.iter().enumerate() {
                        join_pair(table, qi, q, gi, g, params, &mut local, &mut stats);
                    }
                }
                let mut guard = shared.lock();
                guard.0.append(&mut local);
                guard.1.merge(&stats);
            });
        }
    })
    .expect("join worker panicked");
    let (mut matches, stats) = shared.into_inner();
    matches.sort_by_key(|m| (m.g_index, m.q_index));
    (matches, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::join::sim_join;
    use uqsj_graph::GraphBuilder;

    #[test]
    fn parallel_matches_sequential() {
        let mut t = SymbolTable::new();
        let mut d = Vec::new();
        let mut u = Vec::new();
        for i in 0..6 {
            let mut b = GraphBuilder::new(&mut t);
            b.vertex("x", "?x");
            b.vertex("a", if i % 2 == 0 { "Actor" } else { "Band" });
            b.edge("x", "a", "type");
            d.push(b.into_graph());
            let mut b = GraphBuilder::new(&mut t);
            b.vertex("x", "?y");
            b.uncertain_vertex("m", &[("Actor", 0.5), ("Band", 0.5)]);
            b.edge("x", "m", "type");
            u.push(b.into_uncertain());
        }
        let params = JoinParams::simj(1, 0.4);
        let (seq, seq_stats) = sim_join(&t, &d, &u, params);
        let (par, par_stats) = sim_join_parallel(&t, &d, &u, params, 3);
        let key = |m: &crate::join::JoinMatch| (m.g_index, m.q_index);
        let mut a: Vec<_> = seq.iter().map(key).collect();
        a.sort_unstable();
        let b: Vec<_> = par.iter().map(key).collect();
        assert_eq!(a, b);
        assert_eq!(seq_stats.pairs_total, par_stats.pairs_total);
        assert_eq!(seq_stats.results, par_stats.results);
    }
}
