//! The SimJ procedure (Algorithm 1) and its group-optimized variant
//! (Algorithm 2).

use crate::cascade::{CascadeCursor, CascadeOutcome, CascadePolicy, CascadeRuntime};
use crate::obs::join_obs;
use crate::stats::JoinStats;
use std::time::Instant;
use uqsj_ged::astar::GedResult;
use uqsj_ged::GedEngine;
use uqsj_graph::{Graph, SymbolTable, UncertainGraph};
use uqsj_sample::{pair_seed, verify_pair_with, SimpPolicy, Tier};

/// Which pruning pipeline to run (the three lines of Figs. 11–14).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JoinStrategy {
    /// CSS structural pruning only.
    CssOnly,
    /// CSS + Markov probabilistic pruning (Algorithm 1).
    SimJ,
    /// CSS + group-refined probabilistic pruning (Algorithm 2) with the
    /// given group budget `GN`.
    SimJOpt {
        /// Maximum number of possible-world groups per uncertain graph.
        group_count: usize,
    },
}

/// Join parameters: the GED threshold τ and probability threshold α of
/// Def. 7, plus the pruning strategy and the verification-tier policy.
#[derive(Clone, Copy, Debug)]
pub struct JoinParams {
    /// GED threshold τ.
    pub tau: u32,
    /// Similarity probability threshold α ∈ (0, 1].
    pub alpha: f64,
    /// Pruning pipeline.
    pub strategy: JoinStrategy,
    /// How `SimP ≥ α` is decided per candidate: exact enumeration,
    /// Monte-Carlo sampling, or world-count-adaptive dispatch between the
    /// two (see [`uqsj_sample::SimpPolicy`]).
    pub simp: SimpPolicy,
    /// How the filter stages are ordered and selected: the paper's fixed
    /// cascade, the adaptive selectivity/cost planner, or a seeded
    /// shuffle (see [`crate::cascade::CascadePolicy`]). Every choice
    /// yields the identical result pair set.
    pub cascade: CascadePolicy,
}

impl JoinParams {
    /// Algorithm-1 parameters (`SimJ`) with the paper's defaults:
    /// exact-only verification, fixed stage order.
    pub fn simj(tau: u32, alpha: f64) -> Self {
        Self {
            tau,
            alpha,
            strategy: JoinStrategy::SimJ,
            simp: SimpPolicy::exact(),
            cascade: CascadePolicy::fixed(),
        }
    }

    /// The same parameters with a different verification-tier policy.
    pub fn with_simp(self, simp: SimpPolicy) -> Self {
        Self { simp, ..self }
    }

    /// The same parameters with a different cascade policy.
    pub fn with_cascade(self, cascade: CascadePolicy) -> Self {
        Self { cascade, ..self }
    }
}

/// One qualifying pair `⟨q, g⟩` with `SimP_τ(q, g) >= α`.
#[derive(Clone, Debug, PartialEq)]
pub struct JoinMatch {
    /// Index into `D`.
    pub q_index: usize,
    /// Index into `U`.
    pub g_index: usize,
    /// The similarity probability: on the exact tier a possibly
    /// early-exited value that is always `>= α`; on the sampling tier the
    /// certified point estimate, which may sit up to ε below α.
    pub prob: f64,
    /// GED mapping (q vertex → world vertex) of the most probable
    /// qualifying world — the input to template generation.
    pub mapping: GedResult,
    /// Probability of that world.
    pub world_prob: f64,
}

/// Run SimJ over `d × u`. Returns the qualifying pairs and the join
/// statistics.
pub fn sim_join(
    table: &SymbolTable,
    d: &[Graph],
    u: &[UncertainGraph],
    params: JoinParams,
) -> (Vec<JoinMatch>, JoinStats) {
    let cascade = CascadeRuntime::new(params.cascade, params.strategy);
    sim_join_in(&cascade, table, d, u, params)
}

/// [`sim_join`] against a caller-owned cascade runtime, so several runs
/// (or a streaming driver) can share one planner's accumulated
/// estimates. The runtime must have been built with the same strategy as
/// `params.strategy`.
pub fn sim_join_in(
    cascade: &CascadeRuntime,
    table: &SymbolTable,
    d: &[Graph],
    u: &[UncertainGraph],
    params: JoinParams,
) -> (Vec<JoinMatch>, JoinStats) {
    let mut out = Vec::new();
    let mut stats = JoinStats::default();
    // One search workspace for the whole candidate stream.
    let mut engine = GedEngine::new();
    let mut cursor = CascadeCursor::new();
    for (gi, g) in u.iter().enumerate() {
        for (qi, q) in d.iter().enumerate() {
            join_pair(
                &mut engine,
                cascade,
                &mut cursor,
                table,
                qi,
                q,
                gi,
                g,
                params,
                &mut out,
                &mut stats,
            );
        }
    }
    stats.cascade = Some(cascade.report());
    (out, stats)
}

/// Process a single pair; shared by the sequential and parallel drivers.
#[allow(clippy::too_many_arguments)] // the join loop's full context
pub(crate) fn join_pair(
    engine: &mut GedEngine,
    cascade: &CascadeRuntime,
    cursor: &mut CascadeCursor,
    table: &SymbolTable,
    qi: usize,
    q: &Graph,
    gi: usize,
    g: &UncertainGraph,
    params: JoinParams,
    out: &mut Vec<JoinMatch>,
    stats: &mut JoinStats,
) {
    stats.pairs_total += 1;
    let obs = join_obs();
    obs.pairs.inc();

    // Filtering: run the pair through whatever plan the cascade runtime
    // currently holds. Every stage is individually sound, so the plan
    // only decides *cost*, never the result set.
    let pruning_started = Instant::now();
    let outcome = cascade.run_pair(cursor, table, q, g, params.tau, params.alpha, stats);
    stats.pruning_time += pruning_started.elapsed();
    let groups = match outcome {
        CascadeOutcome::Pruned => return,
        CascadeOutcome::Candidate(groups) => groups,
    };

    // Refinement (lines 7-15), dispatched to the exact or sampling tier
    // by the policy. The sub-seed is a pure function of the pair indices,
    // so sampled decisions are identical whichever driver — sequential,
    // parallel, indexed — reaches the pair, and replayable from
    // `params.simp.seed` alone.
    stats.candidates += 1;
    obs.candidates.inc();
    let verification_started = Instant::now();
    let expanded_before = engine.cumulative_stats().expanded;
    let outcome = verify_pair_with(
        engine,
        table,
        q,
        g,
        params.tau,
        params.alpha,
        groups.as_deref(),
        &params.simp,
        pair_seed(params.simp.seed, qi, gi),
    );
    let verify_elapsed = verification_started.elapsed();
    obs.t_verify.observe_duration(verify_elapsed);
    cascade.record_verify(verify_elapsed);
    stats.verification_time += verify_elapsed;
    stats.worlds_verified += outcome.worlds_verified as u64;
    stats.worlds_sampled += outcome.worlds_sampled;
    stats.ged_expanded += engine.cumulative_stats().expanded - expanded_before;
    stats.record_stop(outcome.stop.label());
    match outcome.tier {
        Tier::Exact => stats.verified_exact += 1,
        Tier::Sample => stats.verified_sampled += 1,
    }
    if outcome.passed {
        stats.results += 1;
        obs.results.inc();
        let mapping =
            outcome.best_mapping.expect("a passing pair has at least one qualifying world");
        out.push(JoinMatch {
            q_index: qi,
            g_index: gi,
            prob: outcome.prob,
            mapping,
            world_prob: outcome.best_world_prob,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uqsj_graph::GraphBuilder;

    fn workload(t: &mut SymbolTable) -> (Vec<Graph>, Vec<UncertainGraph>) {
        // q0: which Actor from Country (matches g0 loosely)
        let mut b = GraphBuilder::new(t);
        b.vertex("x", "?x");
        b.vertex("a", "Actor");
        b.vertex("c", "Country");
        b.edge("x", "a", "type");
        b.edge("x", "c", "birthPlace");
        let q0 = b.into_graph();
        // q1: totally different and bigger
        let mut b = GraphBuilder::new(t);
        for i in 0..6 {
            b.vertex(&format!("v{i}"), "Film");
        }
        for i in 0..5 {
            b.edge(&format!("v{i}"), &format!("v{}", i + 1), "starring");
        }
        let q1 = b.into_graph();

        // g0: uncertain version of q0
        let mut b = GraphBuilder::new(t);
        b.vertex("x", "?who");
        b.uncertain_vertex("m", &[("NBA_Player", 0.6), ("Actor", 0.4)]);
        b.vertex("c", "Country");
        b.edge("x", "m", "type");
        b.edge("x", "c", "birthPlace");
        let g0 = b.into_uncertain();
        // g1: small unrelated graph
        let mut b = GraphBuilder::new(t);
        b.vertex("x", "?x");
        b.vertex("b", "Band");
        b.edge("x", "b", "memberOf");
        let g1 = b.into_uncertain();

        (vec![q0, q1], vec![g0, g1])
    }

    #[test]
    fn join_finds_the_similar_pair() {
        let mut t = SymbolTable::new();
        let (d, u) = workload(&mut t);
        let (matches, stats) = sim_join(&t, &d, &u, JoinParams::simj(1, 0.9));
        assert_eq!(stats.pairs_total, 4);
        assert!(matches.iter().any(|m| m.q_index == 0 && m.g_index == 0));
        // The big film chain should never match the small questions.
        assert!(matches.iter().all(|m| m.q_index != 1));
    }

    #[test]
    fn strategies_agree_on_results() {
        let mut t = SymbolTable::new();
        let (d, u) = workload(&mut t);
        let collect = |strategy| {
            let (m, _) = sim_join(&t, &d, &u, JoinParams { strategy, ..JoinParams::simj(1, 0.3) });
            let mut pairs: Vec<(usize, usize)> = m.iter().map(|x| (x.q_index, x.g_index)).collect();
            pairs.sort_unstable();
            pairs
        };
        let css = collect(JoinStrategy::CssOnly);
        let simj = collect(JoinStrategy::SimJ);
        let opt = collect(JoinStrategy::SimJOpt { group_count: 4 });
        assert_eq!(css, simj, "pruning must not change results");
        assert_eq!(simj, opt, "grouping must not change results");
    }

    #[test]
    fn stronger_strategies_have_fewer_candidates() {
        let mut t = SymbolTable::new();
        let (d, u) = workload(&mut t);
        let candidates = |strategy| {
            sim_join(&t, &d, &u, JoinParams { strategy, ..JoinParams::simj(0, 0.9) }).1.candidates
        };
        let css = candidates(JoinStrategy::CssOnly);
        let simj = candidates(JoinStrategy::SimJ);
        let opt = candidates(JoinStrategy::SimJOpt { group_count: 4 });
        assert!(simj <= css);
        assert!(opt <= simj);
    }

    #[test]
    fn alpha_monotonicity() {
        let mut t = SymbolTable::new();
        let (d, u) = workload(&mut t);
        let count = |alpha| sim_join(&t, &d, &u, JoinParams::simj(1, alpha)).0.len();
        assert!(count(0.1) >= count(0.5));
        assert!(count(0.5) >= count(0.95));
    }

    #[test]
    fn cascade_policies_agree_on_results() {
        let mut t = SymbolTable::new();
        let (d, u) = workload(&mut t);
        let collect = |cascade| {
            let params = JoinParams::simj(1, 0.3).with_cascade(cascade);
            let (m, _) = sim_join(&t, &d, &u, params);
            let mut pairs: Vec<(usize, usize)> = m.iter().map(|x| (x.q_index, x.g_index)).collect();
            pairs.sort_unstable();
            pairs
        };
        let fixed = collect(CascadePolicy::fixed());
        // Tiny knobs so the adaptive planner calibrates and replans even
        // on this four-pair workload.
        let adaptive =
            collect(CascadePolicy::adaptive().with_calibration_pairs(2).with_epoch_pairs(1));
        assert_eq!(fixed, adaptive, "plan choice must not change results");
        for seed in 0..8 {
            assert_eq!(
                fixed,
                collect(CascadePolicy::shuffled(seed)),
                "shuffled plan (seed {seed}) changed the result set"
            );
        }
    }

    #[test]
    fn stats_carry_a_cascade_report() {
        let mut t = SymbolTable::new();
        let (d, u) = workload(&mut t);
        let (_, stats) = sim_join(&t, &d, &u, JoinParams::simj(1, 0.5));
        let report = stats.cascade.expect("sequential driver stamps the report");
        assert_eq!(report.pairs_seen, stats.pairs_total);
        assert_eq!(report.plan.first(), Some(&"size"));
    }

    #[test]
    fn tau_monotonicity() {
        let mut t = SymbolTable::new();
        let (d, u) = workload(&mut t);
        let count = |tau| sim_join(&t, &d, &u, JoinParams::simj(tau, 0.5)).0.len();
        assert!(count(0) <= count(1));
        assert!(count(1) <= count(3));
    }
}
