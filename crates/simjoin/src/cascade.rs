//! Adaptive filter-cascade planner.
//!
//! The join's filter pipeline is a cascade of sound prune stages: every
//! GED lower bound from the [`uqsj_ged::bounds::all_bounds`] registry
//! (τ-prunes, admissible in every possible world) plus the probabilistic
//! α-prunes (Markov upper bound, Theorem 4, and the group-refined bound,
//! Algorithm 2). Because each stage only ever discards pairs whose
//! `SimP_τ` provably falls below α, **any permutation or subset of the
//! stages yields the identical result pair set** — only candidate counts
//! and wall time change. That freedom is what this module exploits: it
//! orders stages by observed selectivity-per-cost and drops stages whose
//! expected benefit does not pay for their evaluation.
//!
//! # Planner state machine
//!
//! ```text
//!            pairs < calibration_pairs           every epoch_pairs pairs
//!  ┌─────────────┐  full-eval all stages  ┌──────────┐  re-rank + hysteresis
//!  │ CALIBRATING │ ─────────────────────▶ │ STEADY   │ ──────────┐
//!  └─────────────┘   then rank & adopt    └──────────┘           │
//!         ▲                                    ▲   every Nth pair │
//!         │                                    └──── probe ◀──────┘
//! ```
//!
//! * **Calibration** — the first `calibration_pairs` pairs evaluate
//!   *every* candidate stage (prune-if-any-fires, so the pair outcome is
//!   unchanged) to warm-start unconditional selectivity and per-pair cost
//!   estimates.
//! * **Steady state** — pairs run the current plan with short-circuit
//!   semantics; per-stage estimates keep accumulating. Every
//!   `probe_interval`-th pair is a *probe* that full-evaluates all stages
//!   again so dropped stages keep fresh estimates and can win their way
//!   back in.
//! * **Re-planning** — at every `epoch_pairs` boundary one worker claims
//!   the replan with a CAS, ranks stages by `selectivity / cost`, applies
//!   the benefit-drop rule back-to-front (keep a stage iff
//!   `sel × tail_cost > cost`, where `tail_cost` is the expected cost of
//!   everything after it, seeded by the average verification cost), and
//!   adopts the new plan only if its expected per-pair cost improves on
//!   the incumbent by more than `hysteresis` (the first post-calibration
//!   plan is adopted unconditionally). After each replan the estimate
//!   window is rescaled to at most `epoch_pairs` observations, so one
//!   epoch of contrary evidence carries at least half the weight — a
//!   workload drift re-ranks the cascade within roughly one epoch.
//!
//! # Soundness
//!
//! The grouped stage is special twice over: it is pinned to the end of
//! the plan and never dropped, because beyond pruning it *partitions* the
//! possible worlds for the verifier (Algorithm 2's group-level skips),
//! a benefit the prune-rate cost model cannot see. In `Fixed` mode the
//! plan is the paper's hard-coded order (size → label-multiset → CSS →
//! probabilistic) and never changes. `Shuffled` mode derives a random
//! permutation-plus-subset plan from a seed — it exists for the
//! conformance oracles, which assert that every such plan produces
//! byte-identical join results.

use crate::join::JoinStrategy;
use crate::obs::{join_obs, stage_handles, StageHandles};
use crate::stats::JoinStats;
use parking_lot::Mutex;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};
use uqsj_ged::bounds::css::css_terms_uncertain;
use uqsj_ged::bounds::{all_bounds, LowerBound};
use uqsj_graph::{Graph, SymbolTable, UncertainGraph};
use uqsj_uncertain::groups::{ub_simp_grouped, PossibleWorldGroup};
use uqsj_uncertain::prob_bound::ub_simp_with_terms;

/// Fallback expected verification cost (ns) before any candidate has
/// been verified. Deliberately on the expensive side (the deep workloads
/// average ~500 µs/pair), so early plans keep filters rather than
/// dropping them on no evidence.
const DEFAULT_VERIFY_COST_NS: f64 = 500_000.0;

/// How the cascade plan is chosen.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CascadeMode {
    /// The paper's hard-coded order: size → label-multiset → CSS →
    /// probabilistic stage(s). Byte-identical behavior (results *and*
    /// candidate counts) to the pre-planner pipeline.
    Fixed,
    /// Selectivity/cost-ranked ordering with online re-planning over the
    /// full bound registry. Same results; candidate counts may differ
    /// (extra registry bounds can prune pairs CSS misses).
    Adaptive,
    /// A seed-derived random permutation + subset of the stages, fixed
    /// for the whole run. Conformance-test mode: exercises the claim
    /// that any plan yields identical results.
    Shuffled,
}

/// Cascade-planner policy knobs, carried inside
/// [`crate::JoinParams::cascade`].
#[derive(Clone, Copy, Debug)]
pub struct CascadePolicy {
    /// Plan-selection mode.
    pub mode: CascadeMode,
    /// Pairs that full-evaluate every stage to warm-start estimates.
    pub calibration_pairs: u64,
    /// Pairs between re-plan attempts; also the estimate-window cap.
    pub epoch_pairs: u64,
    /// Relative expected-cost improvement a candidate plan must show
    /// before it replaces the incumbent (0.1 = 10%).
    pub hysteresis: f64,
    /// Every `probe_interval`-th steady-state pair full-evaluates all
    /// stages so dropped stages keep fresh estimates (0 disables probes).
    pub probe_interval: u64,
    /// Seed for [`CascadeMode::Shuffled`] plan derivation.
    pub shuffle_seed: u64,
}

impl CascadePolicy {
    /// The paper's fixed stage order (the default).
    pub fn fixed() -> Self {
        Self {
            mode: CascadeMode::Fixed,
            calibration_pairs: 64,
            epoch_pairs: 512,
            hysteresis: 0.1,
            probe_interval: 64,
            shuffle_seed: 0,
        }
    }

    /// Adaptive planning with default calibration/epoch/probe knobs.
    pub fn adaptive() -> Self {
        Self { mode: CascadeMode::Adaptive, ..Self::fixed() }
    }

    /// A seed-derived random permutation/subset plan (conformance mode).
    pub fn shuffled(seed: u64) -> Self {
        Self { mode: CascadeMode::Shuffled, shuffle_seed: seed, ..Self::fixed() }
    }

    /// Override the calibration-sample size.
    pub fn with_calibration_pairs(self, calibration_pairs: u64) -> Self {
        Self { calibration_pairs, ..self }
    }

    /// Override the re-plan epoch length.
    pub fn with_epoch_pairs(self, epoch_pairs: u64) -> Self {
        Self { epoch_pairs: epoch_pairs.max(1), ..self }
    }

    /// Override the probe interval (0 disables probing).
    pub fn with_probe_interval(self, probe_interval: u64) -> Self {
        Self { probe_interval, ..self }
    }

    /// Override the plan-adoption hysteresis.
    pub fn with_hysteresis(self, hysteresis: f64) -> Self {
        Self { hysteresis, ..self }
    }
}

impl Default for CascadePolicy {
    fn default() -> Self {
        Self::fixed()
    }
}

/// What a cascade stage computes.
enum StageKind {
    /// A τ-prune: `lb(q, g) > τ` in every possible world.
    Bound(Box<dyn LowerBound + Send + Sync>),
    /// The single-group Markov α-prune (Theorem 4), as run by `SimJ`.
    Markov,
    /// The same Markov prune when it runs as `SimJOpt`'s pre-filter —
    /// separate stage identity so the two call sites are distinguishable
    /// in metrics and stats.
    MarkovOpt,
    /// The group-refined α-prune (Algorithm 2). Also yields the world
    /// partition the verifier consumes.
    Grouped,
}

/// One enrolled stage: its evaluator plus lock-free shared estimates.
struct Stage {
    kind: StageKind,
    label: &'static str,
    /// Pairs this stage was evaluated on.
    evaluated: AtomicU64,
    /// Evaluations on which the stage fired (would have pruned).
    fired: AtomicU64,
    /// Summed evaluation time, ns.
    cost_ns: AtomicU64,
    /// Process-global metric handles for this stage label.
    obs: StageHandles,
}

impl Stage {
    fn new(kind: StageKind, label: &'static str) -> Self {
        Self {
            kind,
            label,
            evaluated: AtomicU64::new(0),
            fired: AtomicU64::new(0),
            cost_ns: AtomicU64::new(0),
            obs: stage_handles(label),
        }
    }

    /// (selectivity, avg cost ns); cost is `+∞` with no observations.
    fn estimates(&self) -> (f64, f64) {
        let ev = self.evaluated.load(Ordering::Relaxed);
        if ev == 0 {
            return (0.0, f64::INFINITY);
        }
        let sel = (self.fired.load(Ordering::Relaxed) as f64 / ev as f64).clamp(0.0, 1.0);
        let cost = (self.cost_ns.load(Ordering::Relaxed) as f64 / ev as f64).max(1.0);
        (sel, cost)
    }
}

/// What one pair's trip through the cascade produced.
pub(crate) enum CascadeOutcome {
    /// Discarded by some stage (already credited in stats/metrics).
    Pruned,
    /// Survived every stage in the plan; carries the world partition if
    /// the grouped stage ran.
    Candidate(Option<Vec<PossibleWorldGroup>>),
}

/// Shared cascade state for one join run: the enrolled stages, their
/// online estimates, and the current plan. One runtime is shared by all
/// workers of a parallel join (everything hot is atomic; the plan itself
/// sits behind a mutex that workers only touch on epoch changes) and can
/// outlive a single driver call — the serving ingestor keeps one across
/// questions so adaptation accumulates.
pub struct CascadeRuntime {
    policy: CascadePolicy,
    strategy: JoinStrategy,
    stages: Vec<Stage>,
    /// Current plan: indexes into `stages`, in execution order.
    plan: Mutex<Vec<usize>>,
    /// Bumped on every adopted plan; cursors re-copy the plan when it
    /// moves.
    plan_epoch: AtomicU64,
    /// Pairs that entered the cascade.
    pairs_done: AtomicU64,
    /// Pair count at which the next replan fires (`u64::MAX` when the
    /// mode never replans).
    next_replan: AtomicU64,
    /// Re-rank attempts (epoch boundaries reached).
    replans: AtomicU64,
    /// Adopted plan changes.
    adoptions: AtomicU64,
    verify_count: AtomicU64,
    verify_cost_ns: AtomicU64,
}

/// A worker-local view of the shared plan: a cached copy refreshed only
/// when [`CascadeRuntime`]'s plan epoch moves, so steady-state pairs
/// never touch the plan mutex.
#[derive(Default)]
pub struct CascadeCursor {
    epoch: Option<u64>,
    order: Vec<usize>,
}

impl CascadeCursor {
    /// A cursor that syncs with the runtime's plan on first use.
    pub fn new() -> Self {
        Self::default()
    }

    fn refresh(&mut self, rt: &CascadeRuntime) {
        let epoch = rt.plan_epoch.load(Ordering::Acquire);
        if self.epoch != Some(epoch) {
            self.order = rt.plan.lock().clone();
            self.epoch = Some(epoch);
        }
    }
}

impl CascadeRuntime {
    /// Enroll the stages valid for `strategy` and derive the initial
    /// plan for `policy.mode`.
    pub fn new(policy: CascadePolicy, strategy: JoinStrategy) -> Self {
        let mut stages: Vec<Stage> = all_bounds()
            .into_iter()
            .map(|b| {
                let label = b.stage_label();
                Stage::new(StageKind::Bound(b), label)
            })
            .collect();
        match strategy {
            JoinStrategy::CssOnly => {}
            JoinStrategy::SimJ => stages.push(Stage::new(StageKind::Markov, "markov")),
            JoinStrategy::SimJOpt { .. } => {
                stages.push(Stage::new(StageKind::MarkovOpt, "markov_opt"));
                stages.push(Stage::new(StageKind::Grouped, "grouped"));
            }
        }
        let initial = match policy.mode {
            // The paper's order — also the adaptive warm-up plan until
            // calibration produces estimates.
            CascadeMode::Fixed | CascadeMode::Adaptive => {
                let mut plan = Vec::new();
                for want in ["size", "label_multiset", "css"] {
                    if let Some(i) = stages.iter().position(|s| s.label == want) {
                        plan.push(i);
                    }
                }
                for (i, s) in stages.iter().enumerate() {
                    if !matches!(s.kind, StageKind::Bound(_)) {
                        plan.push(i);
                    }
                }
                plan
            }
            CascadeMode::Shuffled => shuffled_plan(&stages, policy.shuffle_seed),
        };
        let next_replan = if policy.mode == CascadeMode::Adaptive {
            policy.calibration_pairs.max(1)
        } else {
            u64::MAX
        };
        Self {
            policy,
            strategy,
            stages,
            plan: Mutex::new(initial),
            plan_epoch: AtomicU64::new(0),
            pairs_done: AtomicU64::new(0),
            next_replan: AtomicU64::new(next_replan),
            replans: AtomicU64::new(0),
            adoptions: AtomicU64::new(0),
            verify_count: AtomicU64::new(0),
            verify_cost_ns: AtomicU64::new(0),
        }
    }

    /// The policy this runtime was built with.
    pub fn policy(&self) -> CascadePolicy {
        self.policy
    }

    /// Run one pair through the cascade. Credits exactly one stage in
    /// `stats` and the process metrics when the pair is pruned, so
    /// `pairs == pruned_total + candidates` holds in every mode.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn run_pair(
        &self,
        cursor: &mut CascadeCursor,
        table: &SymbolTable,
        q: &Graph,
        g: &UncertainGraph,
        tau: u32,
        alpha: f64,
        stats: &mut JoinStats,
    ) -> CascadeOutcome {
        let n = self.pairs_done.fetch_add(1, Ordering::Relaxed);
        let obs = join_obs();
        let mut full_eval = false;
        if self.policy.mode == CascadeMode::Adaptive {
            if n < self.policy.calibration_pairs {
                full_eval = true;
                obs.cascade_calibration_pairs.inc();
            } else {
                self.maybe_replan();
                if self.policy.probe_interval > 0 && n.is_multiple_of(self.policy.probe_interval) {
                    full_eval = true;
                    obs.cascade_probe_pairs.inc();
                }
            }
        }
        cursor.refresh(self);

        if full_eval {
            // Evaluate every enrolled stage (unconditional estimates);
            // prune if any fired. The pair's fate is identical to
            // short-circuit execution — each stage is individually sound.
            let mut fired: Vec<usize> = Vec::new();
            let mut groups = None;
            for idx in 0..self.stages.len() {
                let (hit, parts) = self.timed_eval(idx, table, q, g, tau, alpha);
                if hit {
                    fired.push(idx);
                }
                if parts.is_some() {
                    groups = parts;
                }
            }
            if fired.is_empty() {
                return CascadeOutcome::Candidate(groups);
            }
            // Credit the stage that would have fired first under the
            // current plan, falling back to registry order for stages
            // the plan dropped.
            let credit =
                cursor.order.iter().copied().find(|i| fired.contains(i)).unwrap_or(fired[0]);
            self.credit_prune(credit, stats);
            CascadeOutcome::Pruned
        } else {
            let mut groups = None;
            for &idx in &cursor.order {
                let (hit, parts) = self.timed_eval(idx, table, q, g, tau, alpha);
                if hit {
                    self.credit_prune(idx, stats);
                    return CascadeOutcome::Pruned;
                }
                if parts.is_some() {
                    groups = parts;
                }
            }
            CascadeOutcome::Candidate(groups)
        }
    }

    /// Feed the planner's tail-cost model with one verification.
    pub(crate) fn record_verify(&self, elapsed: Duration) {
        self.verify_count.fetch_add(1, Ordering::Relaxed);
        self.verify_cost_ns.fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
    }

    fn credit_prune(&self, idx: usize, stats: &mut JoinStats) {
        let st = &self.stages[idx];
        st.obs.pruned.inc();
        stats.record_pruned(st.label, 1);
    }

    /// Evaluate stage `idx` on the pair, timing it and feeding the
    /// shared estimates. Returns (fired, world partition).
    fn timed_eval(
        &self,
        idx: usize,
        table: &SymbolTable,
        q: &Graph,
        g: &UncertainGraph,
        tau: u32,
        alpha: f64,
    ) -> (bool, Option<Vec<PossibleWorldGroup>>) {
        let st = &self.stages[idx];
        let started = Instant::now();
        let (hit, parts) = match &st.kind {
            StageKind::Bound(b) => (b.uncertain(table, q, g) > tau, None),
            StageKind::Markov | StageKind::MarkovOpt => {
                let terms = css_terms_uncertain(table, q, g);
                (ub_simp_with_terms(table, q, g, tau, &terms) < alpha, None)
            }
            StageKind::Grouped => {
                let group_count = match self.strategy {
                    JoinStrategy::SimJOpt { group_count } => group_count,
                    _ => unreachable!("grouped stage only enrolls under SimJOpt"),
                };
                let (ub, parts) = ub_simp_grouped(table, q, g, tau, group_count);
                if ub < alpha {
                    (true, None)
                } else {
                    (false, Some(parts))
                }
            }
        };
        let elapsed = started.elapsed();
        st.evaluated.fetch_add(1, Ordering::Relaxed);
        st.cost_ns.fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
        if hit {
            st.fired.fetch_add(1, Ordering::Relaxed);
        }
        st.obs.time.observe_duration(elapsed);
        (hit, parts)
    }

    /// Claim and execute a replan if the epoch boundary has been
    /// reached. Cheap when it hasn't (one relaxed load + compare).
    fn maybe_replan(&self) {
        let due = self.next_replan.load(Ordering::Relaxed);
        if self.pairs_done.load(Ordering::Relaxed) < due {
            return;
        }
        let next = due.saturating_add(self.policy.epoch_pairs.max(1));
        if self
            .next_replan
            .compare_exchange(due, next, Ordering::Relaxed, Ordering::Relaxed)
            .is_err()
        {
            return; // another worker claimed this boundary
        }
        let obs = join_obs();
        obs.cascade_replans.inc();
        self.replans.fetch_add(1, Ordering::Relaxed);
        let first = due <= self.policy.calibration_pairs.max(1);
        let ranked = self.compute_plan();
        {
            let mut plan = self.plan.lock();
            if ranked != *plan {
                let adopt = first
                    || self.expected_cost(&ranked)
                        < self.expected_cost(&plan) * (1.0 - self.policy.hysteresis);
                if adopt {
                    obs.cascade_bounds_skipped.add((self.stages.len() - ranked.len()) as u64);
                    *plan = ranked;
                    self.plan_epoch.fetch_add(1, Ordering::Release);
                    self.adoptions.fetch_add(1, Ordering::Relaxed);
                    obs.cascade_plan_epochs.inc();
                }
            }
        }
        self.decay();
    }

    /// Rank stages by selectivity/cost and apply the benefit-drop rule.
    fn compute_plan(&self) -> Vec<usize> {
        let grouped = self.stages.iter().position(|s| matches!(s.kind, StageKind::Grouped));
        let mut order: Vec<usize> =
            (0..self.stages.len()).filter(|&i| Some(i) != grouped).collect();
        let rank = |i: usize| -> f64 {
            let (sel, cost) = self.stages[i].estimates();
            if cost.is_finite() {
                sel / cost
            } else {
                0.0
            }
        };
        // Stable sort: equal ranks keep registry (cheap-to-expensive)
        // order, so ties resolve deterministically.
        order.sort_by(|&a, &b| rank(b).partial_cmp(&rank(a)).unwrap_or(std::cmp::Ordering::Equal));
        // Benefit-drop rule, back to front: a stage pays for itself iff
        // the pairs it prunes would have cost more downstream than the
        // stage costs to run on everything that reaches it.
        let mut tail = self.verify_cost_estimate();
        if let Some(gidx) = grouped {
            // Grouped is pinned last and never dropped (it partitions
            // worlds for the verifier); upstream stages see its cost as
            // part of the tail.
            let (sel, cost) = self.stages[gidx].estimates();
            if cost.is_finite() {
                tail = cost + (1.0 - sel) * tail;
            }
        }
        let mut kept_rev: Vec<usize> = Vec::new();
        for &idx in order.iter().rev() {
            let (sel, cost) = self.stages[idx].estimates();
            if cost.is_finite() && sel * tail > cost {
                kept_rev.push(idx);
                tail = cost + (1.0 - sel) * tail;
            }
        }
        let mut plan: Vec<usize> = kept_rev.into_iter().rev().collect();
        if let Some(gidx) = grouped {
            plan.push(gidx);
        }
        plan
    }

    /// Expected per-pair cascade cost (ns) of running `order` under the
    /// current estimates, verification tail included.
    fn expected_cost(&self, order: &[usize]) -> f64 {
        let mut cost = 0.0;
        let mut survive = 1.0;
        for &i in order {
            let (sel, c) = self.stages[i].estimates();
            if !c.is_finite() {
                continue;
            }
            cost += survive * c;
            survive *= 1.0 - sel;
        }
        cost + survive * self.verify_cost_estimate()
    }

    fn verify_cost_estimate(&self) -> f64 {
        let n = self.verify_count.load(Ordering::Relaxed);
        if n == 0 {
            DEFAULT_VERIFY_COST_NS
        } else {
            (self.verify_cost_ns.load(Ordering::Relaxed) as f64 / n as f64).max(1.0)
        }
    }

    /// Rescale every estimate so it carries at most one epoch's worth of
    /// observations. The load/store pairs race with concurrent workers
    /// and may lose a few increments; the estimates are statistical, so
    /// approximate decay is fine.
    fn decay(&self) {
        let window = self.policy.epoch_pairs.max(1);
        for st in &self.stages {
            let ev = st.evaluated.load(Ordering::Relaxed);
            if ev > window {
                let f = window as f64 / ev as f64;
                st.evaluated.store(window, Ordering::Relaxed);
                let fired = st.fired.load(Ordering::Relaxed) as f64;
                st.fired.store((fired * f).round() as u64, Ordering::Relaxed);
                let cost = st.cost_ns.load(Ordering::Relaxed) as f64;
                st.cost_ns.store((cost * f).round() as u64, Ordering::Relaxed);
            }
        }
        let vc = self.verify_count.load(Ordering::Relaxed);
        if vc > window {
            let f = window as f64 / vc as f64;
            self.verify_count.store(window, Ordering::Relaxed);
            let cost = self.verify_cost_ns.load(Ordering::Relaxed) as f64;
            self.verify_cost_ns.store((cost * f).round() as u64, Ordering::Relaxed);
        }
    }

    /// Snapshot the planner state: current plan, per-stage estimates,
    /// and replan counters. This is what lands in
    /// [`crate::JoinStats::cascade`] and `BENCH_join.json`.
    pub fn report(&self) -> CascadeReport {
        let plan = self.plan.lock().clone();
        let stages = self
            .stages
            .iter()
            .enumerate()
            .map(|(i, st)| {
                let (sel, cost) = st.estimates();
                StageEstimate {
                    label: st.label,
                    evaluated: st.evaluated.load(Ordering::Relaxed),
                    fired: st.fired.load(Ordering::Relaxed),
                    selectivity: sel,
                    cost_ns: if cost.is_finite() { cost } else { 0.0 },
                    in_plan: plan.contains(&i),
                }
            })
            .collect();
        CascadeReport {
            mode: self.policy.mode,
            plan: plan.iter().map(|&i| self.stages[i].label).collect(),
            stages,
            pairs_seen: self.pairs_done.load(Ordering::Relaxed),
            replans: self.replans.load(Ordering::Relaxed),
            plan_epochs: self.adoptions.load(Ordering::Relaxed),
        }
    }
}

/// Derive a seed-determined permutation + subset plan: each non-grouped
/// stage is kept with probability 2/3, the survivors are shuffled, and
/// the grouped stage (when enrolled) is appended at a random position.
/// At least one stage always survives so the plan is never degenerate
/// on large workloads (an empty plan is still *correct* — every pair
/// verifies — just slow).
fn shuffled_plan(stages: &[Stage], seed: u64) -> Vec<usize> {
    let mut state = seed;
    let mut next = move || -> u64 {
        // splitmix64 — same generator family the testkit seeds use.
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    let mut plan: Vec<usize> = (0..stages.len()).filter(|_| next() % 3 != 0).collect();
    if plan.is_empty() {
        plan.push(next() as usize % stages.len());
    }
    // Fisher–Yates.
    for i in (1..plan.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        plan.swap(i, j);
    }
    plan
}

/// One stage's estimate row in a [`CascadeReport`].
#[derive(Clone, Debug)]
pub struct StageEstimate {
    /// Stage label (`uqsj_join_pruned_total{stage=...}`).
    pub label: &'static str,
    /// Evaluations observed (post-decay window).
    pub evaluated: u64,
    /// Evaluations on which the stage fired.
    pub fired: u64,
    /// `fired / evaluated`.
    pub selectivity: f64,
    /// Average evaluation cost, ns (0 with no observations).
    pub cost_ns: f64,
    /// Whether the current plan includes the stage.
    pub in_plan: bool,
}

/// Final planner snapshot: the chosen plan and the per-stage
/// selectivity/cost table behind it.
#[derive(Clone, Debug)]
pub struct CascadeReport {
    /// Plan-selection mode the run used.
    pub mode: CascadeMode,
    /// Stage labels in execution order.
    pub plan: Vec<&'static str>,
    /// Estimate rows for every enrolled stage (in-plan or dropped).
    pub stages: Vec<StageEstimate>,
    /// Pairs that entered the cascade.
    pub pairs_seen: u64,
    /// Re-rank attempts (epoch boundaries reached).
    pub replans: u64,
    /// Adopted plan changes.
    pub plan_epochs: u64,
}

impl CascadeReport {
    /// Stage labels the planner left out of the final plan.
    pub fn dropped(&self) -> Vec<&'static str> {
        self.stages.iter().filter(|s| !s.in_plan).map(|s| s.label).collect()
    }

    /// Hand-formatted JSON object for `BENCH_join.json` (the bench
    /// crate's convention; no serde in-tree).
    pub fn to_json(&self, indent: &str) -> String {
        let mut s = String::new();
        let mode = match self.mode {
            CascadeMode::Fixed => "fixed",
            CascadeMode::Adaptive => "adaptive",
            CascadeMode::Shuffled => "shuffled",
        };
        s.push_str(&format!("{indent}{{\n"));
        s.push_str(&format!("{indent}  \"mode\": \"{mode}\",\n"));
        let plan: Vec<String> = self.plan.iter().map(|l| format!("\"{l}\"")).collect();
        s.push_str(&format!("{indent}  \"plan\": [{}],\n", plan.join(", ")));
        s.push_str(&format!("{indent}  \"pairs_seen\": {},\n", self.pairs_seen));
        s.push_str(&format!("{indent}  \"replans\": {},\n", self.replans));
        s.push_str(&format!("{indent}  \"plan_epochs\": {},\n", self.plan_epochs));
        s.push_str(&format!("{indent}  \"stages\": [\n"));
        for (i, st) in self.stages.iter().enumerate() {
            let comma = if i + 1 == self.stages.len() { "" } else { "," };
            s.push_str(&format!(
                "{indent}    {{\"stage\": \"{}\", \"evaluated\": {}, \"fired\": {}, \
                 \"selectivity\": {:.4}, \"cost_ns\": {:.0}, \"in_plan\": {}}}{comma}\n",
                st.label, st.evaluated, st.fired, st.selectivity, st.cost_ns, st.in_plan
            ));
        }
        s.push_str(&format!("{indent}  ]\n"));
        s.push_str(&format!("{indent}}}"));
        s
    }
}

impl fmt::Display for CascadeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "cascade plan ({:?} mode): {}", self.mode, self.plan.join(" -> "))?;
        let dropped = self.dropped();
        if !dropped.is_empty() {
            writeln!(f, "dropped stages: {}", dropped.join(", "))?;
        }
        writeln!(
            f,
            "pairs {}  replans {}  plan epochs {}",
            self.pairs_seen, self.replans, self.plan_epochs
        )?;
        writeln!(
            f,
            "{:<16} {:>10} {:>8} {:>12} {:>12}  in plan",
            "stage", "evaluated", "fired", "selectivity", "cost"
        )?;
        for st in &self.stages {
            writeln!(
                f,
                "{:<16} {:>10} {:>8} {:>12.4} {:>10.2}µs  {}",
                st.label,
                st.evaluated,
                st.fired,
                st.selectivity,
                st.cost_ns / 1_000.0,
                if st.in_plan { "yes" } else { "no" }
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stage_count(strategy: JoinStrategy) -> usize {
        CascadeRuntime::new(CascadePolicy::fixed(), strategy).stages.len()
    }

    #[test]
    fn enrollment_follows_strategy() {
        let bounds = all_bounds().len();
        assert_eq!(stage_count(JoinStrategy::CssOnly), bounds);
        assert_eq!(stage_count(JoinStrategy::SimJ), bounds + 1);
        assert_eq!(stage_count(JoinStrategy::SimJOpt { group_count: 4 }), bounds + 2);
    }

    #[test]
    fn fixed_plan_matches_paper_order() {
        let rt =
            CascadeRuntime::new(CascadePolicy::fixed(), JoinStrategy::SimJOpt { group_count: 4 });
        let report = rt.report();
        assert_eq!(report.plan, vec!["size", "label_multiset", "css", "markov_opt", "grouped"]);
        // The extra registry bounds are enrolled but not in the fixed
        // plan.
        assert!(report.dropped().contains(&"cstar"));
    }

    #[test]
    fn shuffled_plans_are_seed_deterministic_and_vary() {
        let plan = |seed| {
            CascadeRuntime::new(CascadePolicy::shuffled(seed), JoinStrategy::SimJ).report().plan
        };
        assert_eq!(plan(7), plan(7));
        // At least two of a handful of seeds must disagree, or the
        // shuffle is broken.
        let plans: Vec<_> = (0..6).map(plan).collect();
        assert!(plans.iter().any(|p| *p != plans[0]));
        for seed in 0..32 {
            assert!(!plan(seed).is_empty(), "seed {seed} produced an empty plan");
        }
    }

    #[test]
    fn benefit_rule_drops_useless_stages_and_keeps_winners() {
        let rt = CascadeRuntime::new(CascadePolicy::adaptive(), JoinStrategy::SimJ);
        // Fake estimates: css prunes everything cheaply, the rest never
        // fire.
        for st in &rt.stages {
            st.evaluated.store(100, Ordering::Relaxed);
            let (fired, cost) = match st.label {
                "css" => (95, 200_000u64),
                "size" => (0, 10_000),
                _ => (0, 500_000),
            };
            st.fired.store(fired, Ordering::Relaxed);
            st.cost_ns.store(cost, Ordering::Relaxed);
        }
        let plan = rt.compute_plan();
        let labels: Vec<&str> = plan.iter().map(|&i| rt.stages[i].label).collect();
        assert_eq!(labels, vec!["css"], "only the paying stage survives");
    }

    #[test]
    fn grouped_stage_is_pinned_last_and_never_dropped() {
        let rt = CascadeRuntime::new(
            CascadePolicy::adaptive(),
            JoinStrategy::SimJOpt { group_count: 4 },
        );
        for st in &rt.stages {
            st.evaluated.store(100, Ordering::Relaxed);
            let fired = if st.label == "css" { 90 } else { 0 };
            st.fired.store(fired, Ordering::Relaxed);
            st.cost_ns.store(100_000, Ordering::Relaxed);
        }
        let plan = rt.compute_plan();
        let labels: Vec<&str> = plan.iter().map(|&i| rt.stages[i].label).collect();
        assert_eq!(labels.last(), Some(&"grouped"));
    }

    #[test]
    fn report_json_is_balanced() {
        let rt = CascadeRuntime::new(CascadePolicy::adaptive(), JoinStrategy::SimJ);
        let json = rt.report().to_json("  ");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\"mode\": \"adaptive\""));
    }
}
