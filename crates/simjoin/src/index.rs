//! A size-signature index over the certain side `D`: the vertex/edge
//! count lower bound (Zeng et al.) prunes any pair with
//! `||V(q)|−|V(g)|| + ||E(q)|−|E(g)|| > τ`, so for a given uncertain
//! graph only queries inside a small size window need the (more
//! expensive) CSS bound at all. The index turns the quadratic
//! cross-product scan into per-question window lookups — the kind of
//! engineering the paper's 73,057-query workload demands.

use crate::cascade::{CascadeCursor, CascadeRuntime};
use crate::join::{join_pair, JoinMatch, JoinParams};
use crate::obs::stage_handles;
use crate::stats::JoinStats;
use uqsj_ged::GedEngine;
use uqsj_graph::{Graph, SymbolTable, UncertainGraph};

/// The index: query ids sorted by vertex count, with edge counts kept for
/// the second component of the size bound.
pub struct JoinIndex<'a> {
    d: &'a [Graph],
    /// `(vertex_count, edge_count, index into d)` sorted by vertex count.
    by_size: Vec<(u32, u32, u32)>,
}

impl<'a> JoinIndex<'a> {
    /// Build the index over `d`.
    pub fn build(d: &'a [Graph]) -> Self {
        let mut by_size: Vec<(u32, u32, u32)> = d
            .iter()
            .enumerate()
            .map(|(i, g)| (g.vertex_count() as u32, g.edge_count() as u32, i as u32))
            .collect();
        by_size.sort_unstable();
        Self { d, by_size }
    }

    /// Query ids whose size bound against `(v, e)` is within `tau`.
    pub fn candidates(&self, v: u32, e: u32, tau: u32) -> impl Iterator<Item = usize> + '_ {
        let lo = self.by_size.partition_point(|&(qv, _, _)| qv + tau < v);
        let hi = self.by_size.partition_point(|&(qv, _, _)| qv <= v + tau);
        self.by_size[lo..hi]
            .iter()
            .filter(move |&&(qv, qe, _)| qv.abs_diff(v) + qe.abs_diff(e) <= tau)
            .map(|&(_, _, i)| i as usize)
    }

    /// The indexed side.
    pub fn queries(&self) -> &'a [Graph] {
        self.d
    }

    /// Join a single uncertain graph against the indexed `D` — the
    /// incremental-ingestion entry point (`uqsj-serve` joins each newly
    /// arriving question without re-running the whole workload join).
    /// `g_index` is stamped into the produced matches. Matches come back
    /// sorted by `q_index`, the same order a full batch join visits them,
    /// so downstream template insertion is order-identical to a re-join.
    pub fn join_one(
        &self,
        table: &SymbolTable,
        g_index: usize,
        g: &UncertainGraph,
        params: JoinParams,
    ) -> (Vec<JoinMatch>, JoinStats) {
        let mut engine = GedEngine::new();
        self.join_one_with(&mut engine, table, g_index, g, params)
    }

    /// [`JoinIndex::join_one`] on a caller-owned [`GedEngine`], so a
    /// long-lived ingester reuses one workspace across every question.
    /// Builds a fresh cascade runtime per call; use
    /// [`JoinIndex::join_one_in`] to keep planner state across questions.
    pub fn join_one_with(
        &self,
        engine: &mut GedEngine,
        table: &SymbolTable,
        g_index: usize,
        g: &UncertainGraph,
        params: JoinParams,
    ) -> (Vec<JoinMatch>, JoinStats) {
        let cascade = CascadeRuntime::new(params.cascade, params.strategy);
        let mut cursor = CascadeCursor::new();
        self.join_one_in(engine, &cascade, &mut cursor, table, g_index, g, params)
    }

    /// [`JoinIndex::join_one_with`] against a caller-owned cascade
    /// runtime. A streaming ingester keeps one runtime (and cursor) for
    /// its lifetime, so the adaptive planner's estimates accumulate
    /// across questions instead of restarting cold on every arrival.
    #[allow(clippy::too_many_arguments)] // streaming driver's full context
    pub fn join_one_in(
        &self,
        engine: &mut GedEngine,
        cascade: &CascadeRuntime,
        cursor: &mut CascadeCursor,
        table: &SymbolTable,
        g_index: usize,
        g: &UncertainGraph,
        params: JoinParams,
    ) -> (Vec<JoinMatch>, JoinStats) {
        let mut out = Vec::new();
        let mut stats = JoinStats::default();
        let v = g.vertex_count() as u32;
        let e = g.edge_count() as u32;
        let mut hits = 0u64;
        for qi in self.candidates(v, e, params.tau) {
            hits += 1;
            join_pair(
                engine,
                cascade,
                cursor,
                table,
                qi,
                &self.d[qi],
                g_index,
                g,
                params,
                &mut out,
                &mut stats,
            );
        }
        // Pairs outside the window fail the size bound by construction, so
        // they land in the same `pruned_size` bucket the in-window cascade
        // uses — indexed and plain joins report identical stage counts.
        // (The cascade runtime deliberately does *not* see these pairs:
        // in-window pairs pass the size bound by construction, so the
        // planner correctly learns the size stage is redundant here.)
        let skipped = self.d.len() as u64 - hits;
        stats.pairs_total += skipped;
        stats.record_pruned("size", skipped);
        let obs = crate::obs::join_obs();
        obs.pairs.add(skipped);
        stage_handles("size").pruned.add(skipped);
        stats.cascade = Some(cascade.report());
        out.sort_by_key(|m| m.q_index);
        (out, stats)
    }
}

/// SimJ over `d × u` using the size index to skip hopeless pairs before
/// any bound computation. Returns the same result set as
/// [`crate::sim_join`]; `stats.pruned_size` absorbs the index-skipped
/// pairs (the window test *is* the size bound, just evaluated cheaper).
pub fn sim_join_indexed(
    table: &SymbolTable,
    d: &[Graph],
    u: &[UncertainGraph],
    params: JoinParams,
) -> (Vec<JoinMatch>, JoinStats) {
    let index = JoinIndex::build(d);
    let mut out = Vec::new();
    let mut stats = JoinStats::default();
    let mut engine = GedEngine::new();
    // One planner for the whole batch, matching the plain driver.
    let cascade = CascadeRuntime::new(params.cascade, params.strategy);
    let mut cursor = CascadeCursor::new();
    for (gi, g) in u.iter().enumerate() {
        let (matches, s) =
            index.join_one_in(&mut engine, &cascade, &mut cursor, table, gi, g, params);
        out.extend(matches);
        stats.merge(&s);
    }
    stats.cascade = Some(cascade.report());
    out.sort_by_key(|m| (m.g_index, m.q_index));
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::join::sim_join;
    use uqsj_graph::GraphBuilder;

    fn workload(t: &mut SymbolTable) -> (Vec<Graph>, Vec<UncertainGraph>) {
        let mut d = Vec::new();
        for n in 1..6usize {
            let mut b = GraphBuilder::new(t);
            for i in 0..n {
                b.vertex(&format!("v{i}"), "A");
            }
            for i in 0..n.saturating_sub(1) {
                b.edge(&format!("v{i}"), &format!("v{}", i + 1), "p");
            }
            d.push(b.into_graph());
        }
        let mut u = Vec::new();
        for n in [2usize, 4] {
            let mut b = GraphBuilder::new(t);
            for i in 0..n {
                b.uncertain_vertex(&format!("v{i}"), &[("A", 0.6), ("B", 0.4)]);
            }
            for i in 0..n - 1 {
                b.edge(&format!("v{i}"), &format!("v{}", i + 1), "p");
            }
            u.push(b.into_uncertain());
        }
        (d, u)
    }

    #[test]
    fn index_window_is_exactly_the_size_bound() {
        let mut t = SymbolTable::new();
        let (d, _) = workload(&mut t);
        let index = JoinIndex::build(&d);
        for tau in 0..4u32 {
            for (v, e) in [(2u32, 1u32), (4, 3), (1, 0)] {
                let mut got: Vec<usize> = index.candidates(v, e, tau).collect();
                got.sort_unstable();
                let expected: Vec<usize> = d
                    .iter()
                    .enumerate()
                    .filter(|(_, q)| {
                        (q.vertex_count() as u32).abs_diff(v) + (q.edge_count() as u32).abs_diff(e)
                            <= tau
                    })
                    .map(|(i, _)| i)
                    .collect();
                assert_eq!(got, expected, "tau={tau} v={v} e={e}");
            }
        }
    }

    #[test]
    fn indexed_join_matches_plain_join() {
        let mut t = SymbolTable::new();
        let (d, u) = workload(&mut t);
        for tau in 0..3u32 {
            let params = JoinParams::simj(tau, 0.3);
            let (plain, pstats) = sim_join(&t, &d, &u, params);
            let (indexed, istats) = sim_join_indexed(&t, &d, &u, params);
            let key = |m: &JoinMatch| (m.g_index, m.q_index);
            let mut a: Vec<_> = plain.iter().map(key).collect();
            a.sort_unstable();
            let b: Vec<_> = indexed.iter().map(key).collect();
            assert_eq!(a, b, "tau={tau}");
            assert_eq!(pstats.pairs_total, istats.pairs_total);
            assert_eq!(pstats.results, istats.results);
        }
    }
}
