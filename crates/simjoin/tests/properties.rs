//! Property tests for the join: all strategies return the same result
//! set, results really satisfy `SimP_τ >= α`, and no qualifying pair is
//! ever lost (completeness against brute force).

use proptest::prelude::*;
use uqsj_graph::{Graph, LabelAlternative, SymbolTable, UncertainGraph, UncertainVertex, VertexId};
use uqsj_simjoin::{sim_join, sim_join_parallel, JoinParams, JoinStrategy};
use uqsj_uncertain::similarity_probability;

const VLABELS: [&str; 4] = ["A", "B", "C", "?x"];
const ELABELS: [&str; 2] = ["p", "q"];

type RawEdge = (u8, u8, u8);
type RawCertain = (Vec<u8>, Vec<RawEdge>);
type RawUncertainGraph = (Vec<Vec<u8>>, Vec<RawEdge>);

#[derive(Clone, Debug)]
struct RawWorkload {
    certain: Vec<RawCertain>,
    uncertain: Vec<RawUncertainGraph>,
}

fn workload_strategy() -> impl Strategy<Value = RawWorkload> {
    let certain = prop::collection::vec(
        (1usize..4).prop_flat_map(|n| {
            (
                prop::collection::vec(0u8..VLABELS.len() as u8, n),
                prop::collection::vec((0..n as u8, 0..n as u8, 0u8..2), 0..3),
            )
        }),
        1..4,
    );
    let uncertain = prop::collection::vec(
        (1usize..4).prop_flat_map(|n| {
            (
                prop::collection::vec(prop::collection::vec(0u8..VLABELS.len() as u8, 1..3), n),
                prop::collection::vec((0..n as u8, 0..n as u8, 0u8..2), 0..3),
            )
        }),
        1..4,
    );
    (certain, uncertain).prop_map(|(certain, uncertain)| RawWorkload { certain, uncertain })
}

fn build(raw: &RawWorkload) -> (SymbolTable, Vec<Graph>, Vec<UncertainGraph>) {
    let mut t = SymbolTable::new();
    let d: Vec<Graph> = raw
        .certain
        .iter()
        .map(|(vl, el)| {
            let mut g = Graph::new();
            for &v in vl {
                let s = t.intern(VLABELS[v as usize]);
                g.add_vertex(s);
            }
            for &(s, dst, l) in el {
                if s != dst {
                    let sym = t.intern(ELABELS[l as usize]);
                    g.add_edge(VertexId(s as u32), VertexId(dst as u32), sym);
                }
            }
            g
        })
        .collect();
    let u: Vec<UncertainGraph> = raw
        .uncertain
        .iter()
        .map(|(vls, el)| {
            let mut g = UncertainGraph::new();
            for alts in vls {
                let mut labels: Vec<u8> = alts.clone();
                labels.sort_unstable();
                labels.dedup();
                let p = 1.0 / labels.len() as f64;
                g.add_vertex(UncertainVertex {
                    alternatives: labels
                        .iter()
                        .map(|&l| LabelAlternative {
                            label: t.intern(VLABELS[l as usize]),
                            prob: p,
                        })
                        .collect(),
                });
            }
            for &(s, dst, l) in el {
                if s != dst {
                    let sym = t.intern(ELABELS[l as usize]);
                    g.add_edge(VertexId(s as u32), VertexId(dst as u32), sym);
                }
            }
            g
        })
        .collect();
    (t, d, u)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn join_is_sound_and_complete(
        raw in workload_strategy(),
        tau in 0u32..3,
        alpha10 in 1u32..10,
    ) {
        let alpha = f64::from(alpha10) / 10.0;
        let (t, d, u) = build(&raw);
        let params = JoinParams::simj(tau, alpha);
        let (matches, stats) = sim_join(&t, &d, &u, params);
        prop_assert_eq!(stats.pairs_total as usize, d.len() * u.len());
        let mut returned: Vec<(usize, usize)> =
            matches.iter().map(|m| (m.q_index, m.g_index)).collect();
        returned.sort_unstable();
        // Brute force: exact SimP for every pair.
        let mut expected = Vec::new();
        for (gi, g) in u.iter().enumerate() {
            for (qi, q) in d.iter().enumerate() {
                if similarity_probability(&t, q, g, tau) >= alpha {
                    expected.push((qi, gi));
                }
            }
        }
        expected.sort_unstable();
        prop_assert_eq!(returned, expected, "join result set mismatch");
        // Every match witness is within tau and the mapping is injective.
        for m in &matches {
            prop_assert!(m.mapping.distance <= tau);
            let mut seen = std::collections::HashSet::new();
            for v in m.mapping.mapping.iter().flatten() {
                prop_assert!(seen.insert(*v));
            }
        }
    }

    #[test]
    fn indexed_join_agrees_with_plain(
        raw in workload_strategy(),
        tau in 0u32..3,
    ) {
        let (t, d, u) = build(&raw);
        let params = JoinParams::simj(tau, 0.4);
        let (plain, ps) = sim_join(&t, &d, &u, params);
        let (indexed, is_) = uqsj_simjoin::sim_join_indexed(&t, &d, &u, params);
        let key = |m: &uqsj_simjoin::JoinMatch| (m.g_index, m.q_index);
        let mut a: Vec<_> = plain.iter().map(key).collect();
        a.sort_unstable();
        let b: Vec<_> = indexed.iter().map(key).collect();
        prop_assert_eq!(a, b);
        prop_assert_eq!(ps.pairs_total, is_.pairs_total);
    }

    #[test]
    fn top1_match_is_the_probability_maximizer(
        raw in workload_strategy(),
        tau in 0u32..3,
    ) {
        let (t, d, u) = build(&raw);
        let (results, _) = uqsj_simjoin::sim_join_topk(&t, &d, &u, tau, 1);
        for (gi, top) in results.iter().enumerate() {
            let best_brute = d
                .iter()
                .map(|q| similarity_probability(&t, q, &u[gi], tau))
                .fold(0.0f64, f64::max);
            match top.first() {
                Some(m) => prop_assert!((m.prob - best_brute).abs() < 1e-9,
                    "top1 {} vs brute {}", m.prob, best_brute),
                None => prop_assert!(best_brute == 0.0),
            }
        }
    }

    #[test]
    fn all_strategies_and_parallel_agree(
        raw in workload_strategy(),
        tau in 0u32..3,
    ) {
        let (t, d, u) = build(&raw);
        let collect = |strategy| {
            let (m, _) = sim_join(&t, &d, &u, JoinParams { tau, strategy, ..JoinParams::simj(tau, 0.5) });
            let mut pairs: Vec<(usize, usize)> = m.iter().map(|x| (x.q_index, x.g_index)).collect();
            pairs.sort_unstable();
            pairs
        };
        let css = collect(JoinStrategy::CssOnly);
        let simj = collect(JoinStrategy::SimJ);
        let opt = collect(JoinStrategy::SimJOpt { group_count: 4 });
        prop_assert_eq!(&css, &simj);
        prop_assert_eq!(&simj, &opt);
        let (par, _) = sim_join_parallel(&t, &d, &u, JoinParams::simj(tau, 0.5), 3);
        let mut ppairs: Vec<(usize, usize)> = par.iter().map(|x| (x.q_index, x.g_index)).collect();
        ppairs.sort_unstable();
        prop_assert_eq!(&ppairs, &css);
    }
}
