//! Determinism and index-boundary guarantees the serving layer relies on:
//! the parallel join must be byte-for-byte interchangeable with the
//! sequential one, and the size-signature window must cut exactly at τ.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use uqsj_graph::{Graph, GraphBuilder, SymbolTable, UncertainGraph};
use uqsj_simjoin::{sim_join, sim_join_parallel, JoinIndex, JoinParams};

const LABELS: [&str; 4] = ["Actor", "Band", "Film", "Country"];
const PREDICATES: [&str; 3] = ["type", "starring", "memberOf"];

fn random_graph(t: &mut SymbolTable, rng: &mut SmallRng) -> Graph {
    let n = rng.gen_range(1..=4usize);
    let mut b = GraphBuilder::new(t);
    b.vertex("v0", "?x");
    for i in 1..n {
        b.vertex(&format!("v{i}"), LABELS[rng.gen_range(0..LABELS.len())]);
    }
    for i in 1..n {
        let parent = rng.gen_range(0..i);
        b.edge(&format!("v{parent}"), &format!("v{i}"), PREDICATES[rng.gen_range(0..3usize)]);
    }
    b.into_graph()
}

fn random_uncertain(t: &mut SymbolTable, rng: &mut SmallRng) -> UncertainGraph {
    let n = rng.gen_range(1..=4usize);
    let mut b = GraphBuilder::new(t);
    b.vertex("v0", "?x");
    for i in 1..n {
        if rng.gen_bool(0.5) {
            let a = LABELS[rng.gen_range(0..LABELS.len())];
            let mut c = LABELS[rng.gen_range(0..LABELS.len())];
            if c == a {
                c = LABELS[(LABELS.iter().position(|&l| l == a).unwrap() + 1) % LABELS.len()];
            }
            let p = rng.gen_range(0.3..0.7);
            b.uncertain_vertex(&format!("v{i}"), &[(a, p), (c, 1.0 - p)]);
        } else {
            b.vertex(&format!("v{i}"), LABELS[rng.gen_range(0..LABELS.len())]);
        }
    }
    for i in 1..n {
        let parent = rng.gen_range(0..i);
        b.edge(&format!("v{parent}"), &format!("v{i}"), PREDICATES[rng.gen_range(0..3usize)]);
    }
    b.into_uncertain()
}

/// Satellite: `sim_join_parallel` with 4 threads must return *exactly* the
/// same `Vec<JoinMatch>` (order, probabilities, mappings) as the
/// sequential join, on a randomly generated workload.
#[test]
fn parallel_join_is_deterministic_and_equals_sequential() {
    let mut rng = SmallRng::seed_from_u64(0x5eed_u64);
    let mut t = SymbolTable::new();
    let d: Vec<Graph> = (0..12).map(|_| random_graph(&mut t, &mut rng)).collect();
    let u: Vec<UncertainGraph> = (0..9).map(|_| random_uncertain(&mut t, &mut rng)).collect();
    for tau in [0u32, 1, 2] {
        let params = JoinParams::simj(tau, 0.3);
        let (seq, seq_stats) = sim_join(&t, &d, &u, params);
        let (par, par_stats) = sim_join_parallel(&t, &d, &u, params, 4);
        assert_eq!(seq, par, "tau={tau}: full match payloads must agree");
        // And a second run is bit-identical to the first.
        let (par2, _) = sim_join_parallel(&t, &d, &u, params, 4);
        assert_eq!(par, par2, "tau={tau}: parallel join must be deterministic");
        assert_eq!(seq_stats.pairs_total, par_stats.pairs_total);
        assert_eq!(seq_stats.results, par_stats.results);
    }
}

fn sized_graph(t: &mut SymbolTable, v: usize, e: usize) -> Graph {
    assert!(e < v || v == 0);
    let mut b = GraphBuilder::new(t);
    for i in 0..v {
        b.vertex(&format!("v{i}"), "A");
    }
    for i in 0..e {
        b.edge(&format!("v{i}"), &format!("v{}", i + 1), "p");
    }
    b.into_graph()
}

/// Satellite: window boundaries of `JoinIndex::candidates`. A query at
/// distance exactly τ is kept, τ+1 is pruned.
#[test]
fn index_keeps_distance_tau_and_prunes_tau_plus_one() {
    let mut t = SymbolTable::new();
    // d[0]: 3 vertices / 2 edges. Probe from (v=5, e=3): |Δv|+|Δe| = 3.
    let d = vec![sized_graph(&mut t, 3, 2)];
    let index = JoinIndex::build(&d);
    let at_tau: Vec<usize> = index.candidates(5, 3, 3).collect();
    assert_eq!(at_tau, vec![0], "distance == tau must be kept");
    let below: Vec<usize> = index.candidates(5, 3, 2).collect();
    assert!(below.is_empty(), "distance == tau + 1 must be pruned");
}

#[test]
fn index_tau_zero_keeps_only_exact_sizes() {
    let mut t = SymbolTable::new();
    let d = vec![
        sized_graph(&mut t, 2, 1),
        sized_graph(&mut t, 3, 2),
        sized_graph(&mut t, 3, 1),
        sized_graph(&mut t, 4, 3),
    ];
    let index = JoinIndex::build(&d);
    let mut got: Vec<usize> = index.candidates(3, 2, 0).collect();
    got.sort_unstable();
    assert_eq!(got, vec![1], "tau = 0 admits only exact (v, e)");
    // Same vertex count, different edge count: out at tau = 0, in at 1
    // (d[0] at (2,1) is also distance 1 away; d[3] at (4,3) stays out).
    let mut got: Vec<usize> = index.candidates(3, 1, 1).collect();
    got.sort_unstable();
    assert_eq!(got, vec![0, 1, 2]);
}

#[test]
fn index_over_empty_d_yields_nothing() {
    let d: Vec<Graph> = Vec::new();
    let index = JoinIndex::build(&d);
    assert_eq!(index.candidates(3, 2, 10).count(), 0);
    assert!(index.queries().is_empty());
}
