//! Differential property tests for the matching algorithms: the O(n³)
//! Hungarian solver against brute-force permutation enumeration, and
//! Hopcroft–Karp against a simple single-path augmenting reference.

use proptest::prelude::*;
use uqsj_matching::{hopcroft_karp, hungarian, BipartiteGraph};

/// Minimum assignment cost by trying every permutation (Heap's algorithm),
/// feasible up to 7×7 (5040 permutations).
fn brute_force_min_cost(cost: &[Vec<u64>]) -> u64 {
    let n = cost.len();
    let mut perm: Vec<usize> = (0..n).collect();
    let mut best = u64::MAX;
    let mut c = vec![0usize; n];
    let eval = |perm: &[usize]| perm.iter().enumerate().map(|(i, &j)| cost[i][j]).sum::<u64>();
    best = best.min(eval(&perm));
    let mut i = 1;
    while i < n {
        if c[i] < i {
            if i % 2 == 0 {
                perm.swap(0, i);
            } else {
                perm.swap(c[i], i);
            }
            best = best.min(eval(&perm));
            c[i] += 1;
            i = 1;
        } else {
            c[i] = 0;
            i += 1;
        }
    }
    best
}

/// Maximum matching size via the textbook one-augmenting-path-at-a-time
/// algorithm — O(V·E), no layering, hard to get wrong.
fn simple_matching_size(adj: &[Vec<usize>], n_right: usize) -> usize {
    fn try_augment(
        l: usize,
        adj: &[Vec<usize>],
        match_r: &mut [Option<usize>],
        visited: &mut [bool],
    ) -> bool {
        for &r in &adj[l] {
            if visited[r] {
                continue;
            }
            visited[r] = true;
            if match_r[r].is_none() || try_augment(match_r[r].unwrap(), adj, match_r, visited) {
                match_r[r] = Some(l);
                return true;
            }
        }
        false
    }
    let mut match_r: Vec<Option<usize>> = vec![None; n_right];
    let mut size = 0;
    for l in 0..adj.len() {
        let mut visited = vec![false; n_right];
        if try_augment(l, adj, &mut match_r, &mut visited) {
            size += 1;
        }
    }
    size
}

fn square_matrix(max_n: usize, max_cost: u64) -> impl Strategy<Value = Vec<Vec<u64>>> {
    (1..=max_n)
        .prop_flat_map(move |n| prop::collection::vec(prop::collection::vec(0..=max_cost, n), n))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Hungarian assignment cost equals brute-force permutation minimum on
    /// matrices up to 7×7.
    #[test]
    fn hungarian_matches_brute_force(cost in square_matrix(7, 50)) {
        let (total, assignment) = hungarian(&cost);
        prop_assert_eq!(total, brute_force_min_cost(&cost));
        // The reported assignment is a permutation realizing that cost.
        let mut seen = vec![false; cost.len()];
        let mut realized = 0u64;
        for (i, &j) in assignment.iter().enumerate() {
            prop_assert!(!seen[j], "column {} assigned twice", j);
            seen[j] = true;
            realized += cost[i][j];
        }
        prop_assert_eq!(realized, total);
    }

    /// Hopcroft–Karp matching size equals the simple augmenting-path
    /// reference, and the returned matching is consistent.
    #[test]
    fn hopcroft_karp_matches_simple_reference(
        (nl, nr, edges) in (1usize..=8, 1usize..=8).prop_flat_map(|(nl, nr)| {
            let edge = (0..nl, 0..nr);
            (Just(nl), Just(nr), prop::collection::vec(edge, 0..=24))
        })
    ) {
        let mut g = BipartiteGraph::new(nl, nr);
        let mut adj = vec![Vec::new(); nl];
        for &(l, r) in &edges {
            g.add_edge(l, r);
            adj[l].push(r);
        }
        let (size, match_l) = hopcroft_karp(&g);
        prop_assert_eq!(size, simple_matching_size(&adj, nr));
        // Consistency: matched pairs are real edges, rights are distinct,
        // and the count agrees with the reported size.
        let mut used_r = vec![false; nr];
        let mut counted = 0;
        for (l, m) in match_l.iter().enumerate() {
            if let Some(r) = *m {
                prop_assert!(adj[l].contains(&r), "matched non-edge ({}, {})", l, r);
                prop_assert!(!used_r[r], "right vertex {} matched twice", r);
                used_r[r] = true;
                counted += 1;
            }
        }
        prop_assert_eq!(counted, size);
    }
}

/// Degenerate shapes stay exact: empty matrix, single cell, all-equal
/// costs, and a bipartite graph with no edges.
#[test]
fn edge_cases() {
    assert_eq!(hungarian(&[]), (0, vec![]));
    assert_eq!(hungarian(&[vec![9]]), (9, vec![0]));
    let flat = vec![vec![3u64; 4]; 4];
    assert_eq!(hungarian(&flat).0, 12);
    let g = BipartiteGraph::new(5, 5);
    assert_eq!(hopcroft_karp(&g).0, 0);
}
