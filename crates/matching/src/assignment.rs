//! Hungarian (Kuhn–Munkres) algorithm for the minimum-cost assignment
//! problem, on an `n × n` cost matrix of `u64` costs.
//!
//! Used by the c-star lower bound of Zeng et al. (star mapping distance μ)
//! and by the bipartite GED heuristic.

/// Solve the min-cost assignment problem for a square cost matrix.
///
/// `cost[i][j]` is the cost of assigning row `i` to column `j`. Returns the
/// minimum total cost and the column assigned to each row.
///
/// Implementation: O(n³) shortest augmenting path formulation with
/// potentials (Jonker–Volgenant style).
///
/// # Panics
/// Panics if the matrix is not square.
pub fn hungarian(cost: &[Vec<u64>]) -> (u64, Vec<usize>) {
    let n = cost.len();
    if n == 0 {
        return (0, Vec::new());
    }
    for row in cost {
        assert_eq!(row.len(), n, "cost matrix must be square");
    }
    const INF: i128 = i128::MAX / 4;

    // 1-indexed potentials and matching, per the classic formulation.
    let mut u = vec![0i128; n + 1];
    let mut v = vec![0i128; n + 1];
    let mut p = vec![0usize; n + 1]; // p[j] = row matched to column j (0 = none)
    let mut way = vec![0usize; n + 1];

    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![INF; n + 1];
        let mut used = vec![false; n + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = INF;
            let mut j1 = 0usize;
            for j in 1..=n {
                if !used[j] {
                    let cur = cost[i0 - 1][j - 1] as i128 - u[i0] - v[j];
                    if cur < minv[j] {
                        minv[j] = cur;
                        way[j] = j0;
                    }
                    if minv[j] < delta {
                        delta = minv[j];
                        j1 = j;
                    }
                }
            }
            for j in 0..=n {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut assignment = vec![0usize; n];
    for j in 1..=n {
        if p[j] != 0 {
            assignment[p[j] - 1] = j - 1;
        }
    }
    let total: u64 = assignment.iter().enumerate().map(|(i, &j)| cost[i][j]).sum();
    (total, assignment)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_matrix() {
        let (c, a) = hungarian(&[]);
        assert_eq!(c, 0);
        assert!(a.is_empty());
    }

    #[test]
    fn identity_is_optimal() {
        let cost = vec![vec![0, 9, 9], vec![9, 0, 9], vec![9, 9, 0]];
        let (c, a) = hungarian(&cost);
        assert_eq!(c, 0);
        assert_eq!(a, vec![0, 1, 2]);
    }

    #[test]
    fn classic_example() {
        // Known optimum: 250+400+200 = 850? Standard example:
        let cost = vec![vec![250, 400, 350], vec![400, 600, 350], vec![200, 400, 250]];
        let (c, _) = hungarian(&cost);
        assert_eq!(c, 950); // 400 + 350 + 200
    }

    /// Exhaustive check against all permutations for small matrices.
    fn brute(cost: &[Vec<u64>]) -> u64 {
        fn rec(cost: &[Vec<u64>], i: usize, used: &mut Vec<bool>) -> u64 {
            let n = cost.len();
            if i == n {
                return 0;
            }
            let mut best = u64::MAX;
            for j in 0..n {
                if !used[j] {
                    used[j] = true;
                    let sub = rec(cost, i + 1, used);
                    if sub != u64::MAX {
                        best = best.min(cost[i][j] + sub);
                    }
                    used[j] = false;
                }
            }
            best
        }
        rec(cost, 0, &mut vec![false; cost.len()])
    }

    #[test]
    fn matches_bruteforce_on_random_matrices() {
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..200 {
            let n = rng.gen_range(1..7);
            let cost: Vec<Vec<u64>> =
                (0..n).map(|_| (0..n).map(|_| rng.gen_range(0..50)).collect()).collect();
            let (c, a) = hungarian(&cost);
            assert_eq!(c, brute(&cost), "matrix {cost:?}");
            // Assignment is a permutation.
            let mut seen = vec![false; n];
            for &j in &a {
                assert!(!seen[j]);
                seen[j] = true;
            }
        }
    }
}
