//! Hopcroft–Karp maximum cardinality bipartite matching.

/// Adjacency-list representation of a bipartite graph with `n_left` and
/// `n_right` vertices.
#[derive(Clone, Debug)]
pub struct BipartiteGraph {
    n_right: usize,
    adj: Vec<Vec<u32>>,
}

impl BipartiteGraph {
    /// Create a bipartite graph with the given side sizes and no edges.
    pub fn new(n_left: usize, n_right: usize) -> Self {
        Self { n_right, adj: vec![Vec::new(); n_left] }
    }

    /// Add an edge between left vertex `l` and right vertex `r`.
    ///
    /// # Panics
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, l: usize, r: usize) {
        assert!(r < self.n_right, "right endpoint out of range");
        self.adj[l].push(r as u32);
    }

    /// Number of left vertices.
    pub fn n_left(&self) -> usize {
        self.adj.len()
    }

    /// Number of right vertices.
    pub fn n_right(&self) -> usize {
        self.n_right
    }
}

const NIL: u32 = u32::MAX;
const INF: u32 = u32::MAX;

/// Maximum cardinality matching via Hopcroft–Karp. Returns the matching
/// size and, for each left vertex, its matched right vertex (or `None`).
pub fn hopcroft_karp(g: &BipartiteGraph) -> (usize, Vec<Option<usize>>) {
    let nl = g.n_left();
    let nr = g.n_right();
    let mut match_l = vec![NIL; nl];
    let mut match_r = vec![NIL; nr];
    let mut dist = vec![INF; nl];
    let mut queue = Vec::with_capacity(nl);
    let mut size = 0usize;

    loop {
        // BFS phase: layer free left vertices.
        queue.clear();
        for l in 0..nl {
            if match_l[l] == NIL {
                dist[l] = 0;
                queue.push(l as u32);
            } else {
                dist[l] = INF;
            }
        }
        let mut found = false;
        let mut qi = 0;
        while qi < queue.len() {
            let l = queue[qi] as usize;
            qi += 1;
            for &r in &g.adj[l] {
                let m = match_r[r as usize];
                if m == NIL {
                    found = true;
                } else if dist[m as usize] == INF {
                    dist[m as usize] = dist[l] + 1;
                    queue.push(m);
                }
            }
        }
        if !found {
            break;
        }
        // DFS phase: find vertex-disjoint augmenting paths.
        fn dfs(
            l: usize,
            g: &BipartiteGraph,
            dist: &mut [u32],
            match_l: &mut [u32],
            match_r: &mut [u32],
        ) -> bool {
            for i in 0..g.adj[l].len() {
                let r = g.adj[l][i] as usize;
                let m = match_r[r];
                if m == NIL
                    || (dist[m as usize] == dist[l] + 1
                        && dfs(m as usize, g, dist, match_l, match_r))
                {
                    match_l[l] = r as u32;
                    match_r[r] = l as u32;
                    return true;
                }
            }
            dist[l] = INF;
            false
        }
        for l in 0..nl {
            if match_l[l] == NIL && dfs(l, g, &mut dist, &mut match_l, &mut match_r) {
                size += 1;
            }
        }
    }

    let pairing = match_l.iter().map(|&r| if r == NIL { None } else { Some(r as usize) }).collect();
    (size, pairing)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = BipartiteGraph::new(3, 3);
        let (size, pairing) = hopcroft_karp(&g);
        assert_eq!(size, 0);
        assert!(pairing.iter().all(|p| p.is_none()));
    }

    #[test]
    fn perfect_matching() {
        let mut g = BipartiteGraph::new(3, 3);
        for i in 0..3 {
            g.add_edge(i, (i + 1) % 3);
        }
        let (size, _) = hopcroft_karp(&g);
        assert_eq!(size, 3);
    }

    #[test]
    fn contended_right_vertex() {
        // Both left vertices want right 0; only one can have it.
        let mut g = BipartiteGraph::new(2, 2);
        g.add_edge(0, 0);
        g.add_edge(1, 0);
        let (size, _) = hopcroft_karp(&g);
        assert_eq!(size, 1);
    }

    #[test]
    fn augmenting_path_needed() {
        // l0-{r0,r1}, l1-{r0}: greedy could match l0-r0 and strand l1.
        let mut g = BipartiteGraph::new(2, 2);
        g.add_edge(0, 0);
        g.add_edge(0, 1);
        g.add_edge(1, 0);
        let (size, pairing) = hopcroft_karp(&g);
        assert_eq!(size, 2);
        assert_eq!(pairing[1], Some(0));
        assert_eq!(pairing[0], Some(1));
    }

    #[test]
    fn rectangular_sides() {
        let mut g = BipartiteGraph::new(5, 2);
        for l in 0..5 {
            g.add_edge(l, 0);
            g.add_edge(l, 1);
        }
        let (size, _) = hopcroft_karp(&g);
        assert_eq!(size, 2);
    }

    /// Brute force matching size by trying all permutations (small cases).
    fn brute(g: &BipartiteGraph) -> usize {
        fn rec(g: &BipartiteGraph, l: usize, used: &mut Vec<bool>) -> usize {
            if l == g.n_left() {
                return 0;
            }
            // Skip l.
            let mut best = rec(g, l + 1, used);
            for &r in &g.adj[l] {
                if !used[r as usize] {
                    used[r as usize] = true;
                    best = best.max(1 + rec(g, l + 1, used));
                    used[r as usize] = false;
                }
            }
            best
        }
        rec(g, 0, &mut vec![false; g.n_right()])
    }

    #[test]
    fn matches_bruteforce_on_random_graphs() {
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..200 {
            let nl = rng.gen_range(0..6);
            let nr = rng.gen_range(0..6);
            let mut g = BipartiteGraph::new(nl, nr);
            for l in 0..nl {
                for r in 0..nr {
                    if rng.gen_bool(0.4) {
                        g.add_edge(l, r);
                    }
                }
            }
            let (size, pairing) = hopcroft_karp(&g);
            assert_eq!(size, brute(&g), "mismatch on {g:?}");
            // Pairing must be consistent: distinct right vertices.
            let mut seen = vec![false; nr];
            for p in pairing.into_iter().flatten() {
                assert!(!seen[p], "right vertex used twice");
                seen[p] = true;
            }
        }
    }
}
