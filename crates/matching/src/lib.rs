//! Matching algorithms used by the GED lower bounds.
//!
//! * [`hopcroft_karp`] — maximum cardinality bipartite matching, used to
//!   compute `λ_V(q, g)` over the vertex-label bipartite graph of Def. 10
//!   of the paper (the paper cites the Hungarian algorithm \[10\]; for the
//!   unweighted cardinality problem Hopcroft–Karp is the standard choice
//!   and returns the same value in `O(E√V)`).
//! * [`hungarian`] — minimum-cost assignment, used by the c-star lower
//!   bound of Zeng et al. (VLDB'09) and by the bipartite GED heuristic of
//!   Riesen & Bunke.

pub mod assignment;
pub mod bipartite;

pub use assignment::hungarian;
pub use bipartite::{hopcroft_karp, BipartiteGraph};
