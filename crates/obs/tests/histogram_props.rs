//! Histogram correctness properties: every recorded `Duration` lands in
//! its power-of-two bucket, and the p50/p99 estimates are within one
//! bucket of a sorted-vector oracle — including the sub-microsecond and
//! saturating top-bucket edges.

use proptest::prelude::*;
use std::time::Duration;
use uqsj_obs::metric::{bucket_of, bucket_upper_edge, HISTOGRAM_BUCKETS};
use uqsj_obs::Histogram;

/// Exact quantile from a sorted sample vector: the value at rank
/// `ceil(q * n)` (1-based), the same rank definition the histogram uses.
fn oracle_quantile(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty());
    let rank = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// A mixed-magnitude value strategy: sub-microsecond zeros, small,
/// medium, and huge values that hit the saturating top buckets.
fn values() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(
        prop_oneof![
            Just(0u64),
            1u64..16,
            16u64..100_000,
            1_000_000u64..4_000_000_000,
            Just(u64::MAX - 1),
            Just(u64::MAX),
        ],
        1..200,
    )
}

proptest! {
    #[test]
    fn durations_land_in_their_bucket(us in values()) {
        let h = Histogram::new();
        for &v in &us {
            h.observe_duration(Duration::from_micros(v));
        }
        let buckets = h.buckets();
        // Per-value: the bucket holding v covers [2^i, 2^(i+1)), with
        // bucket 0 absorbing 0 and bucket 63 ending at u64::MAX.
        for &v in &us {
            let i = bucket_of(v);
            prop_assert!(buckets[i] > 0, "value {v} has empty bucket {i}");
            let lo = if i == 0 { 0 } else { 1u64 << i };
            prop_assert!(v >= lo, "value {v} below bucket {i} lower edge {lo}");
            prop_assert!(v <= bucket_upper_edge(i).saturating_sub(0), "value {v} above bucket {i}");
            if i + 1 < 64 {
                prop_assert!(v < bucket_upper_edge(i));
            }
        }
        // Per-bucket: the recount matches.
        for (i, &count) in buckets.iter().enumerate().take(HISTOGRAM_BUCKETS) {
            let expected = us.iter().filter(|&&v| bucket_of(v) == i).count() as u64;
            prop_assert_eq!(count, expected, "bucket {} count", i);
        }
        prop_assert_eq!(h.count(), us.len() as u64);
    }

    #[test]
    fn quantiles_within_one_bucket_of_oracle(us in values()) {
        let h = Histogram::new();
        let mut sorted = us.clone();
        sorted.sort_unstable();
        for &v in &us {
            h.observe(v);
        }
        for q in [0.50, 0.99] {
            let exact = oracle_quantile(&sorted, q);
            let est = h.quantile(q);
            // The estimate is the upper edge of the bucket containing the
            // exact ranked sample: never below it, and no more than one
            // power of two above it.
            prop_assert!(est >= exact, "q={q}: estimate {est} < exact {exact}");
            let exact_bucket = bucket_of(exact);
            prop_assert_eq!(
                est,
                bucket_upper_edge(exact_bucket),
                "q={} estimate is not the exact value's bucket edge", q
            );
        }
    }
}

#[test]
fn sub_microsecond_and_saturating_edges() {
    let h = Histogram::new();
    h.observe_duration(Duration::from_nanos(1)); // rounds to 0 µs → bucket 0
    h.observe_duration(Duration::from_nanos(999)); // still bucket 0
    assert_eq!(h.buckets()[0], 2);
    assert_eq!(h.quantile(0.99), 2); // upper edge of bucket 0

    let h = Histogram::new();
    h.observe_duration(Duration::MAX); // micros >> u64::MAX → clamps, bucket 63
    assert_eq!(h.buckets()[63], 1);
    assert_eq!(h.quantile(0.5), u64::MAX);
}
