//! Concurrency test for [`Registry`]'s double-checked get-or-register
//! path: many threads racing to register the same keys must converge on
//! one entry per key, all sharing one underlying handle.

use std::sync::{Arc, Barrier};
use std::thread;
use uqsj_obs::Registry;

const THREADS: usize = 8;
const KEYS: usize = 16;
const NAMES: [&str; KEYS] = [
    "c_00", "c_01", "c_02", "c_03", "c_04", "c_05", "c_06", "c_07", "c_08", "c_09", "c_10", "c_11",
    "c_12", "c_13", "c_14", "c_15",
];

/// N threads concurrently `get_or_register` the same counter names and
/// increment each once: afterwards there is exactly one entry per key and
/// every counter read THREADS increments — proving the racing threads all
/// received the same handle, not per-thread clones of distinct entries.
#[test]
fn concurrent_get_or_register_yields_one_entry_per_key() {
    let registry = Arc::new(Registry::new());
    let barrier = Arc::new(Barrier::new(THREADS));

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let registry = Arc::clone(&registry);
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                barrier.wait();
                for i in 0..KEYS {
                    // Offset the iteration order per thread so threads
                    // collide on different keys at the same instant.
                    let name = NAMES[(i + t) % KEYS];
                    registry.counter(name, "race test").inc();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("worker panicked");
    }

    let mut names = registry.metric_names();
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), KEYS, "duplicate or missing entries: {names:?}");
    for name in NAMES {
        assert!(names.contains(&name), "{name} missing from {names:?}");
        assert_eq!(
            registry.counter(name, "race test").value(),
            THREADS as u64,
            "{name} lost increments — racing threads got distinct handles"
        );
    }
}

/// Snapshots taken while writers are still racing are internally
/// consistent: every line of the Prometheus rendering is well-formed and
/// no key appears twice, at every point in time.
#[test]
fn snapshot_is_consistent_during_races() {
    let registry = Arc::new(Registry::new());
    let barrier = Arc::new(Barrier::new(THREADS + 1));

    let writers: Vec<_> = (0..THREADS)
        .map(|t| {
            let registry = Arc::clone(&registry);
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                barrier.wait();
                for round in 0..50 {
                    let name = NAMES[(round + t) % KEYS];
                    registry.counter(name, "race test").add(1);
                }
            })
        })
        .collect();

    barrier.wait();
    for _ in 0..20 {
        let rendered = registry.render_prometheus();
        let mut seen = Vec::new();
        for line in rendered.lines().filter(|l| !l.starts_with('#') && !l.is_empty()) {
            let (name, value) =
                line.split_once(' ').unwrap_or_else(|| panic!("malformed line {line:?}"));
            assert!(!seen.contains(&name.to_owned()), "{name} rendered twice:\n{rendered}");
            seen.push(name.to_owned());
            value.parse::<u64>().unwrap_or_else(|_| panic!("non-numeric value in {line:?}"));
        }
        let json = registry.snapshot_json();
        let trimmed = json.trim();
        assert!(trimmed.starts_with('{') && trimmed.ends_with('}'), "mangled JSON: {json}");
    }
    for h in writers {
        h.join().expect("writer panicked");
    }

    // Total over all counters equals the writes performed.
    let total: u64 = (0..KEYS).map(|i| registry.counter(NAMES[i], "race test").value()).sum();
    assert_eq!(total, (THREADS * 50) as u64);
}
