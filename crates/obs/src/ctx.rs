//! Request-scoped context: a cheap copyable [`RequestCtx`] installed on
//! the current thread for the duration of one request, carrying the
//! trace id, the request deadline, and whether the caller asked for an
//! EXPLAIN report.
//!
//! The context rides a scoped thread-local: [`install`] returns a guard
//! that restores the previous context on drop, so nested installs (a
//! batch worker serving a sub-request inside a request) compose, and a
//! panic unwinding through the guard still restores the outer context.
//! [`trace_id`] is the hot-path read — one thread-local `Cell` load —
//! used by `trace::span` to stamp every [`crate::TraceEvent`] and by the
//! histogram exemplar path.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A request trace id: a nonzero `u64`, displayed as 16 lowercase hex
/// digits (`0` is reserved for "no request context").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TraceId(pub u64);

impl TraceId {
    /// A fresh, effectively unique id: a splitmix64-style mix of a
    /// process-wide counter, the current time, and the thread, so ids
    /// from concurrent requests and across restarts do not collide in
    /// practice. Never zero.
    pub fn generate() -> Self {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let count = COUNTER.fetch_add(1, Ordering::Relaxed);
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        let mut z = nanos ^ count.rotate_left(32) ^ (crate::trace::current_tid() << 17);
        // splitmix64 finalizer: avalanche every input bit.
        z = z.wrapping_add(0x9e3779b97f4a7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^= z >> 31;
        Self(z.max(1))
    }

    /// Map an arbitrary client-supplied id string (an `X-Request-Id`
    /// header) onto a trace id: a 16-hex-digit string parses to its
    /// value; anything else hashes (FNV-1a) so any stable client id maps
    /// to a stable trace id. Never zero.
    pub fn from_client(s: &str) -> Self {
        let t = s.trim();
        if t.len() == 16 && t.bytes().all(|b| b.is_ascii_hexdigit()) {
            if let Ok(v) = u64::from_str_radix(t, 16) {
                return Self(v.max(1));
            }
        }
        let mut h: u64 = 0xcbf29ce484222325;
        for &b in t.as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
        Self(h.max(1))
    }
}

impl std::fmt::Display for TraceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Per-request context, cheap to copy across worker threads.
#[derive(Clone, Copy, Debug)]
pub struct RequestCtx {
    /// The request's trace id, stamped on every span recorded while the
    /// context is installed.
    pub trace_id: TraceId,
    /// The request's drop-dead instant, if it has one. Carried here so
    /// deep stages can check the budget without threading a parameter.
    pub deadline: Option<Instant>,
    /// Did the caller ask for a structured EXPLAIN report?
    pub explain: bool,
}

impl RequestCtx {
    /// A context with a freshly generated trace id, no deadline, and no
    /// explain request.
    pub fn new() -> Self {
        Self { trace_id: TraceId::generate(), deadline: None, explain: false }
    }

    /// A context carrying a specific trace id — e.g. one accepted from a
    /// client's `X-Request-Id` header.
    pub fn with_trace_id(trace_id: TraceId) -> Self {
        Self { trace_id, deadline: None, explain: false }
    }

    /// The same context with `explain` set.
    pub fn with_explain(mut self, explain: bool) -> Self {
        self.explain = explain;
        self
    }

    /// The same context with a deadline.
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

impl Default for RequestCtx {
    fn default() -> Self {
        Self::new()
    }
}

std::thread_local! {
    static CURRENT: Cell<Option<RequestCtx>> = const { Cell::new(None) };
}

/// Install `ctx` on this thread until the returned guard drops; the
/// previously installed context (if any) is restored then.
#[must_use = "the context is uninstalled when the guard drops"]
pub fn install(ctx: RequestCtx) -> CtxGuard {
    let previous = CURRENT.with(|c| c.replace(Some(ctx)));
    CtxGuard { previous }
}

/// The context currently installed on this thread.
pub fn current() -> Option<RequestCtx> {
    CURRENT.with(Cell::get)
}

/// The active trace id as a raw `u64`, or 0 with no context installed —
/// the form the flight recorder and exemplar paths store.
#[inline]
pub fn trace_id() -> u64 {
    CURRENT.with(Cell::get).map_or(0, |c| c.trace_id.0)
}

/// Whether the active context asked for an EXPLAIN report.
#[inline]
pub fn explain_requested() -> bool {
    CURRENT.with(Cell::get).is_some_and(|c| c.explain)
}

/// Scope guard restoring the previously installed context on drop.
pub struct CtxGuard {
    previous: Option<RequestCtx>,
}

impl Drop for CtxGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(self.previous.take()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_scopes_and_nests() {
        assert!(current().is_none());
        let outer = RequestCtx::new().with_explain(true);
        {
            let _g = install(outer);
            assert_eq!(current().map(|c| c.trace_id), Some(outer.trace_id));
            assert!(explain_requested());
            let inner = RequestCtx::new();
            {
                let _g2 = install(inner);
                assert_eq!(current().map(|c| c.trace_id), Some(inner.trace_id));
                assert!(!explain_requested());
            }
            assert_eq!(current().map(|c| c.trace_id), Some(outer.trace_id));
        }
        assert!(current().is_none());
        assert_eq!(trace_id(), 0);
    }

    #[test]
    fn guard_restores_across_panic() {
        let result = std::panic::catch_unwind(|| {
            let _g = install(RequestCtx::new());
            panic!("boom");
        });
        assert!(result.is_err());
        assert!(current().is_none(), "unwinding must restore the outer (empty) context");
    }

    #[test]
    fn generated_ids_are_nonzero_and_distinct() {
        let a = TraceId::generate();
        let b = TraceId::generate();
        assert_ne!(a.0, 0);
        assert_ne!(a, b);
        assert_eq!(a.to_string().len(), 16);
    }

    #[test]
    fn client_ids_parse_hex_or_hash_stably() {
        let hex = TraceId::from_client("00000000deadbeef");
        assert_eq!(hex.0, 0xdeadbeef);
        // Round-trip: our own display form parses back to the same id.
        let id = TraceId::generate();
        assert_eq!(TraceId::from_client(&id.to_string()), id);
        // Arbitrary strings hash deterministically and never to zero.
        let a = TraceId::from_client("client-req-1234");
        let b = TraceId::from_client("client-req-1234");
        assert_eq!(a, b);
        assert_ne!(a.0, 0);
        assert_ne!(TraceId::from_client("").0, 0);
    }
}
