//! The three metric primitives: sharded counters, gauges, and the
//! power-of-two-bucket histogram (generalized from the fixed 30-bucket
//! latency histogram that used to live in `uqsj-serve`).
//!
//! All handles are cheap `Arc` clones over atomic state, so the hot path
//! never takes a lock: a counter increment is one relaxed atomic add on a
//! thread-striped cell, a histogram observation is three.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// Number of counter stripes. Threads hash onto stripes by a per-thread
/// id, so concurrent increments of one hot counter (the parallel join
/// driver, the serve thread pool) don't all bounce one cache line.
const STRIPES: usize = 8;

/// Number of histogram buckets: bucket `i` holds values in
/// `[2^i, 2^(i+1))`, bucket 0 additionally absorbs zero. 64 buckets cover
/// the full `u64` range, so nothing is ever dropped — the top bucket
/// saturates instead.
pub const HISTOGRAM_BUCKETS: usize = 64;

std::thread_local! {
    static STRIPE: usize = next_stripe();
}

fn next_stripe() -> usize {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    NEXT.fetch_add(1, Ordering::Relaxed) as usize % STRIPES
}

/// One cache line per stripe; the padding keeps neighbouring stripes from
/// sharing a line.
#[repr(align(64))]
#[derive(Default)]
struct Stripe(AtomicU64);

/// A monotonically increasing counter. Clones share the same value.
#[derive(Clone, Default)]
pub struct Counter {
    stripes: Arc<[Stripe; STRIPES]>,
}

impl Counter {
    /// A fresh zeroed counter (normally obtained from a registry).
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        let s = STRIPE.with(|s| *s);
        self.stripes[s].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value (sum over stripes).
    pub fn value(&self) -> u64 {
        self.stripes.iter().map(|s| s.0.load(Ordering::Relaxed)).sum()
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Counter").field(&self.value()).finish()
    }
}

/// A value that can go up and down (or track a maximum).
#[derive(Clone, Default)]
pub struct Gauge {
    value: Arc<AtomicI64>,
}

impl Gauge {
    /// A fresh zeroed gauge (normally obtained from a registry).
    pub fn new() -> Self {
        Self::default()
    }

    /// Replace the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Add a (possibly negative) delta.
    #[inline]
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Raise the gauge to `v` if it is below it (high-water marks).
    #[inline]
    pub fn record_max(&self, v: i64) {
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn value(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Gauge").field(&self.value()).finish()
    }
}

/// One per-bucket exemplar: the largest recent observation that carried
/// a request trace id. `trace_id == 0` means the slot is empty.
#[derive(Default)]
struct ExemplarSlot {
    value: AtomicU64,
    trace_id: AtomicU64,
}

/// A captured exemplar for one bucket.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Exemplar {
    /// Bucket index (see [`bucket_upper_edge`]).
    pub bucket: usize,
    /// The observed value.
    pub value: u64,
    /// The request trace id active when the value was observed.
    pub trace_id: u64,
}

struct HistogramInner {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    /// Present only after [`Histogram::enable_exemplars`]: the default
    /// observe path pays a single `OnceLock` load for the feature.
    exemplars: OnceLock<Box<[ExemplarSlot; HISTOGRAM_BUCKETS]>>,
}

impl Default for HistogramInner {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            exemplars: OnceLock::new(),
        }
    }
}

/// A power-of-two-bucket histogram over `u64` values.
///
/// Durations are recorded in microseconds via
/// [`Histogram::observe_duration`]; sub-microsecond samples land in
/// bucket 0 and the top bucket saturates, so every observation is
/// counted. Quantile estimates return the upper edge of the bucket
/// containing the ranked sample — an upper bound tight to a factor of 2.
#[derive(Clone, Default)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

/// Bucket index of `v`: `floor(log2(max(v, 1)))`.
#[inline]
pub fn bucket_of(v: u64) -> usize {
    (63 - v.max(1).leading_zeros()) as usize
}

/// Upper edge of bucket `i` (`2^(i+1)`), saturating at `u64::MAX`.
#[inline]
pub fn bucket_upper_edge(i: usize) -> u64 {
    if i + 1 >= 64 {
        u64::MAX
    } else {
        1u64 << (i + 1)
    }
}

impl Histogram {
    /// A fresh empty histogram (normally obtained from a registry).
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one value.
    #[inline]
    pub fn observe(&self, v: u64) {
        let inner = &*self.inner;
        let bucket = bucket_of(v);
        inner.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
        inner.sum.fetch_add(v, Ordering::Relaxed);
        if let Some(slots) = inner.exemplars.get() {
            if !crate::trace::enabled() {
                return;
            }
            let trace_id = crate::ctx::trace_id();
            if trace_id != 0 {
                let slot = &slots[bucket];
                // Keep the worst recent observation per bucket. The two
                // stores are independent relaxed atomics, so a racing
                // smaller observation can briefly own the id — exemplars
                // are diagnostic pointers, not exact aggregates.
                if v >= slot.value.fetch_max(v, Ordering::Relaxed) {
                    slot.trace_id.store(trace_id, Ordering::Relaxed);
                }
            }
        }
    }

    /// Turn on per-bucket exemplar capture for this histogram (shared by
    /// every clone of the handle). Observations made under an installed
    /// request context ([`crate::ctx`]) retain the trace id of the worst
    /// recent value per bucket; without a context nothing is captured.
    pub fn enable_exemplars(&self) -> &Self {
        self.inner
            .exemplars
            .get_or_init(|| Box::new(std::array::from_fn(|_| ExemplarSlot::default())));
        self
    }

    /// Whether exemplar capture is enabled.
    pub fn exemplars_enabled(&self) -> bool {
        self.inner.exemplars.get().is_some()
    }

    /// The captured exemplars, one per non-empty bucket. Empty when
    /// exemplar capture is off or nothing was observed under a request
    /// context.
    pub fn exemplars(&self) -> Vec<Exemplar> {
        let Some(slots) = self.inner.exemplars.get() else {
            return Vec::new();
        };
        slots
            .iter()
            .enumerate()
            .filter_map(|(bucket, slot)| {
                let trace_id = slot.trace_id.load(Ordering::Relaxed);
                if trace_id == 0 {
                    return None;
                }
                Some(Exemplar { bucket, value: slot.value.load(Ordering::Relaxed), trace_id })
            })
            .collect()
    }

    /// Record one duration in microseconds.
    #[inline]
    pub fn observe_duration(&self, d: Duration) {
        self.observe(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded values (wrapping on overflow).
    pub fn sum(&self) -> u64 {
        self.inner.sum.load(Ordering::Relaxed)
    }

    /// Copy out the per-bucket counts.
    pub fn buckets(&self) -> [u64; HISTOGRAM_BUCKETS] {
        std::array::from_fn(|i| self.inner.buckets[i].load(Ordering::Relaxed))
    }

    /// Upper edge of the bucket containing the `q`-th sample (`q` in
    /// `[0, 1]`); 0 when empty. An upper bound on the true quantile,
    /// tight to a factor of 2.
    pub fn quantile(&self, q: f64) -> u64 {
        quantile_of(&self.buckets(), q)
    }

    /// [`Histogram::quantile`] as a microsecond duration.
    pub fn quantile_duration(&self, q: f64) -> Duration {
        Duration::from_micros(self.quantile(q))
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram").field("count", &self.count()).field("sum", &self.sum()).finish()
    }
}

/// Quantile over a copied bucket array (shared with snapshot rendering).
pub fn quantile_of(buckets: &[u64; HISTOGRAM_BUCKETS], q: f64) -> u64 {
    let total: u64 = buckets.iter().sum();
    if total == 0 {
        return 0;
    }
    let rank = ((total as f64 * q).ceil() as u64).clamp(1, total);
    let mut seen = 0u64;
    for (i, &count) in buckets.iter().enumerate() {
        seen += count;
        if seen >= rank {
            return bucket_upper_edge(i);
        }
    }
    u64::MAX
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates_across_clones() {
        let c = Counter::new();
        let c2 = c.clone();
        c.inc();
        c2.add(4);
        assert_eq!(c.value(), 5);
    }

    #[test]
    fn gauge_set_add_max() {
        let g = Gauge::new();
        g.set(10);
        g.add(-3);
        assert_eq!(g.value(), 7);
        g.record_max(5);
        assert_eq!(g.value(), 7);
        g.record_max(9);
        assert_eq!(g.value(), 9);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0);
        for _ in 0..98 {
            h.observe(10); // bucket 3: [8, 16)
        }
        h.observe(50_000);
        h.observe(50_000);
        assert_eq!(h.count(), 100);
        assert_eq!(h.quantile(0.50), 16);
        assert!(h.quantile(0.99) > 32_768);
    }

    #[test]
    fn exemplars_capture_worst_per_bucket_under_ctx() {
        // Serialize with tests that flip the process-wide tracing switch.
        let _serial = crate::trace::test_guard();
        let h = Histogram::new();
        h.observe(100); // capture off: nothing retained
        assert!(h.exemplars().is_empty());
        h.enable_exemplars();
        h.observe(100); // no request context: still nothing
        assert!(h.exemplars().is_empty());
        let ctx = crate::ctx::RequestCtx::new();
        let other = crate::ctx::RequestCtx::new();
        {
            let _g = crate::ctx::install(ctx);
            h.observe(100);
            h.observe(120); // same bucket [64,128): replaces the exemplar
        }
        {
            let _g = crate::ctx::install(other);
            h.observe(110); // smaller than 120: bucket exemplar unchanged
            h.observe(5000); // a different bucket gains its own exemplar
        }
        let exemplars = h.exemplars();
        assert_eq!(exemplars.len(), 2);
        let low = exemplars.iter().find(|e| e.bucket == bucket_of(120)).expect("low bucket");
        assert_eq!(low.value, 120);
        assert_eq!(low.trace_id, ctx.trace_id.0);
        let high = exemplars.iter().find(|e| e.bucket == bucket_of(5000)).expect("high bucket");
        assert_eq!(high.value, 5000);
        assert_eq!(high.trace_id, other.trace_id.0);
    }

    #[test]
    fn histogram_edges() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(u64::MAX), 63);
        assert_eq!(bucket_upper_edge(63), u64::MAX);
        let h = Histogram::new();
        h.observe(u64::MAX);
        assert_eq!(h.quantile(1.0), u64::MAX);
    }
}
