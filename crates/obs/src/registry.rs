//! The metrics registry: named counters/gauges/histograms with
//! Prometheus-style text exposition and a JSON snapshot export.
//!
//! A process-global registry ([`global`]) backs the pipeline
//! instrumentation (join stages, GED engine, world verification,
//! storage); subsystems that need isolated counters per instance — the
//! serving layer's `ServeMetrics`-style per-server counters, unit
//! tests — construct their own [`Registry`].
//!
//! Registration is idempotent: asking for the same name + label set again
//! returns a handle to the same underlying metric, so instrumentation
//! sites can be initialized lazily from several places without
//! double-counting. Registering the same name with a different *kind* is
//! a programming error and panics.

use crate::metric::{bucket_upper_edge, quantile_of, Counter, Gauge, Histogram};
use std::collections::HashMap;
use std::sync::{OnceLock, RwLock};

/// Label pairs attached to a metric at registration time.
pub type Labels = &'static [(&'static str, &'static str)];

#[derive(Clone)]
enum Handle {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Handle {
    fn kind(&self) -> &'static str {
        match self {
            Handle::Counter(_) => "counter",
            Handle::Gauge(_) => "gauge",
            Handle::Histogram(_) => "histogram",
        }
    }
}

struct Entry {
    name: &'static str,
    labels: Labels,
    help: &'static str,
    handle: Handle,
}

#[derive(Default)]
struct Inner {
    entries: Vec<Entry>,
    /// `(name, rendered labels)` → index into `entries`.
    index: HashMap<(&'static str, String), usize>,
}

/// A set of named metrics; see the module docs.
#[derive(Default)]
pub struct Registry {
    // (Debug is implemented manually below: handles are atomics, so the
    // useful debug view is the list of registered names, not the guts.)
    inner: RwLock<Inner>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry").field("metrics", &self.metric_names()).finish()
    }
}

/// The process-global registry used by the pipeline instrumentation.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

fn render_labels(labels: Labels) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let body: Vec<String> =
        labels.iter().map(|(k, v)| format!("{k}=\"{}\"", escape_label(v))).collect();
    format!("{{{}}}", body.join(","))
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn get_or_insert(
        &self,
        name: &'static str,
        labels: Labels,
        help: &'static str,
        make: impl FnOnce() -> Handle,
    ) -> Handle {
        let key = (name, render_labels(labels));
        if let Some(&i) = self.inner.read().expect("registry lock").index.get(&key) {
            return self.inner.read().expect("registry lock").entries[i].handle.clone();
        }
        let mut inner = self.inner.write().expect("registry lock");
        if let Some(&i) = inner.index.get(&key) {
            return inner.entries[i].handle.clone();
        }
        let handle = make();
        // Same name must keep one kind across all label sets — mixed
        // kinds cannot be exposed under one metric family.
        if let Some(prev) = inner.entries.iter().find(|e| e.name == name) {
            assert_eq!(
                prev.handle.kind(),
                handle.kind(),
                "metric {name} registered as both {} and {}",
                prev.handle.kind(),
                handle.kind()
            );
        }
        inner.entries.push(Entry { name, labels, help, handle: handle.clone() });
        let i = inner.entries.len() - 1;
        inner.index.insert(key, i);
        handle
    }

    /// Get or register a counter.
    pub fn counter(&self, name: &'static str, help: &'static str) -> Counter {
        self.counter_with(name, &[], help)
    }

    /// Get or register a counter with labels.
    pub fn counter_with(&self, name: &'static str, labels: Labels, help: &'static str) -> Counter {
        match self.get_or_insert(name, labels, help, || Handle::Counter(Counter::new())) {
            Handle::Counter(c) => c,
            other => panic!("metric {name} already registered as a {}", other.kind()),
        }
    }

    /// Get or register a gauge.
    pub fn gauge(&self, name: &'static str, help: &'static str) -> Gauge {
        self.gauge_with(name, &[], help)
    }

    /// Get or register a gauge with labels.
    pub fn gauge_with(&self, name: &'static str, labels: Labels, help: &'static str) -> Gauge {
        match self.get_or_insert(name, labels, help, || Handle::Gauge(Gauge::new())) {
            Handle::Gauge(g) => g,
            other => panic!("metric {name} already registered as a {}", other.kind()),
        }
    }

    /// Get or register a histogram.
    pub fn histogram(&self, name: &'static str, help: &'static str) -> Histogram {
        self.histogram_with(name, &[], help)
    }

    /// Get or register a histogram with labels.
    pub fn histogram_with(
        &self,
        name: &'static str,
        labels: Labels,
        help: &'static str,
    ) -> Histogram {
        match self.get_or_insert(name, labels, help, || Handle::Histogram(Histogram::new())) {
            Handle::Histogram(h) => h,
            other => panic!("metric {name} already registered as a {}", other.kind()),
        }
    }

    /// Distinct metric family names, in registration order — the set the
    /// CI golden-name check validates.
    pub fn metric_names(&self) -> Vec<&'static str> {
        let inner = self.inner.read().expect("registry lock");
        let mut names = Vec::new();
        for e in &inner.entries {
            if !names.contains(&e.name) {
                names.push(e.name);
            }
        }
        names
    }

    /// Prometheus text exposition of every registered metric. Histograms
    /// render cumulative `_bucket{le=...}` series (empty buckets elided,
    /// `+Inf` always present) plus `_sum` and `_count`.
    pub fn render_prometheus(&self) -> String {
        let inner = self.inner.read().expect("registry lock");
        let mut out = String::new();
        let mut seen: Vec<&str> = Vec::new();
        for e in &inner.entries {
            if seen.contains(&e.name) {
                continue;
            }
            seen.push(e.name);
            out.push_str(&format!("# HELP {} {}\n", e.name, e.help));
            out.push_str(&format!("# TYPE {} {}\n", e.name, e.handle.kind()));
            for f in inner.entries.iter().filter(|f| f.name == e.name) {
                let labels = render_labels(f.labels);
                match &f.handle {
                    Handle::Counter(c) => {
                        out.push_str(&format!("{}{} {}\n", f.name, labels, c.value()));
                    }
                    Handle::Gauge(g) => {
                        out.push_str(&format!("{}{} {}\n", f.name, labels, g.value()));
                    }
                    Handle::Histogram(h) => {
                        let buckets = h.buckets();
                        let mut cumulative = 0u64;
                        for (i, &count) in buckets.iter().enumerate() {
                            if count == 0 {
                                continue;
                            }
                            cumulative += count;
                            let le = bucket_upper_edge(i);
                            out.push_str(&format!(
                                "{}_bucket{} {}\n",
                                f.name,
                                merge_le(f.labels, &le.to_string()),
                                cumulative
                            ));
                        }
                        out.push_str(&format!(
                            "{}_bucket{} {}\n",
                            f.name,
                            merge_le(f.labels, "+Inf"),
                            cumulative
                        ));
                        out.push_str(&format!("{}_sum{} {}\n", f.name, labels, h.sum()));
                        out.push_str(&format!("{}_count{} {}\n", f.name, labels, h.count()));
                    }
                }
            }
        }
        out
    }

    /// JSON snapshot of every registered metric: counters/gauges with
    /// their value, histograms with count, sum, p50/p99 estimates, and
    /// the non-empty `[upper_edge, count]` buckets. Histograms with
    /// exemplar capture enabled additionally expose
    /// `"exemplars": [[upper_edge, value, "trace_id"], ...]` — the trace
    /// id of the worst recent observation per bucket.
    pub fn snapshot_json(&self) -> String {
        let inner = self.inner.read().expect("registry lock");
        let mut items = Vec::new();
        for e in &inner.entries {
            let labels: Vec<String> =
                e.labels.iter().map(|(k, v)| format!("\"{k}\":\"{}\"", escape_label(v))).collect();
            let labels = format!("{{{}}}", labels.join(","));
            let body = match &e.handle {
                Handle::Counter(c) => format!("\"kind\":\"counter\",\"value\":{}", c.value()),
                Handle::Gauge(g) => format!("\"kind\":\"gauge\",\"value\":{}", g.value()),
                Handle::Histogram(h) => {
                    let buckets = h.buckets();
                    let pairs: Vec<String> = buckets
                        .iter()
                        .enumerate()
                        .filter(|(_, &c)| c > 0)
                        .map(|(i, &c)| format!("[{},{}]", bucket_upper_edge(i), c))
                        .collect();
                    let mut body = format!(
                        "\"kind\":\"histogram\",\"count\":{},\"sum\":{},\"p50\":{},\"p99\":{},\
                         \"buckets\":[{}]",
                        h.count(),
                        h.sum(),
                        quantile_of(&buckets, 0.50),
                        quantile_of(&buckets, 0.99),
                        pairs.join(",")
                    );
                    if h.exemplars_enabled() {
                        let exemplars: Vec<String> = h
                            .exemplars()
                            .iter()
                            .map(|x| {
                                format!(
                                    "[{},{},\"{:016x}\"]",
                                    bucket_upper_edge(x.bucket),
                                    x.value,
                                    x.trace_id
                                )
                            })
                            .collect();
                        body.push_str(&format!(",\"exemplars\":[{}]", exemplars.join(",")));
                    }
                    body
                }
            };
            items.push(format!("{{\"name\":\"{}\",\"labels\":{labels},{body}}}", e.name));
        }
        format!("{{\"metrics\":[\n{}\n]}}\n", items.join(",\n"))
    }
}

/// Labels plus the `le` bucket label, rendered.
fn merge_le(labels: Labels, le: &str) -> String {
    let mut body: Vec<String> =
        labels.iter().map(|(k, v)| format!("{k}=\"{}\"", escape_label(v))).collect();
    body.push(format!("le=\"{le}\""));
    format!("{{{}}}", body.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent() {
        let r = Registry::new();
        let a = r.counter("test_total", "a test counter");
        let b = r.counter("test_total", "a test counter");
        a.inc();
        b.inc();
        assert_eq!(a.value(), 2);
        assert_eq!(r.metric_names(), vec!["test_total"]);
    }

    #[test]
    fn labeled_series_share_a_family() {
        let r = Registry::new();
        let a = r.counter_with("stage_total", &[("stage", "css")], "per-stage");
        let b = r.counter_with("stage_total", &[("stage", "markov")], "per-stage");
        a.add(2);
        b.add(3);
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE stage_total counter"));
        assert!(text.contains("stage_total{stage=\"css\"} 2"));
        assert!(text.contains("stage_total{stage=\"markov\"} 3"));
        assert_eq!(text.matches("# TYPE stage_total").count(), 1);
    }

    #[test]
    fn histogram_exposition_is_cumulative() {
        let r = Registry::new();
        let h = r.histogram("lat_us", "latency");
        h.observe(1);
        h.observe(1);
        h.observe(10);
        let text = r.render_prometheus();
        assert!(text.contains("lat_us_bucket{le=\"2\"} 2"));
        assert!(text.contains("lat_us_bucket{le=\"16\"} 3"));
        assert!(text.contains("lat_us_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("lat_us_count 3"));
        assert!(text.contains("lat_us_sum 12"));
    }

    #[test]
    fn json_snapshot_is_parseable_shape() {
        let r = Registry::new();
        r.counter("c_total", "c").add(7);
        let h = r.histogram("h_us", "h");
        h.observe(100);
        let json = r.snapshot_json();
        assert!(json.contains("\"name\":\"c_total\""));
        assert!(json.contains("\"value\":7"));
        assert!(json.contains("\"kind\":\"histogram\""));
        assert!(json.contains("\"count\":1"));
    }

    #[test]
    fn snapshot_exposes_exemplars_when_enabled() {
        // Serialize with tests that flip the process-wide tracing switch.
        let _serial = crate::trace::test_guard();
        let r = Registry::new();
        let h = r.histogram("ex_us", "exemplar-enabled latency");
        h.enable_exemplars();
        let ctx = crate::ctx::RequestCtx::new();
        {
            let _g = crate::ctx::install(ctx);
            h.observe(100);
        }
        let json = r.snapshot_json();
        let expected = format!("\"exemplars\":[[128,100,\"{:016x}\"]]", ctx.trace_id.0);
        assert!(json.contains(&expected), "{json}");
        // A histogram without exemplars enabled omits the key entirely.
        let plain = Registry::new();
        plain.histogram("plain_us", "no exemplars").observe(5);
        assert!(!plain.snapshot_json().contains("exemplars"));
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("oops", "first");
        r.gauge("oops", "second");
    }
}
