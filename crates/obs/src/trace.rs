//! Lightweight span tracing with a ring-buffer flight recorder.
//!
//! A [`span`] guard records a named interval on a thread-local stack:
//! entry takes a monotonic timestamp, drop computes the duration and
//! pushes one [`TraceEvent`] into the global recorder ring. The ring
//! holds the most recent [`FlightRecorder::capacity`] events — a flight
//! recorder, not a full trace — and can be dumped on demand as JSON lines
//! or as a Chrome-trace (`chrome://tracing`, Perfetto) document, or
//! automatically on panic via [`install_panic_dump`].
//!
//! Timestamps are microsecond offsets from the first use of the module
//! (a process-local monotonic epoch), so dumps need no wall clock.

use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Default ring capacity.
const DEFAULT_CAPACITY: usize = 4096;

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Microseconds since the process-local trace epoch.
pub fn now_us() -> u64 {
    epoch().elapsed().as_micros().min(u64::MAX as u128) as u64
}

std::thread_local! {
    static TID: u64 = next_tid();
    static DEPTH: Cell<u32> = const { Cell::new(0) };
}

fn next_tid() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// One completed span.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Static span name.
    pub name: &'static str,
    /// Start offset from the trace epoch, microseconds.
    pub start_us: u64,
    /// Span duration, microseconds.
    pub dur_us: u64,
    /// Small per-thread id (order of first trace use, not the OS tid).
    pub tid: u64,
    /// Nesting depth at entry (0 = top-level span on its thread).
    pub depth: u32,
}

/// An in-flight span; completing (dropping) it records a [`TraceEvent`].
#[must_use = "a span records on drop; binding it to _ discards the measurement immediately"]
pub struct Span {
    name: &'static str,
    start: Instant,
    start_us: u64,
    depth: u32,
}

/// Open a span; the returned guard records it into the global flight
/// recorder when dropped.
pub fn span(name: &'static str) -> Span {
    let start = Instant::now();
    let start_us = now_us();
    let depth = DEPTH.with(|d| {
        let depth = d.get();
        d.set(depth + 1);
        depth
    });
    Span { name, start, start_us, depth }
}

impl Drop for Span {
    fn drop(&mut self) {
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        let event = TraceEvent {
            name: self.name,
            start_us: self.start_us,
            dur_us: self.start.elapsed().as_micros().min(u64::MAX as u128) as u64,
            tid: TID.with(|t| *t),
            depth: self.depth,
        };
        recorder().record(event);
    }
}

/// The global ring of recent [`TraceEvent`]s.
pub struct FlightRecorder {
    ring: Mutex<VecDeque<TraceEvent>>,
    capacity: usize,
}

/// The process-global flight recorder.
pub fn recorder() -> &'static FlightRecorder {
    static RECORDER: OnceLock<FlightRecorder> = OnceLock::new();
    RECORDER.get_or_init(|| FlightRecorder {
        ring: Mutex::new(VecDeque::with_capacity(DEFAULT_CAPACITY)),
        capacity: DEFAULT_CAPACITY,
    })
}

impl FlightRecorder {
    /// Maximum number of retained events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn record(&self, event: TraceEvent) {
        let mut ring = self.ring.lock().expect("recorder lock");
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(event);
    }

    /// Copy out the retained events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.ring.lock().expect("recorder lock").iter().cloned().collect()
    }

    /// Drop all retained events (test isolation).
    pub fn clear(&self) {
        self.ring.lock().expect("recorder lock").clear();
    }

    /// One JSON object per line, oldest first.
    pub fn to_json_lines(&self) -> String {
        let mut out = String::new();
        for e in self.events() {
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"start_us\":{},\"dur_us\":{},\"tid\":{},\"depth\":{}}}\n",
                e.name, e.start_us, e.dur_us, e.tid, e.depth
            ));
        }
        out
    }

    /// A Chrome-trace document (load in `chrome://tracing` or Perfetto).
    pub fn to_chrome_trace(&self) -> String {
        let events: Vec<String> = self
            .events()
            .iter()
            .map(|e| {
                format!(
                    "{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{}}}",
                    e.name, e.start_us, e.dur_us, e.tid
                )
            })
            .collect();
        format!("{{\"traceEvents\":[\n{}\n]}}\n", events.join(",\n"))
    }
}

/// Install a panic hook that dumps the flight recorder (JSON lines) to
/// `path` before the previous hook runs, so the last moments before a
/// crash are preserved. Call at most once per process.
pub fn install_panic_dump(path: std::path::PathBuf) {
    let previous = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let _ = std::fs::write(&path, recorder().to_json_lines());
        previous(info);
    }));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_and_nest() {
        recorder().clear();
        {
            let _outer = span("outer");
            let _inner = span("inner");
        }
        let events = recorder().events();
        // Inner drops first.
        let inner = events.iter().find(|e| e.name == "inner").expect("inner recorded");
        let outer = events.iter().find(|e| e.name == "outer").expect("outer recorded");
        assert_eq!(inner.depth, outer.depth + 1);
        assert!(outer.dur_us >= inner.dur_us);
        let jsonl = recorder().to_json_lines();
        assert!(jsonl.contains("\"name\":\"inner\""));
        let chrome = recorder().to_chrome_trace();
        assert!(chrome.starts_with("{\"traceEvents\":["));
        assert!(chrome.contains("\"ph\":\"X\""));
    }
}
