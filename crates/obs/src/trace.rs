//! Lightweight span tracing with a per-thread ring-buffer flight
//! recorder.
//!
//! A [`span`] guard records a named interval on a thread-local stack:
//! entry takes a monotonic timestamp, drop computes the duration and
//! pushes one [`TraceEvent`] into the recording thread's own ring. Each
//! thread writes a private fixed-size ring of atomic slots, so the
//! span-drop hot path takes **no lock** — readers (trace dumps, the
//! `/debug/trace` endpoint) snapshot every thread's ring through a
//! per-slot sequence validation and merge them by a global order stamp.
//! The recorder holds the most recent [`FlightRecorder::capacity`]
//! events *per thread* — a flight recorder, not a full trace — and can
//! be dumped on demand as JSON lines or as a Chrome-trace
//! (`chrome://tracing`, Perfetto) document, or automatically on panic
//! via [`install_panic_dump`].
//!
//! Every event is stamped with the request trace id active on its
//! thread at span entry (see [`crate::ctx`]); [`FlightRecorder::events_for`]
//! pulls one request's spans back out by that id.
//!
//! Timestamps are microsecond offsets from the first use of the module
//! (a process-local monotonic epoch), so dumps need no wall clock.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{fence, AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::Instant;

/// Default per-thread ring capacity.
const DEFAULT_CAPACITY: usize = 4096;

/// Process-wide tracing switch, on by default. When off, [`span`] guards
/// become no-ops (no clock reads, no ring writes) and histogram exemplar
/// capture is skipped — the lever the serve bench uses to measure
/// tracing overhead against a no-trace baseline.
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Turn span recording (and exemplar capture) on or off process-wide.
/// Spans already open keep the recording decision made at entry.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether span recording is currently enabled.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Microseconds since the process-local trace epoch.
pub fn now_us() -> u64 {
    epoch().elapsed().as_micros().min(u64::MAX as u128) as u64
}

std::thread_local! {
    static TID: u64 = next_tid();
    static DEPTH: Cell<u32> = const { Cell::new(0) };
    /// This thread's leased ring, registered with the global recorder on
    /// first span. The `Arc` in the recorder's registry keeps a ring
    /// readable after its thread exits; the lease's drop returns the
    /// ring to the recorder's free pool so short-lived threads (batch
    /// workers) reuse rings instead of growing the registry forever.
    static RING: RefCell<Option<RingLease>> = const { RefCell::new(None) };
    /// Span-name intern cache, keyed by the `&'static str` pointer so a
    /// hit is a short scan with no hashing and no lock.
    static NAME_CACHE: RefCell<Vec<(*const u8, usize, u32)>> = const { RefCell::new(Vec::new()) };
}

fn next_tid() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// This thread's small trace id (order of first trace use, not the OS
/// tid) — shared with `ctx` for trace-id generation entropy.
pub(crate) fn current_tid() -> u64 {
    TID.with(|t| *t)
}

/// The global span-name intern table. Names are `&'static str` from call
/// sites, so the table is bounded by the set of distinct instrumentation
/// points, not by call volume. Rings store the `u32` id; dumps map back.
fn names() -> &'static RwLock<Vec<&'static str>> {
    static NAMES: OnceLock<RwLock<Vec<&'static str>>> = OnceLock::new();
    NAMES.get_or_init(|| RwLock::new(Vec::new()))
}

/// Intern `name`, hitting the thread-local pointer-keyed cache first so
/// the steady-state span path never takes the table lock.
fn intern_name(name: &'static str) -> u32 {
    let key = (name.as_ptr(), name.len());
    let cached = NAME_CACHE
        .with(|c| c.borrow().iter().find(|&&(p, l, _)| (p, l) == key).map(|&(_, _, id)| id));
    if let Some(id) = cached {
        return id;
    }
    let mut table = names().write().expect("name table lock");
    let id = match table.iter().position(|n| *n == name) {
        Some(i) => i as u32,
        None => {
            table.push(name);
            (table.len() - 1) as u32
        }
    };
    drop(table);
    NAME_CACHE.with(|c| c.borrow_mut().push((key.0, key.1, id)));
    id
}

fn name_of(id: u32) -> &'static str {
    names().read().expect("name table lock").get(id as usize).copied().unwrap_or("?")
}

/// One completed span.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Static span name.
    pub name: &'static str,
    /// Start offset from the trace epoch, microseconds.
    pub start_us: u64,
    /// Span duration, microseconds.
    pub dur_us: u64,
    /// Small per-thread id (order of first trace use, not the OS tid).
    pub tid: u64,
    /// Nesting depth at entry (0 = top-level span on its thread).
    pub depth: u32,
    /// The request trace id active at span entry (see [`crate::ctx`]);
    /// 0 when no request context was installed.
    pub trace_id: u64,
}

/// An in-flight span; completing (dropping) it records a [`TraceEvent`].
#[must_use = "a span records on drop; binding it to _ discards the measurement immediately"]
pub struct Span {
    name_id: u32,
    start: Instant,
    start_us: u64,
    depth: u32,
    trace_id: u64,
    /// Captured from the process switch at entry; a disabled span did
    /// not touch DEPTH and records nothing on drop.
    record: bool,
}

/// Open a span; the returned guard records it into the global flight
/// recorder when dropped. A no-op guard while tracing is disabled
/// ([`set_enabled`]).
pub fn span(name: &'static str) -> Span {
    if !enabled() {
        return Span {
            name_id: 0,
            start: Instant::now(),
            start_us: 0,
            depth: 0,
            trace_id: 0,
            record: false,
        };
    }
    let start = Instant::now();
    let start_us = now_us();
    let depth = DEPTH.with(|d| {
        let depth = d.get();
        d.set(depth + 1);
        depth
    });
    Span {
        name_id: intern_name(name),
        start,
        start_us,
        depth,
        trace_id: crate::ctx::trace_id(),
        record: true,
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.record {
            return;
        }
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        let dur_us = self.start.elapsed().as_micros().min(u64::MAX as u128) as u64;
        recorder().record(Raw {
            name_id: self.name_id,
            start_us: self.start_us,
            dur_us,
            tid: TID.with(|t| *t),
            depth: self.depth,
            trace_id: self.trace_id,
        });
    }
}

/// Field bundle handed from the span guard to the ring writer.
struct Raw {
    name_id: u32,
    start_us: u64,
    dur_us: u64,
    tid: u64,
    depth: u32,
    trace_id: u64,
}

/// One ring slot: all fields are plain atomics guarded by a per-slot
/// seqlock (`seq == 0` marks empty or mid-write; otherwise it is the
/// event's global order stamp).
#[derive(Default)]
struct Slot {
    seq: AtomicU64,
    name_id: AtomicU32,
    start_us: AtomicU64,
    dur_us: AtomicU64,
    tid: AtomicU64,
    depth: AtomicU32,
    trace_id: AtomicU64,
}

/// One thread's private ring. Only the owning thread writes; any thread
/// may read through the seqlock protocol.
struct ThreadRing {
    slots: Box<[Slot]>,
    /// Next write position (owner-only writes, monotonically increasing).
    head: AtomicUsize,
}

impl ThreadRing {
    fn new(capacity: usize) -> Self {
        Self {
            slots: (0..capacity.max(1)).map(|_| Slot::default()).collect(),
            head: AtomicUsize::new(0),
        }
    }

    /// Owner-only: publish one event with the given global stamp.
    fn push(&self, raw: Raw, stamp: u64) {
        let i = self.head.load(Ordering::Relaxed);
        self.head.store(i + 1, Ordering::Relaxed);
        let slot = &self.slots[i % self.slots.len()];
        // Seqlock write: invalidate, publish fields, then stamp. A reader
        // that observes any new field will also observe seq == 0 or the
        // new stamp on its validation load and discard the read.
        slot.seq.store(0, Ordering::Relaxed);
        fence(Ordering::Release);
        slot.name_id.store(raw.name_id, Ordering::Relaxed);
        slot.start_us.store(raw.start_us, Ordering::Relaxed);
        slot.dur_us.store(raw.dur_us, Ordering::Relaxed);
        slot.tid.store(raw.tid, Ordering::Relaxed);
        slot.depth.store(raw.depth, Ordering::Relaxed);
        slot.trace_id.store(raw.trace_id, Ordering::Relaxed);
        slot.seq.store(stamp, Ordering::Release);
    }

    /// Any thread: snapshot the consistent slots as `(stamp, event)`.
    fn snapshot(&self, floor: u64, out: &mut Vec<(u64, TraceEvent)>) {
        for slot in self.slots.iter() {
            let s1 = slot.seq.load(Ordering::Acquire);
            if s1 == 0 || s1 <= floor {
                continue;
            }
            let raw = Raw {
                name_id: slot.name_id.load(Ordering::Relaxed),
                start_us: slot.start_us.load(Ordering::Relaxed),
                dur_us: slot.dur_us.load(Ordering::Relaxed),
                tid: slot.tid.load(Ordering::Relaxed),
                depth: slot.depth.load(Ordering::Relaxed),
                trace_id: slot.trace_id.load(Ordering::Relaxed),
            };
            fence(Ordering::Acquire);
            let s2 = slot.seq.load(Ordering::Relaxed);
            if s1 != s2 {
                continue; // torn by a concurrent rewrite: skip the slot
            }
            out.push((
                s1,
                TraceEvent {
                    name: name_of(raw.name_id),
                    start_us: raw.start_us,
                    dur_us: raw.dur_us,
                    tid: raw.tid,
                    depth: raw.depth,
                    trace_id: raw.trace_id,
                },
            ));
        }
    }
}

/// Holds a thread's ring for its lifetime; dropping (thread exit)
/// returns the ring to the recorder's free pool for the next thread.
/// The ring stays in the registry throughout, so its events remain
/// readable until a later lease overwrites them.
struct RingLease {
    ring: Arc<ThreadRing>,
}

impl Drop for RingLease {
    fn drop(&mut self) {
        recorder().release(Arc::clone(&self.ring));
    }
}

/// The flight recorder: a registry of per-thread rings. The registry
/// mutex is taken on thread registration and on the read paths only —
/// never by the span-drop hot path, which writes the recording thread's
/// own ring lock-free. Rings are pooled: a thread leases one on its
/// first span and returns it at exit, so the registry is bounded by the
/// peak number of concurrently tracing threads, not by thread churn.
pub struct FlightRecorder {
    rings: Mutex<Vec<Arc<ThreadRing>>>,
    /// Rings whose owning thread has exited, ready for re-lease.
    free: Mutex<Vec<Arc<ThreadRing>>>,
    capacity: usize,
    /// Global order stamp; gives merged dumps a total order across rings.
    next_stamp: AtomicU64,
    /// Stamps at or below this watermark are logically cleared.
    cleared: AtomicU64,
}

/// The process-global flight recorder.
pub fn recorder() -> &'static FlightRecorder {
    static RECORDER: OnceLock<FlightRecorder> = OnceLock::new();
    RECORDER.get_or_init(|| FlightRecorder {
        rings: Mutex::new(Vec::new()),
        free: Mutex::new(Vec::new()),
        capacity: DEFAULT_CAPACITY,
        next_stamp: AtomicU64::new(0),
        cleared: AtomicU64::new(0),
    })
}

impl FlightRecorder {
    /// Maximum number of retained events per recording thread.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The calling thread's ring, leasing one on first use: a pooled
    /// ring from an exited thread when available, else a fresh ring
    /// registered with the recorder.
    fn thread_ring(&'static self) -> Arc<ThreadRing> {
        RING.with(|r| {
            let mut r = r.borrow_mut();
            if let Some(lease) = r.as_ref() {
                return Arc::clone(&lease.ring);
            }
            let pooled = self.free.lock().expect("recorder free-pool lock").pop();
            let ring = match pooled {
                Some(ring) => ring,
                None => {
                    let ring = Arc::new(ThreadRing::new(self.capacity));
                    self.rings.lock().expect("recorder registry lock").push(Arc::clone(&ring));
                    ring
                }
            };
            *r = Some(RingLease { ring: Arc::clone(&ring) });
            ring
        })
    }

    /// Return an exited thread's ring to the pool (lease drop).
    fn release(&self, ring: Arc<ThreadRing>) {
        self.free.lock().expect("recorder free-pool lock").push(ring);
    }

    /// How many rings the recorder has ever registered — bounded by the
    /// peak number of concurrently tracing threads thanks to pooling.
    pub fn ring_count(&self) -> usize {
        self.rings.lock().expect("recorder registry lock").len()
    }

    fn record(&'static self, raw: Raw) {
        let stamp = self.next_stamp.fetch_add(1, Ordering::Relaxed) + 1;
        self.thread_ring().push(raw, stamp);
    }

    /// Rings snapshotted and merged into `(stamp, event)` pairs, oldest
    /// first.
    fn merged(&self) -> Vec<(u64, TraceEvent)> {
        let floor = self.cleared.load(Ordering::Relaxed);
        let rings: Vec<Arc<ThreadRing>> =
            self.rings.lock().expect("recorder registry lock").iter().map(Arc::clone).collect();
        let mut out = Vec::new();
        for ring in rings {
            ring.snapshot(floor, &mut out);
        }
        out.sort_unstable_by_key(|(stamp, _)| *stamp);
        out
    }

    /// Copy out the retained events, oldest first (global order across
    /// all recording threads).
    pub fn events(&self) -> Vec<TraceEvent> {
        self.merged().into_iter().map(|(_, e)| e).collect()
    }

    /// The retained events recorded under the given request trace id,
    /// oldest first — the `/debug/trace?id=` lookup.
    pub fn events_for(&self, trace_id: u64) -> Vec<TraceEvent> {
        self.merged().into_iter().filter(|(_, e)| e.trace_id == trace_id).map(|(_, e)| e).collect()
    }

    /// Drop all retained events (test isolation). Events already being
    /// written concurrently may land after the clear.
    pub fn clear(&self) {
        self.cleared.store(self.next_stamp.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// One JSON object per line, oldest first. `trace_id` is included
    /// (as 16 hex digits) only on events recorded under a request
    /// context.
    pub fn to_json_lines(&self) -> String {
        let mut out = String::new();
        for e in self.events() {
            out.push_str("{\"name\":");
            crate::json::push_json_string(&mut out, e.name);
            out.push_str(&format!(
                ",\"start_us\":{},\"dur_us\":{},\"tid\":{},\"depth\":{}",
                e.start_us, e.dur_us, e.tid, e.depth
            ));
            if e.trace_id != 0 {
                out.push_str(&format!(",\"trace_id\":\"{:016x}\"", e.trace_id));
            }
            out.push_str("}\n");
        }
        out
    }

    /// A Chrome-trace document (load in `chrome://tracing` or Perfetto).
    pub fn to_chrome_trace(&self) -> String {
        let events: Vec<String> = self
            .events()
            .iter()
            .map(|e| {
                let mut line = String::from("{\"name\":");
                crate::json::push_json_string(&mut line, e.name);
                line.push_str(&format!(
                    ",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{}",
                    e.start_us, e.dur_us, e.tid
                ));
                if e.trace_id != 0 {
                    line.push_str(&format!(",\"args\":{{\"trace_id\":\"{:016x}\"}}", e.trace_id));
                }
                line.push('}');
                line
            })
            .collect();
        format!("{{\"traceEvents\":[\n{}\n]}}\n", events.join(",\n"))
    }
}

/// Serializes tests touching process-global trace state (the [`enabled`]
/// switch, the recorder's clear watermark) across this crate's test
/// modules — a sibling test flipping the switch mid-assertion would
/// otherwise flake the exemplar tests.
#[cfg(test)]
pub(crate) fn test_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Install a panic hook that dumps the flight recorder (JSON lines) to
/// `path` before the previous hook runs, so the last moments before a
/// crash are preserved. Call at most once per process.
pub fn install_panic_dump(path: std::path::PathBuf) {
    let previous = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let _ = std::fs::write(&path, recorder().to_json_lines());
        previous(info);
    }));
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The recorder (and its clear watermark) is process-global, so the
    /// tests below serialize on the crate-wide [`test_guard`] — a
    /// concurrent `clear` or switch flip from a sibling test would
    /// otherwise drop events mid-assertion.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        test_guard()
    }

    #[test]
    fn spans_record_and_nest() {
        let _serial = serial();
        recorder().clear();
        {
            let _outer = span("outer");
            let _inner = span("inner");
        }
        let events = recorder().events();
        // Inner drops first.
        let inner = events.iter().find(|e| e.name == "inner").expect("inner recorded");
        let outer = events.iter().find(|e| e.name == "outer").expect("outer recorded");
        assert_eq!(inner.depth, outer.depth + 1);
        assert!(outer.dur_us >= inner.dur_us);
        assert_eq!(inner.trace_id, 0, "no request context installed");
        let jsonl = recorder().to_json_lines();
        assert!(jsonl.contains("\"name\":\"inner\""));
        let chrome = recorder().to_chrome_trace();
        assert!(chrome.starts_with("{\"traceEvents\":["));
        assert!(chrome.contains("\"ph\":\"X\""));
    }

    #[test]
    fn spans_carry_the_installed_trace_id() {
        let _serial = serial();
        let ctx = crate::ctx::RequestCtx::new();
        {
            let _g = crate::ctx::install(ctx);
            let _s = span("ctx_span");
        }
        let events = recorder().events_for(ctx.trace_id.0);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "ctx_span");
        // The id query is exact: a different id finds nothing of ours.
        assert!(recorder()
            .events_for(ctx.trace_id.0 ^ 1)
            .iter()
            .all(|e| e.name != "ctx_span" || e.trace_id != ctx.trace_id.0));
    }

    #[test]
    fn ring_overwrites_oldest_per_thread() {
        let _serial = serial();
        // Fill this thread's ring past capacity; the retained events for
        // a unique marker id must be the most recent ones.
        let ctx = crate::ctx::RequestCtx::new();
        let _g = crate::ctx::install(ctx);
        let extra = 32;
        for _ in 0..recorder().capacity() + extra {
            let _s = span("overflow");
        }
        let mine = recorder().events_for(ctx.trace_id.0);
        assert!(mine.len() <= recorder().capacity());
        assert!(mine.len() >= recorder().capacity() - 1, "ring retains ~capacity events");
    }

    #[test]
    fn depth_recovers_after_panic_inside_nested_spans() {
        let _serial = serial();
        // Unwinding runs the span guards' Drop impls, so DEPTH must come
        // back to its pre-panic value and subsequent spans record at the
        // right depth with a consistent recorder.
        let before = DEPTH.with(|d| d.get());
        let result = std::panic::catch_unwind(|| {
            let _outer = span("panic_outer");
            let _inner = span("panic_inner");
            panic!("unwind through nested spans");
        });
        assert!(result.is_err());
        assert_eq!(DEPTH.with(|d| d.get()), before, "DEPTH must be restored by unwinding");
        // Both spans were recorded on the way out, inner first.
        let events = recorder().events();
        let inner_pos = events.iter().rposition(|e| e.name == "panic_inner").expect("inner");
        let outer_pos = events.iter().rposition(|e| e.name == "panic_outer").expect("outer");
        assert!(inner_pos < outer_pos, "inner drops (records) before outer during unwind");
        assert_eq!(events[inner_pos].depth, events[outer_pos].depth + 1);
        // And the recorder still works normally afterwards.
        {
            let _s = span("after_panic");
        }
        assert!(recorder().events().iter().any(|e| e.name == "after_panic"));
        let top = recorder().events().into_iter().rev().find(|e| e.name == "after_panic").unwrap();
        assert_eq!(top.depth, before);
    }

    #[test]
    fn concurrent_threads_yield_disjoint_events_for_sets() {
        let _serial = serial();
        // N threads, each under its own request context, each recording
        // its own spans: `events_for(id)` must return exactly that
        // thread's events, with no bleed between ids.
        let n = 8;
        let per_thread = 25;
        let ids: Vec<u64> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..n)
                .map(|_| {
                    scope.spawn(move || {
                        let ctx = crate::ctx::RequestCtx::new();
                        let _g = crate::ctx::install(ctx);
                        for _ in 0..per_thread {
                            let _s = span("disjoint");
                        }
                        ctx.trace_id.0
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("trace thread")).collect()
        });
        for (i, &id) in ids.iter().enumerate() {
            let events = recorder().events_for(id);
            assert_eq!(events.len(), per_thread, "thread {i} events");
            assert!(events.iter().all(|e| e.trace_id == id));
            // Disjoint: one thread, one tid per id set.
            let tid = events[0].tid;
            assert!(events.iter().all(|e| e.tid == tid));
        }
        // Pairwise disjoint by construction of distinct generated ids.
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ids.len(), "generated ids must be distinct");
    }

    #[test]
    fn disabled_tracing_records_nothing_and_keeps_depth_balanced() {
        let _serial = serial();
        recorder().clear();
        let before = DEPTH.with(|d| d.get());
        set_enabled(false);
        {
            let _outer = span("disabled_outer");
            let _inner = span("disabled_inner");
            assert_eq!(DEPTH.with(|d| d.get()), before, "disabled spans must not touch DEPTH");
        }
        set_enabled(true);
        assert_eq!(DEPTH.with(|d| d.get()), before);
        assert!(recorder().events().iter().all(|e| !e.name.starts_with("disabled_")));
        // Back on: recording resumes.
        {
            let _s = span("reenabled");
        }
        assert!(recorder().events().iter().any(|e| e.name == "reenabled"));
    }

    #[test]
    fn thread_churn_reuses_pooled_rings() {
        let _serial = serial();
        // Warm this thread's ring, then measure registry growth across
        // many short-lived threads: each joins before the next spawns,
        // so its lease returns to the pool and the next thread reuses
        // it. Without pooling this grows the registry by one ring (and
        // one ring's worth of memory) per thread, forever.
        {
            let _s = span("churn_warm");
        }
        let before = recorder().ring_count();
        for _ in 0..32 {
            std::thread::spawn(|| {
                let _s = span("churn");
            })
            .join()
            .expect("churn thread");
        }
        let grown = recorder().ring_count() - before;
        assert!(grown <= 1, "sequential thread churn grew the registry by {grown} rings");
        // The pooled ring's events are still readable after reuse.
        assert!(recorder().events().iter().any(|e| e.name == "churn"));
    }

    #[test]
    fn clear_drops_retained_events() {
        let _serial = serial();
        let ctx = crate::ctx::RequestCtx::new();
        let _g = crate::ctx::install(ctx);
        {
            let _s = span("before_clear");
        }
        assert!(!recorder().events_for(ctx.trace_id.0).is_empty());
        recorder().clear();
        assert!(recorder().events_for(ctx.trace_id.0).is_empty());
        {
            let _s = span("after_clear");
        }
        let after = recorder().events_for(ctx.trace_id.0);
        assert_eq!(after.len(), 1);
        assert_eq!(after[0].name, "after_clear");
    }

    #[test]
    fn json_lines_escape_names() {
        let _serial = serial();
        // Span names are &'static str, but nothing stops a call site
        // from embedding quotes; the exporter must keep them inside the
        // string literal.
        recorder().clear();
        {
            let _s = span("quote\"in\\name");
        }
        let jsonl = recorder().to_json_lines();
        let line = jsonl.lines().find(|l| l.contains("quote")).expect("span line");
        assert!(line.contains("\"quote\\\"in\\\\name\""), "{line}");
        let chrome = recorder().to_chrome_trace();
        assert!(chrome.contains("\"quote\\\"in\\\\name\""), "{chrome}");
    }
}
