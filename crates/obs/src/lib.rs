//! `uqsj-obs` — the workspace's observability layer: a process-global
//! metrics registry, span tracing with a flight recorder, and structured
//! logging. Zero dependencies beyond the standard library; every hot-path
//! operation is a handful of relaxed atomics.
//!
//! The paper's efficiency figures (candidate ratio, per-stage pruning
//! power, pruning vs. refinement time — Figs. 11–15) are exactly what an
//! operator needs live, so the join cascade, the GED engine, world
//! verification, the storage engine, and the serving layer all report
//! through this crate. See DESIGN.md's "Observability" section for the
//! metric catalogue and how each paper figure maps to a metric name.
//!
//! * [`metric`] — [`Counter`] (thread-striped), [`Gauge`], and the
//!   power-of-two-bucket [`Histogram`] (generalized from the latency
//!   histogram that used to live in `uqsj-serve`), with opt-in
//!   per-bucket trace-id exemplars.
//! * [`registry`] — named metrics with Prometheus text exposition and a
//!   JSON snapshot export; [`global()`] is the process-wide instance,
//!   per-instance registries isolate subsystems and tests.
//! * [`ctx`] — the request context: a scoped [`RequestCtx`] carrying the
//!   trace id, deadline, and EXPLAIN flag through the serving pipeline.
//! * [`trace`] — `span("name")` guards feeding per-thread lock-free
//!   flight-recorder rings, dumpable as JSON lines / Chrome trace, on
//!   panic, or filtered by request via `events_for(trace_id)`.
//! * [`log`] — quiet-by-default single-line JSON records.
//! * [`json`] — the shared JSON string-escape helper every hand-rolled
//!   exporter in the workspace uses.

pub mod ctx;
pub mod json;
pub mod log;
pub mod metric;
pub mod registry;
pub mod trace;

pub use ctx::{CtxGuard, RequestCtx, TraceId};
pub use json::{json_string, push_json_string};
pub use metric::{Counter, Exemplar, Gauge, Histogram, HISTOGRAM_BUCKETS};
pub use registry::{global, Registry};
pub use trace::{span, FlightRecorder, Span, TraceEvent};

/// `num / den`, with a zero denominator mapping to `0.0` instead of NaN
/// or infinity. Every derived ratio the workspace reports (candidate
/// ratio, cache hit rate, result ratio) goes through this, so empty
/// registries and zero-traffic snapshots stay NaN-free.
#[inline]
pub fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn ratio_guards_zero_denominator() {
        assert_eq!(super::ratio(0, 0), 0.0);
        assert_eq!(super::ratio(5, 0), 0.0);
        assert_eq!(super::ratio(1, 4), 0.25);
        assert!(super::ratio(u64::MAX, 1).is_finite());
    }
}
