//! The one JSON string-escape routine shared by every hand-rolled JSON
//! producer in this crate (trace dumps, log records, metric snapshots).
//!
//! Span names used to be the only strings reaching the trace exports and
//! were `&'static str` by construction, so the exporters interpolated
//! them raw. Request-scoped tracing changes the threat model: trace ids
//! and explain payloads can carry client-influenced text, so everything
//! that lands inside a JSON string goes through here.

use std::fmt::Write as _;

/// Append `s` to `out` as a quoted JSON string, escaping quotes,
/// backslashes, and control characters.
pub fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// `s` as a quoted JSON string.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    push_json_string(&mut out, s);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_quotes_backslashes_and_controls() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b"), "\"a\\\"b\"");
        assert_eq!(json_string("a\\b"), "\"a\\\\b\"");
        assert_eq!(json_string("a\nb\tc\rd"), "\"a\\nb\\tc\\rd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
        // Non-ASCII passes through unescaped (valid JSON).
        assert_eq!(json_string("héllo"), "\"héllo\"");
    }

    #[test]
    fn breakout_attempts_stay_inside_the_string() {
        let hostile = "\",\"injected\":true,\"x\":\"";
        let escaped = json_string(hostile);
        // The only unescaped quotes are the delimiters.
        let unescaped_quotes =
            escaped.as_bytes().windows(2).filter(|w| w[1] == b'"' && w[0] != b'\\').count();
        assert_eq!(unescaped_quotes, 1, "{escaped}");
        assert!(escaped.starts_with('"') && escaped.ends_with('"'));
    }
}
