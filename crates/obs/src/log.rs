//! Quiet-by-default structured logging: one JSON object per line, sent to
//! a process-global sink. With no sink installed ([`enabled`] is false)
//! emission is a single relaxed atomic load — instrumentation sites can
//! stay in place permanently.

use std::io::Write;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

static ENABLED: AtomicBool = AtomicBool::new(false);

fn sink() -> &'static Mutex<Option<Box<dyn Write + Send>>> {
    static SINK: OnceLock<Mutex<Option<Box<dyn Write + Send>>>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(None))
}

/// Install (or, with `None`, remove) the global log sink.
pub fn set_sink(writer: Option<Box<dyn Write + Send>>) {
    let enabled = writer.is_some();
    *sink().lock().expect("log sink lock") = writer;
    ENABLED.store(enabled, Ordering::Release);
}

/// Whether a sink is installed. Callers may skip building records when
/// this is false; [`emit`] checks it again itself.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Acquire)
}

/// Write one line to the sink (a newline is appended). No-op without a
/// sink; write errors are swallowed — logging must never take down the
/// pipeline.
pub fn emit(line: &str) {
    if !enabled() {
        return;
    }
    if let Some(w) = sink().lock().expect("log sink lock").as_mut() {
        let _ = writeln!(w, "{line}");
        let _ = w.flush();
    }
}

/// Incremental builder for one single-line JSON record.
#[derive(Default)]
pub struct JsonRecord {
    buf: String,
}

impl JsonRecord {
    /// Start a record with an `event` field.
    pub fn new(event: &str) -> Self {
        let mut r = Self { buf: String::from("{") };
        r.push_key("event");
        r.push_json_string(event);
        r
    }

    fn push_key(&mut self, key: &str) {
        if self.buf.len() > 1 {
            self.buf.push(',');
        }
        self.push_json_string(key);
        self.buf.push(':');
    }

    fn push_json_string(&mut self, s: &str) {
        crate::json::push_json_string(&mut self.buf, s);
    }

    /// Add a string field.
    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.push_key(key);
        self.push_json_string(value);
        self
    }

    /// Add an unsigned integer field.
    pub fn u64(mut self, key: &str, value: u64) -> Self {
        self.push_key(key);
        self.buf.push_str(&value.to_string());
        self
    }

    /// Add a float field (NaN/infinity are written as `null`).
    pub fn f64(mut self, key: &str, value: f64) -> Self {
        self.push_key(key);
        if value.is_finite() {
            self.buf.push_str(&format!("{value}"));
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// Finish the record.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// A `Write` implementation over a shared byte buffer, for capturing log
/// output in tests (`set_sink(Some(Box::new(buf.clone())))`, then
/// [`SharedBuf::take_string`]).
#[derive(Clone, Default)]
pub struct SharedBuf {
    bytes: Arc<Mutex<Vec<u8>>>,
}

impl SharedBuf {
    /// A fresh empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Take the captured bytes as a string, leaving the buffer empty.
    pub fn take_string(&self) -> String {
        let mut bytes = self.bytes.lock().expect("shared buf lock");
        String::from_utf8_lossy(&std::mem::take(&mut *bytes)).into_owned()
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.bytes.lock().expect("shared buf lock").extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_builder_escapes_and_orders() {
        let line = JsonRecord::new("ingest")
            .str("question", "who \"starred\" in\nX?")
            .u64("candidates", 3)
            .f64("confidence", 0.5)
            .f64("bad", f64::NAN)
            .finish();
        assert_eq!(
            line,
            "{\"event\":\"ingest\",\"question\":\"who \\\"starred\\\" in\\nX?\",\
             \"candidates\":3,\"confidence\":0.5,\"bad\":null}"
        );
    }

    #[test]
    fn quiet_by_default_and_captures_when_enabled() {
        assert!(!enabled());
        emit("dropped"); // no sink: swallowed
        let buf = SharedBuf::new();
        set_sink(Some(Box::new(buf.clone())));
        emit("{\"event\":\"x\"}");
        set_sink(None);
        emit("also dropped");
        assert_eq!(buf.take_string(), "{\"event\":\"x\"}\n");
        assert!(!enabled());
    }
}
