//! Shared helpers for the experiment binaries (one binary per table and
//! figure of the paper; see DESIGN.md's experiment index).
//!
//! Every experiment accepts a `--scale <f64>` argument (default 1.0)
//! multiplying the default workload sizes, so the full suite runs on a
//! laptop in minutes at scale 1 and can be pushed towards the paper's
//! sizes with larger scales.

use uqsj::prelude::*;
use uqsj::workload::DatasetConfig;

/// Scale factor parsed from `--scale` (or `UQSJ_SCALE`); default 1.0.
pub fn scale() -> f64 {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--scale" {
            if let Some(v) = args.next().and_then(|v| v.parse().ok()) {
                return v;
            }
        }
    }
    std::env::var("UQSJ_SCALE").ok().and_then(|v| v.parse().ok()).unwrap_or(1.0)
}

/// Scale a count, keeping a sane floor.
pub fn scaled(base: usize, scale: f64, floor: usize) -> usize {
    ((base as f64 * scale) as usize).max(floor)
}

/// The QALD-like workload at the given scale.
pub fn qald(scale: f64) -> Dataset {
    uqsj::workload::qald_like(&DatasetConfig {
        questions: scaled(200, scale, 40),
        distractors: scaled(80, scale, 20),
        seed: 3,
        ..Default::default()
    })
}

/// The WebQ-like workload at the given scale (the paper's is
/// 5,810 × 73,057; scale >= 20 approaches it).
pub fn webq(scale: f64) -> Dataset {
    uqsj::workload::webq_like(&DatasetConfig {
        questions: scaled(300, scale, 60),
        distractors: scaled(700, scale, 100),
        seed: 5,
        ..Default::default()
    })
}

/// The MM-like closed-domain workload.
pub fn mm(scale: f64) -> Dataset {
    uqsj::workload::mm_like(&DatasetConfig {
        questions: scaled(250, scale, 50),
        distractors: scaled(60, scale, 15),
        seed: 9,
        ..Default::default()
    })
}

/// Pretty seconds.
pub fn secs(d: std::time::Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// Percentage with two decimals.
pub fn pct(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}
