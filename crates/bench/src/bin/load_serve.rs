//! Closed-loop load test against a live `uqsj-net` server.
//!
//! By default the binary hosts its own sharded server on a random
//! loopback port, then drives it with `--clients` keep-alive connections
//! over real sockets: each client loops a mixed workload (single
//! answers, small batches, periodic template ingests, metric scrapes)
//! for `--seconds`, recording per-request latency and status. Pass
//! `--addr HOST:PORT` to aim at an externally started server instead
//! (the self-hosted one is then skipped, and shutdown is the caller's
//! problem).
//!
//! When self-hosted the workload runs **twice**: a baseline phase with
//! span tracing and exemplar capture disabled
//! (`uqsj_obs::trace::set_enabled(false)`) against a fresh server, then
//! the traced phase (the production configuration) against another fresh
//! server. Both p99s land in the JSON and the run fails if tracing moved
//! p99 by more than `--overhead-tolerance` (default 0.05 — the <5%
//! observability budget) beyond a small absolute jitter floor. The
//! traced phase also smokes the `/debug/slow` and `/debug/cascade`
//! endpoints and fails on malformed JSON.
//!
//! Emits `BENCH_serve.json` at the repo root — p50/p99 latency, QPS,
//! shed rate, status-class counts, plus the server's metric registries —
//! and exits nonzero if the run saw zero successful answers or any 5xx
//! that was not a deadline/drain 503 (CI's acceptance gate).
//!
//! ```text
//! cargo run --release -p uqsj-bench --bin load_serve -- \
//!     [--clients M] [--seconds S] [--shards N] [--workers W]
//!     [--queue-depth Q] [--deadline-ms D] [--scale F]
//!     [--overhead-tolerance F]
//!     [--addr HOST:PORT] [--metrics-out FILE]
//! ```

use std::net::{SocketAddr, TcpListener};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use uqsj::net::{Client, NetConfig};
use uqsj::pipeline::generate_templates;
use uqsj::prelude::*;
use uqsj::serve::{ServeConfig, ShardedQaServer};
use uqsj::workload::DatasetConfig;

/// `--key value` lookup over argv.
fn arg(key: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    args.windows(2).find(|w| w[0] == format!("--{key}")).map(|w| w[1].clone())
}

fn num<T: std::str::FromStr>(key: &str, default: T) -> T {
    arg(key).and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Per-client tally, merged after the run.
#[derive(Default)]
struct Tally {
    latencies_us: Vec<u64>,
    ok_2xx: u64,
    shed_429: u64,
    unavailable_503: u64,
    other_4xx: u64,
    hard_5xx: u64,
    transport_errors: u64,
    answers_nonempty: u64,
    reconnects: u64,
}

fn percentile(sorted: &[u64], p: usize) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    sorted[(sorted.len() * p / 100).min(sorted.len() - 1)]
}

fn client_loop(
    addr: SocketAddr,
    questions: &[String],
    ingest_body: &str,
    worker: usize,
    stop: &AtomicBool,
) -> Tally {
    let mut tally = Tally::default();
    let timeout = Duration::from_secs(5);
    let Ok(mut client) = Client::connect(addr, timeout) else {
        tally.transport_errors += 1;
        return tally;
    };
    let mut i = worker; // deterministic, distinct phase per client
    while !stop.load(Ordering::Relaxed) {
        let question = &questions[i % questions.len()];
        // Mixed workload: mostly single answers, a batch every 7th
        // request, an ingest every 31st, a metrics scrape every 53rd.
        let (path, body): (&str, String) = if i % 53 == 11 {
            ("/metrics", String::new())
        } else if i % 31 == 7 {
            ("/v1/templates", ingest_body.to_owned())
        } else if i % 7 == 3 {
            let batch: Vec<String> = (0..4)
                .map(|k| format!("\"{}\"", questions[(i + k) % questions.len()].replace('"', "")))
                .collect();
            ("/v1/answer", format!("{{\"questions\": [{}], \"threads\": 2}}", batch.join(",")))
        } else {
            ("/v1/answer", format!("{{\"question\": \"{}\"}}", question.replace('"', "")))
        };
        i += 1;
        let started = Instant::now();
        let result = if path == "/metrics" { client.get(path) } else { client.post(path, &body) };
        match result {
            Ok(resp) => {
                tally.latencies_us.push(started.elapsed().as_micros() as u64);
                match resp.status {
                    200..=299 => {
                        tally.ok_2xx += 1;
                        if resp.body.contains("\"answers\":[\"") {
                            tally.answers_nonempty += 1;
                        }
                    }
                    429 => tally.shed_429 += 1,
                    503 => tally.unavailable_503 += 1,
                    400..=499 => tally.other_4xx += 1,
                    _ => tally.hard_5xx += 1,
                }
                if resp.close && client.reconnect(timeout).is_err() {
                    tally.transport_errors += 1;
                    break;
                }
                if resp.close {
                    tally.reconnects += 1;
                }
            }
            Err(_) => {
                tally.transport_errors += 1;
                if client.reconnect(timeout).is_err() {
                    break;
                }
                tally.reconnects += 1;
            }
        }
    }
    tally
}

/// Drive `clients` closed-loop connections for `seconds`; returns the
/// merged tally (latencies sorted) and the measured wall time.
fn drive(
    addr: SocketAddr,
    questions: &[String],
    ingest_body: &str,
    clients: usize,
    seconds: u64,
) -> (Tally, f64) {
    let stop = AtomicBool::new(false);
    let started = Instant::now();
    let tallies: Vec<Tally> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..clients)
            .map(|w| {
                let (questions, ingest_body, stop) = (questions, ingest_body, &stop);
                scope.spawn(move || client_loop(addr, questions, ingest_body, w, stop))
            })
            .collect();
        std::thread::sleep(Duration::from_secs(seconds));
        stop.store(true, Ordering::Relaxed);
        workers.into_iter().map(|w| w.join().expect("client thread")).collect()
    });
    let elapsed = started.elapsed().as_secs_f64().max(1e-9);
    let mut merged = Tally::default();
    for t in tallies {
        merged.latencies_us.extend(t.latencies_us);
        merged.ok_2xx += t.ok_2xx;
        merged.shed_429 += t.shed_429;
        merged.unavailable_503 += t.unavailable_503;
        merged.other_4xx += t.other_4xx;
        merged.hard_5xx += t.hard_5xx;
        merged.transport_errors += t.transport_errors;
        merged.answers_nonempty += t.answers_nonempty;
        merged.reconnects += t.reconnects;
    }
    merged.latencies_us.sort_unstable();
    (merged, elapsed)
}

/// Hit the live-introspection endpoints and check their JSON parses into
/// the expected shape (the CI debug-endpoint smoke).
fn smoke_debug_endpoints(addr: SocketAddr) -> Result<(), String> {
    let mut client = Client::connect(addr, Duration::from_secs(5))
        .map_err(|e| format!("debug smoke connect: {e}"))?;
    let slow = client.get("/debug/slow").map_err(|e| format!("/debug/slow: {e}"))?;
    if slow.status != 200 {
        return Err(format!("/debug/slow returned {}", slow.status));
    }
    let doc = uqsj::net::json::parse(&slow.body)
        .map_err(|e| format!("/debug/slow body is not JSON: {e}"))?;
    let reports =
        doc.get("slow").and_then(uqsj::net::Value::as_array).ok_or("/debug/slow lacks slow[]")?;
    if reports.is_empty() {
        return Err("slow log empty after a full load phase".to_owned());
    }
    let cascade = client.get("/debug/cascade").map_err(|e| format!("/debug/cascade: {e}"))?;
    if cascade.status != 200 {
        return Err(format!("/debug/cascade returned {}", cascade.status));
    }
    let doc = uqsj::net::json::parse(&cascade.body)
        .map_err(|e| format!("/debug/cascade body is not JSON: {e}"))?;
    doc.get("sources")
        .and_then(uqsj::net::Value::as_array)
        .ok_or("/debug/cascade lacks sources[]")?;
    Ok(())
}

fn main() -> ExitCode {
    let clients: usize = num("clients", 4);
    let seconds: u64 = num("seconds", 3);
    let shards: usize = num("shards", 4);
    let scale: f64 = num("scale", 1.0);
    let tolerance: f64 = num("overhead-tolerance", 0.05);

    // The workload: a mined library plus its question set. Built even
    // when targeting an external server — the drivers need questions.
    let dataset = uqsj::workload::qald_like(&DatasetConfig {
        questions: ((60.0 * scale) as usize).max(20),
        distractors: ((40.0 * scale) as usize).max(10),
        ..Default::default()
    });
    let result = generate_templates(&dataset, JoinParams::simj(1, 0.5));
    let questions: Vec<String> = dataset.pairs.iter().map(|p| p.question.clone()).collect();
    // A small re-ingest payload (idempotent: the server dedups).
    let ingest_slice = {
        let mut lib = TemplateLibrary::new();
        for t in result.library.templates().iter().take(3) {
            lib.add(t.clone());
        }
        uqsj::template::io::to_text(&lib)
    };
    let ingest_body =
        format!("{{\"templates\": {}}}", uqsj::net::Value::from(ingest_slice.as_str()).render());

    let net = NetConfig {
        workers: num("workers", 4),
        queue_depth: num("queue-depth", 64),
        deadline: Duration::from_millis(num("deadline-ms", 2000)),
        ..NetConfig::default()
    };
    // Each self-hosted phase gets its own fresh server (cold cache), so
    // the no-trace and traced measurements see identical state.
    let clone_library = || {
        let mut lib = TemplateLibrary::new();
        for t in result.library.templates() {
            lib.add(t.clone());
        }
        lib
    };
    let host = |library: TemplateLibrary| {
        let qa = Arc::new(ShardedQaServer::new(
            library,
            dataset.kb.lexicon.clone(),
            dataset.kb.triple_store(),
            shards,
            ServeConfig { min_phi: 1.0, cache_capacity: 1024, bgp_eval: None },
        ));
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        uqsj::net::serve_on(qa, listener, net).expect("start server")
    };
    let scrape = |addr: SocketAddr| {
        Client::connect(addr, Duration::from_secs(5))
            .and_then(|mut c| c.get("/metrics"))
            .map(|r| r.body)
            .unwrap_or_default()
    };

    let external: Option<SocketAddr> = match arg("addr") {
        Some(a) => match a.parse() {
            Ok(addr) => Some(addr),
            Err(e) => {
                eprintln!("bad --addr {a:?}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };

    let (merged, elapsed, p99_no_trace, registry_json, metrics_text, debug_smoke) =
        if let Some(addr) = external {
            // External server: single traced run, no overhead baseline
            // (the trace switch is process-local and the server is not).
            eprintln!(
                "load_serve: {clients} clients x {seconds}s against {addr} \
                 ({} questions, external)",
                questions.len()
            );
            let (merged, elapsed) = drive(addr, &questions, &ingest_body, clients, seconds);
            let smoke = smoke_debug_endpoints(addr);
            (merged, elapsed, None, "null".to_owned(), scrape(addr), smoke)
        } else {
            // Phase 1 — baseline: span tracing and exemplar capture off.
            uqsj::obs::trace::set_enabled(false);
            let handle = host(clone_library());
            eprintln!(
                "load_serve: baseline (no-trace) phase, {clients} clients x {seconds}s \
                 against {} ({} questions, {shards} shards)",
                handle.local_addr(),
                questions.len()
            );
            let (baseline, _) =
                drive(handle.local_addr(), &questions, &ingest_body, clients, seconds);
            handle.shutdown().expect("baseline drain");
            let p99_base = percentile(&baseline.latencies_us, 99);

            // Phase 2 — traced: the production configuration.
            uqsj::obs::trace::set_enabled(true);
            let handle = host(clone_library());
            let addr = handle.local_addr();
            eprintln!("load_serve: traced phase, {clients} clients x {seconds}s against {addr}");
            let (merged, elapsed) = drive(addr, &questions, &ingest_body, clients, seconds);
            let smoke = smoke_debug_endpoints(addr);
            let metrics_text = scrape(addr);
            let registry_json = format!(
                "{{\"net\":{},\"serve\":{}}}",
                handle.metrics().registry().snapshot_json().trim_end(),
                handle.qa().metrics_registry().snapshot_json().trim_end()
            );
            handle.shutdown().expect("graceful drain");
            (merged, elapsed, Some(p99_base), registry_json, metrics_text, smoke)
        };

    if let Some(path) = arg("metrics-out") {
        if let Err(e) = std::fs::write(&path, &metrics_text) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote scraped /metrics to {path}");
    }

    let total = merged.latencies_us.len() as u64;
    let qps = merged.ok_2xx as f64 / elapsed;
    let shed_rate = merged.shed_429 as f64 / (total.max(1)) as f64;
    let p99_traced = percentile(&merged.latencies_us, 99);
    let json = format!(
        "{{\n  \"bench\": \"load_serve\",\n  \"clients\": {clients},\n  \
         \"seconds\": {elapsed:.2},\n  \"shards\": {shards},\n  \
         \"requests\": {total},\n  \"qps_2xx\": {qps:.1},\n  \
         \"p50_request_us\": {p50},\n  \"p99_request_us\": {p99},\n  \
         \"p99_no_trace_us\": {p99_base},\n  \"p99_traced_us\": {p99_traced},\n  \
         \"trace_overhead_tolerance\": {tolerance},\n  \
         \"ok_2xx\": {ok},\n  \"shed_429\": {shed},\n  \"shed_rate\": {shed_rate:.4},\n  \
         \"unavailable_503\": {u503},\n  \"other_4xx\": {o4},\n  \"hard_5xx\": {h5},\n  \
         \"transport_errors\": {terr},\n  \"reconnects\": {rec},\n  \
         \"answers_nonempty\": {nonempty},\n  \"registry\": {registry_json}\n}}\n",
        p50 = percentile(&merged.latencies_us, 50),
        p99 = p99_traced,
        p99_base = p99_no_trace.map(|v| v.to_string()).unwrap_or_else(|| "null".to_owned()),
        ok = merged.ok_2xx,
        shed = merged.shed_429,
        u503 = merged.unavailable_503,
        o4 = merged.other_4xx,
        h5 = merged.hard_5xx,
        terr = merged.transport_errors,
        rec = merged.reconnects,
        nonempty = merged.answers_nonempty,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    std::fs::write(path, &json).expect("write BENCH_serve.json");
    eprintln!("wrote {path}:\n{json}");

    // Acceptance gates: the server must have answered (non-zero QPS) and
    // must never have produced a 5xx other than a deadline/drain 503.
    if merged.ok_2xx == 0 {
        eprintln!("FAIL: zero successful requests");
        return ExitCode::FAILURE;
    }
    if merged.hard_5xx > 0 {
        eprintln!("FAIL: {} hard 5xx responses (non-deadline)", merged.hard_5xx);
        return ExitCode::FAILURE;
    }
    if let Err(e) = debug_smoke {
        eprintln!("FAIL: debug endpoint smoke: {e}");
        return ExitCode::FAILURE;
    }
    // The observability budget: tracing + exemplars may not move p99 by
    // more than the tolerance. A 250us absolute floor absorbs scheduler
    // jitter on short runs where relative comparison is meaningless.
    if let Some(base) = p99_no_trace {
        let budget = base as f64 * (1.0 + tolerance) + 250.0;
        if p99_traced as f64 > budget {
            eprintln!(
                "FAIL: tracing overhead: p99 {p99_traced}us traced vs {base}us untraced \
                 exceeds budget {budget:.0}us (tolerance {tolerance})"
            );
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
