//! Fig. 12: effect of the GED threshold τ ∈ [0, 5] on the ER synthetic
//! workload.
//!
//! (a) response time grows with τ (more candidates survive to the
//! expensive verification); (b) candidate ratio grows with τ, with
//! SimJ+opt < SimJ < CSS-only at every point.

use uqsj::prelude::*;
use uqsj::testkit::SyntheticSpec;
use uqsj::workload::RandomGraphConfig;
use uqsj_bench::{pct, scale, scaled, secs};

fn main() {
    let s = scale();
    let cfg = RandomGraphConfig {
        count: scaled(120, s, 40),
        vertices: 12,
        edges: 24,
        avg_labels: 3.0,
        perturbation: 2,
        ..Default::default()
    };
    let (table, d, u) = SyntheticSpec::er(12, cfg).generate_fresh();
    println!("Fig. 12 — ER, alpha = 0.5 (|D| = |U| = {}, |V| = {})\n", d.len(), cfg.vertices);
    println!(
        "{:>4} | {:>10} {:>12} {:>10} | {:>9} {:>9} {:>9} {:>9}",
        "tau", "prune(s)", "verify(s)", "total(s)", "CSS", "SimJ", "SimJ+opt", "Real"
    );
    for tau in 0..=5u32 {
        let (_, css) = sim_join(
            &table,
            &d,
            &u,
            JoinParams { strategy: JoinStrategy::CssOnly, ..JoinParams::simj(tau, 0.5) },
        );
        let (_, simj) = sim_join(&table, &d, &u, JoinParams::simj(tau, 0.5));
        let (_, opt) = sim_join(
            &table,
            &d,
            &u,
            JoinParams {
                strategy: JoinStrategy::SimJOpt { group_count: 8 },
                ..JoinParams::simj(tau, 0.5)
            },
        );
        println!(
            "{:>4} | {:>10} {:>12} {:>10} | {:>9} {:>9} {:>9} {:>9}",
            tau,
            secs(simj.pruning_time),
            secs(simj.verification_time),
            secs(simj.response_time()),
            pct(css.candidate_ratio()),
            pct(simj.candidate_ratio()),
            pct(opt.candidate_ratio()),
            pct(simj.result_ratio()),
        );
    }
}
