//! Cascade-drift experiment: the workload family switches mid-stream and
//! the adaptive planner must re-rank its filter cascade within one epoch.
//!
//! Phase A is an ER-flavored stream of structure-identical chain pairs
//! whose uncertain labels carry little matching mass: every GED lower
//! bound passes (the graphs are isomorphic up to labels, so the bounds
//! are blind) and only the Markov α-filter prunes. The planner converges
//! to a Markov-only plan and correctly evicts the never-firing bounds.
//!
//! Phase B swaps in an AIDS-like stream of label-saturated star-vs-chain
//! pairs: every vertex label matches (the Markov bound is vacuous) but
//! the structures are > τ apart, so only the CSS bound can prune. The
//! stale Markov-only plan sends the first pairs to verification; probe
//! pairs hand CSS fresh firing evidence, and the next epoch replan must
//! put CSS back — the experiment fails (nonzero exit) if the plan does
//! not change within one epoch of the switch, or if CSS does not end up
//! ahead of Markov (or Markov dropped) once re-ranked.
//!
//! Every phase is also joined under the fixed cascade and the match sets
//! compared — adaptation is a cost optimization, never a result change.
//!
//! `--smoke` shrinks both phases for the CI gate.

use std::process::ExitCode;
use uqsj::graph::{Graph, GraphBuilder, SymbolTable, UncertainGraph};
use uqsj::prelude::*;
use uqsj::simjoin::{sim_join_in, CascadeRuntime};

const TAU: u32 = 2;
const ALPHA: f64 = 0.5;

/// Phase A certain side: chains over the two labels the uncertain side
/// rarely commits to. `salt` rotates which label leads, so the stream is
/// not one graph repeated.
fn chain_query(t: &mut SymbolTable, n: usize, salt: usize) -> Graph {
    let mut b = GraphBuilder::new(t);
    for i in 0..n {
        let label = if (i + salt).is_multiple_of(2) { "A" } else { "B" };
        b.vertex(&format!("v{i}"), label);
    }
    for i in 1..n {
        b.edge(&format!("v{}", i - 1), &format!("v{i}"), "e");
    }
    b.into_graph()
}

/// Phase A uncertain side: the same chain topology, but each vertex puts
/// only 0.15 mass on a label the queries use and the rest on a decoy.
/// Optimistically every vertex *can* match (the GED bounds pass); in
/// expectation almost nothing does (E(Y) = 0.15·n, so the Markov bound
/// is far below α and fires).
fn chain_uncertain(t: &mut SymbolTable, n: usize, salt: usize) -> UncertainGraph {
    let mut b = GraphBuilder::new(t);
    for i in 0..n {
        let match_label = if (i + salt).is_multiple_of(2) { "A" } else { "B" };
        let decoy = format!("D{}", (i + salt) % 4);
        b.uncertain_vertex(&format!("v{i}"), &[(match_label, 0.15), (decoy.as_str(), 0.85)]);
    }
    for i in 1..n {
        b.edge(&format!("v{}", i - 1), &format!("v{i}"), "e");
    }
    b.into_uncertain()
}

/// Phase B certain side: stars over the same `{A, B}` labels the phase B
/// uncertain side is saturated with.
fn star_query(t: &mut SymbolTable, n: usize, salt: usize) -> Graph {
    let mut b = GraphBuilder::new(t);
    for i in 0..n {
        let label = if (i + salt).is_multiple_of(2) { "A" } else { "B" };
        b.vertex(&format!("v{i}"), label);
    }
    for i in 1..n {
        b.edge("v0", &format!("v{i}"), "e");
    }
    b.into_graph()
}

/// Phase B uncertain side: chains whose every vertex splits its mass
/// between the two labels the queries use, so *every* alternative
/// matches (E(Y) = n, the Markov bound is vacuous) and each graph has
/// 2^n possible worlds. The star-vs-chain structure keeps GED > τ in
/// every world — only a structural bound can prune the pair, and
/// skipping it costs a real multi-world verification.
fn chain_label_saturated(t: &mut SymbolTable, n: usize, salt: usize) -> UncertainGraph {
    let mut b = GraphBuilder::new(t);
    for i in 0..n {
        let (first, second) = if (i + salt).is_multiple_of(2) { ("A", "B") } else { ("B", "A") };
        b.uncertain_vertex(&format!("v{i}"), &[(first, 0.5), (second, 0.5)]);
    }
    for i in 1..n {
        b.edge(&format!("v{}", i - 1), &format!("v{i}"), "e");
    }
    b.into_uncertain()
}

fn match_keys(ms: &[JoinMatch]) -> Vec<(usize, usize)> {
    let mut keys: Vec<_> = ms.iter().map(|m| (m.g_index, m.q_index)).collect();
    keys.sort_unstable();
    keys
}

fn main() -> ExitCode {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let n = 8usize; // vertices per graph in both phases
    let (a_d, a_u, b_d, b_u) = if smoke { (24, 12, 12, 24) } else { (48, 24, 24, 24) };

    let mut table = SymbolTable::new();
    let phase_a_d: Vec<Graph> = (0..a_d).map(|s| chain_query(&mut table, n, s)).collect();
    let phase_a_u: Vec<UncertainGraph> =
        (0..a_u).map(|s| chain_uncertain(&mut table, n, s)).collect();
    let phase_b_d: Vec<Graph> = (0..b_d).map(|s| star_query(&mut table, n, s)).collect();
    let phase_b_u: Vec<UncertainGraph> =
        (0..b_u).map(|s| chain_label_saturated(&mut table, n, s)).collect();

    // A fast-turning policy: short epochs and dense probes, so the
    // evidence window flips within one epoch of the family switch
    // instead of amortizing the old family's statistics across several.
    let policy = CascadePolicy::adaptive()
        .with_calibration_pairs(64)
        .with_epoch_pairs(32)
        .with_probe_interval(4);
    let params = JoinParams::simj(TAU, ALPHA).with_cascade(policy);
    let fixed_params = JoinParams::simj(TAU, ALPHA);
    let cascade = CascadeRuntime::new(policy, params.strategy);

    // --- Phase A: ER-flavored, Markov-prunable ------------------------
    let (a_matches, a_stats) = sim_join_in(&cascade, &table, &phase_a_d, &phase_a_u, params);
    let (a_fixed, _) = sim_join(&table, &phase_a_d, &phase_a_u, fixed_params);
    if match_keys(&a_matches) != match_keys(&a_fixed) {
        eprintln!("FAIL: adaptive phase A results diverge from the fixed cascade");
        return ExitCode::FAILURE;
    }
    let report_a = cascade.report();
    println!(
        "phase A (ER chains, low label mass): {} pairs, {} results, markov pruned {}",
        a_stats.pairs_total,
        a_matches.len(),
        a_stats.pruned_probabilistic(),
    );
    println!("plan after phase A: {}", report_a.plan.join(" -> "));
    if !report_a.plan.contains(&"markov") {
        eprintln!("FAIL: phase A did not converge on the Markov filter");
        return ExitCode::FAILURE;
    }
    if report_a.plan.contains(&"css") {
        eprintln!(
            "FAIL: css survived phase A ({}), leaving nothing to re-learn",
            report_a.plan.join(" -> ")
        );
        return ExitCode::FAILURE;
    }

    // --- Phase B: AIDS-like, CSS-prunable -----------------------------
    // Stream one uncertain graph at a time so the plan can be observed
    // mid-stream; the re-rank must land within one epoch of the switch.
    let pairs_at_switch = report_a.pairs_seen;
    let mut pairs_at_change = None;
    let mut b_keys: Vec<(usize, usize)> = Vec::new();
    for (i, g) in phase_b_u.iter().enumerate() {
        let (ms, _) = sim_join_in(&cascade, &table, &phase_b_d, std::slice::from_ref(g), params);
        b_keys.extend(ms.iter().map(|m| (i, m.q_index)));
        let report = cascade.report();
        if pairs_at_change.is_none() && report.plan != report_a.plan {
            pairs_at_change = Some(report.pairs_seen);
            println!(
                "plan changed after {} phase-B pairs: {}",
                report.pairs_seen - pairs_at_switch,
                report.plan.join(" -> ")
            );
        }
    }
    let report_b = cascade.report();
    println!("plan after phase B: {}", report_b.plan.join(" -> "));
    println!("{report_b}");

    let (b_fixed, b_fixed_stats) = sim_join(&table, &phase_b_d, &phase_b_u, fixed_params);
    let fixed_keys = match_keys(&b_fixed);
    b_keys.sort_unstable();
    if b_keys != fixed_keys {
        eprintln!("FAIL: adaptive phase B results diverge from the fixed cascade");
        return ExitCode::FAILURE;
    }
    if b_fixed_stats.pruned_structural() == 0 {
        eprintln!("FAIL: phase B workload is not CSS-prunable — nothing to drift toward");
        return ExitCode::FAILURE;
    }

    // The re-rank deadline: one epoch after the family switch, plus the
    // chunk granularity the plan is observed at.
    let chunk = phase_b_d.len() as u64;
    let deadline = policy.epoch_pairs + chunk;
    match pairs_at_change {
        None => {
            eprintln!("FAIL: the plan never changed after the workload family switched");
            ExitCode::FAILURE
        }
        Some(at) if at - pairs_at_switch > deadline => {
            eprintln!(
                "FAIL: re-rank took {} pairs (deadline {deadline} = one epoch + chunk)",
                at - pairs_at_switch
            );
            ExitCode::FAILURE
        }
        Some(_) => {
            let css_pos = report_b.plan.iter().position(|s| *s == "css");
            let markov_pos = report_b.plan.iter().position(|s| *s == "markov");
            match (css_pos, markov_pos) {
                (None, _) => {
                    eprintln!("FAIL: css missing from the re-ranked plan");
                    ExitCode::FAILURE
                }
                (Some(c), Some(m)) if c > m => {
                    eprintln!("FAIL: css re-added but still ranked behind markov");
                    ExitCode::FAILURE
                }
                _ => {
                    println!("OK: cascade re-ranked within one epoch of the family switch");
                    ExitCode::SUCCESS
                }
            }
        }
    }
}
