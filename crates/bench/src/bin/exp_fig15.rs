//! Fig. 15: comparison of the CSS filter with prior-work filters (Path,
//! SEGOS, Pars) on the AIDS-like dataset, τ ∈ [0, 5].
//!
//! The baselines are structure-only on uncertain graphs (exactly how the
//! paper had to run them); CSS uses labels + uncertainty natively
//! (Theorem 3). Expected shape: CSS is fastest and has the lowest
//! candidate ratio at every τ.

use uqsj::ged::bounds::css::CssBound;
use uqsj::ged::bounds::partition::ParsBound;
use uqsj::ged::bounds::path_gram::PathBound;
use uqsj::ged::bounds::segos::SegosBound;
use uqsj::ged::bounds::LowerBound;
use uqsj::simjoin::filter_eval::evaluate_filter;
use uqsj::testkit::SyntheticSpec;
use uqsj::workload::RandomGraphConfig;
use uqsj_bench::{pct, scale, scaled, secs};

fn main() {
    let s = scale();
    let cfg = RandomGraphConfig {
        count: scaled(150, s, 40),
        vertices: 14,
        avg_labels: 2.5,
        uncertain_fraction: 0.3,
        perturbation: 2,
        ..Default::default()
    };
    let (table, d, u) = SyntheticSpec::aids(15, cfg).generate_fresh();
    println!("Fig. 15 — AIDS-like filter comparison (|D| = |U| = {})\n", d.len());

    let filters: Vec<Box<dyn LowerBound>> = vec![
        Box::new(PathBound),
        Box::new(SegosBound),
        Box::new(ParsBound::default()),
        Box::new(CssBound),
    ];

    println!(
        "{:>4} | {:>12} {:>12} {:>12} {:>12} | {:>9} {:>9} {:>9} {:>9}",
        "tau", "Path t(s)", "SEGOS t(s)", "Pars t(s)", "CSS t(s)", "Path", "SEGOS", "Pars", "CSS"
    );
    for tau in 0..=5u32 {
        let reports: Vec<_> =
            filters.iter().map(|f| evaluate_filter(&table, &d, &u, tau, f.as_ref())).collect();
        println!(
            "{:>4} | {:>12} {:>12} {:>12} {:>12} | {:>9} {:>9} {:>9} {:>9}",
            tau,
            secs(reports[0].filtering_time),
            secs(reports[1].filtering_time),
            secs(reports[2].filtering_time),
            secs(reports[3].filtering_time),
            pct(reports[0].candidate_ratio()),
            pct(reports[1].candidate_ratio()),
            pct(reports[2].candidate_ratio()),
            pct(reports[3].candidate_ratio()),
        );
    }
}
