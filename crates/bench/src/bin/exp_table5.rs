//! Table 5: effect of the matching proportion φ ∈ [0.5, 1.0] on Q/A
//! quality.
//!
//! Paper shape: allowing partial template matches (lower minimum φ)
//! improves recall — and even precision — because more questions get
//! answered without hurting the full-match ones. To exercise the partial
//! path, a third of the evaluation questions carry conversational tails
//! ("... can you tell me") that break exact template matches, mirroring
//! the real-question messiness QALD exhibits and our generator's clean
//! grammar lacks.

use uqsj::pipeline::generate_templates;
use uqsj::prelude::*;
use uqsj::template::metrics::QaScore;
use uqsj_bench::{qald, scale};

const TAILS: [&str; 3] = [" can you tell me", " I would like to know", " if you know it"];

fn main() {
    let s = scale();
    let dataset = qald(s);
    let store = dataset.kb.triple_store();
    let result = generate_templates(&dataset, JoinParams::simj(1, 0.6));
    println!(
        "Table 5 — φ sweep over {} questions (1 in 3 with a conversational tail), {} templates\n",
        dataset.pairs.len(),
        result.library.len()
    );

    // Evaluation questions: every third one gets a tail appended after
    // stripping the question mark.
    let questions: Vec<String> = dataset
        .pairs
        .iter()
        .enumerate()
        .map(|(i, p)| {
            if i % 3 == 0 {
                let base = p.question.trim_end_matches('?');
                format!("{}{}", base, TAILS[i % TAILS.len()])
            } else {
                p.question.clone()
            }
        })
        .collect();
    let gold: Vec<Vec<String>> = dataset
        .pairs
        .iter()
        .map(|p| {
            uqsj::rdf::bgp::evaluate(&store, &p.sparql).into_iter().map(|r| r.join("\t")).collect()
        })
        .collect();

    println!("{:>5} {:>10} {:>10} {:>10}", "phi", "Precision", "Recall", "F-1");
    for phi10 in [5, 6, 7, 8, 9, 10] {
        let min_phi = phi10 as f64 / 10.0;
        let mut score = QaScore::new();
        for (q, g) in questions.iter().zip(&gold) {
            let out = uqsj::template::answer_question(
                &result.library,
                &dataset.kb.lexicon,
                &store,
                q,
                min_phi,
            );
            score.record(&out.answers, g);
        }
        println!(
            "{:>5.1} {:>10.2} {:>10.2} {:>10.2}",
            min_phi,
            score.precision(),
            score.recall(),
            score.f1()
        );
    }
}
