//! Table 4: Q/A quality using the generated templates versus the
//! gAnswer-like and DEANNA-like baselines (QALD-style macro
//! precision/recall/F-1).
//!
//! Paper values: our method 0.65/0.65/0.65, gAnswer 0.41, DEANNA 0.21.
//! The shape to reproduce: templates > gAnswer > DEANNA.

use uqsj::pipeline::generate_templates;
use uqsj::prelude::*;
use uqsj::template::baselines::{deanna_like, ganswer_like};
use uqsj::template::metrics::QaScore;
use uqsj_bench::{qald, scale};

fn main() {
    let s = scale();
    let dataset = qald(s);
    let store = dataset.kb.triple_store();
    let result = generate_templates(&dataset, JoinParams::simj(1, 0.6));
    println!(
        "Table 4 — Q/A over {} questions with {} templates\n",
        dataset.pairs.len(),
        result.library.len()
    );

    let mut scores = [QaScore::new(), QaScore::new(), QaScore::new()];
    for pair in &dataset.pairs {
        let gold: Vec<String> = uqsj::rdf::bgp::evaluate(&store, &pair.sparql)
            .into_iter()
            .map(|r| r.join("\t"))
            .collect();
        let t = uqsj::template::answer_question(
            &result.library,
            &dataset.kb.lexicon,
            &store,
            &pair.question,
            1.0,
        );
        scores[0].record(&t.answers, &gold);
        scores[1].record(&ganswer_like(&dataset.kb.lexicon, &store, &pair.question), &gold);
        scores[2].record(&deanna_like(&dataset.kb.lexicon, &store, &pair.question), &gold);
    }

    println!("{:<12} {:>10} {:>10} {:>10}", "Method", "Precision", "Recall", "F-1");
    for (name, sc) in ["Our method", "gAnswer", "DEANNA"].iter().zip(&scores) {
        println!("{:<12} {:>10.2} {:>10.2} {:>10.2}", name, sc.precision(), sc.recall(), sc.f1());
    }
}
