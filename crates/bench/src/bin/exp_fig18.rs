//! Fig. 18: failure analysis of the template generation pipeline.
//!
//! Paper breakdown: 73% incorrect semantic query graphs (entity linking /
//! extraction failures), 21% pairs within the GED threshold that do not
//! share the query intention, 6% other.

use uqsj::pipeline::generate_templates;
use uqsj::prelude::*;
use uqsj_bench::{qald, scale};

fn main() {
    let s = scale();
    let dataset = qald(s);
    let result = generate_templates(&dataset, JoinParams::simj(1, 0.6));

    // Failure class 1: questions whose semantic query graph was wrong —
    // analysis failed outright, or the analyzed graph led to zero correct
    // matches while a misleading/unknown mention was present.
    let analysis_failures = dataset.failed.len();
    let misleading: usize = dataset
        .pairs
        .iter()
        .filter(|p| p.noise == uqsj::workload::questions::NoiseKind::MisleadingSurface)
        .count();

    // Failure class 2: questions drawn into at least one incorrect pair
    // within τ (small GED but different intention). Counted per distinct
    // question so a single noisy question does not inflate the class by
    // its whole candidate list.
    let wrong_questions: std::collections::BTreeSet<usize> = result
        .matches
        .iter()
        .filter(|m| !dataset.pair_is_correct(m.q_index, m.g_index))
        .map(|m| m.g_index)
        .collect();
    let wrong_pairs = wrong_questions.len();

    let semantic = analysis_failures + misleading;
    let total = semantic + wrong_pairs;
    println!("Fig. 18 — failure analysis ({} error events)\n", total);
    println!("{:<38} {:>8} {:>8}", "Reason", "count", "ratio");
    let pct = |x: usize| {
        if total == 0 {
            0.0
        } else {
            x as f64 / total as f64 * 100.0
        }
    };
    println!("{:<38} {:>8} {:>7.0}%", "Incorrect semantic query graph", semantic, pct(semantic));
    println!(
        "{:<38} {:>8} {:>7.0}%",
        "Graph edit distance (wrong intention)",
        wrong_pairs,
        pct(wrong_pairs)
    );
    println!("\n(analysis failures: {analysis_failures}; misleading surface forms: {misleading})");
}
