//! Fig. 13: effect of the group number GN ∈ [1, 40] on the SF synthetic
//! workload (SimJ+opt only; CSS-only and SimJ are GN-insensitive).
//!
//! (a) more groups cost more pruning time; (b) more groups prune more
//! candidates (the candidate ratio of SimJ+opt falls with GN).

use uqsj::prelude::*;
use uqsj::testkit::SyntheticSpec;
use uqsj::workload::RandomGraphConfig;
use uqsj_bench::{pct, scale, scaled, secs};

fn main() {
    let s = scale();
    let cfg = RandomGraphConfig {
        count: scaled(120, s, 40),
        vertices: 12,
        edges: 2,
        avg_labels: 3.0,
        uncertain_fraction: 0.4,
        perturbation: 2,
        ..Default::default()
    };
    let (table, d, u) = SyntheticSpec::sf(13, cfg).generate_fresh();
    let (tau, alpha) = (2u32, 0.5);
    println!("Fig. 13 — SF, tau = {tau}, alpha = {alpha} (|D| = |U| = {})\n", d.len());

    // Reference lines (GN-insensitive).
    let (_, css) = sim_join(
        &table,
        &d,
        &u,
        JoinParams { strategy: JoinStrategy::CssOnly, ..JoinParams::simj(tau, alpha) },
    );
    let (_, simj) = sim_join(&table, &d, &u, JoinParams::simj(tau, alpha));
    println!(
        "reference: CSS-only candidates {} ({}), SimJ candidates {} ({}), Real {}\n",
        css.candidates,
        pct(css.candidate_ratio()),
        simj.candidates,
        pct(simj.candidate_ratio()),
        pct(simj.result_ratio()),
    );

    println!(
        "{:>4} | {:>10} {:>12} {:>10} | {:>10} {:>10}",
        "GN", "prune(s)", "verify(s)", "total(s)", "candidates", "ratio"
    );
    for gn in [1usize, 5, 10, 15, 20, 25, 30, 35, 40] {
        let (_, opt) = sim_join(
            &table,
            &d,
            &u,
            JoinParams {
                strategy: JoinStrategy::SimJOpt { group_count: gn },
                ..JoinParams::simj(tau, alpha)
            },
        );
        println!(
            "{:>4} | {:>10} {:>12} {:>10} | {:>10} {:>10}",
            gn,
            secs(opt.pruning_time),
            secs(opt.verification_time),
            secs(opt.response_time()),
            opt.candidates,
            pct(opt.candidate_ratio()),
        );
    }
}
