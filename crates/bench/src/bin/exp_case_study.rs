//! Figs. 10 & 16: case study — matched question/query pairs and the
//! templates built from them.

use uqsj::pipeline::generate_templates;
use uqsj::prelude::*;
use uqsj_bench::{qald, scale};

fn main() {
    let s = scale();
    let dataset = qald(s);
    let result = generate_templates(&dataset, JoinParams::simj(1, 0.8));
    println!(
        "Case study (Figs. 10/16) — {} matched pairs, {} templates\n",
        result.matches.len(),
        result.library.len()
    );

    // Print a handful of correct matched pairs with their SPARQL (one per
    // distinct question).
    let mut shown = 0;
    let mut seen_questions = std::collections::BTreeSet::new();
    for m in &result.matches {
        if !dataset.pair_is_correct(m.q_index, m.g_index) || !seen_questions.insert(m.g_index) {
            continue;
        }
        println!("Q : {}", dataset.pairs[m.g_index].question);
        println!("S : {}", dataset.d_queries[m.q_index].to_string().replace('\n', "\n    "));
        println!("   (SimP = {:.2}, GED = {})\n", m.prob, m.mapping.distance);
        shown += 1;
        if shown == 3 {
            break;
        }
    }

    println!("--- Templates built from such pairs (Fig. 16) ---\n");
    for t in result.library.templates().iter().take(4) {
        println!("{}\n", t);
    }
}
