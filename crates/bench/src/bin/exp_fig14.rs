//! Fig. 14: effect of the number of possible labels |L(v)| ∈ [2, 6] on
//! the ER synthetic workload.
//!
//! (a) response time grows with |L(v)| (bigger bipartite matchings, more
//! worlds); (b) pruning power decreases as labels blur — until the
//! per-label probabilities get small enough that the probabilistic
//! filters recover (the paper's uptick past |L(v)| = 5).

use uqsj::prelude::*;
use uqsj::testkit::SyntheticSpec;
use uqsj::workload::RandomGraphConfig;
use uqsj_bench::{pct, scale, scaled, secs};

fn main() {
    let s = scale();
    let (tau, alpha) = (2u32, 0.5);
    println!("Fig. 14 — ER, tau = {tau}, alpha = {alpha}, |L(v)| sweep\n");
    println!(
        "{:>6} | {:>10} {:>12} {:>10} | {:>9} {:>9} {:>9} {:>9}",
        "|L(v)|", "prune(s)", "verify(s)", "total(s)", "CSS", "SimJ", "SimJ+opt", "Real"
    );
    for labels in [2.0f64, 3.0, 4.0, 5.0, 6.0] {
        let cfg = RandomGraphConfig {
            count: scaled(100, s, 30),
            vertices: 12,
            edges: 24,
            avg_labels: labels,
            label_pool: 12,
            uncertain_fraction: 0.25,
            perturbation: 2,
            ..Default::default()
        };
        let (table, d, u) = SyntheticSpec::er(14, cfg).generate_fresh();
        let (_, css) = sim_join(
            &table,
            &d,
            &u,
            JoinParams { strategy: JoinStrategy::CssOnly, ..JoinParams::simj(tau, alpha) },
        );
        let (_, simj) = sim_join(&table, &d, &u, JoinParams::simj(tau, alpha));
        let (_, opt) = sim_join(
            &table,
            &d,
            &u,
            JoinParams {
                strategy: JoinStrategy::SimJOpt { group_count: 8 },
                ..JoinParams::simj(tau, alpha)
            },
        );
        println!(
            "{:>6.1} | {:>10} {:>12} {:>10} | {:>9} {:>9} {:>9} {:>9}",
            labels,
            secs(simj.pruning_time),
            secs(simj.verification_time),
            secs(simj.response_time()),
            pct(css.candidate_ratio()),
            pct(simj.candidate_ratio()),
            pct(opt.candidate_ratio()),
            pct(simj.result_ratio()),
        );
    }
}
