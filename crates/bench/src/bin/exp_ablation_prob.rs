//! Ablation: probabilistic pruning power of the three similarity
//! probability upper bounds, measured on the CSS-surviving pairs of a
//! WebQ-like workload.
//!
//! * Markov (Theorem 4, with the wildcard refinement),
//! * the exact Poisson–binomial tail (the tightening the paper defers to
//!   future work),
//! * the group-refined bound of Algorithm 2 (GN = 8).
//!
//! Each row reports how many candidate pairs each bound prunes at the
//! given α, and how many of the *actual* results each would wrongly
//! prune (must be zero — soundness check in production).

use uqsj::ged::lb_ged_css_uncertain;
use uqsj::uncertain::{similarity_probability, ub_simp, ub_simp_exact_tail, ub_simp_grouped};
use uqsj_bench::{scale, webq};

fn main() {
    let s = scale();
    let d = webq(s * 0.5);
    let tau = 1u32;
    println!(
        "Probabilistic-bound ablation — WebQ-like, tau = {tau} (|U| = {}, |D| = {})\n",
        d.u_len(),
        d.d_len()
    );

    // CSS-surviving pairs.
    let mut survivors = Vec::new();
    for (gi, g) in d.u_graphs.iter().enumerate() {
        for (qi, q) in d.d_graphs.iter().enumerate() {
            if lb_ged_css_uncertain(&d.table, q, g) <= tau {
                survivors.push((qi, gi));
            }
        }
    }
    println!("CSS survivors: {} pairs\n", survivors.len());
    println!(
        "{:>5} {:>14} {:>14} {:>14} {:>12}",
        "alpha", "Markov prunes", "Tail prunes", "Group prunes", "unsound"
    );
    for alpha10 in [3, 5, 7, 9] {
        let alpha = alpha10 as f64 / 10.0;
        let mut markov = 0usize;
        let mut tail = 0usize;
        let mut grouped = 0usize;
        let mut unsound = 0usize;
        for &(qi, gi) in &survivors {
            let q = &d.d_graphs[qi];
            let g = &d.u_graphs[gi];
            let m = ub_simp(&d.table, q, g, tau) < alpha;
            let t = ub_simp_exact_tail(&d.table, q, g, tau) < alpha;
            let (gub, _) = ub_simp_grouped(&d.table, q, g, tau, 8);
            let gr = gub < alpha;
            markov += usize::from(m);
            tail += usize::from(t);
            grouped += usize::from(gr);
            if m || t || gr {
                // Soundness: a pruned pair must not actually qualify.
                if similarity_probability(&d.table, q, g, tau) >= alpha {
                    unsound += 1;
                }
            }
        }
        println!("{:>5.1} {:>14} {:>14} {:>14} {:>12}", alpha, markov, tail, grouped, unsound);
        assert_eq!(unsound, 0, "a probabilistic bound pruned a real result");
    }
    println!("\n(The exact tail dominates Markov; grouping adds structural group pruning.)");
}
