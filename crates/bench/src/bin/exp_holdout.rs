//! Held-out Q/A evaluation (stricter than Table 4's in-sample setting):
//! templates are mined from a *training* question workload, then used to
//! answer a disjoint *test* workload. Sweeping the training size shows
//! template coverage growing with the mined workload — the premise behind
//! the paper's "generate a large number of high quality templates
//! automatically" motivation (their WebQ run mines from 5,810 questions;
//! in-sample Table 4 hides the coverage dimension).
//!
//! The gAnswer-like and DEANNA-like baselines parse each question
//! directly, so their scores are training-size-independent references.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use uqsj::nlp::Lexicon;
use uqsj::prelude::*;
use uqsj::rdf::TripleStore;
use uqsj::simjoin::sim_join;
use uqsj::template::baselines::{deanna_like, ganswer_like};
use uqsj::template::metrics::QaScore;
use uqsj::template::{generate_template, TemplateLibrary, TemplateSource};
use uqsj::workload::datasets::assemble_dataset;
use uqsj::workload::{generate_pairs, KbConfig, KnowledgeBase, QaPair, QuestionConfig};
use uqsj_bench::{scale, scaled};

fn score_templates(
    library: &TemplateLibrary,
    lexicon: &Lexicon,
    store: &TripleStore,
    test: &[QaPair],
    min_phi: f64,
) -> (QaScore, usize) {
    let mut score = QaScore::new();
    let mut answered = 0usize;
    for pair in test {
        let gold: Vec<String> = uqsj::rdf::bgp::evaluate(store, &pair.sparql)
            .into_iter()
            .map(|r| r.join("\t"))
            .collect();
        let out = uqsj::template::answer_question(library, lexicon, store, &pair.question, min_phi);
        answered += usize::from(out.sparql.is_some());
        score.record(&out.answers, &gold);
    }
    (score, answered)
}

fn main() {
    let s = scale();
    let mut rng = SmallRng::seed_from_u64(47);
    let kb = KnowledgeBase::generate(&KbConfig::default(), &mut rng);
    let store = kb.triple_store();
    let test_pairs = generate_pairs(
        &kb,
        &QuestionConfig { count: scaled(120, s, 40), ..Default::default() },
        &mut rng,
    );

    // Baseline references (training-independent).
    let mut ganswer = QaScore::new();
    let mut deanna = QaScore::new();
    for pair in &test_pairs {
        let gold: Vec<String> = uqsj::rdf::bgp::evaluate(&store, &pair.sparql)
            .into_iter()
            .map(|r| r.join("\t"))
            .collect();
        ganswer.record(&ganswer_like(&kb.lexicon, &store, &pair.question), &gold);
        deanna.record(&deanna_like(&kb.lexicon, &store, &pair.question), &gold);
    }
    println!(
        "Held-out Q/A over {} unseen questions; gAnswer F1 = {:.2}, DEANNA F1 = {:.2}\n",
        test_pairs.len(),
        ganswer.f1(),
        deanna.f1()
    );
    println!(
        "{:>8} {:>10} {:>9} {:>11} {:>11}",
        "train |U|", "templates", "answered", "F1 (phi=1)", "F1 (phi=.6)"
    );

    for train_n in [60usize, 120, 240, 480, 960] {
        let train_n = scaled(train_n, s, 30);
        let mut train_rng = SmallRng::seed_from_u64(48);
        let train_pairs = generate_pairs(
            &kb,
            &QuestionConfig { count: train_n, ..Default::default() },
            &mut train_rng,
        );
        let kb_clone =
            KnowledgeBase::from_parts(kb.entities.clone(), kb.facts.clone(), kb.lexicon.clone());
        let train = assemble_dataset(kb_clone, train_pairs, scaled(60, s, 15), 3, &mut train_rng);
        let (matches, _) =
            sim_join(&train.table, &train.d_graphs, &train.u_graphs, JoinParams::simj(1, 0.6));
        let mut library = TemplateLibrary::new();
        for m in &matches {
            let src = TemplateSource {
                analysis: &train.analyses[m.g_index],
                query: &train.d_queries[m.q_index],
                query_terms: &train.d_terms[m.q_index],
                mapping: &m.mapping,
                confidence: m.prob,
            };
            if let Some(t) = generate_template(&src) {
                library.add(t);
            }
        }
        let (strict, answered) = score_templates(&library, &kb.lexicon, &store, &test_pairs, 1.0);
        let (partial, _) = score_templates(&library, &kb.lexicon, &store, &test_pairs, 0.6);
        println!(
            "{:>8} {:>10} {:>9} {:>11.2} {:>11.2}",
            train_n,
            library.len(),
            answered,
            strict.f1(),
            partial.f1()
        );
    }
    println!("\n(Template coverage — and with it F1 — grows with the mined workload;\n partial matching, Table 5's φ knob, extends coverage further.)");
}
