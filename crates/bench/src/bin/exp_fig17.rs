//! Fig. 17: effect of the number of relations k — the proportion ρ of
//! correct patterns having k relations, on the QALD-like and WebQ-like
//! workloads.
//!
//! Paper shape: simple patterns (small k) dominate the correct results;
//! ρ decreases with k ("if a natural language question is complex, the
//! generated semantic query graph may be incorrect probably").

use uqsj::pipeline::generate_templates;
use uqsj::prelude::*;
use uqsj::workload::DatasetConfig;
use uqsj_bench::{scale, scaled};

fn main() {
    let s = scale();
    for (name, dataset) in [
        (
            "QALD-3",
            uqsj::workload::qald_like(&DatasetConfig {
                questions: scaled(250, s, 60),
                distractors: scaled(80, s, 20),
                max_relations: 5,
                seed: 17,
            }),
        ),
        (
            "WebQ",
            uqsj::workload::webq_like(&DatasetConfig {
                questions: scaled(350, s, 80),
                distractors: scaled(300, s, 60),
                max_relations: 5,
                seed: 18,
            }),
        ),
    ] {
        let result = generate_templates(&dataset, JoinParams::simj(1, 0.6));
        // Correct pairs, bucketed by the question's relation count.
        let mut correct_by_k = [0usize; 6];
        let mut total_correct = 0usize;
        for m in &result.matches {
            if dataset.pair_is_correct(m.q_index, m.g_index) {
                let k = dataset.pairs[m.g_index].relations.min(5);
                correct_by_k[k] += 1;
                total_correct += 1;
            }
        }
        println!("\nFig. 17 — {name}: proportion of correct patterns by #relations k");
        println!("{:>3} {:>10} {:>8}", "k", "correct", "rho");
        for (k, &count) in correct_by_k.iter().enumerate().skip(1) {
            let rho = if total_correct == 0 { 0.0 } else { count as f64 / total_correct as f64 };
            println!("{:>3} {:>10} {:>7.1}%", k, count, rho * 100.0);
        }
    }
}
