//! Sampling-tier scale experiment: a join whose uncertain graphs carry
//! enough uncertain vertices (≥ 10 each, thousands of possible worlds)
//! that exact enumeration is the bottleneck, run under the adaptive
//! `--simp-mode auto` policy.
//!
//! The run fails (nonzero exit) if the auto join does not complete or if
//! the sampling tier never fires — the regime exists precisely so that
//! it must. Alongside the auto run it times the exact-only join on the
//! same workload and reports the tier split, the verdict agreement
//! (exempting pairs whose exact `SimP_τ` sits inside the ε band around
//! α), and the speedup.
//!
//! `--smoke` shrinks the workload for the CI gate; `--scale` grows it.

use std::process::ExitCode;
use std::time::Instant;
use uqsj::prelude::*;
use uqsj::workload::{erdos_renyi, RandomGraphConfig};
use uqsj_bench::{scale, scaled, secs};

fn main() -> ExitCode {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let s = if smoke { 0.5 } else { scale() };
    let uncertain_vertices = if smoke { 10 } else { 12 };
    let mut table = SymbolTable::new();
    let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(27);
    let cfg = RandomGraphConfig {
        count: scaled(12, s, 6),
        vertices: uncertain_vertices,
        edges: uncertain_vertices + uncertain_vertices / 2,
        label_pool: 6,
        avg_labels: 2.0,
        uncertain_fraction: 1.0,
        perturbation: 3,
        ..Default::default()
    };
    let (d, u) = erdos_renyi(&mut table, &cfg, &mut rng);
    let worlds_min = u.iter().map(|g| g.world_count()).min().unwrap_or(0);
    let worlds_max = u.iter().map(|g| g.world_count()).max().unwrap_or(0);
    println!(
        "sampling-tier scale — {} x {} pairs, {} uncertain vertices/graph, \
         {worlds_min}..{worlds_max} possible worlds",
        d.len(),
        u.len(),
        uncertain_vertices
    );

    let (tau, alpha, eps) = (5u32, 0.2f64, 0.05f64);
    let exact_params = JoinParams::simj(tau, alpha);
    let auto_params =
        JoinParams { simp: SimpPolicy::auto(eps, 0.05, 42).with_threshold(256), ..exact_params };

    let started = Instant::now();
    let (auto_matches, auto_stats) = sim_join(&table, &d, &u, auto_params);
    let auto_elapsed = started.elapsed();
    println!(
        "auto:  {} results in {}s | tiers: exact {} sampled {} | worlds verified {} sampled {}",
        auto_matches.len(),
        secs(auto_elapsed),
        auto_stats.verified_exact,
        auto_stats.verified_sampled,
        auto_stats.worlds_verified,
        auto_stats.worlds_sampled,
    );
    if auto_stats.verified_sampled == 0 {
        eprintln!(
            "FAIL: the sampling tier never fired — every candidate fell below the \
             world-count threshold, so the experiment exercised nothing"
        );
        return ExitCode::FAILURE;
    }

    let started = Instant::now();
    let (exact_matches, exact_stats) = sim_join(&table, &d, &u, exact_params);
    let exact_elapsed = started.elapsed();
    println!(
        "exact: {} results in {}s | worlds verified {}",
        exact_matches.len(),
        secs(exact_elapsed),
        exact_stats.worlds_verified,
    );

    // Verdict agreement: symmetric difference of the match sets, with
    // pairs inside the ε band around α exempt (the tier's contract).
    let keys = |ms: &[JoinMatch]| {
        let mut ks: Vec<(usize, usize)> = ms.iter().map(|m| (m.q_index, m.g_index)).collect();
        ks.sort_unstable();
        ks
    };
    let (auto_keys, exact_keys) = (keys(&auto_matches), keys(&exact_matches));
    let mut out_of_band = 0usize;
    let mut in_band = 0usize;
    for &(qi, gi) in auto_keys
        .iter()
        .filter(|k| !exact_keys.contains(k))
        .chain(exact_keys.iter().filter(|k| !auto_keys.contains(k)))
    {
        let p = uqsj::uncertain::verify_simp(&table, &d[qi], &u[gi], tau, f64::INFINITY).prob;
        if (p - alpha).abs() <= eps {
            in_band += 1;
        } else {
            out_of_band += 1;
            eprintln!("disagreement outside the ε band: pair ({qi}, {gi}) exact SimP {p}");
        }
    }
    println!(
        "agreement: {} shared, {} ε-band disagreements, {} out-of-band | speedup {:.2}x",
        auto_keys.iter().filter(|k| exact_keys.contains(k)).count(),
        in_band,
        out_of_band,
        exact_elapsed.as_secs_f64() / auto_elapsed.as_secs_f64().max(1e-9),
    );
    if out_of_band > 0 {
        eprintln!("FAIL: {out_of_band} verdicts flipped outside the tier's (ε,δ) contract");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
