//! Fig. 11: effect of α on the WebQ-like workload, τ = 1.
//!
//! (a) response time (pruning / verification / overall) vs α — pruning
//! time is flat; verification shrinks as α grows.
//! (b) candidate ratio vs α for CSS-only / SimJ / SimJ+opt / Real —
//! SimJ+opt prunes hardest; CSS-only is α-insensitive.

use uqsj::prelude::*;
use uqsj_bench::{pct, scale, secs, webq};

fn main() {
    let s = scale();
    let d = webq(s);
    println!("Fig. 11 — WebQ-like, tau = 1 (|U| = {}, |D| = {})\n", d.u_len(), d.d_len());
    println!(
        "{:>5} | {:>10} {:>12} {:>10} | {:>9} {:>9} {:>9} {:>9}",
        "alpha", "prune(s)", "verify(s)", "total(s)", "CSS", "SimJ", "SimJ+opt", "Real"
    );
    for i in 1..=9 {
        let alpha = i as f64 / 10.0;
        let (_, css) = sim_join(
            &d.table,
            &d.d_graphs,
            &d.u_graphs,
            JoinParams { strategy: JoinStrategy::CssOnly, ..JoinParams::simj(1, alpha) },
        );
        let (_, simj) = sim_join(&d.table, &d.d_graphs, &d.u_graphs, JoinParams::simj(1, alpha));
        let (_, opt) = sim_join(
            &d.table,
            &d.d_graphs,
            &d.u_graphs,
            JoinParams {
                strategy: JoinStrategy::SimJOpt { group_count: 8 },
                ..JoinParams::simj(1, alpha)
            },
        );
        println!(
            "{:>5.1} | {:>10} {:>12} {:>10} | {:>9} {:>9} {:>9} {:>9}",
            alpha,
            secs(simj.pruning_time),
            secs(simj.verification_time),
            secs(simj.response_time()),
            pct(css.candidate_ratio()),
            pct(simj.candidate_ratio()),
            pct(opt.candidate_ratio()),
            pct(simj.result_ratio()),
        );
    }
}
