//! Fig. 9: effect of the similarity probability threshold α ∈ [0.1, 0.9]
//! at τ = 1 on QALD-like, WebQ-like and MM-like workloads.
//!
//! (a) precision vs α — grows with α; MM (closed domain) sits highest.
//! (b) correct answers |C| vs α — shrinks with α.

use uqsj::pipeline::{generate_templates, join_quality};
use uqsj::prelude::*;
use uqsj_bench::{mm, qald, scale, webq};

fn main() {
    let s = scale();
    let datasets = [("QALD3", qald(s)), ("WebQ", webq(s)), ("MM", mm(s))];
    println!("Fig. 9 — tau = 1, alpha sweep\n");
    println!(
        "{:>5} | {:>10} {:>10} {:>10} | {:>8} {:>8} {:>8}",
        "alpha", "P(QALD3)", "P(WebQ)", "P(MM)", "C(QALD3)", "C(WebQ)", "C(MM)"
    );
    for i in 1..=9 {
        let alpha = i as f64 / 10.0;
        let mut precisions = Vec::new();
        let mut corrects = Vec::new();
        for (_, dataset) in &datasets {
            let result = generate_templates(dataset, JoinParams::simj(1, alpha));
            let (correct, precision) = join_quality(dataset, &result.matches);
            precisions.push(precision);
            corrects.push(correct);
        }
        println!(
            "{:>5.1} | {:>9.2}% {:>9.2}% {:>9.2}% | {:>8} {:>8} {:>8}",
            alpha,
            precisions[0] * 100.0,
            precisions[1] * 100.0,
            precisions[2] * 100.0,
            corrects[0],
            corrects[1],
            corrects[2]
        );
    }
}
