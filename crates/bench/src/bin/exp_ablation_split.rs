//! Ablation: the two possible-world-group split heuristics of Sec. 6.2
//! (highest existence probability vs. most labels) against the cost-model
//! selection that picks per pair (`ub_simp_grouped`).
//!
//! Reported per GN: the summed grouped upper bound over CSS-surviving
//! pairs (lower = more pruning potential) under each policy.

use uqsj::ged::bounds::css::css_terms_uncertain;
use uqsj::ged::lb_ged_css_uncertain;
use uqsj::testkit::SyntheticSpec;
use uqsj::uncertain::groups::{partition_groups, SplitHeuristic};
use uqsj::uncertain::ub_simp_grouped;
use uqsj::workload::RandomGraphConfig;
use uqsj_bench::{scale, scaled};

fn main() {
    let s = scale();
    let cfg = RandomGraphConfig {
        count: scaled(60, s, 20),
        vertices: 12,
        edges: 2,
        avg_labels: 3.0,
        uncertain_fraction: 0.4,
        perturbation: 2,
        ..Default::default()
    };
    let (table, d, u) = SyntheticSpec::sf(23, cfg).generate_fresh();
    let tau = 2u32;

    let mut survivors = Vec::new();
    for g in &u {
        for q in &d {
            if lb_ged_css_uncertain(&table, q, g) <= tau {
                survivors.push((q, g));
            }
        }
    }
    println!(
        "Split-heuristic ablation — SF, tau = {tau}, {} CSS-surviving pairs\n",
        survivors.len()
    );
    println!("{:>4} {:>14} {:>14} {:>14}", "GN", "HighestMass", "MostLabels", "cost model");
    for gn in [2usize, 4, 8, 16] {
        let mut sums = [0.0f64; 3];
        for &(q, g) in &survivors {
            let terms = css_terms_uncertain(&table, q, g);
            for (i, h) in
                [SplitHeuristic::HighestMass, SplitHeuristic::MostLabels].into_iter().enumerate()
            {
                let groups = partition_groups(&table, q, g, tau, gn, h);
                let ub: f64 = groups
                    .iter()
                    .filter(|grp| grp.lb_ged(&table, q, g) <= tau)
                    .map(|grp| grp.ub_contribution(&table, q, tau, &terms))
                    .sum::<f64>()
                    .min(1.0);
                sums[i] += ub;
            }
            let (ub, _) = ub_simp_grouped(&table, q, g, tau, gn);
            sums[2] += ub;
        }
        println!("{:>4} {:>14.2} {:>14.2} {:>14.2}", gn, sums[0], sums[1], sums[2]);
        // The cost model can never be worse than the better heuristic.
        assert!(sums[2] <= sums[0].min(sums[1]) + 1e-6);
    }
    println!("\n(Lower is tighter; the cost model tracks the better heuristic per pair.)");
}
