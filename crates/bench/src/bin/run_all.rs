//! Run every experiment binary in sequence, producing the full
//! EXPERIMENTS.md raw output.
//!
//! `cargo run --release -p uqsj-bench --bin run_all [-- --scale 1.0]`

use std::process::Command;

const EXPERIMENTS: [&str; 16] = [
    "exp_table2",
    "exp_table3",
    "exp_fig9",
    "exp_case_study",
    "exp_fig11",
    "exp_fig12",
    "exp_fig13",
    "exp_fig14",
    "exp_fig15",
    "exp_table4",
    "exp_table5",
    "exp_fig17",
    "exp_ablation_prob",
    "exp_ablation_split",
    "exp_holdout",
    "exp_scale",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let exe_dir =
        std::env::current_exe().expect("current exe").parent().expect("exe dir").to_path_buf();
    // exp_fig18 shares exp_table3's dataset; run it last.
    for exp in EXPERIMENTS.iter().chain(["exp_fig18"].iter()) {
        println!("\n==================== {exp} ====================\n");
        let status = Command::new(exe_dir.join(exp))
            .args(&args)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {exp}: {e}"));
        if !status.success() {
            eprintln!("{exp} exited with {status}");
            std::process::exit(1);
        }
    }
}
