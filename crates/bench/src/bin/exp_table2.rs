//! Table 2: statistics of the data sets.
//!
//! Paper values (for shape comparison; our sets are synthetic stand-ins):
//! QALD3 |U|=200 avg|V|=5.73 avg|E|=4.51 avg|LV|=4.50 |D|=200;
//! WebQ 5,810 / 6.15 / 5.14 / 4.39 / 73,057; ER 100,000 / 64.86 / 157.07 /
//! 9.39 / 100,000; SF 100,000 / 63.35 / 88.61 / 13.52 / 100,000;
//! MM 23,250 / 5.35 / 4.92 / 4.21 / 2,500.

use uqsj::testkit::SyntheticSpec;
use uqsj::workload::{DatasetStats, RandomGraphConfig};
use uqsj_bench::{mm, qald, scale, scaled, webq};

fn main() {
    let s = scale();
    println!("Table 2: statistics of data sets (scale {s})\n");
    println!("{}", DatasetStats::header());

    let d = qald(s);
    println!("{}", DatasetStats::compute("QALD3", &d.u_graphs, d.d_len()).row());
    let d = webq(s);
    println!("{}", DatasetStats::compute("WebQ", &d.u_graphs, d.d_len()).row());

    let er_cfg = RandomGraphConfig {
        count: scaled(200, s, 50),
        vertices: 16,
        edges: 36,
        avg_labels: 3.0,
        ..Default::default()
    };
    let (_, er_d, er_u) = SyntheticSpec::er(1, er_cfg).generate_fresh();
    println!("{}", DatasetStats::compute("ER", &er_u, er_d.len()).row());

    let sf_cfg = RandomGraphConfig {
        count: scaled(200, s, 50),
        vertices: 16,
        edges: 2,
        avg_labels: 3.0,
        ..Default::default()
    };
    let (_, sf_d, sf_u) = SyntheticSpec::sf(2, sf_cfg).generate_fresh();
    println!("{}", DatasetStats::compute("SF", &sf_u, sf_d.len()).row());

    let d = mm(s);
    println!("{}", DatasetStats::compute("MM", &d.u_graphs, d.d_len()).row());

    let aids_cfg =
        RandomGraphConfig { count: scaled(200, s, 50), vertices: 14, ..Default::default() };
    let (_, a_d, a_u) = SyntheticSpec::aids(3, aids_cfg).generate_fresh();
    println!("{}", DatasetStats::compute("AIDS*", &a_u, a_d.len()).row());
    println!("\n(AIDS* appears in Fig. 15 only; scaled-down synthetic stand-ins throughout.)");
}
