//! Scaling: join response time vs |D| (the dimension the paper pushes to
//! 73,057 queries), comparing the plain nested-loop SimJ against the
//! size-indexed driver. Result sets are identical (property-tested
//! elsewhere); only where the structural pruning cost is paid differs.

use uqsj::prelude::*;
use uqsj::simjoin::sim_join_indexed;
use uqsj::workload::DatasetConfig;
use uqsj_bench::{scale, scaled, secs};

fn main() {
    let s = scale();
    println!("Join scaling — tau = 1, alpha = 0.8, |U| fixed\n");
    println!(
        "{:>7} {:>7} | {:>11} {:>11} | {:>9} {:>9}",
        "|D|", "|U|", "plain(s)", "indexed(s)", "results", "agree"
    );
    for d_target in [250usize, 500, 1000, 2000] {
        let d_target = scaled(d_target, s, 100);
        let dataset = uqsj::workload::webq_like(&DatasetConfig {
            questions: scaled(150, s, 50),
            distractors: d_target,
            seed: 53,
            ..Default::default()
        });
        let params = JoinParams::simj(1, 0.8);
        let started = std::time::Instant::now();
        let (plain, _) = sim_join(&dataset.table, &dataset.d_graphs, &dataset.u_graphs, params);
        let plain_t = started.elapsed();
        let started = std::time::Instant::now();
        let (indexed, _) =
            sim_join_indexed(&dataset.table, &dataset.d_graphs, &dataset.u_graphs, params);
        let indexed_t = started.elapsed();
        let agree = {
            let key = |m: &JoinMatch| (m.g_index, m.q_index);
            let mut a: Vec<_> = plain.iter().map(key).collect();
            a.sort_unstable();
            let mut b: Vec<_> = indexed.iter().map(key).collect();
            b.sort_unstable();
            a == b
        };
        println!(
            "{:>7} {:>7} | {:>11} {:>11} | {:>9} {:>9}",
            dataset.d_len(),
            dataset.u_len(),
            secs(plain_t),
            secs(indexed_t),
            plain.len(),
            agree
        );
        assert!(agree, "indexed join diverged from plain join");
    }
}
