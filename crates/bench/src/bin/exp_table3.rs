//! Table 3: effect of the GED threshold τ ∈ {0, 1, 2} at α = 0.9 on the
//! QALD-like and WebQ-like workloads: |R|, precision, response time.
//!
//! Paper shape: τ=0 gives 100% precision but few answers; τ=1 many more
//! answers at a small precision cost; τ=2 floods with noise (precision
//! drops to ~50%/38%).

use uqsj::pipeline::{generate_templates, join_quality};
use uqsj::prelude::*;
use uqsj_bench::{qald, scale, secs, webq};

fn main() {
    let s = scale();
    for (name, dataset) in [("QALD-3", qald(s)), ("WebQ", webq(s))] {
        println!(
            "\nTable 3 — {name} (|U| = {}, |D| = {}), alpha = 0.9",
            dataset.u_len(),
            dataset.d_len()
        );
        println!(
            "{:>4} {:>8} {:>11} {:>10} {:>10}",
            "tau", "|R|", "precision", "time(s)", "templates"
        );
        for tau in 0..=2u32 {
            let params = JoinParams::simj(tau, 0.9);
            let result = generate_templates(&dataset, params);
            let (_, precision) = join_quality(&dataset, &result.matches);
            println!(
                "{:>4} {:>8} {:>10.2}% {:>10} {:>10}",
                tau,
                result.matches.len(),
                precision * 100.0,
                secs(result.stats.response_time()),
                result.library.len()
            );
        }
    }
}
