//! RDF store microbenchmarks: load, single-pattern scans, BGP joins (the
//! Q/A execution substrate of Sec. 2.2).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;
use uqsj::workload::{KbConfig, KnowledgeBase};

fn bench_store(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(31);
    let kb = KnowledgeBase::generate(
        &KbConfig { entities_per_class: 60, facts_per_entity: 4, ..Default::default() },
        &mut rng,
    );

    c.bench_function("store_build", |b| {
        b.iter(|| {
            let s = kb.triple_store();
            black_box(s.len())
        })
    });

    let store = kb.triple_store();
    let ty = store.dict.get("type").unwrap();
    c.bench_function("scan_by_predicate", |b| {
        b.iter(|| black_box(store.scan(None, Some(ty), None)).len())
    });

    let q2 = uqsj::sparql::parse(
        "SELECT ?x ?u WHERE { ?x type Politician . ?x graduatedFrom ?u . ?u locatedIn ?c . }",
    )
    .unwrap();
    c.bench_function("bgp_three_patterns", |b| {
        b.iter(|| uqsj::rdf::bgp::evaluate(&store, black_box(&q2)).len())
    });
}

criterion_group!(benches, bench_store);
criterion_main!(benches);
