//! Storage-engine microbenchmarks (ISSUE 2): cold-start load of the
//! binary snapshot vs parsing the equivalent text artifacts (the ratio
//! is printed once before the Criterion runs), and WAL append
//! throughput with per-batch fsync.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Instant;
use uqsj::prelude::*;
use uqsj::storage::snapshot::{decode_snapshot, encode_snapshot};
use uqsj::storage::StorageEngine;

struct Artifacts {
    snapshot_bytes: Vec<u8>,
    templates_text: String,
    lexicon_text: String,
    kb_text: String,
    library: uqsj::template::TemplateLibrary,
}

fn artifacts() -> Artifacts {
    let dataset =
        qald_like(&DatasetConfig { questions: 120, distractors: 80, ..Default::default() });
    let result = uqsj::pipeline::generate_templates(&dataset, JoinParams::simj(1, 0.5));
    let triples = dataset.kb.triple_store();
    Artifacts {
        snapshot_bytes: encode_snapshot(1, &result.library, &dataset.kb.lexicon, &triples),
        templates_text: uqsj::template::io::to_text(&result.library),
        lexicon_text: uqsj::nlp::lexicon_io::to_text(&dataset.kb.lexicon),
        kb_text: uqsj::rdf::ntriples::to_ntriples(&triples),
        library: result.library,
    }
}

fn text_cold_start(a: &Artifacts) -> usize {
    let library = uqsj::template::io::from_text(&a.templates_text).expect("templates");
    let _lexicon = uqsj::nlp::lexicon_io::from_text(&a.lexicon_text).expect("lexicon");
    let mut store = uqsj::rdf::TripleStore::new();
    uqsj::rdf::ntriples::load_str(&mut store, &a.kb_text).expect("kb");
    library.len() + store.len()
}

fn snapshot_cold_start(a: &Artifacts) -> usize {
    let (state, _) = decode_snapshot(&a.snapshot_bytes).expect("snapshot");
    state.library.len() + state.triples.len()
}

fn report_cold_start_ratio(a: &Artifacts) {
    let iters = 20;
    let t0 = Instant::now();
    for _ in 0..iters {
        criterion::black_box(text_cold_start(a));
    }
    let text = t0.elapsed();
    let t1 = Instant::now();
    for _ in 0..iters {
        criterion::black_box(snapshot_cold_start(a));
    }
    let snap = t1.elapsed();
    println!(
        "cold start ({} templates, {} snapshot bytes): text {:?} vs snapshot {:?} — {:.2}x",
        a.library.len(),
        a.snapshot_bytes.len(),
        text / iters,
        snap / iters,
        text.as_secs_f64() / snap.as_secs_f64()
    );
}

fn bench_storage(c: &mut Criterion) {
    let a = artifacts();
    report_cold_start_ratio(&a);

    let mut group = c.benchmark_group("storage");
    group.sample_size(10);

    group.bench_function("text_cold_start", |b| {
        b.iter(|| criterion::black_box(text_cold_start(&a)))
    });
    group.bench_function("snapshot_cold_start", |b| {
        b.iter(|| criterion::black_box(snapshot_cold_start(&a)))
    });

    // WAL append throughput: one fsynced batch of 8 templates per
    // iteration, the unit of work an ingest burst commits.
    let wal_dir = std::env::temp_dir().join(format!("uqsj-bench-wal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&wal_dir);
    let (mut engine, _) = StorageEngine::open(&wal_dir).expect("open wal dir");
    let batch: Vec<Template> = a.library.templates().iter().take(8).cloned().collect();
    group.bench_function("wal_append_8_fsync", |b| {
        b.iter(|| engine.append_templates(criterion::black_box(&batch)).expect("append"))
    });
    group.finish();
    drop(engine);
    let _ = std::fs::remove_dir_all(&wal_dir);
}

criterion_group!(benches, bench_storage);
criterion_main!(benches);
