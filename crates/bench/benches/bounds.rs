//! Microbenchmarks of every GED lower bound (the ablation behind
//! Fig. 15(a): per-pair filtering cost).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;
use uqsj::ged::bounds::css::CssBound;
use uqsj::ged::bounds::cstar::CStarBound;
use uqsj::ged::bounds::kat::KatBound;
use uqsj::ged::bounds::label_multiset::LabelMultisetBound;
use uqsj::ged::bounds::partition::ParsBound;
use uqsj::ged::bounds::path_gram::PathBound;
use uqsj::ged::bounds::segos::SegosBound;
use uqsj::ged::bounds::size::SizeBound;
use uqsj::ged::bounds::LowerBound;
use uqsj::graph::SymbolTable;
use uqsj::workload::{aids_like, RandomGraphConfig};

fn bench_bounds(c: &mut Criterion) {
    let mut table = SymbolTable::new();
    let mut rng = SmallRng::seed_from_u64(99);
    let cfg = RandomGraphConfig { count: 16, vertices: 14, ..Default::default() };
    let (d, u) = aids_like(&mut table, &cfg, &mut rng);

    let mut group = c.benchmark_group("lower_bounds_uncertain");
    let bounds: Vec<Box<dyn LowerBound>> = vec![
        Box::new(SizeBound),
        Box::new(LabelMultisetBound),
        Box::new(CssBound),
        Box::new(CStarBound),
        Box::new(PathBound),
        Box::new(SegosBound),
        Box::new(ParsBound::default()),
        Box::new(KatBound::default()),
    ];
    for b in &bounds {
        group.bench_function(b.name(), |bench| {
            bench.iter(|| {
                let mut acc = 0u64;
                for q in &d {
                    for g in &u {
                        acc += u64::from(b.uncertain(&table, black_box(q), black_box(g)));
                    }
                }
                acc
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bounds);
criterion_main!(benches);
