//! Verification fast-path ablation: τ-bounded A\* alone versus the
//! bipartite-upper-bound fast accept followed by A\* fallback (the path
//! `verify_simp` actually takes).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;
use uqsj::ged::{ged_bounded, ged_upper_bipartite};
use uqsj::graph::SymbolTable;
use uqsj::workload::{erdos_renyi, RandomGraphConfig};

fn bench_verify(c: &mut Criterion) {
    let mut table = SymbolTable::new();
    let mut rng = SmallRng::seed_from_u64(41);
    let cfg = RandomGraphConfig {
        count: 12,
        vertices: 10,
        edges: 18,
        perturbation: 1,
        ..Default::default()
    };
    let (d, u) = erdos_renyi(&mut table, &cfg, &mut rng);
    // Materialize one world per uncertain graph as the "verification"
    // workload: diagonal pairs are similar, off-diagonal dissimilar.
    let worlds: Vec<_> = u.iter().map(|g| g.possible_worlds().next().unwrap().graph).collect();
    let tau = 3u32;

    let mut group = c.benchmark_group("verification");
    group.sample_size(10);
    group.bench_function("bounded_astar_only", |b| {
        b.iter(|| {
            let mut hits = 0u32;
            for q in &d {
                for w in &worlds {
                    hits +=
                        u32::from(ged_bounded(&table, black_box(q), black_box(w), tau).is_some());
                }
            }
            hits
        })
    });
    group.bench_function("upper_bound_fast_accept", |b| {
        b.iter(|| {
            let mut hits = 0u32;
            for q in &d {
                for w in &worlds {
                    let accepted = ged_upper_bipartite(&table, q, w).distance <= tau
                        || ged_bounded(&table, q, w, tau).is_some();
                    hits += u32::from(accepted);
                }
            }
            hits
        })
    });
    group.finish();
}

criterion_group!(benches, bench_verify);
criterion_main!(benches);
