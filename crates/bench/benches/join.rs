//! Join-strategy microbenchmarks: CSS-only vs SimJ vs SimJ+opt on a small
//! ER workload (the per-strategy cost behind Figs. 11–13).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use uqsj::graph::SymbolTable;
use uqsj::prelude::*;
use uqsj::workload::{erdos_renyi, RandomGraphConfig};

fn bench_join(c: &mut Criterion) {
    let mut table = SymbolTable::new();
    let mut rng = SmallRng::seed_from_u64(21);
    let cfg = RandomGraphConfig {
        count: 24,
        vertices: 10,
        edges: 18,
        avg_labels: 3.0,
        ..Default::default()
    };
    let (d, u) = erdos_renyi(&mut table, &cfg, &mut rng);

    let mut group = c.benchmark_group("sim_join_24x24");
    group.sample_size(10);
    for (name, strategy) in [
        ("css_only", JoinStrategy::CssOnly),
        ("simj", JoinStrategy::SimJ),
        ("simj_opt", JoinStrategy::SimJOpt { group_count: 8 }),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| sim_join(&table, &d, &u, JoinParams { tau: 2, alpha: 0.5, strategy }))
        });
    }
    group.bench_function("simj_parallel_4", |b| {
        b.iter(|| uqsj::simjoin::sim_join_parallel(&table, &d, &u, JoinParams::simj(2, 0.5), 4))
    });
    group.bench_function("simj_indexed", |b| {
        b.iter(|| uqsj::simjoin::sim_join_indexed(&table, &d, &u, JoinParams::simj(2, 0.5)))
    });
    group.bench_function("topk_1", |b| {
        b.iter(|| uqsj::simjoin::sim_join_topk(&table, &d, &u, 2, 1))
    });
    group.finish();
}

criterion_group!(benches, bench_join);
criterion_main!(benches);
