//! Join-strategy microbenchmarks: CSS-only vs SimJ vs SimJ+opt on a small
//! ER workload (the per-strategy cost behind Figs. 11–13), plus a
//! deep-verification group where every vertex is uncertain and τ sits at
//! the typical edit distance, so verification dominates.
//!
//! Besides the criterion runs, the binary writes `BENCH_join.json` at the
//! repo root: pairs/sec and worlds-verified/sec through the incremental
//! [`GedEngine`], p50/p99 per-pair verification time, and the speedup over
//! the retained naive reference (materialize every possible world, search
//! it from scratch) on the identical deep workload.

use criterion::{criterion_group, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};
use uqsj::ged::bounds::all_bounds;
use uqsj::ged::reference::ged_bounded_reference;
use uqsj::ged::upper::ged_upper_bipartite;
use uqsj::ged::GedEngine;
use uqsj::graph::{SymbolTable, UncertainGraph};
use uqsj::prelude::*;
use uqsj::sample::{sample_simp_with, SampleParams};
use uqsj::uncertain::verify_simp_with;
use uqsj::workload::{erdos_renyi, RandomGraphConfig};

fn bench_join(c: &mut Criterion) {
    let mut table = SymbolTable::new();
    let mut rng = SmallRng::seed_from_u64(21);
    let cfg = RandomGraphConfig {
        count: 24,
        vertices: 10,
        edges: 18,
        avg_labels: 3.0,
        ..Default::default()
    };
    let (d, u) = erdos_renyi(&mut table, &cfg, &mut rng);

    let mut group = c.benchmark_group("sim_join_24x24");
    group.sample_size(10);
    for (name, strategy) in [
        ("css_only", JoinStrategy::CssOnly),
        ("simj", JoinStrategy::SimJ),
        ("simj_opt", JoinStrategy::SimJOpt { group_count: 8 }),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| sim_join(&table, &d, &u, JoinParams { strategy, ..JoinParams::simj(2, 0.5) }))
        });
    }
    group.bench_function("simj_parallel_4", |b| {
        b.iter(|| uqsj::simjoin::sim_join_parallel(&table, &d, &u, JoinParams::simj(2, 0.5), 4))
    });
    group.bench_function("simj_indexed", |b| {
        b.iter(|| uqsj::simjoin::sim_join_indexed(&table, &d, &u, JoinParams::simj(2, 0.5)))
    });
    group.bench_function("topk_1", |b| {
        b.iter(|| uqsj::simjoin::sim_join_topk(&table, &d, &u, 2, 1))
    });
    group.finish();

    // Deep-verification regime: every vertex uncertain (many worlds per
    // graph) and τ at the typical perturbation distance, so candidate
    // pairs survive the filters and A\* runs on most worlds.
    let (dd, du) = deep_workload(&mut table);
    let mut group = c.benchmark_group("deep_verify_10x10");
    group.sample_size(10);
    group.bench_function("simj", |b| {
        b.iter(|| sim_join(&table, &dd, &du, JoinParams::simj(3, 0.5)))
    });
    group.finish();

    // Skewed regime: the deep pairs drowned in distractors the first two
    // fixed stages cannot prune. The adaptive planner re-learns the
    // cascade order per iteration (a fresh runtime each call, as any
    // cold-started join would).
    let (sd, su, stau) = skewed_workload(&mut table);
    let mut group = c.benchmark_group("cascade_skewed");
    group.sample_size(10);
    group.bench_function("fixed", |b| {
        b.iter(|| sim_join(&table, &sd, &su, JoinParams::simj(stau, 0.5)))
    });
    group.bench_function("adaptive", |b| {
        b.iter(|| {
            let params = JoinParams::simj(stau, 0.5)
                .with_cascade(CascadePolicy::adaptive().with_probe_interval(1024));
            sim_join(&table, &sd, &su, params)
        })
    });
    group.finish();
}

fn deep_workload(table: &mut SymbolTable) -> (Vec<Graph>, Vec<UncertainGraph>) {
    let mut rng = SmallRng::seed_from_u64(33);
    let cfg = RandomGraphConfig {
        count: 10,
        vertices: 8,
        edges: 12,
        label_pool: 6,
        avg_labels: 2.0,
        uncertain_fraction: 1.0,
        perturbation: 3,
        ..Default::default()
    };
    erdos_renyi(table, &cfg, &mut rng)
}

/// The deep pairs plus a flood of distractor queries screened so that
/// (a) every flood pair is pruned by a cheap bound — no distractor ever
/// reaches verification — and (b) for at least half the uncertain graphs
/// the pair is *lm-blind*: the label-multiset bound passes (≤ τ) and
/// only CSS prunes it (> τ). A fixed cascade pays size + lm before CSS
/// can fire on every blind pair; an adaptive planner learns CSS has the
/// highest selectivity-per-cost and runs it first. Returns `(d, u, tau)`
/// with `d = 10 deep queries + the flood`.
fn skewed_workload(table: &mut SymbolTable) -> (Vec<Graph>, Vec<UncertainGraph>, u32) {
    let tau = 3u32;
    let (mut d, u) = deep_workload(table);
    let deep_d = d.len();
    let bounds = all_bounds();
    let by =
        |label: &str| bounds.iter().find(|b| b.stage_label() == label).expect("registry bound");
    let (lm, css) = (by("label_multiset"), by("css"));
    // Same shape and label pool as the deep pairs, so the size bound
    // stays blind; the screen below selects for label-compatible but
    // structurally divergent graphs (~3% of random candidates qualify,
    // hence the large candidate pool).
    let mut rng = SmallRng::seed_from_u64(77);
    let cfg = RandomGraphConfig {
        count: 60_000,
        vertices: 8,
        edges: 12,
        label_pool: 6,
        avg_labels: 2.0,
        ..Default::default()
    };
    let (cands, _) = erdos_renyi(table, &cfg, &mut rng);
    let target = deep_d + 1500;
    for q in cands {
        if d.len() >= target {
            break;
        }
        let mut cheaply_pruned = true;
        let mut blind = 0usize;
        for g in &u {
            let lm_passes = lm.uncertain(table, &q, g) <= tau;
            let css_fires = css.uncertain(table, &q, g) > tau;
            if lm_passes && !css_fires {
                cheaply_pruned = false; // would reach verification
                break;
            }
            if lm_passes && css_fires {
                blind += 1;
            }
        }
        if cheaply_pruned && blind * 2 >= u.len() {
            d.push(q);
        }
    }
    assert!(
        d.len() - deep_d >= 500,
        "skewed workload too thin: only {} qualifying distractors",
        d.len() - deep_d
    );
    (d, u, tau)
}

/// The pre-engine verification path: materialize each possible world as a
/// fresh `Graph`, CSS-filter it, and search it with the retained naive
/// reference A\* — the same decision procedure `verify_simp` runs, minus
/// every amortization this PR added.
fn verify_naive(
    table: &SymbolTable,
    q: &Graph,
    g: &UncertainGraph,
    tau: u32,
    alpha: f64,
) -> (f64, usize) {
    let total_mass: f64 = g.vertices().iter().map(|v| v.mass()).product();
    let mut acc = 0.0f64;
    let mut remaining = total_mass;
    let mut verified = 0usize;
    let mut worlds: Vec<_> = g.possible_worlds().collect();
    if g.vertex_count() > 0 && g.world_count() != 1 && g.world_count() <= 4096 {
        worlds.sort_by(|a, b| b.prob.partial_cmp(&a.prob).expect("finite probability"));
    }
    for w in &worlds {
        remaining -= w.prob;
        if lb_ged_css_certain(table, q, &w.graph) <= tau {
            verified += 1;
            let ub = ged_upper_bipartite(table, q, &w.graph);
            let hit = ub.distance == 0
                || ged_bounded_reference(table, q, &w.graph, tau.min(ub.distance)).is_some();
            if hit {
                acc += w.prob;
            }
        }
        if acc >= alpha || acc + remaining < alpha {
            break;
        }
    }
    (acc, verified)
}

/// A chain pair with `k` uncertain vertices of two alternatives each
/// (2^k possible worlds): the certain chain plus a per-vertex 0.7/0.3
/// label split, so a world's GED to `q` is its mismatch count.
fn chain_pair(t: &mut SymbolTable, k: usize) -> (Graph, UncertainGraph) {
    let mut bq = GraphBuilder::new(t);
    for i in 0..k {
        bq.vertex(&format!("v{i}"), &format!("L{}", i % 4));
    }
    for i in 1..k {
        bq.edge(&format!("v{}", i - 1), &format!("v{i}"), "e");
    }
    let q = bq.into_graph();
    let mut bg = GraphBuilder::new(t);
    for i in 0..k {
        let keep = format!("L{}", i % 4);
        let alt = format!("X{}", i % 3);
        bg.uncertain_vertex(&format!("v{i}"), &[(keep.as_str(), 0.7), (alt.as_str(), 0.3)]);
    }
    for i in 1..k {
        bg.edge(&format!("v{}", i - 1), &format!("v{i}"), "e");
    }
    (q, bg.into_uncertain())
}

/// Exact-vs-sample crossover on chain pairs of growing world count: the
/// same decision through full enumeration and through the Monte-Carlo
/// tier, timed on one engine. Returns the `sample_crossover` JSON array
/// embedded in `BENCH_join.json`. τ tracks k so the exact probability
/// (a binomial tail) stays far from α and the two tiers must agree.
fn sample_crossover_json() -> String {
    let mut table = SymbolTable::new();
    let mut engine = GedEngine::new();
    let (eps, alpha) = (0.05f64, 0.5f64);
    let params = SampleParams { epsilon: eps, delta: 0.02, ..SampleParams::default() };
    let mut rows = Vec::new();
    for k in [4usize, 8, 12, 14] {
        let (q, g) = chain_pair(&mut table, k);
        let tau = (3 * k / 10 + 1) as u32;

        let s = Instant::now();
        let exact = verify_simp_with(&mut engine, &table, &q, &g, tau, f64::INFINITY);
        let exact_us = s.elapsed().as_secs_f64() * 1e6;

        let s = Instant::now();
        let sampled =
            sample_simp_with(&mut engine, &table, &q, &g, tau, alpha, None, &params, 17 + k as u64);
        let sample_us = s.elapsed().as_secs_f64() * 1e6;

        let agree = sampled.passed == (exact.prob >= alpha);
        assert!(
            agree || (exact.prob - alpha).abs() <= eps,
            "k={k}: sampled verdict {} disagrees with exact SimP {} outside the ε band",
            sampled.passed,
            exact.prob
        );
        rows.push(format!(
            "{{\"uncertain_vertices\": {k}, \"world_count\": {wc}, \"tau\": {tau}, \
             \"exact_prob\": {p:.4}, \"exact_us\": {exact_us:.1}, \"sample_us\": {sample_us:.1}, \
             \"sample_draws\": {draws}, \"agree\": {agree}}}",
            wc = g.world_count(),
            p = exact.prob,
            draws = sampled.worlds_sampled,
        ));
    }
    format!("[\n    {}\n  ]", rows.join(",\n    "))
}

/// Fixed vs adaptive cascade on the skewed workload: alternate the two
/// modes, keep each one's best wall time (min-of-4 absorbs scheduler
/// noise), prove the match sets identical pair-for-pair, and require the
/// adaptive planner to be no slower than the fixed order it replaces.
/// Returns the `cascade` JSON object embedded in `BENCH_join.json`,
/// carrying both plans and the per-stage selectivity/cost table.
fn cascade_showdown_json() -> String {
    let mut table = SymbolTable::new();
    let (d, u, tau) = skewed_workload(&mut table);
    let alpha = 0.5f64;
    let fixed_params = JoinParams::simj(tau, alpha);
    // A sparser probe cadence than the default: the flood is huge and
    // stationary, so spending a full-evaluation pair every 64 would buy
    // freshness this workload never needs.
    let adaptive_params =
        fixed_params.with_cascade(CascadePolicy::adaptive().with_probe_interval(1024));

    let key = |m: &JoinMatch| (m.g_index, m.q_index);
    let mut best: [Option<(Duration, JoinStats)>; 2] = [None, None];
    let mut match_sets: [Option<Vec<(usize, usize)>>; 2] = [None, None];
    for round in 0..8 {
        let mode = round % 2; // 0 = fixed, 1 = adaptive, interleaved
        let params = if mode == 0 { fixed_params } else { adaptive_params };
        let s = Instant::now();
        let (matches, stats) = sim_join(&table, &d, &u, params);
        let elapsed = s.elapsed();
        let mut set: Vec<_> = matches.iter().map(key).collect();
        set.sort_unstable();
        if let Some(prev) = &match_sets[mode] {
            assert_eq!(prev, &set, "cascade mode {mode} is not deterministic");
        } else {
            match_sets[mode] = Some(set);
        }
        if best[mode].as_ref().map_or(true, |(t, _)| elapsed < *t) {
            best[mode] = Some((elapsed, stats));
        }
    }
    assert_eq!(match_sets[0], match_sets[1], "adaptive cascade changed the join result set");
    let (fixed_time, fixed_stats) = best[0].take().expect("fixed runs");
    let (adaptive_time, adaptive_stats) = best[1].take().expect("adaptive runs");
    // The smoke bar CI relies on: adaptation must pay for itself. 10%
    // headroom tolerates scheduler noise on loaded runners.
    assert!(
        adaptive_time.as_secs_f64() <= fixed_time.as_secs_f64() * 1.10,
        "adaptive cascade slower than fixed on the skewed workload: {:?} vs {:?}",
        adaptive_time,
        fixed_time
    );
    let fixed_report = fixed_stats.cascade.as_ref().expect("fixed cascade report");
    let adaptive_report = adaptive_stats.cascade.as_ref().expect("adaptive cascade report");
    eprintln!("cascade showdown: fixed {fixed_time:?}, adaptive {adaptive_time:?}");
    eprintln!("{adaptive_report}");
    format!(
        "{{\n    \"bench\": \"deep_verify_skewed\",\n    \"tau\": {tau},\n    \
         \"alpha\": {alpha},\n    \"d_size\": {dn},\n    \"u_size\": {un},\n    \
         \"results\": {results},\n    \"fixed_ms\": {ft:.2},\n    \"adaptive_ms\": {at:.2},\n    \
         \"speedup_adaptive_vs_fixed\": {speedup:.2},\n    \"fixed\": {fr},\n    \
         \"adaptive\": {ar}\n  }}",
        dn = d.len(),
        un = u.len(),
        results = match_sets[0].as_ref().map_or(0, |s| s.len()),
        ft = fixed_time.as_secs_f64() * 1e3,
        at = adaptive_time.as_secs_f64() * 1e3,
        speedup = fixed_time.as_secs_f64() / adaptive_time.as_secs_f64().max(1e-9),
        fr = fixed_report.to_json("    ").trim_start(),
        ar = adaptive_report.to_json("    ").trim_start(),
    )
}

/// Reference-vs-lftj showdown on the cyclic/star/path families over one
/// hub-skewed synthetic KB: alternate the two evaluators (min-of-4 each
/// absorbs scheduler noise), prove the solution sets identical, and
/// require the leapfrog join to beat the nested-loop reference ≥ 2x on
/// the triangle family and be no slower anywhere. Returns the `bgp`
/// JSON array embedded in `BENCH_join.json`.
fn bgp_showdown_json() -> String {
    use uqsj::rdf::{bgp, lftj, BgpEval};
    use uqsj::sparql::{SparqlQuery, Term, Triple};
    use uqsj::testkit::bgp::{build_store, gen_kb, BgpGenConfig};

    // Large enough that the reference's materialized 2-paths dominate on
    // cyclic shapes; the dense hub predicate comes from the generator.
    let cfg = BgpGenConfig { entities: 120, predicates: 6, triples: 6000 };
    let kb = gen_kb(&cfg, 4099);
    let store = build_store(&kb);

    let var = |v: &str| Term::Var(v.to_string());
    let iri = |x: &str| Term::Iri(x.to_string());
    let t = |s: Term, p: Term, o: Term| Triple { subject: s, predicate: p, object: o };
    let q = |triples: Vec<Triple>| SparqlQuery { select: vec![], triples };
    let families: [(&str, SparqlQuery); 3] = [
        (
            "triangle",
            q(vec![
                t(var("a"), iri("q0"), var("b")),
                t(var("b"), iri("q0"), var("c")),
                t(var("c"), iri("q0"), var("a")),
            ]),
        ),
        (
            "star",
            q(vec![
                t(var("x"), iri("q0"), var("o0")),
                t(var("x"), iri("q1"), var("o1")),
                t(var("x"), iri("q2"), var("o2")),
            ]),
        ),
        (
            "path",
            q(vec![
                t(var("a"), iri("q0"), var("b")),
                t(var("b"), iri("q1"), var("c")),
                t(var("c"), iri("q2"), var("d")),
            ]),
        ),
    ];

    let canon = |rows: Vec<uqsj::rdf::Bindings>| {
        let mut out: Vec<Vec<(String, u32)>> = rows
            .into_iter()
            .map(|b| {
                let mut row: Vec<(String, u32)> = b.into_iter().map(|(k, v)| (k, v.0)).collect();
                row.sort();
                row
            })
            .collect();
        out.sort();
        out.dedup();
        out
    };

    let mut entries = Vec::new();
    for (family, query) in &families {
        let mut best = [Duration::MAX; 2]; // 0 = reference, 1 = lftj
        let mut rows = [usize::MAX; 2];
        for round in 0..8 {
            let mode = round % 2;
            let eval = if mode == 0 { BgpEval::Reference } else { BgpEval::Lftj };
            let s = Instant::now();
            let sols = bgp::solutions_with(&store, query, eval);
            let elapsed = s.elapsed();
            best[mode] = best[mode].min(elapsed);
            let n = canon(sols).len();
            assert!(rows[mode] == usize::MAX || rows[mode] == n, "{family}: nondeterministic");
            rows[mode] = n;
        }
        assert_eq!(rows[0], rows[1], "{family}: evaluators disagree on the result set");
        let (_, stats) = lftj::solutions_stats(&store, query);
        let speedup = best[0].as_secs_f64() / best[1].as_secs_f64().max(1e-9);
        // The smoke bars CI relies on: worst-case-optimality must show on
        // the cyclic family, and never cost elsewhere (10% noise headroom).
        if *family == "triangle" {
            assert!(
                speedup >= 2.0,
                "triangle family: lftj only {speedup:.2}x over the reference \
                 ({:?} vs {:?})",
                best[1],
                best[0]
            );
        }
        assert!(
            best[1].as_secs_f64() <= best[0].as_secs_f64() * 1.10,
            "{family}: lftj slower than the nested-loop reference ({:?} vs {:?})",
            best[1],
            best[0]
        );
        eprintln!(
            "bgp showdown {family}: reference {:?}, lftj {:?} ({speedup:.2}x, {} rows)",
            best[0], best[1], rows[0]
        );
        entries.push(format!(
            "{{\"family\": \"{family}\", \"rows\": {rows}, \"reference_ms\": {rf:.3}, \
             \"lftj_ms\": {lf:.3}, \"speedup_lftj_vs_reference\": {speedup:.2}, \
             \"lftj_seeks\": {seeks}, \"estimated_rows\": {est:.1}}}",
            rows = rows[0],
            rf = best[0].as_secs_f64() * 1e3,
            lf = best[1].as_secs_f64() * 1e3,
            seeks = stats.seeks,
            est = stats.estimated_rows,
        ));
    }
    format!("[\n    {}\n  ]", entries.join(",\n    "))
}

fn percentile(sorted: &[Duration], p: usize) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    sorted[(sorted.len() * p / 100).min(sorted.len() - 1)]
}

/// Measure the deep workload through the engine and through the naive
/// reference, then hand-format `BENCH_join.json` at the repo root.
fn emit_join_json() {
    let mut table = SymbolTable::new();
    let (d, u) = deep_workload(&mut table);
    let (tau, alpha) = (3u32, 0.5f64);

    let mut engine = GedEngine::new();
    let mut times: Vec<Duration> = Vec::new();
    let mut worlds = 0u64;
    let mut prob_sum = 0.0f64;
    let started = Instant::now();
    for g in &u {
        for q in &d {
            if lb_ged_css_uncertain(&table, q, g) <= tau {
                let s = Instant::now();
                let out = verify_simp_with(&mut engine, &table, q, g, tau, alpha);
                times.push(s.elapsed());
                worlds += out.worlds_verified as u64;
                prob_sum += out.prob;
            }
        }
    }
    let engine_total = started.elapsed();

    let mut naive_prob_sum = 0.0f64;
    let mut naive_worlds = 0u64;
    let started = Instant::now();
    for g in &u {
        for q in &d {
            if lb_ged_css_uncertain(&table, q, g) <= tau {
                let (p, w) = verify_naive(&table, q, g, tau, alpha);
                naive_prob_sum += p;
                naive_worlds += w as u64;
            }
        }
    }
    let naive_total = started.elapsed();
    assert_eq!(prob_sum.to_bits(), naive_prob_sum.to_bits(), "engine diverged from reference");
    assert_eq!(worlds, naive_worlds, "engine diverged from reference");

    times.sort();
    let secs = engine_total.as_secs_f64().max(1e-9);
    // Attach the process metric registry (GED engine + world-verification
    // counters accumulated by the run above) so a bench artifact carries
    // the same observability snapshot an operator would scrape.
    let crossover = sample_crossover_json();
    let cascade = cascade_showdown_json();
    let bgp = bgp_showdown_json();
    let registry = uqsj::obs::global().snapshot_json();
    let json = format!(
        "{{\n  \"bench\": \"deep_verify_10x10\",\n  \"tau\": {tau},\n  \"alpha\": {alpha},\n  \
         \"verified_pairs\": {pairs},\n  \"pairs_per_sec\": {pps:.1},\n  \
         \"worlds_verified\": {worlds},\n  \"worlds_verified_per_sec\": {wps:.1},\n  \
         \"p50_pair_verify_us\": {p50:.1},\n  \"p99_pair_verify_us\": {p99:.1},\n  \
         \"engine_total_ms\": {et:.2},\n  \"naive_reference_total_ms\": {nt:.2},\n  \
         \"speedup_vs_reference\": {speedup:.2},\n  \"cascade\": {cascade},\n  \
         \"bgp\": {bgp},\n  \
         \"sample_crossover\": {crossover},\n  \"registry\": {reg}\n}}\n",
        reg = registry.trim_end(),
        pairs = times.len(),
        pps = times.len() as f64 / secs,
        wps = worlds as f64 / secs,
        p50 = percentile(&times, 50).as_secs_f64() * 1e6,
        p99 = percentile(&times, 99).as_secs_f64() * 1e6,
        et = engine_total.as_secs_f64() * 1e3,
        nt = naive_total.as_secs_f64() * 1e3,
        speedup = naive_total.as_secs_f64() / engine_total.as_secs_f64().max(1e-9),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_join.json");
    std::fs::write(path, &json).expect("write BENCH_join.json");
    eprintln!("wrote {path}:\n{json}");
}

criterion_group!(benches, bench_join);

fn main() {
    benches();
    emit_join_json();
}
