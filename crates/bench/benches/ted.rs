//! Tree edit distance microbenchmark (the template-matching cost of
//! Sec. 2.2).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use uqsj::nlp::{parse_dependencies, tree_edit_distance};

fn bench_ted(c: &mut Criterion) {
    let questions = [
        "Which physicist graduated from CMU?",
        "Which politician graduated from CIT?",
        "Which actor from USA is married to Michael Jordan born in a city of NY?",
        "Give me all movies directed by Francis Ford Coppola",
        "Who is married to NY?",
    ];
    let trees: Vec<_> = questions.iter().map(|q| parse_dependencies(q)).collect();

    c.bench_function("ted_all_pairs", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for a in &trees {
                for t in &trees {
                    acc += u64::from(tree_edit_distance(black_box(a), black_box(t)));
                }
            }
            acc
        })
    });

    c.bench_function("dependency_parse", |b| {
        b.iter(|| questions.iter().map(|q| parse_dependencies(black_box(q)).len()).sum::<usize>())
    });
}

criterion_group!(benches, bench_ted);
criterion_main!(benches);
