//! Serving-throughput microbenchmarks: the signature-indexed template
//! store vs the linear-scan baseline on the same mined library, with and
//! without the answer cache.

use criterion::{criterion_group, criterion_main, Criterion};
use uqsj::prelude::*;
use uqsj::serve::{QaServer, ServeConfig, TemplateStore};
use uqsj::template::answer_question;
use uqsj::workload::qald_like;

fn bench_serve(c: &mut Criterion) {
    let dataset =
        qald_like(&DatasetConfig { questions: 60, distractors: 40, ..Default::default() });
    let result = generate_templates(&dataset, JoinParams::simj(1, 0.5));
    let library = result.library;
    let lexicon = dataset.kb.lexicon.clone();
    let triples = dataset.kb.triple_store();
    let questions: Vec<String> = dataset.pairs.iter().map(|p| p.question.clone()).collect();

    let rebuild_store = || {
        let mut store = TemplateStore::new();
        for t in library.templates() {
            store.insert(t.clone());
        }
        store
    };

    let mut group = c.benchmark_group("serve");
    group.sample_size(10);

    group.bench_function("linear_scan", |b| {
        b.iter(|| {
            for q in &questions {
                criterion::black_box(answer_question(&library, &lexicon, &triples, q, 1.0));
            }
        })
    });

    let uncached = QaServer::new(
        rebuild_store(),
        lexicon.clone(),
        dataset.kb.triple_store(),
        ServeConfig { min_phi: 1.0, cache_capacity: 0, bgp_eval: None },
    );
    group.bench_function("indexed_store", |b| {
        b.iter(|| {
            for q in &questions {
                criterion::black_box(uncached.answer(q));
            }
        })
    });

    let cached = QaServer::new(
        rebuild_store(),
        lexicon.clone(),
        dataset.kb.triple_store(),
        ServeConfig { min_phi: 1.0, cache_capacity: 1024, bgp_eval: None },
    );
    group.bench_function("indexed_store_cached", |b| {
        b.iter(|| {
            for q in &questions {
                criterion::black_box(cached.answer(q));
            }
        })
    });

    let batch = QaServer::new(
        rebuild_store(),
        lexicon.clone(),
        dataset.kb.triple_store(),
        ServeConfig { min_phi: 1.0, cache_capacity: 0, bgp_eval: None },
    );
    group.bench_function("answer_batch_4", |b| {
        b.iter(|| criterion::black_box(batch.answer_batch(&questions, 4)))
    });

    group.finish();
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);
