//! Microbenchmarks of exact and τ-bounded GED (the refinement cost of
//! Algorithm 1), including the deep near-τ regime where A\* must expand to
//! full mapping depth, and a reused-engine vs. naive-reference comparison
//! (the retained `reference` module is the pre-engine search).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;
use uqsj::ged::reference::ged_bounded_reference;
use uqsj::ged::GedEngine;
use uqsj::graph::SymbolTable;
use uqsj::prelude::*;
use uqsj::workload::{aids_like, RandomGraphConfig};

fn bench_ged(c: &mut Criterion) {
    let mut table = SymbolTable::new();
    let mut rng = SmallRng::seed_from_u64(7);
    let cfg = RandomGraphConfig { count: 8, vertices: 8, ..Default::default() };
    let (d, _) = aids_like(&mut table, &cfg, &mut rng);

    c.bench_function("ged_exact_8v", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for q in &d {
                for g in &d {
                    acc += u64::from(ged(&table, black_box(q), black_box(g)).distance);
                }
            }
            acc
        })
    });

    for tau in [1u32, 3] {
        c.bench_function(&format!("ged_bounded_tau{tau}_8v"), |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for q in &d {
                    for g in &d {
                        acc += ged_bounded(&table, black_box(q), black_box(g), tau)
                            .map_or(0, |r| u64::from(r.distance) + 1);
                    }
                }
                acc
            })
        });
    }
}

/// Deep near-τ searches: each pair is a 12-vertex graph against a copy
/// with three vertex labels rewritten, so the true distance (3) is inside
/// τ = 4 and A\* must push a mapping to full depth instead of cutting off
/// on the bound. This is the regime the incremental heuristic and the
/// reusable workspace were built for; the `reference` series is the
/// retained naive search the engine replaced.
fn bench_ged_deep(c: &mut Criterion) {
    let mut table = SymbolTable::new();
    let mut rng = SmallRng::seed_from_u64(11);
    let cfg = RandomGraphConfig { count: 4, vertices: 12, edges: 20, ..Default::default() };
    let (d, _) = aids_like(&mut table, &cfg, &mut rng);
    let muts = ["Mut0", "Mut1", "Mut2"].map(|l| table.intern(l));
    let variants: Vec<Graph> = d
        .iter()
        .map(|g| {
            let mut h = g.clone();
            for (i, &m) in muts.iter().enumerate() {
                h.set_label(VertexId(i as u32), m);
            }
            h
        })
        .collect();
    let tau = 4u32;

    let mut group = c.benchmark_group("ged_deep_12v_tau4");
    group.sample_size(10);
    group.bench_function("engine_reused", |b| {
        let mut engine = GedEngine::new();
        b.iter(|| {
            let mut acc = 0u64;
            for (q, g) in d.iter().zip(&variants) {
                acc += engine
                    .ged_bounded(&table, black_box(q), black_box(g), tau)
                    .map_or(0, |r| u64::from(r.distance) + 1);
            }
            acc
        })
    });
    group.bench_function("reference", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for (q, g) in d.iter().zip(&variants) {
                acc += ged_bounded_reference(&table, black_box(q), black_box(g), tau)
                    .map_or(0, |r| u64::from(r.distance) + 1);
            }
            acc
        })
    });
    group.finish();
}

criterion_group!(benches, bench_ged, bench_ged_deep);
criterion_main!(benches);
