//! Microbenchmarks of exact and τ-bounded GED (the refinement cost of
//! Algorithm 1).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;
use uqsj::graph::SymbolTable;
use uqsj::prelude::*;
use uqsj::workload::{aids_like, RandomGraphConfig};

fn bench_ged(c: &mut Criterion) {
    let mut table = SymbolTable::new();
    let mut rng = SmallRng::seed_from_u64(7);
    let cfg = RandomGraphConfig { count: 8, vertices: 8, ..Default::default() };
    let (d, _) = aids_like(&mut table, &cfg, &mut rng);

    c.bench_function("ged_exact_8v", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for q in &d {
                for g in &d {
                    acc += u64::from(ged(&table, black_box(q), black_box(g)).distance);
                }
            }
            acc
        })
    });

    for tau in [1u32, 3] {
        c.bench_function(&format!("ged_bounded_tau{tau}_8v"), |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for q in &d {
                    for g in &d {
                        acc += ged_bounded(&table, black_box(q), black_box(g), tau)
                            .map_or(0, |r| u64::from(r.distance) + 1);
                    }
                }
                acc
            })
        });
    }
}

criterion_group!(benches, bench_ged);
criterion_main!(benches);
