//! Workload invariants across random seeds: every dataset the generators
//! emit must be internally consistent, answerable, and joinable.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use uqsj_graph::SymbolTable;
use uqsj_workload::{
    erdos_renyi, qald_like, scale_free, DatasetConfig, KbConfig, KnowledgeBase, RandomGraphConfig,
};

#[test]
fn datasets_are_consistent_across_seeds() {
    for seed in [1u64, 99, 12345] {
        let d = qald_like(&DatasetConfig {
            questions: 30,
            distractors: 15,
            seed,
            ..Default::default()
        });
        assert_eq!(d.pairs.len(), d.u_graphs.len());
        assert_eq!(d.pairs.len(), d.analyses.len());
        assert_eq!(d.d_queries.len(), d.d_graphs.len());
        assert_eq!(d.d_queries.len(), d.d_terms.len());
        for (qg, terms) in d.d_graphs.iter().zip(&d.d_terms) {
            assert_eq!(qg.vertex_count(), terms.len(), "term provenance mismatch");
        }
        // Uncertain graphs stay enumerable.
        for g in &d.u_graphs {
            assert!(g.world_count() <= 1 << 16, "world explosion: {}", g.world_count());
            let mass: f64 = g.possible_worlds().map(|w| w.prob).sum();
            assert!(mass <= 1.0 + 1e-9);
        }
    }
}

#[test]
fn every_clean_gold_query_is_answerable_on_its_kb() {
    // Misleading-surface questions deliberately re-point their gold query
    // at an entity of the right class that the facts may not support —
    // only the clean questions carry the answerability guarantee.
    let d =
        qald_like(&DatasetConfig { questions: 40, distractors: 10, seed: 7, ..Default::default() });
    let store = d.kb.triple_store();
    for (i, pair) in d
        .pairs
        .iter()
        .enumerate()
        .filter(|(_, p)| p.noise == uqsj_workload::questions::NoiseKind::Clean)
    {
        let rows = uqsj_rdf::bgp::evaluate(&store, &pair.sparql);
        assert!(!rows.is_empty(), "gold query {i} unanswerable: {}", pair.sparql);
    }
}

#[test]
fn kb_lexicon_covers_every_question_surface() {
    let mut rng = SmallRng::seed_from_u64(5);
    let kb = KnowledgeBase::generate(&KbConfig::default(), &mut rng);
    // Every entity has a surface form the linker resolves, and the
    // resolution includes the entity itself.
    for e in &kb.entities {
        let cands = kb
            .lexicon
            .link(&e.surface)
            .unwrap_or_else(|| panic!("no linking for surface {:?}", e.surface));
        assert!(
            cands.iter().any(|c| c.entity == e.name),
            "surface {:?} does not resolve to {:?}",
            e.surface,
            e.name
        );
    }
}

#[test]
fn random_graph_generators_are_deterministic_per_seed() {
    let mk = |seed: u64| {
        let mut t = SymbolTable::new();
        let mut rng = SmallRng::seed_from_u64(seed);
        let cfg = RandomGraphConfig { count: 5, vertices: 8, edges: 12, ..Default::default() };
        erdos_renyi(&mut t, &cfg, &mut rng)
    };
    let (d1, u1) = mk(11);
    let (d2, u2) = mk(11);
    assert_eq!(d1, d2);
    assert_eq!(u1, u2);
    let (d3, _) = mk(12);
    assert_ne!(d1, d3, "different seeds should differ");
}

#[test]
fn scale_free_generator_is_connected_enough() {
    let mut t = SymbolTable::new();
    let mut rng = SmallRng::seed_from_u64(3);
    let cfg = RandomGraphConfig { count: 10, vertices: 20, edges: 2, ..Default::default() };
    let (d, _) = scale_free(&mut t, &cfg, &mut rng);
    for g in &d {
        // Preferential attachment links every non-seed vertex.
        let isolated = g.vertices().filter(|&v| g.degree(v) == 0).count();
        assert!(isolated <= 1, "{isolated} isolated vertices");
    }
}
