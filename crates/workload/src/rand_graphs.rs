//! Random graph generators for the efficiency experiments: ER,
//! scale-free (SF, power-law degrees via preferential attachment — the
//! paper used `gengraph_win`), and an AIDS-like family of small labeled
//! molecule graphs for the filter comparison (Fig. 15).
//!
//! Each generator produces a matched pair of sets: a certain set `D` and
//! an uncertain set `U`. Uncertain graphs are derived by perturbing
//! certain ones (a few label/edge edits) and then blurring vertex labels
//! into `avg_labels` alternatives, so the join has non-trivial results at
//! small τ — mirroring how the paper's synthetic joins behave.

use rand::rngs::SmallRng;
use rand::Rng;
use uqsj_graph::{
    Graph, LabelAlternative, Symbol, SymbolTable, UncertainGraph, UncertainVertex, VertexId,
};

/// Generator parameters.
#[derive(Clone, Copy, Debug)]
pub struct RandomGraphConfig {
    /// Graphs per side.
    pub count: usize,
    /// Vertices per graph.
    pub vertices: usize,
    /// Edges per graph (ER) or edges per new vertex (SF).
    pub edges: usize,
    /// Vertex label pool size.
    pub label_pool: usize,
    /// Edge label pool size.
    pub edge_label_pool: usize,
    /// Average alternatives per *uncertain* vertex (`|L(v)|`, Fig. 14).
    pub avg_labels: f64,
    /// Fraction of vertices that are uncertain (carry more than one
    /// label). The paper's synthetic sets are uncertain everywhere, which
    /// makes exact verification astronomically expensive; a fraction
    /// keeps the possible-world count laptop-scale (see EXPERIMENTS.md).
    pub uncertain_fraction: f64,
    /// Edit operations applied when deriving an uncertain graph from a
    /// certain one (keeps some pairs within small τ).
    pub perturbation: usize,
}

impl Default for RandomGraphConfig {
    fn default() -> Self {
        Self {
            count: 100,
            vertices: 16,
            edges: 32,
            label_pool: 10,
            edge_label_pool: 4,
            avg_labels: 3.0,
            uncertain_fraction: 0.3,
            perturbation: 2,
        }
    }
}

fn label_pool(table: &mut SymbolTable, prefix: &str, n: usize) -> Vec<Symbol> {
    (0..n).map(|i| table.intern(&format!("{prefix}{i}"))).collect()
}

/// One ER graph: `vertices` vertices, `edges` random distinct ordered
/// pairs.
fn er_graph(
    cfg: &RandomGraphConfig,
    vlabels: &[Symbol],
    elabels: &[Symbol],
    rng: &mut SmallRng,
) -> Graph {
    let mut g = Graph::new();
    for _ in 0..cfg.vertices {
        g.add_vertex(vlabels[rng.gen_range(0..vlabels.len())]);
    }
    let mut placed = std::collections::HashSet::new();
    let mut guard = 0;
    while placed.len() < cfg.edges && guard < cfg.edges * 20 {
        guard += 1;
        let s = rng.gen_range(0..cfg.vertices) as u32;
        let d = rng.gen_range(0..cfg.vertices) as u32;
        if s != d && placed.insert((s, d)) {
            g.add_edge(VertexId(s), VertexId(d), elabels[rng.gen_range(0..elabels.len())]);
        }
    }
    g
}

/// One SF graph by preferential attachment (`edges` links per new
/// vertex), yielding a power-law degree distribution.
fn sf_graph(
    cfg: &RandomGraphConfig,
    vlabels: &[Symbol],
    elabels: &[Symbol],
    rng: &mut SmallRng,
) -> Graph {
    let m = cfg.edges.max(1).min(cfg.vertices.saturating_sub(1)).max(1);
    let mut g = Graph::new();
    // Degree-weighted endpoint list for preferential attachment.
    let mut endpoints: Vec<u32> = Vec::new();
    for v in 0..cfg.vertices {
        g.add_vertex(vlabels[rng.gen_range(0..vlabels.len())]);
        if v == 0 {
            endpoints.push(0);
            continue;
        }
        let mut targets = std::collections::HashSet::new();
        let links = m.min(v);
        let mut guard = 0;
        while targets.len() < links && guard < links * 30 {
            guard += 1;
            let pick = endpoints[rng.gen_range(0..endpoints.len())];
            if pick as usize != v {
                targets.insert(pick);
            }
        }
        for t in targets {
            g.add_edge(VertexId(v as u32), VertexId(t), elabels[rng.gen_range(0..elabels.len())]);
            endpoints.push(v as u32);
            endpoints.push(t);
        }
    }
    g
}

/// AIDS-like molecule graph: small, sparse, bounded degree, drawn from a
/// large "atom" label pool.
fn molecule_graph(
    vertices: usize,
    vlabels: &[Symbol],
    elabels: &[Symbol],
    rng: &mut SmallRng,
) -> Graph {
    let mut g = Graph::new();
    for _ in 0..vertices {
        // Skewed label distribution like real molecules (C/H dominate).
        let li = if rng.gen_bool(0.6) {
            rng.gen_range(0..3.min(vlabels.len()))
        } else {
            rng.gen_range(0..vlabels.len())
        };
        g.add_vertex(vlabels[li]);
    }
    // A random spanning tree (attaching to one of the four most recent
    // vertices keeps degrees molecule-like) plus a few extra bonds.
    for v in 1..vertices {
        let u = rng.gen_range(v.saturating_sub(4)..v);
        g.add_edge(
            VertexId(u as u32),
            VertexId(v as u32),
            elabels[rng.gen_range(0..elabels.len())],
        );
    }
    let extra = vertices / 5;
    for _ in 0..extra {
        let s = rng.gen_range(0..vertices) as u32;
        let d = rng.gen_range(0..vertices) as u32;
        if s != d && g.degree(VertexId(s)) < 4 && g.degree(VertexId(d)) < 4 {
            g.add_edge(VertexId(s), VertexId(d), elabels[rng.gen_range(0..elabels.len())]);
        }
    }
    g
}

/// Derive an uncertain graph from a certain one: apply `perturbation`
/// random label edits, then blur each vertex into ~`avg_labels`
/// alternatives (the original label keeps the highest probability).
fn uncertainize(
    base: &Graph,
    cfg: &RandomGraphConfig,
    vlabels: &[Symbol],
    rng: &mut SmallRng,
) -> UncertainGraph {
    let mut labels: Vec<Symbol> = base.vertex_labels().to_vec();
    for _ in 0..cfg.perturbation {
        if labels.is_empty() {
            break;
        }
        let v = rng.gen_range(0..labels.len());
        labels[v] = vlabels[rng.gen_range(0..vlabels.len())];
    }
    let mut g = UncertainGraph::new();
    for &l in &labels {
        // Only a fraction of vertices are ambiguous; ambiguous ones draw
        // a label count around `avg_labels` (uniform on
        // `[2, 2·avg − 2]`, expectation `avg`) so graphs carry the
        // heterogeneous linking profiles real entity linkers produce —
        // which is also what lets the group-split heuristics of Sec. 6.2
        // make different choices.
        let n = if rng.gen_bool(cfg.uncertain_fraction.clamp(0.0, 1.0)) {
            let hi = ((cfg.avg_labels * 2.0 - 2.0).round() as usize).max(2);
            rng.gen_range(2..=hi).min(vlabels.len())
        } else {
            1
        };
        let mut alts = vec![l];
        let mut guard = 0;
        while alts.len() < n && guard < n * 30 {
            guard += 1;
            let cand = vlabels[rng.gen_range(0..vlabels.len())];
            if !alts.contains(&cand) {
                alts.push(cand);
            }
        }
        // Original label dominates with a varying confidence; the rest
        // share the remainder equally.
        let k = alts.len();
        let alternatives = if k == 1 {
            vec![LabelAlternative { label: alts[0], prob: 1.0 }]
        } else {
            let dominant = rng.gen_range(0.4..0.8);
            let rest = (1.0 - dominant) / (k - 1) as f64;
            alts.iter()
                .enumerate()
                .map(|(i, &label)| LabelAlternative {
                    label,
                    prob: if i == 0 { dominant } else { rest },
                })
                .collect()
        };
        g.add_vertex(UncertainVertex { alternatives });
    }
    for e in base.edges() {
        g.add_edge(e.src, e.dst, e.label);
    }
    g
}

/// Generate an ER dataset: `(D, U)`.
pub fn erdos_renyi(
    table: &mut SymbolTable,
    cfg: &RandomGraphConfig,
    rng: &mut SmallRng,
) -> (Vec<Graph>, Vec<UncertainGraph>) {
    let vl = label_pool(table, "L", cfg.label_pool);
    let el = label_pool(table, "e", cfg.edge_label_pool);
    build_pair_sets(cfg, rng, &vl, |cfg, rng| er_graph(cfg, &vl, &el, rng))
}

/// Generate an SF dataset: `(D, U)`.
pub fn scale_free(
    table: &mut SymbolTable,
    cfg: &RandomGraphConfig,
    rng: &mut SmallRng,
) -> (Vec<Graph>, Vec<UncertainGraph>) {
    let vl = label_pool(table, "L", cfg.label_pool);
    let el = label_pool(table, "e", cfg.edge_label_pool);
    build_pair_sets(cfg, rng, &vl, |cfg, rng| sf_graph(cfg, &vl, &el, rng))
}

/// Generate an AIDS-like dataset: `(D, U)` of small molecule graphs over
/// ~45 atom labels.
pub fn aids_like(
    table: &mut SymbolTable,
    cfg: &RandomGraphConfig,
    rng: &mut SmallRng,
) -> (Vec<Graph>, Vec<UncertainGraph>) {
    let vl = label_pool(table, "Atom", 45);
    let el = label_pool(table, "bond", 3);
    let vertices = cfg.vertices;
    build_pair_sets(cfg, rng, &vl, |cfg, rng| {
        let n = rng.gen_range((vertices / 2).max(2)..=vertices);
        let _ = cfg;
        molecule_graph(n, &vl, &el, rng)
    })
}

fn build_pair_sets(
    cfg: &RandomGraphConfig,
    rng: &mut SmallRng,
    vlabels: &[Symbol],
    mut make: impl FnMut(&RandomGraphConfig, &mut SmallRng) -> Graph,
) -> (Vec<Graph>, Vec<UncertainGraph>) {
    let mut d = Vec::with_capacity(cfg.count);
    let mut u = Vec::with_capacity(cfg.count);
    for _ in 0..cfg.count {
        let g = make(cfg, rng);
        u.push(uncertainize(&g, cfg, vlabels, rng));
        d.push(g);
    }
    (d, u)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn er_respects_sizes() {
        let mut t = SymbolTable::new();
        let mut rng = SmallRng::seed_from_u64(3);
        let cfg = RandomGraphConfig { count: 10, vertices: 12, edges: 20, ..Default::default() };
        let (d, u) = erdos_renyi(&mut t, &cfg, &mut rng);
        assert_eq!(d.len(), 10);
        assert_eq!(u.len(), 10);
        for g in &d {
            assert_eq!(g.vertex_count(), 12);
            assert!(g.edge_count() <= 20);
        }
        for g in &u {
            assert_eq!(g.vertex_count(), 12);
            assert!(g.avg_label_count() >= 1.0);
        }
    }

    #[test]
    fn sf_has_skewed_degrees() {
        let mut t = SymbolTable::new();
        let mut rng = SmallRng::seed_from_u64(4);
        let cfg = RandomGraphConfig { count: 5, vertices: 40, edges: 2, ..Default::default() };
        let (d, _) = scale_free(&mut t, &cfg, &mut rng);
        // Max degree should be well above the mean for a power-law-ish
        // distribution.
        for g in &d {
            let degrees = g.sorted_degrees();
            let max = degrees[0] as f64;
            let mean = degrees.iter().sum::<u32>() as f64 / degrees.len() as f64;
            assert!(max >= 2.0 * mean, "max={max} mean={mean}");
        }
    }

    #[test]
    fn aids_like_is_small_and_bounded_degree() {
        let mut t = SymbolTable::new();
        let mut rng = SmallRng::seed_from_u64(5);
        let cfg = RandomGraphConfig { count: 20, vertices: 12, ..Default::default() };
        let (d, u) = aids_like(&mut t, &cfg, &mut rng);
        assert_eq!(d.len(), 20);
        for g in &d {
            assert!(g.vertex_count() <= 12);
            assert!(g.vertices().all(|v| g.degree(v) <= 5));
        }
        let _ = u;
    }

    #[test]
    fn uncertain_avg_labels_tracks_config() {
        let mut t = SymbolTable::new();
        let mut rng = SmallRng::seed_from_u64(6);
        for target in [2.0f64, 4.0] {
            let cfg = RandomGraphConfig {
                count: 20,
                vertices: 10,
                avg_labels: target,
                uncertain_fraction: 1.0,
                label_pool: 12,
                ..Default::default()
            };
            let (_, u) = erdos_renyi(&mut t, &cfg, &mut rng);
            let avg: f64 = u.iter().map(|g| g.avg_label_count()).sum::<f64>() / u.len() as f64;
            assert!((avg - target).abs() < 0.6, "target={target} got={avg}");
        }
    }

    #[test]
    fn perturbed_pairs_stay_close() {
        // The diagonal pairs (d[i], u[i]) should often be within a small
        // GED, so synthetic joins return non-trivial results.
        let mut t = SymbolTable::new();
        let mut rng = SmallRng::seed_from_u64(7);
        let cfg = RandomGraphConfig {
            count: 8,
            vertices: 6,
            edges: 8,
            perturbation: 1,
            avg_labels: 2.0,
            ..Default::default()
        };
        let (d, u) = erdos_renyi(&mut t, &cfg, &mut rng);
        let mut close = 0;
        for (q, g) in d.iter().zip(&u) {
            let lb = uqsj_ged::lb_ged_css_uncertain(&t, q, g);
            if lb <= 2 {
                close += 1;
            }
        }
        assert!(close >= 4, "only {close}/8 diagonal pairs pass the filter");
    }
}
