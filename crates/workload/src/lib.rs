//! Synthetic knowledge base and workload generation.
//!
//! The paper evaluates on DBpedia + QALD-3, WebQuestions + DBpedia query
//! logs, a proprietary music/movies ("MM") workload, the AIDS chemical
//! dataset and two synthetic graph families (ER, SF). None of the real
//! resources ship with this reproduction, so this crate generates
//! statistical stand-ins (see DESIGN.md, "Substitutions"):
//!
//! * [`kb`] — a synthetic knowledge base: classes with nouns, predicates
//!   with relation phrases, entities with (deliberately ambiguous) surface
//!   forms, and facts. It exports the [`uqsj_nlp::Lexicon`] that drives
//!   question analysis and an RDF triple store for Q/A evaluation.
//! * [`questions`] — question/SPARQL pair generation over the KB, with
//!   controlled relation counts `k` and noise (the paper's failure modes).
//! * [`datasets`] — the named workloads (QALD-like, WebQ-like, MM-like)
//!   with both join sides materialized, plus gold pairs and the
//!   correctness judgment ("matches modulo entity phrases", Sec. 7.1.2).
//! * [`rand_graphs`] — ER, scale-free (SF) and AIDS-like uncertain graph
//!   generators for the efficiency experiments.
//! * [`stats`] — the dataset statistics of Table 2.

pub mod curated;
pub mod datasets;
pub mod kb;
pub mod questions;
pub mod rand_graphs;
pub mod stats;

pub use curated::paper_dataset;
pub use datasets::{mm_like, qald_like, webq_like, Dataset, DatasetConfig};
pub use kb::{KbConfig, KnowledgeBase};
pub use questions::{generate_pairs, QaPair, QuestionConfig};
pub use rand_graphs::{aids_like, erdos_renyi, scale_free, RandomGraphConfig};
pub use stats::DatasetStats;
