//! The curated paper-examples dataset: the running examples of Figs. 2–5
//! and the case study of Fig. 10, assembled into a real (tiny) workload
//! with a consistent knowledge base — so the concrete scenarios the paper
//! walks through are executable end to end.

use crate::datasets::{assemble_dataset, Dataset};
use crate::kb::{KbEntity, KnowledgeBase};
use crate::questions::{NoiseKind, QaPair};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use uqsj_nlp::{EntityCandidate, Lexicon};
use uqsj_sparql::parse;

fn entity(name: &str, class: &str, surface: &str) -> KbEntity {
    KbEntity { name: name.to_owned(), class: class.to_owned(), surface: surface.to_owned() }
}

/// The lexicon of the paper's examples: ambiguous "Michael Jordan", "NY"
/// and "CIT" (Figs. 2 and 4), plus everything the case-study questions
/// need.
pub fn paper_kb() -> KnowledgeBase {
    let mut lex = Lexicon::new();
    for (noun, class) in [
        ("actor", "Actor"),
        ("politician", "Politician"),
        ("physicist", "Physicist"),
        ("city", "City"),
        ("movie", "Film"),
        ("movies", "Film"),
        ("software", "Software"),
    ] {
        lex.add_class(noun, class);
    }
    lex.add_predicate("birthPlace", &["from", "born in"]);
    lex.add_predicate("spouse", &["married to"]);
    lex.add_predicate("locatedIn", &["of", "located in", "in"]);
    lex.add_predicate("graduatedFrom", &["graduated from"]);
    lex.add_predicate("director", &["directed by"]);
    lex.add_predicate("leaderParty", &["ruled by"]);
    lex.add_predicate("developer", &["developed by"]);
    lex.add_predicate("foundationPlace", &["founded in"]);
    lex.add_class("organization", "Organisation");
    lex.add_class("organizations", "Organisation");
    lex.add_inverse_noun("spouse", "spouse");
    lex.add_inverse_noun("birth place", "birthPlace");
    lex.add_inverse_noun("ruling party", "leaderParty");

    lex.add_surface_form(
        "michael jordan",
        vec![
            EntityCandidate {
                entity: "Michael_Jordan".into(),
                class: "NBA_Player".into(),
                prob: 0.6,
            },
            EntityCandidate {
                entity: "Michael_I_Jordan".into(),
                class: "Professor".into(),
                prob: 0.3,
            },
            EntityCandidate { entity: "Michael_B_Jordan".into(), class: "Actor".into(), prob: 0.1 },
        ],
    );
    lex.add_surface_form(
        "ny",
        vec![
            EntityCandidate { entity: "New_York".into(), class: "State".into(), prob: 0.7 },
            EntityCandidate { entity: "New_York_City".into(), class: "City".into(), prob: 0.3 },
        ],
    );
    lex.add_surface_form(
        "cit",
        vec![
            EntityCandidate {
                entity: "California_Institute_of_Technology".into(),
                class: "University".into(),
                prob: 0.8,
            },
            EntityCandidate { entity: "CIT_Group".into(), class: "Company".into(), prob: 0.2 },
        ],
    );
    for (surface, name, class) in [
        ("california", "California", "State"),
        ("usa", "United_States", "Country"),
        ("cmu", "Carnegie_Mellon_University", "University"),
        ("francis ford coppola", "Francis_Ford_Coppola", "Director"),
        ("lisbon", "Lisbon", "City"),
        ("harvard", "Harvard_University", "University"),
    ] {
        lex.add_surface_form(
            surface,
            vec![EntityCandidate { entity: name.into(), class: class.into(), prob: 1.0 }],
        );
    }

    let entities = vec![
        entity("Michael_Jordan", "NBA_Player", "Michael Jordan"),
        entity("Michael_I_Jordan", "Professor", "Michael Jordan"),
        entity("Michael_B_Jordan", "Actor", "Michael Jordan"),
        entity("New_York", "State", "NY"),
        entity("New_York_City", "City", "NY"),
        entity("United_States", "Country", "USA"),
        entity("California_Institute_of_Technology", "University", "CIT"),
        entity("CIT_Group", "Company", "CIT"),
        entity("Carnegie_Mellon_University", "University", "CMU"),
        entity("Harvard_University", "University", "Harvard"),
        entity("Francis_Ford_Coppola", "Director", "Francis Ford Coppola"),
        entity("Lisbon", "City", "Lisbon"),
        entity("Alice_Actor", "Actor", "Alice Actor"),
        entity("Paula_Politician", "Politician", "Paula Politician"),
        entity("Pete_Physicist", "Physicist", "Pete Physicist"),
        entity("The_Godfather", "Film", "The Godfather"),
        entity("The_Conversation", "Film", "The Conversation"),
        entity("Green_Party", "Party", "Green Party"),
        entity("California", "State", "California"),
        entity("Acme_Corp", "Organisation", "Acme Corp"),
        entity("AcmeOS", "Software", "AcmeOS"),
    ];
    let f = |s: &str, p: &str, o: &str| (s.to_owned(), p.to_owned(), o.to_owned());
    let facts = vec![
        f("Alice_Actor", "birthPlace", "United_States"),
        f("Alice_Actor", "spouse", "Michael_Jordan"),
        f("Michael_Jordan", "spouse", "Alice_Actor"),
        f("Michael_Jordan", "birthPlace", "New_York_City"),
        f("New_York_City", "locatedIn", "New_York"),
        f("Paula_Politician", "graduatedFrom", "California_Institute_of_Technology"),
        f("Pete_Physicist", "graduatedFrom", "Carnegie_Mellon_University"),
        f("The_Godfather", "director", "Francis_Ford_Coppola"),
        f("The_Conversation", "director", "Francis_Ford_Coppola"),
        f("Lisbon", "leaderParty", "Green_Party"),
        f("Acme_Corp", "foundationPlace", "California"),
        f("AcmeOS", "developer", "Acme_Corp"),
    ];
    KnowledgeBase::from_parts(entities, facts, lex)
}

/// The paper's questions with their gold SPARQL.
pub fn paper_questions() -> Vec<QaPair> {
    let pair = |question: &str, sparql: &str, relations: usize| QaPair {
        question: question.to_owned(),
        sparql: parse(sparql).expect("curated SPARQL parses"),
        relations,
        noise: NoiseKind::Clean,
        entities: Vec::new(),
    };
    vec![
        pair(
            "Which actor from USA married to Michael Jordan born in a city of NY?",
            "SELECT ?x WHERE { ?x type Actor . ?x birthPlace United_States . \
             ?x spouse Michael_Jordan . Michael_Jordan birthPlace New_York_City . \
             New_York_City locatedIn New_York . }",
            4,
        ),
        pair(
            "Which politician graduated from CIT?",
            "SELECT ?x WHERE { ?x type Politician . \
             ?x graduatedFrom California_Institute_of_Technology . }",
            1,
        ),
        pair(
            "Which physicist graduated from CMU?",
            "SELECT ?x WHERE { ?x type Physicist . ?x graduatedFrom Carnegie_Mellon_University . }",
            1,
        ),
        pair(
            "Give me all movies directed by Francis Ford Coppola?",
            "SELECT ?x WHERE { ?x type Film . ?x director Francis_Ford_Coppola . }",
            1,
        ),
        pair(
            "Which software developed by organization founded in California?",
            "SELECT ?x WHERE { ?x type Software . ?x developer ?c . \
             ?c type Organisation . ?c foundationPlace California . }",
            2,
        ),
        pair(
            "What is the ruling party of Lisbon?",
            "SELECT ?x WHERE { Lisbon leaderParty ?x . }",
            1,
        ),
        pair(
            "Who is the spouse of Michael Jordan?",
            "SELECT ?x WHERE { Michael_Jordan spouse ?x . }",
            1,
        ),
    ]
}

/// Assemble the curated workload (no random distractors; the gold queries
/// of the different questions distract each other, as in QALD).
pub fn paper_dataset() -> Dataset {
    let mut rng = SmallRng::seed_from_u64(2015);
    assemble_dataset(paper_kb(), paper_questions(), 0, 4, &mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_curated_question_analyzes() {
        let d = paper_dataset();
        assert!(d.failed.is_empty(), "failures: {:?}", d.failed);
        assert_eq!(d.pairs.len(), paper_questions().len());
    }

    #[test]
    fn every_curated_gold_query_is_answerable() {
        let kb = paper_kb();
        let store = kb.triple_store();
        for q in paper_questions() {
            let rows = uqsj_rdf::bgp::evaluate(&store, &q.sparql);
            assert!(!rows.is_empty(), "unanswerable: {}", q.question);
        }
    }

    #[test]
    fn running_example_produces_the_fig2_uncertain_graph() {
        let d = paper_dataset();
        let g = &d.u_graphs[0];
        // Fig. 2: 6 vertices, 5 edges, 3×2 = 6 possible worlds, the most
        // likely with probability 0.42.
        assert_eq!(g.vertex_count(), 6);
        assert_eq!(g.edge_count(), 5);
        assert_eq!(g.world_count(), 6);
        let best = g.possible_worlds().map(|w| w.prob).fold(f64::MIN, f64::max);
        assert!((best - 0.42).abs() < 1e-9);
    }
}
