//! Dataset statistics (Table 2 of the paper).

use uqsj_graph::UncertainGraph;

/// The row shape of Table 2.
#[derive(Clone, Debug, PartialEq)]
pub struct DatasetStats {
    /// Dataset name.
    pub name: String,
    /// |U|.
    pub u_count: usize,
    /// Average |V| over U.
    pub avg_v: f64,
    /// Average |E| over U.
    pub avg_e: f64,
    /// Average |L_V| (alternatives per vertex) over U.
    pub avg_lv: f64,
    /// |D|.
    pub d_count: usize,
}

impl DatasetStats {
    /// Compute the row for one workload.
    pub fn compute(name: &str, u: &[UncertainGraph], d_count: usize) -> Self {
        let n = u.len().max(1) as f64;
        Self {
            name: name.to_owned(),
            u_count: u.len(),
            avg_v: u.iter().map(|g| g.vertex_count()).sum::<usize>() as f64 / n,
            avg_e: u.iter().map(|g| g.edge_count()).sum::<usize>() as f64 / n,
            avg_lv: u.iter().map(UncertainGraph::avg_label_count).sum::<f64>() / n,
            d_count,
        }
    }

    /// Render as one row of the Table-2-style report.
    pub fn row(&self) -> String {
        format!(
            "{:<8} {:>7} {:>8.2} {:>8.2} {:>8.2} {:>8}",
            self.name, self.u_count, self.avg_v, self.avg_e, self.avg_lv, self.d_count
        )
    }

    /// The table header.
    pub fn header() -> String {
        format!(
            "{:<8} {:>7} {:>8} {:>8} {:>8} {:>8}",
            "Dataset", "|U|", "avg.|V|", "avg.|E|", "avg.|LV|", "|D|"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uqsj_graph::{GraphBuilder, SymbolTable};

    #[test]
    fn computes_averages() {
        let mut t = SymbolTable::new();
        let mut b = GraphBuilder::new(&mut t);
        b.vertex("a", "A");
        b.uncertain_vertex("b", &[("B", 0.5), ("C", 0.5)]);
        b.edge("a", "b", "p");
        let g = b.into_uncertain();
        let s = DatasetStats::compute("toy", &[g], 7);
        assert_eq!(s.u_count, 1);
        assert_eq!(s.d_count, 7);
        assert!((s.avg_v - 2.0).abs() < 1e-12);
        assert!((s.avg_e - 1.0).abs() < 1e-12);
        assert!((s.avg_lv - 1.5).abs() < 1e-12);
        assert!(s.row().contains("toy"));
    }

    #[test]
    fn empty_set_is_safe() {
        let s = DatasetStats::compute("empty", &[], 0);
        assert_eq!(s.avg_v, 0.0);
    }
}
