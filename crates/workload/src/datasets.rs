//! The named workloads of the paper's evaluation, materialized for the
//! join: QALD-like, WebQ-like (open domain) and MM-like (closed
//! music/movies domain).
//!
//! A dataset carries both join sides (`d_graphs` certain, `u_graphs`
//! uncertain), the provenance of every graph, the gold SPARQL of every
//! question, and the correctness judgment of Sec. 7.1.2: a returned pair
//! `⟨q, n⟩` is *correct* iff `q` matches the manually issued gold query
//! of `n` "except for entity phrases".

use crate::kb::{KbConfig, KnowledgeBase};
use crate::questions::{generate_pairs, QaPair, QuestionConfig};
use rand::rngs::SmallRng;
use rand::Rng;
use rand::SeedableRng;
use uqsj_graph::{Graph, SymbolTable, UncertainGraph};
use uqsj_nlp::{analyze_question, QuestionAnalysis};
use uqsj_sparql::{SparqlQuery, Term, Triple};

/// Dataset shaping parameters.
#[derive(Clone, Copy, Debug)]
pub struct DatasetConfig {
    /// Number of natural-language questions (|U| before analysis drops).
    pub questions: usize,
    /// Number of *extra* distractor SPARQL queries beyond the gold ones.
    pub distractors: usize,
    /// Maximum relations per question.
    pub max_relations: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DatasetConfig {
    fn default() -> Self {
        Self { questions: 100, distractors: 150, max_relations: 3, seed: 42 }
    }
}

/// A fully materialized workload.
pub struct Dataset {
    /// Shared symbol table for every graph.
    pub table: SymbolTable,
    /// The knowledge base.
    pub kb: KnowledgeBase,
    /// Generated question/gold pairs, aligned with `u_graphs` /
    /// `analyses` by index (questions that failed analysis are dropped
    /// and recorded in `failed`).
    pub pairs: Vec<QaPair>,
    /// Question analyses.
    pub analyses: Vec<QuestionAnalysis>,
    /// Uncertain graphs (`U`).
    pub u_graphs: Vec<UncertainGraph>,
    /// SPARQL workload (`D`): gold queries first, then distractors.
    pub d_queries: Vec<SparqlQuery>,
    /// Certain join graphs of `d_queries`.
    pub d_graphs: Vec<Graph>,
    /// SPARQL term behind each vertex of each `d_graphs[i]`.
    pub d_terms: Vec<Vec<Term>>,
    /// For each question, the index of its gold query in `d_queries`.
    pub gold_of: Vec<usize>,
    /// Questions that failed analysis, with the failure message
    /// (Fig. 18's raw material).
    pub failed: Vec<(QaPair, String)>,
}

impl Dataset {
    /// |U| actually joined.
    pub fn u_len(&self) -> usize {
        self.u_graphs.len()
    }

    /// |D|.
    pub fn d_len(&self) -> usize {
        self.d_graphs.len()
    }

    /// The correctness judgment of Sec. 7.1.2: does returned query
    /// `d_queries[qi]` match the gold query of question `gi` modulo
    /// entity phrases?
    pub fn pair_is_correct(&self, qi: usize, gi: usize) -> bool {
        queries_match_modulo_entities(&self.kb, &self.d_queries[qi], &self.pairs[gi].sparql)
    }
}

/// Compare two queries after replacing every entity constant by one shared
/// slot wildcard; equal shapes (GED 0) count as a match.
pub fn queries_match_modulo_entities(kb: &KnowledgeBase, a: &SparqlQuery, b: &SparqlQuery) -> bool {
    let mut t = SymbolTable::new();
    let ga = shape_graph(kb, &mut t, a);
    let gb = shape_graph(kb, &mut t, b);
    if ga.vertex_count() != gb.vertex_count() || ga.edge_count() != gb.edge_count() {
        return false;
    }
    uqsj_ged::ged_bounded(&t, &ga, &gb, 0).is_some()
}

/// The "shape" of a query: entities → the `?slot` wildcard; classes and
/// predicates kept.
fn shape_graph(kb: &KnowledgeBase, t: &mut SymbolTable, q: &SparqlQuery) -> Graph {
    let mut g = Graph::new();
    let mut seen: Vec<(Term, uqsj_graph::VertexId)> = Vec::new();
    let mut vertex_of = |g: &mut Graph, t: &mut SymbolTable, term: &Term| {
        if let Some((_, id)) = seen.iter().find(|(x, _)| x == term) {
            return *id;
        }
        let label = match term {
            Term::Var(v) => format!("?{v}"),
            Term::Iri(x) | Term::Literal(x) => {
                if kb.class_of(x).is_some() {
                    // An entity: slot it out.
                    "?slot".to_owned()
                } else {
                    // A class or unknown constant: keep.
                    x.clone()
                }
            }
        };
        let sym = t.intern(&label);
        let id = g.add_vertex(sym);
        seen.push((term.clone(), id));
        id
    };
    for tr in &q.triples {
        let s = vertex_of(&mut g, t, &tr.subject);
        let o = vertex_of(&mut g, t, &tr.object);
        let p = t.intern(&tr.predicate.label());
        g.add_edge(s, o, p);
    }
    g
}

/// Build a dataset over a KB configuration.
pub fn build_dataset(kb_cfg: &KbConfig, cfg: &DatasetConfig) -> Dataset {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let kb = KnowledgeBase::generate(kb_cfg, &mut rng);
    let raw_pairs = generate_pairs(
        &kb,
        &QuestionConfig {
            count: cfg.questions,
            max_relations: cfg.max_relations,
            ..QuestionConfig::default()
        },
        &mut rng,
    );
    assemble_dataset(kb, raw_pairs, cfg.distractors, cfg.max_relations, &mut rng)
}

/// Materialize both join sides for an explicit question set over an
/// explicit knowledge base (shared by the generators and the curated
/// paper-examples dataset).
pub fn assemble_dataset(
    kb: KnowledgeBase,
    raw_pairs: Vec<QaPair>,
    distractors: usize,
    max_relations: usize,
    rng: &mut SmallRng,
) -> Dataset {
    let mut table = SymbolTable::new();
    let mut pairs = Vec::new();
    let mut analyses = Vec::new();
    let mut u_graphs = Vec::new();
    let mut d_queries: Vec<SparqlQuery> = Vec::new();
    let mut d_graphs = Vec::new();
    let mut d_terms = Vec::new();
    let mut gold_of = Vec::new();
    let mut failed = Vec::new();

    for p in raw_pairs {
        match analyze_question(&kb.lexicon, &p.question) {
            Ok(a) => {
                let g = a.uncertain_graph(&mut table);
                // The gold query joins D (deduplicated by text).
                let idx = d_queries.iter().position(|q| *q == p.sparql).unwrap_or_else(|| {
                    d_queries.push(p.sparql.clone());
                    let (g, terms) = kb.join_graph_with_terms(&mut table, &p.sparql);
                    d_graphs.push(g);
                    d_terms.push(terms);
                    d_queries.len() - 1
                });
                gold_of.push(idx);
                u_graphs.push(g);
                analyses.push(a);
                pairs.push(p);
            }
            Err(e) => failed.push((p, e.to_string())),
        }
    }

    // Distractor queries: random fact-based queries that are *not* gold
    // for any question (the DBpedia-log stand-in).
    let mut guard = 0;
    while d_queries.len() < gold_of.iter().copied().max().map_or(0, |m| m + 1) + distractors
        && guard < distractors * 30
    {
        guard += 1;
        let Some(q) = random_query(&kb, max_relations, rng) else { continue };
        if d_queries.contains(&q) {
            continue;
        }
        let (g, terms) = kb.join_graph_with_terms(&mut table, &q);
        d_graphs.push(g);
        d_terms.push(terms);
        d_queries.push(q);
    }

    Dataset { table, kb, pairs, analyses, u_graphs, d_queries, d_graphs, d_terms, gold_of, failed }
}

/// A random conjunctive query over the KB (used as distractor).
fn random_query(
    kb: &KnowledgeBase,
    max_relations: usize,
    rng: &mut SmallRng,
) -> Option<SparqlQuery> {
    let anchor = &kb.entities[rng.gen_range(0..kb.entities.len())];
    let facts = kb.facts_of(&anchor.name);
    if facts.is_empty() {
        return None;
    }
    let var = Term::Var("x".into());
    let mut triples = vec![Triple {
        subject: var.clone(),
        predicate: Term::Iri("type".into()),
        object: Term::Iri(anchor.class.clone()),
    }];
    let k = rng.gen_range(1..=max_relations);
    for _ in 0..k {
        let (_, p, o) = kb.facts[facts[rng.gen_range(0..facts.len())]].clone();
        let t = Triple { subject: var.clone(), predicate: Term::Iri(p), object: Term::Iri(o) };
        if !triples.contains(&t) {
            triples.push(t);
        }
    }
    if triples.len() < 2 {
        return None;
    }
    Some(SparqlQuery { select: vec!["x".into()], triples })
}

/// QALD-like workload: small |U| = |D|-ish, open domain.
pub fn qald_like(cfg: &DatasetConfig) -> Dataset {
    build_dataset(&KbConfig::default(), cfg)
}

/// WebQ-like workload: larger question set joined against a much larger
/// query log (scaled down from the paper's 5,810 × 73,057 — see
/// EXPERIMENTS.md).
pub fn webq_like(cfg: &DatasetConfig) -> Dataset {
    build_dataset(
        &KbConfig { entities_per_class: 40, ambiguous_forms: 150, ..KbConfig::default() },
        cfg,
    )
}

/// MM-like workload: closed music/movies domain (the paper observes
/// higher precision here because "both natural language questions and
/// SPARQL queries focus on similar topics").
pub fn mm_like(cfg: &DatasetConfig) -> Dataset {
    build_dataset(
        &KbConfig {
            domain: &["Film", "Band", "Album", "Actor", "Singer", "Director"],
            entities_per_class: 40,
            ambiguous_forms: 40,
            ..KbConfig::default()
        },
        cfg,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Dataset {
        qald_like(&DatasetConfig { questions: 40, distractors: 30, ..Default::default() })
    }

    #[test]
    fn dataset_is_internally_consistent() {
        let d = small();
        assert_eq!(d.pairs.len(), d.u_graphs.len());
        assert_eq!(d.pairs.len(), d.gold_of.len());
        assert_eq!(d.d_queries.len(), d.d_graphs.len());
        assert!(d.d_len() > 0 && d.u_len() > 0);
        // Every gold index is valid.
        assert!(d.gold_of.iter().all(|&i| i < d.d_len()));
    }

    #[test]
    fn gold_pairs_are_judged_correct() {
        let d = small();
        for (gi, &qi) in d.gold_of.iter().enumerate() {
            assert!(d.pair_is_correct(qi, gi), "gold pair {gi} judged incorrect");
        }
    }

    #[test]
    fn different_shapes_are_judged_incorrect() {
        let d = small();
        // Find two questions with different relation counts; their gold
        // queries cannot match modulo entities.
        let mut by_k: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
        for (gi, p) in d.pairs.iter().enumerate() {
            by_k.entry(p.relations).or_insert(gi);
        }
        let ks: Vec<usize> = by_k.keys().copied().collect();
        if ks.len() >= 2 {
            let a = by_k[&ks[0]];
            let b = by_k[&ks[1]];
            assert!(!d.pair_is_correct(d.gold_of[a], b));
        }
    }

    #[test]
    fn mm_dataset_stays_in_domain() {
        let d = mm_like(&DatasetConfig { questions: 20, distractors: 10, ..Default::default() });
        for e in &d.kb.entities {
            assert!(["Film", "Band", "Album", "Actor", "Singer", "Director"]
                .contains(&e.class.as_str()));
        }
    }

    #[test]
    fn some_questions_fail_analysis_for_failure_study() {
        let d = qald_like(&DatasetConfig { questions: 150, distractors: 10, ..Default::default() });
        assert!(!d.failed.is_empty(), "noise should produce analysis failures");
    }
}
