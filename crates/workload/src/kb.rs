//! The synthetic knowledge base.
//!
//! Entities are organized by class; each class has one question noun.
//! Predicates carry relation phrases and a type signature (which classes
//! may appear as subject/object), so generated facts, questions and
//! SPARQL queries agree with each other and with the RDF store.
//!
//! Ambiguity — the whole reason the join is *uncertain* — is injected by
//! sharing surface forms across entities of different classes, with
//! linking confidences (Sec. 2.1: "an argument ... may be linked to
//! multiple entities associated with different existence confidences").

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::HashMap;
use uqsj_graph::{Graph, SymbolTable};
use uqsj_nlp::{EntityCandidate, Lexicon};
use uqsj_rdf::TripleStore;
use uqsj_sparql::{SparqlQuery, Term};

/// Static class table: (class, question noun).
pub const CLASSES: [(&str, &str); 26] = [
    ("Actor", "actor"),
    ("Politician", "politician"),
    ("Scientist", "scientist"),
    ("Writer", "writer"),
    ("Singer", "singer"),
    ("Director", "director"),
    ("City", "city"),
    ("Country", "country"),
    ("State", "state"),
    ("University", "university"),
    ("Company", "company"),
    ("Film", "movie"),
    ("Band", "band"),
    ("Album", "album"),
    ("Book", "book"),
    ("Team", "team"),
    ("Stadium", "stadium"),
    ("River", "river"),
    ("Mountain", "mountain"),
    ("Museum", "museum"),
    ("Language", "language"),
    ("Airline", "airline"),
    ("Newspaper", "newspaper"),
    ("Lake", "lake"),
    ("Party", "party"),
    ("Festival", "festival"),
];

/// Person-like classes (can marry, graduate, be born somewhere).
pub const PERSON_CLASSES: [&str; 6] =
    ["Actor", "Politician", "Scientist", "Writer", "Singer", "Director"];

/// Predicate table: (name, phrases, subject classes, object classes).
/// `subject classes` empty means any person-like class.
pub struct PredicateSpec {
    /// Local name.
    pub name: &'static str,
    /// NL phrases.
    pub phrases: &'static [&'static str],
    /// Allowed subject classes (empty = person-like).
    pub subjects: &'static [&'static str],
    /// Allowed object classes.
    pub objects: &'static [&'static str],
    /// Noun phrase for the inverse question shape ("Who is the ⟨noun⟩ of
    /// E?"), when the predicate reads naturally that way.
    pub inverse_noun: Option<&'static str>,
}

/// The full predicate inventory.
pub const PREDICATES: [PredicateSpec; 18] = [
    PredicateSpec {
        name: "birthPlace",
        phrases: &["born in", "from"],
        subjects: &[],
        objects: &["City", "Country", "State"],
        inverse_noun: Some("birth place"),
    },
    PredicateSpec {
        name: "spouse",
        phrases: &["married to"],
        subjects: &[],
        objects: &["Actor", "Politician", "Scientist", "Writer", "Singer", "Director"],
        inverse_noun: Some("spouse"),
    },
    PredicateSpec {
        name: "graduatedFrom",
        phrases: &["graduated from", "studied at"],
        subjects: &[],
        objects: &["University"],
        inverse_noun: None,
    },
    PredicateSpec {
        name: "worksFor",
        phrases: &["working for", "employed by"],
        subjects: &[],
        objects: &["Company"],
        inverse_noun: None,
    },
    PredicateSpec {
        name: "locatedIn",
        phrases: &["located in", "of"],
        subjects: &["City", "University", "Company", "Stadium", "Museum", "Mountain", "River"],
        objects: &["City", "Country", "State"],
        inverse_noun: None,
    },
    PredicateSpec {
        name: "director",
        phrases: &["directed by"],
        subjects: &["Film"],
        objects: &["Director"],
        inverse_noun: Some("director"),
    },
    PredicateSpec {
        name: "starring",
        phrases: &["starring"],
        subjects: &["Film"],
        objects: &["Actor", "Singer"],
        inverse_noun: None,
    },
    PredicateSpec {
        name: "author",
        phrases: &["written by"],
        subjects: &["Book"],
        objects: &["Writer"],
        inverse_noun: Some("author"),
    },
    PredicateSpec {
        name: "artist",
        phrases: &["recorded by", "performed by"],
        subjects: &["Album"],
        objects: &["Band", "Singer"],
        inverse_noun: None,
    },
    PredicateSpec {
        name: "memberOf",
        phrases: &["playing in", "member of"],
        subjects: &["Singer", "Actor"],
        objects: &["Band", "Team"],
        inverse_noun: None,
    },
    PredicateSpec {
        name: "homeGround",
        phrases: &["playing at"],
        subjects: &["Team"],
        objects: &["Stadium"],
        inverse_noun: Some("home ground"),
    },
    PredicateSpec {
        name: "foundedBy",
        phrases: &["founded by"],
        subjects: &["Company", "University"],
        objects: &["Politician", "Scientist", "Writer"],
        inverse_noun: Some("founder"),
    },
    PredicateSpec {
        name: "spokenIn",
        phrases: &["spoken in"],
        subjects: &["Language"],
        objects: &["Country"],
        inverse_noun: None,
    },
    PredicateSpec {
        name: "hub",
        phrases: &["flying out of", "based at"],
        subjects: &["Airline"],
        objects: &["City"],
        inverse_noun: None,
    },
    PredicateSpec {
        name: "publishedIn",
        phrases: &["published in", "printed in"],
        subjects: &["Newspaper"],
        objects: &["City", "Country"],
        inverse_noun: None,
    },
    PredicateSpec {
        name: "flowsInto",
        phrases: &["flowing into"],
        subjects: &["River"],
        objects: &["Lake", "River"],
        inverse_noun: None,
    },
    PredicateSpec {
        name: "memberOfParty",
        phrases: &["belonging to", "affiliated with"],
        subjects: &["Politician"],
        objects: &["Party"],
        inverse_noun: Some("party"),
    },
    PredicateSpec {
        name: "heldIn",
        phrases: &["held in", "celebrated in"],
        subjects: &["Festival"],
        objects: &["City", "Country"],
        inverse_noun: None,
    },
];

/// KB generation parameters.
#[derive(Clone, Copy, Debug)]
pub struct KbConfig {
    /// Entities generated per class.
    pub entities_per_class: usize,
    /// Number of shared (ambiguous) surface-form groups.
    pub ambiguous_forms: usize,
    /// Candidates per ambiguous form (`avg |L(v)|` knob, Fig. 14).
    pub labels_per_form: usize,
    /// Facts generated per entity (expected).
    pub facts_per_entity: usize,
    /// Restrict to a closed domain (the MM workload): only these classes
    /// are populated when non-empty.
    pub domain: &'static [&'static str],
}

impl Default for KbConfig {
    fn default() -> Self {
        Self {
            entities_per_class: 30,
            ambiguous_forms: 110,
            labels_per_form: 4,
            facts_per_entity: 3,
            domain: &[],
        }
    }
}

/// One entity.
#[derive(Clone, Debug)]
pub struct KbEntity {
    /// Unique name (`Actor_17`).
    pub name: String,
    /// Its class.
    pub class: String,
    /// The surface form used in questions (may be shared).
    pub surface: String,
}

/// The generated knowledge base.
pub struct KnowledgeBase {
    /// All entities.
    pub entities: Vec<KbEntity>,
    /// Facts: (subject entity, predicate, object entity).
    pub facts: Vec<(String, String, String)>,
    /// The lexicon for question analysis.
    pub lexicon: Lexicon,
    /// Class of each entity name.
    class_of: HashMap<String, String>,
    /// Entities indexed by class.
    by_class: HashMap<String, Vec<usize>>,
    /// Facts indexed by subject.
    facts_by_subject: HashMap<String, Vec<usize>>,
}

impl KnowledgeBase {
    /// Generate a KB.
    pub fn generate(cfg: &KbConfig, rng: &mut SmallRng) -> Self {
        let classes: Vec<(&str, &str)> = CLASSES
            .iter()
            .filter(|(c, _)| cfg.domain.is_empty() || cfg.domain.contains(c))
            .copied()
            .collect();
        let mut lexicon = Lexicon::new();
        for (class, noun) in &classes {
            lexicon.add_class(noun, class);
        }
        for p in &PREDICATES {
            lexicon.add_predicate(p.name, p.phrases);
            if let Some(noun) = p.inverse_noun {
                lexicon.add_inverse_noun(noun, p.name);
            }
        }

        // Entities with unique surface forms by default.
        let mut entities = Vec::new();
        let mut by_class: HashMap<String, Vec<usize>> = HashMap::new();
        for (class, _) in &classes {
            for i in 0..cfg.entities_per_class {
                let name = format!("{class}_{i}");
                let surface = format!("{class} {i}");
                by_class.entry((*class).to_owned()).or_default().push(entities.len());
                entities.push(KbEntity { name, class: (*class).to_owned(), surface });
            }
        }

        // Ambiguous surface-form groups: one shared phrase resolving to
        // several entities of (preferably) different classes.
        let mut grouped: Vec<usize> = (0..entities.len()).collect();
        grouped.shuffle(rng);
        let mut cursor = 0usize;
        for gi in 0..cfg.ambiguous_forms {
            let k = cfg.labels_per_form.max(2);
            if cursor + k > grouped.len() {
                break;
            }
            let members = &grouped[cursor..cursor + k];
            cursor += k;
            let phrase = format!("Name{gi}");
            // Dirichlet-ish confidences: random positive weights,
            // normalized, sorted descending for realism.
            let mut weights: Vec<f64> = (0..k).map(|_| rng.gen_range(0.1..1.0)).collect();
            let total: f64 = weights.iter().sum();
            for w in &mut weights {
                *w /= total;
            }
            weights.sort_by(|a, b| b.partial_cmp(a).expect("weights are finite"));
            for (&ei, _) in members.iter().zip(&weights) {
                entities[ei].surface = phrase.clone();
            }
            let candidates: Vec<EntityCandidate> = members
                .iter()
                .zip(&weights)
                .map(|(&ei, &prob)| EntityCandidate {
                    entity: entities[ei].name.clone(),
                    class: entities[ei].class.clone(),
                    prob,
                })
                .collect();
            lexicon.add_surface_form(&phrase, candidates);
        }
        // Unambiguous surface forms for everything not in a group.
        for e in &entities {
            if lexicon.link(&e.surface).is_none() {
                lexicon.add_surface_form(
                    &e.surface,
                    vec![EntityCandidate {
                        entity: e.name.clone(),
                        class: e.class.clone(),
                        prob: 1.0,
                    }],
                );
            }
        }

        let class_of: HashMap<String, String> =
            entities.iter().map(|e| (e.name.clone(), e.class.clone())).collect();

        // Facts respecting predicate signatures.
        let person_classes: Vec<&str> = PERSON_CLASSES
            .iter()
            .filter(|c| cfg.domain.is_empty() || cfg.domain.contains(c))
            .copied()
            .collect();
        let mut facts = Vec::new();
        let mut facts_by_subject: HashMap<String, Vec<usize>> = HashMap::new();
        for (ei, e) in entities.iter().enumerate() {
            let applicable: Vec<&PredicateSpec> = PREDICATES
                .iter()
                .filter(|p| {
                    let subj_ok = if p.subjects.is_empty() {
                        person_classes.contains(&e.class.as_str())
                    } else {
                        p.subjects.contains(&e.class.as_str())
                    };
                    subj_ok
                        && p.objects.iter().any(|c| by_class.get(*c).is_some_and(|v| !v.is_empty()))
                })
                .collect();
            if applicable.is_empty() {
                continue;
            }
            for _ in 0..cfg.facts_per_entity {
                let p = applicable[rng.gen_range(0..applicable.len())];
                let obj_classes: Vec<&&str> = p
                    .objects
                    .iter()
                    .filter(|c| by_class.get(**c).is_some_and(|v| !v.is_empty()))
                    .collect();
                let oc = obj_classes[rng.gen_range(0..obj_classes.len())];
                let pool = &by_class[*oc];
                let mut oi = pool[rng.gen_range(0..pool.len())];
                if entities[oi].name == e.name {
                    oi = pool[(pool.iter().position(|&x| x == oi).unwrap() + 1) % pool.len()];
                    if entities[oi].name == e.name {
                        continue;
                    }
                }
                facts_by_subject.entry(e.name.clone()).or_default().push(facts.len());
                facts.push((e.name.clone(), p.name.to_owned(), entities[oi].name.clone()));
            }
            let _ = ei;
        }

        KnowledgeBase { entities, facts, lexicon, class_of, by_class, facts_by_subject }
    }

    /// Assemble a knowledge base from explicit parts (used by the curated
    /// paper-examples dataset and by tests); index maps are derived.
    pub fn from_parts(
        entities: Vec<KbEntity>,
        facts: Vec<(String, String, String)>,
        lexicon: Lexicon,
    ) -> Self {
        let class_of: HashMap<String, String> =
            entities.iter().map(|e| (e.name.clone(), e.class.clone())).collect();
        let mut by_class: HashMap<String, Vec<usize>> = HashMap::new();
        for (i, e) in entities.iter().enumerate() {
            by_class.entry(e.class.clone()).or_default().push(i);
        }
        let mut facts_by_subject: HashMap<String, Vec<usize>> = HashMap::new();
        for (i, (s, _, _)) in facts.iter().enumerate() {
            facts_by_subject.entry(s.clone()).or_default().push(i);
        }
        KnowledgeBase { entities, facts, lexicon, class_of, by_class, facts_by_subject }
    }

    /// Class of an entity name, if known.
    pub fn class_of(&self, entity: &str) -> Option<&str> {
        self.class_of.get(entity).map(String::as_str)
    }

    /// Entities of a class.
    pub fn entities_of_class(&self, class: &str) -> &[usize] {
        self.by_class.get(class).map_or(&[], Vec::as_slice)
    }

    /// Facts whose subject is `entity` (indexes into [`Self::facts`]).
    pub fn facts_of(&self, entity: &str) -> &[usize] {
        self.facts_by_subject.get(entity).map_or(&[], Vec::as_slice)
    }

    /// Surface form of an entity.
    pub fn surface_of(&self, entity: &str) -> Option<&str> {
        self.entities.iter().find(|e| e.name == entity).map(|e| e.surface.as_str())
    }

    /// Load every fact (plus `type` triples) into an RDF store.
    pub fn triple_store(&self) -> TripleStore {
        let mut store = TripleStore::new();
        for e in &self.entities {
            store.insert(&e.name, "type", &e.class);
        }
        for (s, p, o) in &self.facts {
            store.insert(s, p, o);
        }
        store.ensure_indexes();
        store
    }

    /// Build the join-side graph of a SPARQL query per the convention of
    /// Fig. 3: entity vertices are labeled with their *class* (the
    /// abstraction that lets questions and queries about different
    /// entities still match), class objects of `type` edges keep their
    /// class label, variables stay wildcards.
    pub fn join_graph(&self, table: &mut SymbolTable, query: &SparqlQuery) -> Graph {
        self.join_graph_with_terms(table, query).0
    }

    /// Like [`Self::join_graph`], additionally returning the SPARQL term
    /// behind each vertex — the provenance template generation needs to
    /// map GED-matched vertices back to positions in the query text.
    pub fn join_graph_with_terms(
        &self,
        table: &mut SymbolTable,
        query: &SparqlQuery,
    ) -> (Graph, Vec<Term>) {
        let mut g = Graph::new();
        let mut terms: Vec<Term> = Vec::new();
        let mut vertex_of = |g: &mut Graph, table: &mut SymbolTable, t: &Term, kb: &Self| {
            if let Some(i) = terms.iter().position(|x| x == t) {
                return uqsj_graph::VertexId(i as u32);
            }
            let label = match t {
                Term::Var(v) => format!("?{v}"),
                Term::Iri(x) | Term::Literal(x) => {
                    kb.class_of(x).map(str::to_owned).unwrap_or_else(|| x.clone())
                }
            };
            let sym = table.intern(&label);
            let id = g.add_vertex(sym);
            terms.push(t.clone());
            id
        };
        for tr in &query.triples {
            let s = vertex_of(&mut g, table, &tr.subject, self);
            let o = vertex_of(&mut g, table, &tr.object, self);
            let p = table.intern(&tr.predicate.label());
            g.add_edge(s, o, p);
        }
        (g, terms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn kb() -> KnowledgeBase {
        let mut rng = SmallRng::seed_from_u64(1);
        KnowledgeBase::generate(&KbConfig::default(), &mut rng)
    }

    #[test]
    fn generates_entities_and_facts() {
        let kb = kb();
        assert_eq!(kb.entities.len(), CLASSES.len() * 30);
        assert!(!kb.facts.is_empty());
        // Every fact respects the predicate signature.
        for (s, p, o) in &kb.facts {
            let spec = PREDICATES.iter().find(|x| x.name == p).unwrap();
            let sc = kb.class_of(s).unwrap();
            let oc = kb.class_of(o).unwrap();
            if spec.subjects.is_empty() {
                assert!(PERSON_CLASSES.contains(&sc));
            } else {
                assert!(spec.subjects.contains(&sc));
            }
            assert!(spec.objects.contains(&oc), "{p} object {oc}");
        }
    }

    #[test]
    fn ambiguous_forms_have_multiple_candidates() {
        let kb = kb();
        let ambiguous = kb.lexicon.surface_forms.values().filter(|c| c.len() >= 2).count();
        assert!(ambiguous >= 50, "got {ambiguous}");
        for cands in kb.lexicon.surface_forms.values() {
            let total: f64 = cands.iter().map(|c| c.prob).sum();
            assert!(total <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn triple_store_answers_type_queries() {
        let kb = kb();
        let store = kb.triple_store();
        let q = uqsj_sparql::parse("SELECT ?x WHERE { ?x type Actor . }").unwrap();
        let rows = uqsj_rdf::bgp::evaluate(&store, &q);
        assert_eq!(rows.len(), 30);
    }

    #[test]
    fn join_graph_abstracts_entities_to_classes() {
        let kb = kb();
        let q = uqsj_sparql::parse(
            "SELECT ?x WHERE { ?x type Actor . ?x graduatedFrom University_3 . }",
        )
        .unwrap();
        let mut t = SymbolTable::new();
        let g = kb.join_graph(&mut t, &q);
        assert_eq!(g.vertex_count(), 3);
        let labels: Vec<&str> = g.vertex_labels().iter().map(|&s| t.name(s)).collect();
        assert!(labels.contains(&"University"), "{labels:?}");
        assert!(labels.contains(&"Actor"));
        assert!(labels.contains(&"?x"));
    }

    #[test]
    fn closed_domain_restricts_classes() {
        let mut rng = SmallRng::seed_from_u64(2);
        let cfg = KbConfig {
            domain: &["Film", "Band", "Album", "Actor", "Singer", "Director"],
            ..KbConfig::default()
        };
        let kb = KnowledgeBase::generate(&cfg, &mut rng);
        assert!(kb.entities.iter().all(|e| cfg.domain.contains(&e.class.as_str())));
    }
}
