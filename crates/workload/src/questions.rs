//! Question / gold-SPARQL pair generation.
//!
//! Questions are generated *from KB facts*, so their gold SPARQL queries
//! are answerable over the triple store. The surface syntax follows the
//! schemas the NLP pipeline understands:
//!
//! ```text
//! Which <noun> <phrase> <Entity> [and <phrase> <Entity>]*          (star)
//! Which <noun> <phrase> <E1> <phrase> <E2>                        (chain)
//! Who <phrase> <Entity> ?
//! Give me all <noun> <phrase> <Entity>
//! ```
//!
//! Noise injection reproduces the paper's failure modes (Fig. 18):
//! `MisleadingSurface` questions use an ambiguous phrase whose dominant
//! linking candidate is *wrong* (→ incorrect semantic query graph), and
//! `UnknownPhrase` questions contain an out-of-lexicon argument.

use crate::kb::{KnowledgeBase, PREDICATES};
use rand::rngs::SmallRng;
use rand::Rng;
use uqsj_sparql::{SparqlQuery, Term, Triple};

/// Noise class of a generated question.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NoiseKind {
    /// Clean question.
    Clean,
    /// Contains an ambiguous surface form whose most likely candidate is
    /// not the intended entity.
    MisleadingSurface,
    /// Contains a phrase the lexicon does not know.
    UnknownPhrase,
}

/// One generated pair.
#[derive(Clone, Debug)]
pub struct QaPair {
    /// The natural-language question.
    pub question: String,
    /// The gold SPARQL query.
    pub sparql: SparqlQuery,
    /// Number of (non-`type`) relations (the `k` of Fig. 17).
    pub relations: usize,
    /// Noise class.
    pub noise: NoiseKind,
    /// The entity names mentioned, in question order (for evaluation).
    pub entities: Vec<String>,
}

/// Generation parameters.
#[derive(Clone, Copy, Debug)]
pub struct QuestionConfig {
    /// Number of pairs.
    pub count: usize,
    /// Maximum relations per question.
    pub max_relations: usize,
    /// Fraction of questions with a misleading ambiguous mention.
    pub misleading_rate: f64,
    /// Fraction with an unknown phrase.
    pub unknown_rate: f64,
}

impl Default for QuestionConfig {
    fn default() -> Self {
        Self { count: 100, max_relations: 3, misleading_rate: 0.12, unknown_rate: 0.06 }
    }
}

/// Generate `cfg.count` pairs over `kb`.
pub fn generate_pairs(kb: &KnowledgeBase, cfg: &QuestionConfig, rng: &mut SmallRng) -> Vec<QaPair> {
    let mut out = Vec::with_capacity(cfg.count);
    let mut guard = 0usize;
    while out.len() < cfg.count && guard < cfg.count * 50 {
        guard += 1;
        if let Some(pair) = generate_one(kb, cfg, rng) {
            out.push(pair);
        }
    }
    out
}

fn phrase_for(rng: &mut SmallRng, predicate: &str) -> &'static str {
    let spec = PREDICATES
        .iter()
        .find(|p| p.name == predicate)
        .expect("fact predicates come from the inventory");
    spec.phrases[rng.gen_range(0..spec.phrases.len())]
}

fn generate_one(kb: &KnowledgeBase, cfg: &QuestionConfig, rng: &mut SmallRng) -> Option<QaPair> {
    // Anchor: an entity with at least one fact.
    let anchor = &kb.entities[rng.gen_range(0..kb.entities.len())];
    let anchor_facts = kb.facts_of(&anchor.name);
    if anchor_facts.is_empty() {
        return None;
    }

    // Inverse schema (~1 in 6 questions): "Who is the <noun> of <E>?"
    // asks for the object of one of the anchor's facts; the entity is the
    // SPARQL subject.
    if rng.gen_bool(0.17) {
        let fi = anchor_facts[rng.gen_range(0..anchor_facts.len())];
        let (s, p, _) = kb.facts[fi].clone();
        let noun = PREDICATES.iter().find(|spec| spec.name == p).and_then(|spec| spec.inverse_noun);
        if let Some(noun) = noun {
            let surface = kb.surface_of(&s)?.to_owned();
            // "Who" when the answer is a person, "What" otherwise.
            let person_answer = PREDICATES.iter().find(|spec| spec.name == p).is_some_and(|spec| {
                spec.objects.iter().any(|c| crate::kb::PERSON_CLASSES.contains(c))
            });
            let wh = if person_answer { "Who" } else { "What" };
            let question = format!("{wh} is the {noun} of {surface}?");
            let triples = vec![Triple {
                subject: Term::Iri(s.clone()),
                predicate: Term::Iri(p),
                object: Term::Var("x".into()),
            }];
            return Some(QaPair {
                question,
                sparql: SparqlQuery { select: vec!["x".into()], triples },
                relations: 1,
                noise: NoiseKind::Clean,
                entities: vec![s],
            });
        }
    }
    let noun = crate::kb::CLASSES.iter().find(|(c, _)| *c == anchor.class).map(|(_, n)| *n)?;

    let k = rng.gen_range(1..=cfg.max_relations);
    let mut text_parts: Vec<String> = Vec::new();
    let mut triples: Vec<Triple> = Vec::new();
    let mut entities: Vec<String> = Vec::new();
    let var = Term::Var("x".into());
    triples.push(Triple {
        subject: var.clone(),
        predicate: Term::Iri("type".into()),
        object: Term::Iri(anchor.class.clone()),
    });

    let head_style = rng.gen_range(0..3u8);
    match head_style {
        0 => text_parts.push(format!("Which {noun}")),
        1 => text_parts.push(format!("Give me all {noun}")),
        _ => text_parts.push(format!("Which {noun}")),
    }

    // First relation always hangs off the variable (a fact of the
    // anchor); subsequent ones either also hang off the variable (star,
    // joined by "and") or chain off the previous object.
    let mut chain_subject: Option<String> = None; // entity name of chain head
    let mut added = 0usize;
    let mut first = true;
    while added < k {
        let (subj_name, fact) = match &chain_subject {
            None => {
                let fi = anchor_facts[rng.gen_range(0..anchor_facts.len())];
                (None, &kb.facts[fi])
            }
            Some(name) => {
                let facts = kb.facts_of(name);
                if facts.is_empty() {
                    // Cannot chain further; fall back to a star relation.
                    chain_subject = None;
                    continue;
                }
                let fi = facts[rng.gen_range(0..facts.len())];
                (Some(name.clone()), &kb.facts[fi])
            }
        };
        let (s, p, o) = fact.clone();
        let phrase = phrase_for(rng, &p);
        let surface = kb.surface_of(&o)?.to_owned();
        let subject_term = match &subj_name {
            None => var.clone(),
            Some(name) => Term::Iri(name.clone()),
        };
        // Avoid duplicate triples.
        let t = Triple {
            subject: subject_term,
            predicate: Term::Iri(p.clone()),
            object: Term::Iri(o.clone()),
        };
        if triples.contains(&t) {
            if added == 0 {
                return None;
            }
            break;
        }
        triples.push(t);
        entities.push(o.clone());
        let _ = s;

        if first {
            text_parts.push(format!("{phrase} {surface}"));
            first = false;
        } else if subj_name.is_some() {
            // Chained relation: no filler, directly after the argument.
            text_parts.push(format!("{phrase} {surface}"));
        } else {
            text_parts.push(format!("and {phrase} {surface}"));
        }
        added += 1;

        // Decide how the next relation (if any) attaches.
        chain_subject = if rng.gen_bool(0.4) { Some(o) } else { None };
    }
    if added == 0 {
        return None;
    }

    let mut question = text_parts.join(" ");
    question.push('?');

    // Noise injection.
    let roll: f64 = rng.gen();
    let mut noise = NoiseKind::Clean;
    if roll < cfg.unknown_rate {
        // Replace the first mentioned surface with an unknown phrase.
        if let Some(first_entity) = entities.first() {
            if let Some(surface) = kb.surface_of(first_entity) {
                question = question.replacen(surface, "Zanzibar Prime", 1);
                noise = NoiseKind::UnknownPhrase;
            }
        }
    } else if roll < cfg.unknown_rate + cfg.misleading_rate {
        // Swap the first mention for an ambiguous surface form whose top
        // candidate has a different class than the intended object.
        if let Some(first_entity) = entities.first().cloned() {
            let target_class = kb.class_of(&first_entity)?.to_owned();
            // `surface_forms` is a HashMap; pick the first *in phrase
            // order*, not iteration order, so the generated question is
            // a pure function of the seed across processes (the testkit
            // replay contract depends on generator purity).
            let mut eligible: Vec<(&String, &Vec<uqsj_nlp::EntityCandidate>)> = kb
                .lexicon
                .surface_forms
                .iter()
                .filter(|(_, cands)| {
                    cands.len() >= 2
                        && cands[0].class != target_class
                        && cands.iter().any(|c| c.class == target_class)
                })
                .collect();
            eligible.sort_by(|a, b| a.0.cmp(b.0));
            if let Some((phrase, cands)) = eligible.first().copied() {
                if let Some(surface) = kb.surface_of(&first_entity) {
                    // Make the question point at this group's entity of
                    // the right class, but through the misleading phrase.
                    let intended = cands.iter().find(|c| c.class == target_class)?;
                    let phrase = phrase.clone();
                    let intended_entity = intended.entity.clone();
                    question = question.replacen(surface, &phrase, 1);
                    // Gold SPARQL now targets the intended entity.
                    for t in &mut triples {
                        if t.object == Term::Iri(first_entity.clone()) {
                            t.object = Term::Iri(intended_entity.clone());
                        }
                    }
                    entities[0] = intended_entity;
                    noise = NoiseKind::MisleadingSurface;
                }
            }
        }
    }

    Some(QaPair {
        question,
        sparql: SparqlQuery { select: vec!["x".into()], triples },
        relations: added,
        noise,
        entities,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kb::KbConfig;
    use rand::SeedableRng;
    use uqsj_nlp::analyze_question;

    fn setup() -> (KnowledgeBase, Vec<QaPair>) {
        let mut rng = SmallRng::seed_from_u64(7);
        let kb = KnowledgeBase::generate(&KbConfig::default(), &mut rng);
        let pairs = generate_pairs(
            &kb,
            &QuestionConfig { count: 120, ..QuestionConfig::default() },
            &mut rng,
        );
        (kb, pairs)
    }

    #[test]
    fn generates_requested_count() {
        let (_, pairs) = setup();
        assert_eq!(pairs.len(), 120);
    }

    #[test]
    fn clean_questions_analyze_successfully() {
        let (kb, pairs) = setup();
        let mut ok = 0;
        let mut clean = 0;
        for p in &pairs {
            if p.noise == NoiseKind::Clean {
                clean += 1;
                if analyze_question(&kb.lexicon, &p.question).is_ok() {
                    ok += 1;
                }
            }
        }
        assert!(clean > 0);
        assert!(ok as f64 / clean as f64 > 0.95, "only {ok}/{clean} clean questions analyzable");
    }

    #[test]
    fn gold_sparql_is_answerable() {
        let (kb, pairs) = setup();
        let store = kb.triple_store();
        let mut answered = 0;
        let mut total = 0;
        for p in pairs.iter().filter(|p| p.noise == NoiseKind::Clean).take(40) {
            total += 1;
            if !uqsj_rdf::bgp::evaluate(&store, &p.sparql).is_empty() {
                answered += 1;
            }
        }
        assert_eq!(answered, total, "gold queries must have answers");
    }

    #[test]
    fn unknown_phrase_questions_fail_analysis() {
        let (kb, pairs) = setup();
        for p in pairs.iter().filter(|p| p.noise == NoiseKind::UnknownPhrase) {
            assert!(
                analyze_question(&kb.lexicon, &p.question).is_err(),
                "expected failure on {:?}",
                p.question
            );
        }
    }

    #[test]
    fn inverse_questions_are_generated_and_analyzable() {
        let (kb, pairs) = setup();
        let inverse: Vec<&QaPair> = pairs
            .iter()
            .filter(|p| {
                p.question.starts_with("Who is the") || p.question.starts_with("What is the")
            })
            .collect();
        assert!(!inverse.is_empty(), "no inverse questions generated");
        let store = kb.triple_store();
        for p in &inverse {
            let a = analyze_question(&kb.lexicon, &p.question)
                .unwrap_or_else(|e| panic!("{:?}: {e}", p.question));
            // Entity is the subject of the single relation.
            assert_eq!(a.relations.len(), 1);
            // Gold is answerable.
            assert!(!uqsj_rdf::bgp::evaluate(&store, &p.sparql).is_empty());
        }
    }

    #[test]
    fn relation_counts_within_bounds() {
        let (_, pairs) = setup();
        assert!(pairs.iter().all(|p| (1..=3).contains(&p.relations)));
        // Some multi-relation questions exist.
        assert!(pairs.iter().any(|p| p.relations >= 2));
    }
}
