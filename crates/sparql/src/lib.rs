//! A SPARQL subset sufficient for the paper's workloads: `SELECT`
//! queries over OPT-free basic graph patterns (footnote 3 of the paper:
//! "We focus on the basic graph patterns of OPT-free SPARQL queries").
//!
//! * [`ast`] — terms, triples and queries.
//! * [`parser`] — a hand-written recursive-descent parser with positioned
//!   errors.
//! * [`graph`] — conversion of a parsed query to the certain query graph
//!   of the join (`D` side), keeping the vertex → term correspondence so
//!   template generation can substitute slots back into SPARQL text.

pub mod ast;
pub mod graph;
pub mod parser;

pub use ast::{SparqlQuery, Term, Triple};
pub use graph::{query_graph, QueryGraph};
pub use parser::{parse, ParseError};
