//! Recursive-descent parser for the SPARQL subset.
//!
//! Grammar (case-insensitive keywords):
//!
//! ```text
//! query   := prefix* SELECT projection WHERE '{' triples '}'
//! prefix  := PREFIX name ':' '<' iri '>'
//! projection := '*' | var+
//! triples := triple ('.' triple)* '.'?
//! triple  := term term term
//! term    := var | '<' iri '>' | prefixed | word | string
//! ```
//!
//! Prefixed names and full IRIs are reduced to their local names — the
//! workloads identify entities/predicates by local name, matching how the
//! paper's figures print them (`type`, `Harvard_University`, …).

use crate::ast::{SparqlQuery, Term, Triple};
use std::collections::HashMap;
use std::fmt;

/// A parse error with byte offset into the input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SPARQL parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse a query string.
///
/// ```
/// let q = uqsj_sparql::parse(
///     "SELECT ?person WHERE { ?person type Artist . ?person graduatedFrom Harvard_University }",
/// ).unwrap();
/// assert_eq!(q.select, vec!["person".to_string()]);
/// assert_eq!(q.triples.len(), 2);
/// ```
pub fn parse(input: &str) -> Result<SparqlQuery, ParseError> {
    Parser { input: input.as_bytes(), pos: 0, prefixes: HashMap::new() }.query()
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
    prefixes: HashMap<String, String>,
}

impl Parser<'_> {
    fn error<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError { message: message.into(), offset: self.pos })
    }

    fn skip_ws(&mut self) {
        while let Some(&c) = self.input.get(self.pos) {
            if c.is_ascii_whitespace() {
                self.pos += 1;
            } else if c == b'#' {
                while self.pos < self.input.len() && self.input[self.pos] != b'\n' {
                    self.pos += 1;
                }
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        self.skip_ws();
        let end = self.pos + kw.len();
        if end <= self.input.len()
            && self.input[self.pos..end].eq_ignore_ascii_case(kw.as_bytes())
            && end
                .checked_sub(0)
                .map(|e| self.input.get(e).is_none_or(|c| !is_name_byte(*c)))
                .unwrap_or(true)
        {
            self.pos = end;
            true
        } else {
            false
        }
    }

    fn expect_char(&mut self, c: u8) -> Result<(), ParseError> {
        self.skip_ws();
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            self.error(format!("expected '{}'", c as char))
        }
    }

    fn name(&mut self) -> Result<String, ParseError> {
        self.skip_ws();
        let start = self.pos;
        while self.peek().is_some_and(is_name_byte) {
            self.pos += 1;
        }
        if self.pos == start {
            return self.error("expected a name");
        }
        Ok(String::from_utf8_lossy(&self.input[start..self.pos]).into_owned())
    }

    fn query(&mut self) -> Result<SparqlQuery, ParseError> {
        while self.eat_keyword("PREFIX") {
            let p = self.name()?;
            self.expect_char(b':')?;
            self.expect_char(b'<')?;
            let start = self.pos;
            while self.peek().is_some_and(|c| c != b'>') {
                self.pos += 1;
            }
            let iri = String::from_utf8_lossy(&self.input[start..self.pos]).into_owned();
            self.expect_char(b'>')?;
            self.prefixes.insert(p, iri);
        }
        if !self.eat_keyword("SELECT") {
            return self.error("expected SELECT");
        }
        let mut select = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'*') {
            self.pos += 1;
        } else {
            while self.peek() == Some(b'?') {
                self.pos += 1;
                select.push(self.name()?);
                self.skip_ws();
            }
            if select.is_empty() {
                return self.error("expected '*' or at least one ?variable");
            }
        }
        if !self.eat_keyword("WHERE") {
            return self.error("expected WHERE");
        }
        self.expect_char(b'{')?;
        let mut triples = Vec::new();
        loop {
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                break;
            }
            if self.peek().is_none() {
                return self.error("unterminated graph pattern");
            }
            let subject = self.term()?;
            let predicate = self.term()?;
            let object = self.term()?;
            triples.push(Triple { subject, predicate, object });
            self.skip_ws();
            if self.peek() == Some(b'.') {
                self.pos += 1;
            }
        }
        if triples.is_empty() {
            return self.error("empty graph pattern");
        }
        self.skip_ws();
        if self.pos != self.input.len() {
            return self.error("trailing input after query");
        }
        Ok(SparqlQuery { select, triples })
    }

    fn term(&mut self) -> Result<Term, ParseError> {
        self.skip_ws();
        match self.peek() {
            Some(b'?') => {
                self.pos += 1;
                Ok(Term::Var(self.name()?))
            }
            Some(b'<') => {
                self.pos += 1;
                let start = self.pos;
                while self.peek().is_some_and(|c| c != b'>') {
                    self.pos += 1;
                }
                if self.peek().is_none() {
                    return self.error("unterminated IRI");
                }
                let iri = String::from_utf8_lossy(&self.input[start..self.pos]).into_owned();
                self.pos += 1;
                Ok(Term::Iri(local_name(&iri).to_owned()))
            }
            Some(b'"') => {
                self.pos += 1;
                let start = self.pos;
                while self.peek().is_some_and(|c| c != b'"') {
                    self.pos += 1;
                }
                if self.peek().is_none() {
                    return self.error("unterminated literal");
                }
                let lit = String::from_utf8_lossy(&self.input[start..self.pos]).into_owned();
                self.pos += 1;
                Ok(Term::Literal(lit))
            }
            Some(c) if is_name_byte(c) => {
                let first = self.name()?;
                if self.peek() == Some(b':') {
                    // Prefixed name: prefix must be declared; only the
                    // local part is kept.
                    self.pos += 1;
                    if !self.prefixes.contains_key(&first) && first != "rdf" && first != "rdfs" {
                        return self.error(format!("undeclared prefix '{first}'"));
                    }
                    let local = self.name()?;
                    Ok(Term::Iri(local))
                } else {
                    Ok(Term::Iri(first))
                }
            }
            _ => self.error("expected a term"),
        }
    }
}

fn is_name_byte(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_' || c == b'-'
}

/// Local name of a full IRI: the part after the last `/` or `#`.
pub fn local_name(iri: &str) -> &str {
    iri.rsplit(['/', '#']).next().unwrap_or(iri)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_papers_intro_query() {
        let q = parse(
            "SELECT ?person WHERE {\n\
             ?person rdf:type Artist .\n\
             ?person graduatedFrom Harvard_University .\n\
             }",
        )
        .unwrap();
        assert_eq!(q.select, vec!["person"]);
        assert_eq!(q.triples.len(), 2);
        assert_eq!(q.triples[0].predicate, Term::Iri("type".into()));
        assert_eq!(q.triples[1].object, Term::Iri("Harvard_University".into()));
    }

    #[test]
    fn parses_full_iris_to_local_names() {
        let q = parse(
            "SELECT ?x WHERE { ?x <http://dbpedia.org/ontology/birthPlace> <http://dbpedia.org/resource/New_York_City> . }",
        )
        .unwrap();
        assert_eq!(q.triples[0].predicate, Term::Iri("birthPlace".into()));
        assert_eq!(q.triples[0].object, Term::Iri("New_York_City".into()));
    }

    #[test]
    fn parses_prefix_declarations() {
        let q = parse(
            "PREFIX dbo: <http://dbpedia.org/ontology/>\n\
             SELECT ?x WHERE { ?x dbo:director ?d . }",
        )
        .unwrap();
        assert_eq!(q.triples[0].predicate, Term::Iri("director".into()));
    }

    #[test]
    fn rejects_undeclared_prefix() {
        let err = parse("SELECT ?x WHERE { ?x nope:thing ?y . }").unwrap_err();
        assert!(err.message.contains("undeclared prefix"));
    }

    #[test]
    fn parses_literals_and_star() {
        let q = parse("SELECT * WHERE { ?x label \"New York\" }").unwrap();
        assert!(q.select.is_empty());
        assert_eq!(q.triples[0].object, Term::Literal("New York".into()));
    }

    #[test]
    fn multiple_triples_with_optional_final_dot() {
        let q = parse("SELECT ?a WHERE { ?a p ?b . ?b q ?c }").unwrap();
        assert_eq!(q.triples.len(), 2);
    }

    #[test]
    fn error_positions_are_reported() {
        let err = parse("SELECT ?x FROM { }").unwrap_err();
        assert!(err.message.contains("WHERE"));
        assert!(err.offset >= 9);
    }

    #[test]
    fn rejects_empty_pattern_and_trailing_junk() {
        assert!(parse("SELECT ?x WHERE { }").is_err());
        assert!(parse("SELECT ?x WHERE { ?x p ?y . } garbage").is_err());
    }

    #[test]
    fn comments_are_skipped() {
        let q = parse("# a comment\nSELECT ?x WHERE { ?x p ?y . # inline\n }").unwrap();
        assert_eq!(q.triples.len(), 1);
    }

    #[test]
    fn local_name_extraction() {
        assert_eq!(local_name("http://a/b/C"), "C");
        assert_eq!(local_name("http://a#frag"), "frag");
        assert_eq!(local_name("bare"), "bare");
    }
}
