//! Conversion of a parsed SPARQL query to the certain query graph used on
//! the `D` side of the join (Sec. 3.2: "It is straightforward to represent
//! each SPARQL query ... as a certain graph").
//!
//! Subjects and objects become vertices (shared by term identity);
//! predicates become directed edge labels. The vertex → term table is kept
//! so template generation can map slots back to SPARQL text.

use crate::ast::{SparqlQuery, Term};
use uqsj_graph::{Graph, SymbolTable, VertexId};

/// A query graph with its provenance.
#[derive(Clone, Debug)]
pub struct QueryGraph {
    /// The certain graph (vertex labels are term labels; variables are
    /// wildcards).
    pub graph: Graph,
    /// `terms[v.index()]` — the term behind each vertex.
    pub terms: Vec<Term>,
}

/// Build the query graph of `query`, interning labels in `table`.
pub fn query_graph(table: &mut SymbolTable, query: &SparqlQuery) -> QueryGraph {
    let mut graph = Graph::new();
    let mut terms: Vec<Term> = Vec::new();
    let vertex_of =
        |graph: &mut Graph, terms: &mut Vec<Term>, table: &mut SymbolTable, t: &Term| -> VertexId {
            if let Some(i) = terms.iter().position(|x| x == t) {
                return VertexId(i as u32);
            }
            let sym = table.intern(&t.label());
            let id = graph.add_vertex(sym);
            terms.push(t.clone());
            id
        };
    for triple in &query.triples {
        let s = vertex_of(&mut graph, &mut terms, table, &triple.subject);
        let o = vertex_of(&mut graph, &mut terms, table, &triple.object);
        let p = table.intern(&triple.predicate.label());
        graph.add_edge(s, o, p);
    }
    QueryGraph { graph, terms }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn shared_subjects_become_one_vertex() {
        let q = parse(
            "SELECT ?person WHERE {\n\
             ?person type Artist .\n\
             ?person graduatedFrom Harvard_University .\n\
             }",
        )
        .unwrap();
        let mut t = SymbolTable::new();
        let qg = query_graph(&mut t, &q);
        assert_eq!(qg.graph.vertex_count(), 3); // ?person, Artist, Harvard
        assert_eq!(qg.graph.edge_count(), 2);
        // ?person is a wildcard vertex.
        let v0 = qg.graph.label(VertexId(0));
        assert!(t.is_wildcard(v0));
        assert_eq!(qg.terms[0], Term::Var("person".into()));
    }

    #[test]
    fn variable_predicates_are_wildcard_edges() {
        let q = parse("SELECT ?x WHERE { ?x ?p ?y . }").unwrap();
        let mut t = SymbolTable::new();
        let qg = query_graph(&mut t, &q);
        assert_eq!(qg.graph.edge_count(), 1);
        assert!(t.is_wildcard(qg.graph.edges()[0].label));
    }

    #[test]
    fn paper_running_example_q2_shape() {
        // q2 of Fig. 3 (second SPARQL query in the workload).
        let q = parse(
            "SELECT ?person1 WHERE {\n\
             ?person1 type Actor .\n\
             ?person1 birthPlace United_States .\n\
             ?person2 spouse ?person1 .\n\
             ?person2 type NBA_star .\n\
             ?person2 birthPlace New_York_City .\n\
             }",
        )
        .unwrap();
        let mut t = SymbolTable::new();
        let qg = query_graph(&mut t, &q);
        // Vertices: ?person1, Actor, United_States, ?person2, NBA_star,
        // New_York_City.
        assert_eq!(qg.graph.vertex_count(), 6);
        assert_eq!(qg.graph.edge_count(), 5);
    }
}
