//! Abstract syntax for the SPARQL subset.

use std::fmt;

/// An RDF term as it appears in a basic graph pattern.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// `?name`.
    Var(String),
    /// An IRI; stored by local name (angle brackets and prefixes are
    /// resolved away at parse time).
    Iri(String),
    /// A plain literal.
    Literal(String),
}

impl Term {
    /// The label this term contributes to the query graph: variables keep
    /// their `?name` (a wildcard), IRIs/literals their text.
    pub fn label(&self) -> String {
        match self {
            Term::Var(v) => format!("?{v}"),
            Term::Iri(i) => i.clone(),
            Term::Literal(l) => l.clone(),
        }
    }

    /// Whether this is a variable.
    pub fn is_var(&self) -> bool {
        matches!(self, Term::Var(_))
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "?{v}"),
            Term::Iri(i) => write!(f, "{i}"),
            Term::Literal(l) => write!(f, "\"{l}\""),
        }
    }
}

/// One triple pattern.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Triple {
    /// Subject.
    pub subject: Term,
    /// Predicate.
    pub predicate: Term,
    /// Object.
    pub object: Term,
}

impl fmt::Display for Triple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.subject, self.predicate, self.object)
    }
}

/// A parsed `SELECT` query over one basic graph pattern.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SparqlQuery {
    /// Projected variable names (without `?`); empty means `SELECT *`.
    pub select: Vec<String>,
    /// The basic graph pattern.
    pub triples: Vec<Triple>,
}

impl SparqlQuery {
    /// All distinct variable names in the pattern (without `?`), sorted —
    /// the projection a `SELECT *` query binds, whether or not the store
    /// produces any solutions.
    pub fn variables(&self) -> Vec<String> {
        let mut vars: Vec<String> = self
            .triples
            .iter()
            .flat_map(|t| [&t.subject, &t.predicate, &t.object])
            .filter_map(|term| match term {
                Term::Var(v) => Some(v.clone()),
                _ => None,
            })
            .collect();
        vars.sort();
        vars.dedup();
        vars
    }
}

impl fmt::Display for SparqlQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        if self.select.is_empty() {
            write!(f, "*")?;
        } else {
            let vars: Vec<String> = self.select.iter().map(|v| format!("?{v}")).collect();
            write!(f, "{}", vars.join(" "))?;
        }
        writeln!(f, " WHERE {{")?;
        for t in &self.triples {
            writeln!(f, "  {t} .")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn term_labels() {
        assert_eq!(Term::Var("x".into()).label(), "?x");
        assert_eq!(Term::Iri("Actor".into()).label(), "Actor");
        assert_eq!(Term::Literal("NY".into()).label(), "NY");
        assert!(Term::Var("x".into()).is_var());
        assert!(!Term::Iri("a".into()).is_var());
    }

    #[test]
    fn variables_are_sorted_and_distinct() {
        let q = crate::parse(
            "SELECT * WHERE { ?z type ?a . ?z graduatedFrom ?b . ?b type University }",
        )
        .unwrap();
        assert_eq!(q.variables(), vec!["a".to_string(), "b".into(), "z".into()]);
        let empty = SparqlQuery { select: vec![], triples: vec![] };
        assert!(empty.variables().is_empty());
    }

    #[test]
    fn query_display_roundtrips_through_parser() {
        let q = SparqlQuery {
            select: vec!["person".into()],
            triples: vec![Triple {
                subject: Term::Var("person".into()),
                predicate: Term::Iri("type".into()),
                object: Term::Iri("Artist".into()),
            }],
        };
        let text = q.to_string();
        let reparsed = crate::parse(&text).unwrap();
        assert_eq!(q, reparsed);
    }
}
