//! Property tests: the SPARQL pretty-printer and parser round-trip, and
//! the query graph respects term sharing.

use proptest::prelude::*;
use uqsj_sparql::{parse, query_graph, SparqlQuery, Term, Triple};

const NAMES: [&str; 6] = ["Artist", "City", "type", "birthPlace", "Harvard_University", "p0"];
const VARS: [&str; 3] = ["x", "y", "person"];

fn term_strategy() -> impl Strategy<Value = Term> {
    prop_oneof![
        (0usize..VARS.len()).prop_map(|i| Term::Var(VARS[i].into())),
        (0usize..NAMES.len()).prop_map(|i| Term::Iri(NAMES[i].into())),
        (0usize..NAMES.len()).prop_map(|i| Term::Literal(format!("lit {}", NAMES[i]))),
    ]
}

fn query_strategy() -> impl Strategy<Value = SparqlQuery> {
    (
        prop::collection::vec(0usize..VARS.len(), 1..3),
        prop::collection::vec((term_strategy(), 0usize..NAMES.len(), term_strategy()), 1..5),
    )
        .prop_map(|(select, triples)| SparqlQuery {
            select: {
                let mut s: Vec<String> = select.into_iter().map(|i| VARS[i].to_owned()).collect();
                s.dedup();
                s
            },
            triples: triples
                .into_iter()
                .map(|(s, p, o)| Triple {
                    subject: s,
                    predicate: Term::Iri(NAMES[p].into()),
                    object: o,
                })
                .collect(),
        })
}

proptest! {
    #[test]
    fn display_parse_roundtrip(q in query_strategy()) {
        let text = q.to_string();
        let parsed = parse(&text).expect("own output must parse");
        prop_assert_eq!(parsed, q);
    }

    #[test]
    fn query_graph_vertex_count_equals_distinct_terms(q in query_strategy()) {
        let mut table = uqsj_graph::SymbolTable::new();
        let qg = query_graph(&mut table, &q);
        let mut distinct: Vec<&Term> = Vec::new();
        for t in &q.triples {
            for term in [&t.subject, &t.object] {
                if !distinct.contains(&term) {
                    distinct.push(term);
                }
            }
        }
        prop_assert_eq!(qg.graph.vertex_count(), distinct.len());
        prop_assert_eq!(qg.graph.edge_count(), q.triples.len());
        prop_assert_eq!(qg.terms.len(), distinct.len());
    }
}
