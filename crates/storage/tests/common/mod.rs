//! Shared test scaffolding: unique scratch directories and a small
//! serving state to persist.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use uqsj_nlp::lexicon::paper_lexicon;
use uqsj_rdf::TripleStore;
use uqsj_sparql::{SparqlQuery, Term, Triple};
use uqsj_storage::SnapshotState;
use uqsj_template::template::{slot_term, SlotBinding};
use uqsj_template::{Template, TemplateLibrary};

static NEXT_DIR: AtomicUsize = AtomicUsize::new(0);

/// A fresh scratch directory under the system temp dir, unique per test
/// and per process.
pub fn scratch_dir(tag: &str) -> PathBuf {
    let n = NEXT_DIR.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("uqsj-storage-test-{}-{tag}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// A one-triple-pattern template over `predicate`, with `n_slots` slots.
pub fn template(tokens: &[&str], predicate: &str, confidence: f64) -> Template {
    let n_slots = tokens.iter().filter(|t| **t == "<_>").count();
    let sparql = SparqlQuery {
        select: vec!["x".into()],
        triples: (0..n_slots)
            .map(|i| Triple {
                subject: Term::Var("x".into()),
                predicate: Term::Iri(predicate.into()),
                object: slot_term(i),
            })
            .collect(),
    };
    Template::new(
        tokens.iter().map(|t| (*t).to_owned()).collect(),
        sparql,
        vec![SlotBinding::Bound; n_slots],
        confidence,
    )
}

/// A small but non-trivial serving state: two templates, the paper
/// lexicon, a handful of triples.
pub fn small_state() -> SnapshotState {
    let mut library = TemplateLibrary::new();
    library.add(template(&["Which", "<_>", "graduated", "from", "<_>", "?"], "graduatedFrom", 0.8));
    library.add(template(&["Who", "is", "married", "to", "<_>", "?"], "spouse", 0.6));
    let mut triples = TripleStore::new();
    triples.insert("Alice", "type", "Physicist");
    triples.insert("Alice", "graduatedFrom", "Carnegie_Mellon_University");
    triples.insert("Bob", "spouse", "Alice");
    triples.ensure_indexes();
    SnapshotState { library, lexicon: paper_lexicon(), triples }
}

/// Library equality by content (Template is PartialEq; library is not).
pub fn assert_same_library(got: &TemplateLibrary, want: &TemplateLibrary, context: &str) {
    assert_eq!(got.len(), want.len(), "library size diverged: {context}");
    for (i, (a, b)) in got.templates().iter().zip(want.templates()).enumerate() {
        assert_eq!(a, b, "template #{i} diverged: {context}");
    }
}
