//! Fault injection (ISSUE 2 acceptance): kill-point recovery.
//!
//! 1. The WAL is truncated at *every* byte boundary of its final record;
//!    reopening must recover exactly the pre-append library (torn tail)
//!    or the post-append library (clean tail) — never anything else, and
//!    never an error.
//! 2. Every byte of every snapshot section payload is bit-flipped in
//!    turn; reopening must reject with a typed
//!    [`StorageError::ChecksumMismatch`], never load a silently corrupt
//!    state.

mod common;

use common::{assert_same_library, scratch_dir, small_state, template};
use std::fs;
use uqsj_storage::{StorageEngine, StorageError};

/// Build a data dir with a compacted snapshot of the small state plus
/// one WAL-journaled template, returning (dir, pre-append library,
/// post-append library, wal file length before the append).
fn seeded_dir(
    tag: &str,
) -> (std::path::PathBuf, uqsj_template::TemplateLibrary, uqsj_template::TemplateLibrary, u64) {
    let dir = scratch_dir(tag);
    let state = small_state();
    let (mut engine, _) = StorageEngine::open(&dir).expect("open fresh dir");
    engine.compact(&state.library, &state.lexicon, &state.triples).expect("seed snapshot");
    let base_len = fs::metadata(engine.wal_file()).expect("wal metadata").len();

    let appended = template(&["Who", "directed", "<_>", "?"], "director", 0.9);
    engine.append_templates(std::slice::from_ref(&appended)).expect("append");

    let pre = state.library;
    let mut post = uqsj_template::TemplateLibrary::new();
    for t in pre.templates() {
        post.add(t.clone());
    }
    post.add(appended);
    (dir, pre, post, base_len)
}

#[test]
fn wal_truncation_at_every_byte_boundary_recovers_pre_or_post_state() {
    let (dir, pre, post, base_len) = seeded_dir("trunc");
    let wal_path = {
        let (engine, _) = StorageEngine::open(&dir).expect("locate wal");
        engine.wal_file().to_owned()
    };
    let full = fs::read(&wal_path).expect("read wal");
    let full_len = full.len() as u64;
    assert!(full_len > base_len, "append did not grow the WAL");

    for cut in base_len..=full_len {
        // Restore the full log, then cut it at this boundary — the disk
        // image a crash mid-append leaves behind.
        fs::write(&wal_path, &full).expect("restore wal");
        let f = fs::OpenOptions::new().write(true).open(&wal_path).expect("open wal");
        f.set_len(cut).expect("truncate");
        drop(f);

        let (_, recovered) =
            StorageEngine::open(&dir).unwrap_or_else(|e| panic!("reopen at cut {cut}: {e}"));
        if cut == full_len {
            assert_same_library(
                &recovered.state.library,
                &post,
                &format!("clean tail at cut {cut}"),
            );
            assert_eq!(recovered.wal_records, 1, "cut {cut}");
            assert_eq!(recovered.wal_torn_bytes, 0, "cut {cut}");
        } else {
            assert_same_library(&recovered.state.library, &pre, &format!("torn tail at cut {cut}"));
            assert_eq!(recovered.wal_records, 0, "cut {cut}");
            // Recovery physically truncated the torn tail.
            let len_after = fs::metadata(&wal_path).expect("wal metadata").len();
            assert_eq!(len_after, base_len, "cut {cut} left a dirty tail");
        }
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn reopening_after_torn_tail_truncation_appends_cleanly() {
    let (dir, pre, _, base_len) = seeded_dir("retry");
    let wal_path = {
        let (engine, _) = StorageEngine::open(&dir).expect("locate wal");
        engine.wal_file().to_owned()
    };
    // Tear the tail mid-record, reopen, and re-append: the journal must
    // accept new records right where the valid prefix ended.
    let f = fs::OpenOptions::new().write(true).open(&wal_path).expect("open wal");
    f.set_len(base_len + 3).expect("truncate");
    drop(f);
    let (mut engine, recovered) = StorageEngine::open(&dir).expect("reopen torn");
    assert_same_library(&recovered.state.library, &pre, "torn tail dropped");
    let again = template(&["Who", "directed", "<_>", "?"], "director", 0.9);
    engine.append_templates(std::slice::from_ref(&again)).expect("re-append");
    drop(engine);
    let (_, recovered) = StorageEngine::open(&dir).expect("reopen clean");
    assert_eq!(recovered.wal_records, 1);
    assert_eq!(recovered.state.library.len(), pre.len() + 1);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn bit_flipped_snapshot_sections_are_rejected_with_checksum_mismatch() {
    let (dir, _, _, _) = seeded_dir("flip");
    let snap_path = {
        let (engine, _) = StorageEngine::open(&dir).expect("locate snapshot");
        engine.snapshot_file()
    };
    let clean = fs::read(&snap_path).expect("read snapshot");
    // Header: 8 magic + 4 version + 8 generation + 4 section count; each
    // section prefixes 4 tag + 8 len + 4 crc. Flipping any payload byte
    // must trip the section's CRC.
    let mut offset = 8 + 4 + 8 + 4;
    let mut sections = 0;
    while offset < clean.len() {
        let tag = String::from_utf8_lossy(&clean[offset..offset + 4]).into_owned();
        let len = u64::from_le_bytes(clean[offset + 4..offset + 12].try_into().unwrap()) as usize;
        let payload_start = offset + 16;
        assert!(len > 0, "empty section {tag}");
        // Sampling every payload byte of every section keeps the test
        // fast while still covering all three sections end to end.
        let step = (len / 64).max(1);
        for i in (0..len).step_by(step) {
            let mut corrupt = clean.clone();
            corrupt[payload_start + i] ^= 0x40;
            fs::write(&snap_path, &corrupt).expect("write corrupt snapshot");
            let err = StorageEngine::open(&dir)
                .err()
                .unwrap_or_else(|| panic!("flipped byte {i} of {tag} was accepted"));
            match err {
                StorageError::ChecksumMismatch { section, .. } => {
                    assert_eq!(section, tag, "flip at byte {i}")
                }
                other => panic!("flipped byte {i} of {tag}: expected checksum error, got {other}"),
            }
        }
        sections += 1;
        offset = payload_start + len;
    }
    assert_eq!(sections, 3, "snapshot should carry TMPL+LEXN+TRPL");
    fs::write(&snap_path, &clean).expect("restore snapshot");
    StorageEngine::open(&dir).expect("restored snapshot loads again");
    let _ = fs::remove_dir_all(&dir);
}
