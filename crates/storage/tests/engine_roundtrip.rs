//! Engine lifecycle: initialization, snapshot round-trip, WAL replay,
//! and compaction generation rotation.

mod common;

use common::{assert_same_library, scratch_dir, small_state, template};
use std::fs;
use uqsj_storage::StorageEngine;

#[test]
fn fresh_directory_initializes_empty_generation_zero() {
    let dir = scratch_dir("fresh");
    let (engine, recovered) = StorageEngine::open(&dir).expect("open fresh");
    assert_eq!(engine.generation(), 0);
    assert!(recovered.state.library.is_empty());
    assert!(recovered.state.triples.is_empty());
    assert_eq!(recovered.wal_records, 0);
    // A second open sees the same (still empty) generation.
    drop(engine);
    let (engine, recovered) = StorageEngine::open(&dir).expect("reopen");
    assert_eq!(engine.generation(), 0);
    assert!(recovered.state.library.is_empty());
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn snapshot_and_wal_replay_roundtrip_the_full_state() {
    let dir = scratch_dir("roundtrip");
    let state = small_state();
    let (mut engine, _) = StorageEngine::open(&dir).expect("open");
    engine.compact(&state.library, &state.lexicon, &state.triples).expect("compact");
    assert_eq!(engine.generation(), 1);

    let extra = template(&["Who", "directed", "<_>", "?"], "director", 0.9);
    engine.append_templates(std::slice::from_ref(&extra)).expect("append");
    drop(engine);

    let (engine, recovered) = StorageEngine::open(&dir).expect("recover");
    assert_eq!(engine.generation(), 1);
    assert_eq!(recovered.wal_records, 1);
    assert_eq!(recovered.wal_torn_bytes, 0);
    let mut want = uqsj_template::TemplateLibrary::new();
    for t in state.library.templates() {
        want.add(t.clone());
    }
    want.add(extra);
    assert_same_library(&recovered.state.library, &want, "snapshot + wal replay");
    assert_eq!(recovered.state.lexicon.class_nouns, state.lexicon.class_nouns);
    assert_eq!(recovered.state.lexicon.surface_forms, state.lexicon.surface_forms);
    assert_eq!(recovered.state.triples.triples(), state.triples.triples());
    // Confidences survive bit-exactly (the text format rounds them).
    for (a, b) in recovered.state.library.templates().iter().zip(want.templates()) {
        assert_eq!(a.confidence.to_bits(), b.confidence.to_bits());
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn compaction_folds_the_wal_and_rotates_generations() {
    let dir = scratch_dir("compact");
    let state = small_state();
    let (mut engine, _) = StorageEngine::open(&dir).expect("open");
    engine.compact(&state.library, &state.lexicon, &state.triples).expect("seed");

    let extra = template(&["Who", "directed", "<_>", "?"], "director", 0.9);
    engine.append_templates(std::slice::from_ref(&extra)).expect("append");
    drop(engine);

    // Recover (snapshot gen 1 + 1 WAL record), then compact the merged
    // state into generation 2.
    let (mut engine, recovered) = StorageEngine::open(&dir).expect("recover");
    let merged = recovered.state;
    let new_generation =
        engine.compact(&merged.library, &merged.lexicon, &merged.triples).expect("compact merged");
    assert_eq!(new_generation, 2);
    drop(engine);

    let (engine, recovered) = StorageEngine::open(&dir).expect("reopen gen 2");
    assert_eq!(engine.generation(), 2);
    assert_eq!(recovered.wal_records, 0, "wal was folded into the snapshot");
    assert_same_library(&recovered.state.library, &merged.library, "compacted state");

    // Exactly one generation's files remain (plus CURRENT).
    let names: Vec<String> = fs::read_dir(&dir)
        .expect("read dir")
        .flatten()
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .collect();
    let snapshots = names.iter().filter(|n| n.starts_with("snapshot-")).count();
    let wals = names.iter().filter(|n| n.starts_with("wal-")).count();
    assert_eq!((snapshots, wals), (1, 1), "stale generations left behind: {names:?}");
    let _ = fs::remove_dir_all(&dir);
}
