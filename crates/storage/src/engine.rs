//! The storage engine: generations of snapshot + WAL under one data
//! directory, with a `CURRENT` pointer as the single commit point.
//!
//! ```text
//! data-dir/
//!   CURRENT               # decimal generation number, replaced atomically
//!   snapshot-000003.uqsj  # full state image for generation 3
//!   wal-000003.log        # appends since that snapshot
//! ```
//!
//! - **open**: read `CURRENT` (initializing an empty generation 0 on a
//!   fresh directory), load the snapshot, replay the WAL over it
//!   (truncating a torn tail), delete stale files from other
//!   generations, and hand back both the recovered state and an engine
//!   ready to append.
//! - **append**: journal accepted templates; they are durable (fsynced)
//!   before the caller applies them in memory.
//! - **compact**: write the caller's current state as the next
//!   generation's snapshot, start its empty WAL, then commit by
//!   atomically replacing `CURRENT`. A crash anywhere in between leaves
//!   `CURRENT` pointing at the old, fully intact generation.

use crate::error::StorageError;
use crate::snapshot::{self, SnapshotState};
use crate::wal::{WalRecord, WalWriter};
use std::fs::{self, File};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use uqsj_nlp::Lexicon;
use uqsj_rdf::TripleStore;
use uqsj_template::{Template, TemplateLibrary};

/// Name of the generation pointer file.
const CURRENT: &str = "CURRENT";

/// State recovered by [`StorageEngine::open`].
#[derive(Debug, Default)]
pub struct RecoveredState {
    /// The snapshot state with all valid WAL records applied.
    pub state: SnapshotState,
    /// How many WAL records were replayed on top of the snapshot.
    pub wal_records: usize,
    /// Bytes of torn WAL tail dropped during recovery (0 = clean
    /// shutdown).
    pub wal_torn_bytes: u64,
}

/// A durable snapshot + WAL store rooted at one data directory.
#[derive(Debug)]
pub struct StorageEngine {
    dir: PathBuf,
    generation: u64,
    wal: WalWriter,
}

fn snapshot_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("snapshot-{generation:06}.uqsj"))
}

fn wal_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("wal-{generation:06}.log"))
}

/// Atomically replace `CURRENT` with `generation`.
fn commit_current(dir: &Path, generation: u64) -> Result<(), StorageError> {
    let tmp = dir.join("CURRENT.tmp");
    {
        let mut f = File::create(&tmp)?;
        f.write_all(generation.to_string().as_bytes())?;
        f.sync_all()?;
    }
    let current = dir.join(CURRENT);
    fs::rename(&tmp, &current)?;
    snapshot::sync_parent_dir(&current)?;
    Ok(())
}

fn read_current(dir: &Path) -> Result<u64, StorageError> {
    let text = fs::read_to_string(dir.join(CURRENT))?;
    text.trim()
        .parse()
        .map_err(|_| StorageError::corrupt(format!("CURRENT does not name a generation: {text:?}")))
}

impl StorageEngine {
    /// Open (or initialize) the engine at `dir` and recover its state.
    ///
    /// A fresh directory is initialized to an empty generation 0. A torn
    /// WAL tail is truncated, never an error; a corrupted snapshot or WAL
    /// header is a typed error and nothing is modified.
    pub fn open(dir: &Path) -> Result<(Self, RecoveredState), StorageError> {
        let _span = uqsj_obs::span("storage.open");
        fs::create_dir_all(dir)?;
        if !dir.join(CURRENT).exists() {
            let empty = SnapshotState::default();
            snapshot::write_snapshot(
                &snapshot_path(dir, 0),
                0,
                &empty.library,
                &empty.lexicon,
                &empty.triples,
            )?;
            WalWriter::create(&wal_path(dir, 0), 0)?;
            commit_current(dir, 0)?;
        }
        let generation = read_current(dir)?;
        let (mut state, snap_generation) =
            snapshot::read_snapshot(&snapshot_path(dir, generation))?;
        if snap_generation != generation {
            return Err(StorageError::corrupt(format!(
                "snapshot header says generation {snap_generation}, CURRENT says {generation}"
            )));
        }
        let (wal, replay) = WalWriter::open(&wal_path(dir, generation))?;
        for record in &replay.records {
            match record {
                WalRecord::AddTemplate(t) => {
                    state.library.add(t.clone());
                }
            }
        }
        let engine = Self { dir: dir.to_owned(), generation, wal };
        engine.remove_stale_generations();
        Ok((
            engine,
            RecoveredState {
                state,
                wal_records: replay.records.len(),
                wal_torn_bytes: replay.torn_bytes,
            },
        ))
    }

    /// Journal accepted templates. Durable (fsynced) on return — apply
    /// them to the in-memory store only after this succeeds.
    pub fn append_templates(&mut self, templates: &[Template]) -> Result<(), StorageError> {
        let records: Vec<WalRecord> =
            templates.iter().map(|t| WalRecord::AddTemplate(t.clone())).collect();
        self.wal.append(&records)
    }

    /// Fold the WAL into a fresh snapshot of `library`/`lexicon`/
    /// `triples` (the caller's current in-memory state) and rotate to the
    /// next generation. Returns the new generation number.
    pub fn compact(
        &mut self,
        library: &TemplateLibrary,
        lexicon: &Lexicon,
        triples: &TripleStore,
    ) -> Result<u64, StorageError> {
        let _span = uqsj_obs::span("storage.compact");
        let started = std::time::Instant::now();
        let next = self.generation + 1;
        snapshot::write_snapshot(&snapshot_path(&self.dir, next), next, library, lexicon, triples)?;
        let wal = WalWriter::create(&wal_path(&self.dir, next), next)?;
        // The commit point: until this rename lands, recovery still uses
        // the previous generation in full.
        commit_current(&self.dir, next)?;
        self.generation = next;
        self.wal = wal;
        self.remove_stale_generations();
        let obs = crate::obs::storage_obs();
        obs.compactions.inc();
        obs.compaction_us.observe_duration(started.elapsed());
        Ok(next)
    }

    /// Best-effort cleanup of snapshot/WAL files from other generations
    /// (leftovers of a crash between snapshot write and commit, or of a
    /// completed rotation).
    fn remove_stale_generations(&self) {
        let Ok(entries) = fs::read_dir(&self.dir) else { return };
        let keep_snapshot = snapshot_path(&self.dir, self.generation);
        let keep_wal = wal_path(&self.dir, self.generation);
        for entry in entries.flatten() {
            let path = entry.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else { continue };
            let stale = (name.starts_with("snapshot-") || name.starts_with("wal-"))
                && path != keep_snapshot
                && path != keep_wal;
            if stale || name.ends_with(".tmp") {
                let _ = fs::remove_file(&path);
            }
        }
    }

    /// The active generation.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The data directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Fsync barrier on the active WAL. Appends are durable when
    /// [`StorageEngine::append_templates`] returns; drain paths call this
    /// for an explicit flush point before shutdown.
    pub fn sync(&mut self) -> Result<(), StorageError> {
        self.wal.sync()
    }

    /// Path of the active generation's WAL (the file the fault-injection
    /// tests truncate).
    pub fn wal_file(&self) -> &Path {
        self.wal.path()
    }

    /// Path of the active generation's snapshot.
    pub fn snapshot_file(&self) -> PathBuf {
        snapshot_path(&self.dir, self.generation)
    }
}
