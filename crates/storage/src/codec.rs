//! Binary encoding primitives and the per-component codecs.
//!
//! Everything is little-endian and length-prefixed: `u32`/`u64`/`f64`
//! fixed-width, strings as `u32` byte length + UTF-8. The component
//! codecs are exact — confidences round-trip bit-for-bit (the text
//! format truncates to six decimals), the triple store round-trips its
//! dictionary ids and insertion order — which is what lets a recovered
//! server answer *identically* to one that never restarted.

use crate::error::StorageError;
use uqsj_nlp::lexicon::{EntityCandidate, Lexicon, PredicateInfo};
use uqsj_rdf::{TermId, TripleStore};
use uqsj_template::template::SlotBinding;
use uqsj_template::{Template, TemplateLibrary};

/// CRC32 (IEEE 802.3, the zlib polynomial), table-driven.
pub fn crc32(data: &[u8]) -> u32 {
    const TABLE: [u32; 256] = crc32_table();
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Append-only byte sink.
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bytes written so far.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Append a single byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `f64` as its IEEE-754 bits (exact round-trip).
    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Append a length-prefixed string.
    pub fn str(&mut self, s: &str) {
        self.u32(u32::try_from(s.len()).expect("string too long"));
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// Cursor over a byte slice; every read is bounds-checked and yields a
/// [`StorageError::Corrupt`] naming the field on underrun.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], StorageError> {
        if self.remaining() < n {
            return Err(StorageError::corrupt(format!(
                "truncated {what}: need {n} bytes, have {}",
                self.remaining()
            )));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Read one byte.
    pub fn u8(&mut self, what: &str) -> Result<u8, StorageError> {
        Ok(self.take(1, what)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self, what: &str) -> Result<u32, StorageError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self, what: &str) -> Result<u64, StorageError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    /// Read an `f64` from its bits.
    pub fn f64(&mut self, what: &str) -> Result<f64, StorageError> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    /// Read `n` raw bytes.
    pub fn bytes(&mut self, n: usize, what: &str) -> Result<&'a [u8], StorageError> {
        self.take(n, what)
    }

    /// Read a length-prefixed string.
    pub fn str(&mut self, what: &str) -> Result<String, StorageError> {
        let len = self.u32(what)? as usize;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| StorageError::corrupt(format!("{what}: invalid UTF-8: {e}")))
    }

    /// Read a `u32` count, rejecting values that could not possibly fit
    /// in the remaining bytes (each element needs at least
    /// `min_element_size` bytes) so corrupt counts fail fast instead of
    /// attempting huge allocations.
    pub fn count(&mut self, what: &str, min_element_size: usize) -> Result<usize, StorageError> {
        let n = self.u32(what)? as usize;
        if n.saturating_mul(min_element_size) > self.remaining() {
            return Err(StorageError::corrupt(format!(
                "implausible {what} count {n} for {} remaining bytes",
                self.remaining()
            )));
        }
        Ok(n)
    }
}

// ---------------------------------------------------------------------
// Template library
// ---------------------------------------------------------------------

/// Encode one template (also the WAL's `AddTemplate` body).
pub fn encode_template(w: &mut Writer, t: &Template) {
    w.u32(t.nl_tokens.len() as u32);
    for tok in &t.nl_tokens {
        w.str(tok);
    }
    // SPARQL as its canonical one-line text; `uqsj_sparql::parse` is the
    // inverse (the same contract the text format relies on).
    w.str(&t.sparql.to_string().replace('\n', " "));
    w.u32(t.slots.len() as u32);
    for s in &t.slots {
        w.u8(match s {
            SlotBinding::Bound => 0,
            SlotBinding::Unbound => 1,
        });
    }
    w.f64(t.confidence);
}

/// Decode one template.
pub fn decode_template(r: &mut Reader<'_>) -> Result<Template, StorageError> {
    let n_tokens = r.count("template tokens", 4)?;
    let mut nl_tokens = Vec::with_capacity(n_tokens);
    for _ in 0..n_tokens {
        nl_tokens.push(r.str("nl token")?);
    }
    let sparql_text = r.str("sparql text")?;
    let sparql = uqsj_sparql::parse(&sparql_text)
        .map_err(|e| StorageError::corrupt(format!("embedded sparql: {e}")))?;
    let n_slots = r.count("template slots", 1)?;
    let mut slots = Vec::with_capacity(n_slots);
    for _ in 0..n_slots {
        slots.push(match r.u8("slot binding")? {
            0 => SlotBinding::Bound,
            1 => SlotBinding::Unbound,
            other => {
                return Err(StorageError::corrupt(format!("unknown slot binding {other}")));
            }
        });
    }
    let confidence = r.f64("confidence")?;
    Ok(Template::new(nl_tokens, sparql, slots, confidence))
}

/// Encode a whole library, in insertion order (the order replay re-adds
/// them, so indices are stable across a save/load cycle).
pub fn encode_library(w: &mut Writer, library: &TemplateLibrary) {
    w.u32(library.len() as u32);
    for t in library.templates() {
        encode_template(w, t);
    }
}

/// Decode a library.
pub fn decode_library(r: &mut Reader<'_>) -> Result<TemplateLibrary, StorageError> {
    let n = r.count("library templates", 17)?;
    let mut library = TemplateLibrary::new();
    for _ in 0..n {
        library.add(decode_template(r)?);
    }
    Ok(library)
}

// ---------------------------------------------------------------------
// Lexicon
// ---------------------------------------------------------------------

/// Encode a lexicon. Map entries are sorted so equal lexicons produce
/// byte-identical payloads (stable snapshot diffs, stable CRCs).
pub fn encode_lexicon(w: &mut Writer, lex: &Lexicon) {
    let mut classes: Vec<(&String, &String)> = lex.class_nouns.iter().collect();
    classes.sort();
    w.u32(classes.len() as u32);
    for (noun, class) in classes {
        w.str(noun);
        w.str(class);
    }
    w.u32(lex.predicates.len() as u32);
    for p in &lex.predicates {
        w.str(&p.name);
        w.u32(p.phrases.len() as u32);
        for phrase in &p.phrases {
            w.str(phrase);
        }
    }
    let mut inverse: Vec<(&String, &String)> = lex.inverse_nouns.iter().collect();
    inverse.sort();
    w.u32(inverse.len() as u32);
    for (noun, pred) in inverse {
        w.str(noun);
        w.str(pred);
    }
    let mut surfaces: Vec<(&String, &Vec<EntityCandidate>)> = lex.surface_forms.iter().collect();
    surfaces.sort_by(|a, b| a.0.cmp(b.0));
    w.u32(surfaces.len() as u32);
    for (phrase, cands) in surfaces {
        w.str(phrase);
        w.u32(cands.len() as u32);
        for c in cands {
            w.str(&c.entity);
            w.str(&c.class);
            w.f64(c.prob);
        }
    }
}

/// Decode a lexicon.
pub fn decode_lexicon(r: &mut Reader<'_>) -> Result<Lexicon, StorageError> {
    let mut lex = Lexicon::new();
    let n_classes = r.count("lexicon classes", 8)?;
    for _ in 0..n_classes {
        let noun = r.str("class noun")?;
        let class = r.str("class name")?;
        lex.class_nouns.insert(noun, class);
    }
    let n_preds = r.count("lexicon predicates", 8)?;
    for _ in 0..n_preds {
        let name = r.str("predicate name")?;
        let n_phrases = r.count("predicate phrases", 4)?;
        let mut phrases = Vec::with_capacity(n_phrases);
        for _ in 0..n_phrases {
            phrases.push(r.str("predicate phrase")?);
        }
        lex.predicates.push(PredicateInfo { name, phrases });
    }
    let n_inverse = r.count("lexicon inverse nouns", 8)?;
    for _ in 0..n_inverse {
        let noun = r.str("inverse noun")?;
        let pred = r.str("inverse predicate")?;
        lex.inverse_nouns.insert(noun, pred);
    }
    let n_surfaces = r.count("lexicon surface forms", 8)?;
    for _ in 0..n_surfaces {
        let phrase = r.str("surface phrase")?;
        let n_cands = r.count("surface candidates", 16)?;
        let mut cands = Vec::with_capacity(n_cands);
        for _ in 0..n_cands {
            let entity = r.str("candidate entity")?;
            let class = r.str("candidate class")?;
            let prob = r.f64("candidate prob")?;
            cands.push(EntityCandidate { entity, class, prob });
        }
        lex.surface_forms.insert(phrase, cands);
    }
    Ok(lex)
}

// ---------------------------------------------------------------------
// Triple store
// ---------------------------------------------------------------------

/// Encode a triple store: the dictionary's terms in id order, then the
/// triples as raw id triples in insertion order. No re-tokenizing, no
/// re-interning on load — this is why snapshot cold starts beat parsing
/// the N-Triples text.
pub fn encode_triples(w: &mut Writer, store: &TripleStore) {
    w.u32(store.dict.len() as u32);
    for i in 0..store.dict.len() {
        w.str(store.dict.decode(TermId(i as u32)));
    }
    w.u64(store.triples().len() as u64);
    for &(s, p, o) in store.triples() {
        w.u32(s.0);
        w.u32(p.0);
        w.u32(o.0);
    }
}

/// Decode a triple store; indexes are rebuilt so the result is
/// immediately scannable.
pub fn decode_triples(r: &mut Reader<'_>) -> Result<TripleStore, StorageError> {
    let mut store = TripleStore::new();
    let n_terms = r.count("dictionary terms", 4)?;
    for i in 0..n_terms {
        let term = r.str("dictionary term")?;
        let id = store.dict.encode(&term);
        if id.index() != i {
            return Err(StorageError::corrupt(format!(
                "duplicate dictionary term {term:?} at id {i}"
            )));
        }
    }
    let n_triples = r.u64("triple count")? as usize;
    if n_triples.saturating_mul(12) > r.remaining() {
        return Err(StorageError::corrupt(format!(
            "implausible triple count {n_triples} for {} remaining bytes",
            r.remaining()
        )));
    }
    for _ in 0..n_triples {
        let s = r.u32("triple subject")?;
        let p = r.u32("triple predicate")?;
        let o = r.u32("triple object")?;
        for id in [s, p, o] {
            if id as usize >= n_terms {
                return Err(StorageError::corrupt(format!(
                    "triple references term id {id} outside dictionary of {n_terms}"
                )));
            }
        }
        store.insert_ids((TermId(s), TermId(p), TermId(o)));
    }
    store.ensure_indexes();
    Ok(store)
}

#[cfg(test)]
mod tests {
    use super::*;
    use uqsj_nlp::lexicon::paper_lexicon;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn primitives_roundtrip() {
        let mut w = Writer::new();
        w.u8(7);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 1);
        w.f64(0.1 + 0.2);
        w.str("héllo");
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8("a").unwrap(), 7);
        assert_eq!(r.u32("b").unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64("c").unwrap(), u64::MAX - 1);
        assert_eq!(r.f64("d").unwrap(), 0.1 + 0.2);
        assert_eq!(r.str("e").unwrap(), "héllo");
        assert_eq!(r.remaining(), 0);
        assert!(r.u8("past end").is_err());
    }

    #[test]
    fn lexicon_roundtrips_exactly() {
        let lex = paper_lexicon();
        let mut w = Writer::new();
        encode_lexicon(&mut w, &lex);
        let bytes = w.into_bytes();
        let got = decode_lexicon(&mut Reader::new(&bytes)).unwrap();
        assert_eq!(got.class_nouns, lex.class_nouns);
        assert_eq!(got.predicates, lex.predicates);
        assert_eq!(got.inverse_nouns, lex.inverse_nouns);
        assert_eq!(got.surface_forms, lex.surface_forms);
        // Determinism: re-encoding the decode is byte-identical.
        let mut w2 = Writer::new();
        encode_lexicon(&mut w2, &got);
        assert_eq!(w2.into_bytes(), bytes);
    }

    #[test]
    fn triples_roundtrip_including_duplicates() {
        let mut store = TripleStore::new();
        store.insert("Alice", "type", "Artist");
        store.insert("Alice", "graduatedFrom", "Harvard_University");
        store.insert("Alice", "type", "Artist"); // duplicate survives
        store.ensure_indexes();
        let mut w = Writer::new();
        encode_triples(&mut w, &store);
        let bytes = w.into_bytes();
        let got = decode_triples(&mut Reader::new(&bytes)).unwrap();
        assert_eq!(got.len(), store.len());
        assert_eq!(got.dict.len(), store.dict.len());
        assert_eq!(got.triples(), store.triples());
        let ty = got.dict.get("type").unwrap();
        assert_eq!(got.scan(None, Some(ty), None).len(), 2);
    }

    #[test]
    fn corrupt_counts_fail_fast() {
        let mut w = Writer::new();
        w.u32(u32::MAX); // absurd template count with no payload
        let bytes = w.into_bytes();
        let err = decode_library(&mut Reader::new(&bytes)).unwrap_err();
        assert!(matches!(err, StorageError::Corrupt { .. }), "{err}");
    }
}
