//! The snapshot format: one self-validating binary image of the full
//! serving state.
//!
//! ```text
//! +----------------+---------+------------+-----------+
//! | magic UQSJSNAP | version | generation | sections  |
//! |    8 bytes     |   u32   |    u64     |   u32     |
//! +----------------+---------+------------+-----------+
//! then per section:
//! +---------+-------------+-------------+---------------+
//! |   tag   | payload len | payload crc |    payload    |
//! | 4 bytes |     u64     |  u32 (IEEE) | <len> bytes   |
//! +---------+-------------+-------------+---------------+
//! ```
//!
//! Sections: `TMPL` (template library), `LEXN` (lexicon), `TRPL`
//! (triple store). Readers verify magic and version, then each
//! section's CRC32 before decoding; a flipped bit anywhere in a payload
//! is a typed [`StorageError::ChecksumMismatch`], never a silently
//! wrong library. Writes go through a temp file + fsync + atomic rename
//! so a crash mid-write leaves either the old snapshot or the new one,
//! never a half-written file under the live name.

use crate::codec::{self, crc32, Reader, Writer};
use crate::error::StorageError;
use std::fs::{self, File};
use std::io::{Read as _, Write as _};
use std::path::Path;
use uqsj_nlp::Lexicon;
use uqsj_rdf::TripleStore;
use uqsj_template::TemplateLibrary;

/// File magic for snapshots.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"UQSJSNAP";
/// Highest snapshot format version this build reads and the version it
/// writes.
pub const SNAPSHOT_VERSION: u32 = 1;

const TAG_TEMPLATES: &[u8; 4] = b"TMPL";
const TAG_LEXICON: &[u8; 4] = b"LEXN";
const TAG_TRIPLES: &[u8; 4] = b"TRPL";

/// The full serving state a snapshot captures.
#[derive(Debug, Default)]
pub struct SnapshotState {
    /// Mined (and ingested) templates.
    pub library: TemplateLibrary,
    /// The language resources questions are analyzed with.
    pub lexicon: Lexicon,
    /// The RDF store answers are evaluated over.
    pub triples: TripleStore,
}

/// Serialize a snapshot to bytes.
pub fn encode_snapshot(
    generation: u64,
    library: &TemplateLibrary,
    lexicon: &Lexicon,
    triples: &TripleStore,
) -> Vec<u8> {
    let mut buf = Vec::from(SNAPSHOT_MAGIC.as_slice());
    let mut header = Writer::new();
    header.u32(SNAPSHOT_VERSION);
    header.u64(generation);
    header.u32(3);
    buf.extend_from_slice(&header.into_bytes());
    for (tag, payload) in [
        (TAG_TEMPLATES, section(|w| codec::encode_library(w, library))),
        (TAG_LEXICON, section(|w| codec::encode_lexicon(w, lexicon))),
        (TAG_TRIPLES, section(|w| codec::encode_triples(w, triples))),
    ] {
        buf.extend_from_slice(tag);
        buf.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        buf.extend_from_slice(&crc32(&payload).to_le_bytes());
        buf.extend_from_slice(&payload);
    }
    buf
}

fn section(encode: impl FnOnce(&mut Writer)) -> Vec<u8> {
    let mut w = Writer::new();
    encode(&mut w);
    w.into_bytes()
}

/// Decode a snapshot from bytes, returning the state and the generation
/// recorded in the header.
pub fn decode_snapshot(bytes: &[u8]) -> Result<(SnapshotState, u64), StorageError> {
    if bytes.len() < 8 || &bytes[..8] != SNAPSHOT_MAGIC {
        return Err(StorageError::BadMagic {
            kind: "snapshot",
            found: bytes[..bytes.len().min(8)].to_vec(),
        });
    }
    let mut r = Reader::new(&bytes[8..]);
    let version = r.u32("snapshot version")?;
    if version > SNAPSHOT_VERSION {
        return Err(StorageError::UnsupportedVersion {
            found: version,
            supported: SNAPSHOT_VERSION,
        });
    }
    let generation = r.u64("snapshot generation")?;
    let n_sections = r.u32("section count")?;
    let mut state = SnapshotState::default();
    let mut seen = [false; 3];
    for _ in 0..n_sections {
        let tag: [u8; 4] = [
            r.u8("section tag")?,
            r.u8("section tag")?,
            r.u8("section tag")?,
            r.u8("section tag")?,
        ];
        let len = r.u64("section length")? as usize;
        let expected = r.u32("section crc")?;
        if len > r.remaining() {
            return Err(StorageError::corrupt(format!(
                "section {} claims {len} bytes but only {} remain",
                String::from_utf8_lossy(&tag),
                r.remaining()
            )));
        }
        let payload = r.bytes(len, "section payload")?;
        let actual = crc32(payload);
        if actual != expected {
            return Err(StorageError::ChecksumMismatch {
                section: String::from_utf8_lossy(&tag).into_owned(),
                expected,
                actual,
            });
        }
        let mut pr = Reader::new(payload);
        match &tag {
            TAG_TEMPLATES => {
                state.library = codec::decode_library(&mut pr)?;
                seen[0] = true;
            }
            TAG_LEXICON => {
                state.lexicon = codec::decode_lexicon(&mut pr)?;
                seen[1] = true;
            }
            TAG_TRIPLES => {
                state.triples = codec::decode_triples(&mut pr)?;
                seen[2] = true;
            }
            // Unknown sections are skipped: a version-1 reader tolerates
            // forward-compatible additions that keep the core three.
            _ => {}
        }
        if pr.remaining() > 0 && matches!(&tag, TAG_TEMPLATES | TAG_LEXICON | TAG_TRIPLES) {
            return Err(StorageError::corrupt(format!(
                "section {} has {} trailing bytes",
                String::from_utf8_lossy(&tag),
                pr.remaining()
            )));
        }
    }
    if !seen.iter().all(|s| *s) {
        return Err(StorageError::corrupt("snapshot is missing a required section"));
    }
    Ok((state, generation))
}

/// Write a snapshot atomically: serialize to `<path>.tmp`, fsync it,
/// rename over `path`, then fsync the parent directory so the rename
/// itself is durable.
pub fn write_snapshot(
    path: &Path,
    generation: u64,
    library: &TemplateLibrary,
    lexicon: &Lexicon,
    triples: &TripleStore,
) -> Result<(), StorageError> {
    let started = std::time::Instant::now();
    let bytes = encode_snapshot(generation, library, lexicon, triples);
    let tmp = path.with_extension("tmp");
    {
        let mut f = File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    sync_parent_dir(path)?;
    crate::obs::storage_obs().snapshot_write_us.observe_duration(started.elapsed());
    Ok(())
}

/// Read and validate a snapshot file.
pub fn read_snapshot(path: &Path) -> Result<(SnapshotState, u64), StorageError> {
    let started = std::time::Instant::now();
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    let decoded = decode_snapshot(&bytes)?;
    crate::obs::storage_obs().snapshot_read_us.observe_duration(started.elapsed());
    Ok(decoded)
}

/// fsync the directory containing `path` (directory entries are metadata
/// the rename/create is not durable without).
pub fn sync_parent_dir(path: &Path) -> Result<(), StorageError> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            File::open(parent)?.sync_all()?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use uqsj_nlp::lexicon::paper_lexicon;

    fn small_state() -> SnapshotState {
        let mut triples = TripleStore::new();
        triples.insert("Alice", "type", "Artist");
        triples.insert("Alice", "graduatedFrom", "Harvard_University");
        triples.ensure_indexes();
        SnapshotState { library: TemplateLibrary::new(), lexicon: paper_lexicon(), triples }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let state = small_state();
        let bytes = encode_snapshot(7, &state.library, &state.lexicon, &state.triples);
        let (got, generation) = decode_snapshot(&bytes).unwrap();
        assert_eq!(generation, 7);
        assert_eq!(got.library.len(), 0);
        assert_eq!(got.lexicon.class_nouns, state.lexicon.class_nouns);
        assert_eq!(got.triples.len(), 2);
    }

    #[test]
    fn rejects_bad_magic_and_future_version() {
        let err = decode_snapshot(b"NOTASNAP rest").unwrap_err();
        assert!(matches!(err, StorageError::BadMagic { kind: "snapshot", .. }), "{err}");

        let state = small_state();
        let mut bytes = encode_snapshot(1, &state.library, &state.lexicon, &state.triples);
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        let err = decode_snapshot(&bytes).unwrap_err();
        assert!(matches!(err, StorageError::UnsupportedVersion { found: 99, .. }), "{err}");
    }
}
