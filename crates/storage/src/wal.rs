//! The write-ahead log: every template the ingest path accepts is
//! appended here *before* it is applied to the in-memory store, so a
//! crash at any instant loses at most work that was never acknowledged.
//!
//! ```text
//! +---------------+---------+------------+
//! | magic UQSJWAL0| version | generation |
//! |    8 bytes    |   u32   |    u64     |
//! +---------------+---------+------------+
//! then zero or more records:
//! +-------------+-------------+------------------------+
//! | payload len | payload crc | payload                |
//! |     u32     |  u32 (IEEE) | kind u8 + body         |
//! +-------------+-------------+------------------------+
//! ```
//!
//! Recovery rule (torn-tail tolerance): records are replayed in order
//! until the first one that is incomplete or fails its CRC; the log is
//! truncated back to the end of the last valid record and recovery
//! succeeds. A partial final record — the signature of a crash mid-append
//! — is therefore *never* an error: the state is exactly "before that
//! append". Only a damaged header rejects the log outright.

use crate::codec::{crc32, Reader, Writer};
use crate::error::StorageError;
use std::fs::{File, OpenOptions};
use std::io::{Read as _, Write as _};
use std::path::{Path, PathBuf};
use uqsj_template::Template;

/// File magic for write-ahead logs.
pub const WAL_MAGIC: &[u8; 8] = b"UQSJWAL0";
/// Highest WAL format version this build reads and the version it
/// writes.
pub const WAL_VERSION: u32 = 1;
/// Bytes before the first record: magic + version + generation.
pub const WAL_HEADER_LEN: u64 = 8 + 4 + 8;

const KIND_ADD_TEMPLATE: u8 = 1;

/// One journaled operation.
#[derive(Debug)]
pub enum WalRecord {
    /// A template accepted by the ingest path.
    AddTemplate(Template),
}

/// Serialize one record (len + crc framing included).
pub fn encode_record(record: &WalRecord) -> Vec<u8> {
    let mut payload = Writer::new();
    match record {
        WalRecord::AddTemplate(t) => {
            payload.u8(KIND_ADD_TEMPLATE);
            crate::codec::encode_template(&mut payload, t);
        }
    }
    let payload = payload.into_bytes();
    let mut out = Vec::with_capacity(payload.len() + 8);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

fn decode_record(payload: &[u8]) -> Result<WalRecord, StorageError> {
    let mut r = Reader::new(payload);
    match r.u8("record kind")? {
        KIND_ADD_TEMPLATE => Ok(WalRecord::AddTemplate(crate::codec::decode_template(&mut r)?)),
        other => Err(StorageError::corrupt(format!("unknown WAL record kind {other}"))),
    }
}

/// What replaying a log produced.
#[derive(Debug)]
pub struct WalReplay {
    /// The valid records, in append order.
    pub records: Vec<WalRecord>,
    /// Byte offset one past the last valid record — where appends resume.
    pub valid_len: u64,
    /// Bytes of torn/invalid tail that were dropped (0 for a clean log).
    pub torn_bytes: u64,
}

/// Replay a WAL's bytes. Returns the decoded records and where the valid
/// prefix ends; never errors on a truncated tail, only on a bad header.
pub fn replay_bytes(bytes: &[u8]) -> Result<WalReplay, StorageError> {
    if bytes.len() < 8 || &bytes[..8] != WAL_MAGIC {
        return Err(StorageError::BadMagic {
            kind: "wal",
            found: bytes[..bytes.len().min(8)].to_vec(),
        });
    }
    let mut r = Reader::new(&bytes[8..]);
    let version = r.u32("wal version")?;
    if version > WAL_VERSION {
        return Err(StorageError::UnsupportedVersion { found: version, supported: WAL_VERSION });
    }
    let _generation = r.u64("wal generation")?;

    let mut records = Vec::new();
    let mut offset = WAL_HEADER_LEN as usize;
    loop {
        let rest = &bytes[offset..];
        if rest.len() < 8 {
            break; // torn mid-frame (or clean EOF when empty)
        }
        let len = u32::from_le_bytes(rest[..4].try_into().unwrap()) as usize;
        let expected = u32::from_le_bytes(rest[4..8].try_into().unwrap());
        if rest.len() < 8 + len {
            break; // torn mid-payload
        }
        let payload = &rest[8..8 + len];
        if crc32(payload) != expected {
            break; // bit rot or torn inside a frame that kept its length
        }
        match decode_record(payload) {
            Ok(record) => records.push(record),
            // A record that passes CRC but does not decode is from a
            // newer writer or a software bug; stop replaying before it
            // rather than applying garbage.
            Err(_) => break,
        }
        offset += 8 + len;
    }
    let valid_len = offset as u64;
    Ok(WalReplay { records, valid_len, torn_bytes: bytes.len() as u64 - valid_len })
}

/// An open, append-only WAL file.
#[derive(Debug)]
pub struct WalWriter {
    path: PathBuf,
    file: File,
}

impl WalWriter {
    /// Create a fresh log at `path` (truncating any previous file),
    /// writing and fsyncing the header.
    pub fn create(path: &Path, generation: u64) -> Result<Self, StorageError> {
        let mut file = File::create(path)?;
        let mut header = Writer::new();
        header.u32(WAL_VERSION);
        header.u64(generation);
        file.write_all(WAL_MAGIC)?;
        file.write_all(&header.into_bytes())?;
        file.sync_all()?;
        crate::snapshot::sync_parent_dir(path)?;
        Ok(Self { path: path.to_owned(), file })
    }

    /// Open an existing log for appending: replay it, truncate any torn
    /// tail, and position the write cursor after the last valid record.
    /// Returns the writer and the replayed records.
    pub fn open(path: &Path) -> Result<(Self, WalReplay), StorageError> {
        let mut bytes = Vec::new();
        File::open(path)?.read_to_end(&mut bytes)?;
        let replay = replay_bytes(&bytes)?;
        let obs = crate::obs::storage_obs();
        obs.wal_replayed_records.add(replay.records.len() as u64);
        obs.wal_torn_bytes.add(replay.torn_bytes);
        let file = OpenOptions::new().write(true).open(path)?;
        if replay.torn_bytes > 0 {
            file.set_len(replay.valid_len)?;
            file.sync_all()?;
        }
        let mut file = file;
        use std::io::Seek as _;
        file.seek(std::io::SeekFrom::Start(replay.valid_len))?;
        Ok((Self { path: path.to_owned(), file }, replay))
    }

    /// Append records and fsync once. The records are durable when this
    /// returns; callers apply them to memory only afterwards.
    pub fn append(&mut self, records: &[WalRecord]) -> Result<(), StorageError> {
        if records.is_empty() {
            return Ok(());
        }
        let started = std::time::Instant::now();
        let mut buf = Vec::new();
        for record in records {
            buf.extend_from_slice(&encode_record(record));
        }
        self.file.write_all(&buf)?;
        self.file.sync_data()?;
        let obs = crate::obs::storage_obs();
        obs.wal_append_us.observe_duration(started.elapsed());
        obs.wal_appended_bytes.add(buf.len() as u64);
        obs.wal_records.add(records.len() as u64);
        Ok(())
    }

    /// Re-fsync the log file. Appends are already durable when
    /// [`WalWriter::append`] returns, so this is a barrier for callers
    /// that want an explicit flush point (e.g. the network server's
    /// graceful drain) rather than a correctness requirement.
    pub fn sync(&mut self) -> Result<(), StorageError> {
        self.file.sync_data()?;
        Ok(())
    }

    /// The file being appended to.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uqsj_sparql::{SparqlQuery, Term, Triple};
    use uqsj_template::template::{slot_term, SlotBinding};

    fn template(confidence: f64) -> Template {
        let sparql = SparqlQuery {
            select: vec!["x".into()],
            triples: vec![Triple {
                subject: Term::Var("x".into()),
                predicate: Term::Iri("graduatedFrom".into()),
                object: slot_term(0),
            }],
        };
        Template::new(
            vec!["Who".into(), "graduated".into(), "from".into(), "<_>".into(), "?".into()],
            sparql,
            vec![SlotBinding::Bound],
            confidence,
        )
    }

    fn wal_bytes(records: &[WalRecord]) -> Vec<u8> {
        let mut bytes = Vec::from(WAL_MAGIC.as_slice());
        let mut header = Writer::new();
        header.u32(WAL_VERSION);
        header.u64(0);
        bytes.extend_from_slice(&header.into_bytes());
        for r in records {
            bytes.extend_from_slice(&encode_record(r));
        }
        bytes
    }

    #[test]
    fn replay_roundtrips_records() {
        let bytes = wal_bytes(&[
            WalRecord::AddTemplate(template(0.5)),
            WalRecord::AddTemplate(template(0.75)),
        ]);
        let replay = replay_bytes(&bytes).unwrap();
        assert_eq!(replay.records.len(), 2);
        assert_eq!(replay.torn_bytes, 0);
        assert_eq!(replay.valid_len, bytes.len() as u64);
        let WalRecord::AddTemplate(t) = &replay.records[1];
        assert_eq!(t.confidence, 0.75);
    }

    #[test]
    fn every_truncation_of_the_tail_recovers_the_prefix() {
        let one = wal_bytes(&[WalRecord::AddTemplate(template(0.5))]);
        let two = wal_bytes(&[
            WalRecord::AddTemplate(template(0.5)),
            WalRecord::AddTemplate(template(0.75)),
        ]);
        for cut in one.len()..two.len() {
            let replay = replay_bytes(&two[..cut]).unwrap();
            assert_eq!(replay.records.len(), 1, "cut at {cut}");
            assert_eq!(replay.valid_len, one.len() as u64, "cut at {cut}");
        }
    }

    #[test]
    fn bad_header_is_an_error_not_a_truncation() {
        let err = replay_bytes(b"GARBAGE!xxxx").unwrap_err();
        assert!(matches!(err, StorageError::BadMagic { kind: "wal", .. }), "{err}");
    }
}
