//! uqsj-storage: durable snapshot + write-ahead-log storage for the
//! serving layer.
//!
//! The batch pipeline mines a `TemplateLibrary` offline; `uqsj-serve`
//! keeps growing it online through incremental ingestion. This crate
//! makes that state crash-safe and cheap to reload:
//!
//! - [`snapshot`]: a versioned binary image of the full serving state
//!   (`TemplateLibrary` + `Lexicon` + `TripleStore`) — magic, format
//!   version, and one length-prefixed, CRC32-checksummed section per
//!   component, written atomically (temp file + fsync + rename).
//! - [`wal`]: an append-only journal the ingest path writes each accepted
//!   template to *before* applying it in memory. Replay-on-open tolerates
//!   a torn or truncated tail: the log is cut back to the last valid
//!   record, never rejected for a partial final record.
//! - [`engine`]: [`StorageEngine`] ties both together under a generation
//!   scheme (`snapshot-NNNNNN.uqsj` + `wal-NNNNNN.log` + `CURRENT`
//!   pointer) and folds the WAL into a fresh snapshot on
//!   [`StorageEngine::compact`].
//!
//! The existing text artifacts (`templates.txt`, `lexicon.txt`, `kb.nt`)
//! remain the import/export interchange format; this crate is the
//! process-restart format. See DESIGN.md, "Durability".

pub mod codec;
pub mod engine;
pub mod error;
mod obs;
pub mod snapshot;
pub mod wal;

pub use engine::{RecoveredState, StorageEngine};
pub use error::StorageError;
pub use snapshot::SnapshotState;
pub use wal::WalRecord;
