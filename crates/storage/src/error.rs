//! Storage-engine errors. Corruption is typed: checksum failures are
//! distinguishable from framing/decoding problems so callers (and the
//! fault-injection tests) can tell "the disk lied" from "the format
//! moved".

use std::fmt;

/// Why the storage engine refused a file or an operation.
#[derive(Debug)]
pub enum StorageError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// The file does not start with the expected magic bytes.
    BadMagic {
        /// Which file kind was expected (`"snapshot"` or `"wal"`).
        kind: &'static str,
        /// The bytes actually found.
        found: Vec<u8>,
    },
    /// The format version is newer than this build understands.
    UnsupportedVersion {
        /// Version found in the file.
        found: u32,
        /// Highest version this build reads.
        supported: u32,
    },
    /// A section's payload does not match its recorded CRC32.
    ChecksumMismatch {
        /// Section tag (e.g. `"TMPL"`).
        section: String,
        /// CRC stored in the file.
        expected: u32,
        /// CRC computed over the payload read back.
        actual: u32,
    },
    /// Structurally invalid content (truncated payload, unknown record
    /// kind, unparseable embedded SPARQL, …).
    Corrupt {
        /// What was being decoded and what went wrong.
        context: String,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "storage I/O error: {e}"),
            StorageError::BadMagic { kind, found } => {
                write!(f, "not a uqsj {kind} file (magic {found:02x?})")
            }
            StorageError::UnsupportedVersion { found, supported } => {
                write!(f, "format version {found} is newer than supported {supported}")
            }
            StorageError::ChecksumMismatch { section, expected, actual } => write!(
                f,
                "section {section} checksum mismatch: recorded {expected:#010x}, computed {actual:#010x}"
            ),
            StorageError::Corrupt { context } => write!(f, "corrupt storage: {context}"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}

impl StorageError {
    /// Shorthand for a [`StorageError::Corrupt`].
    pub fn corrupt(context: impl Into<String>) -> Self {
        StorageError::Corrupt { context: context.into() }
    }
}
