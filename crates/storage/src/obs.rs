//! Metric handles for the durability path: WAL append/fsync latency and
//! volume, recovery replay counts, snapshot I/O latency, and compaction
//! cadence. Registered once in [`uqsj_obs::global()`].

pub(crate) struct StorageObs {
    /// Latency of one `append` call, including the fsync (µs).
    pub wal_append_us: uqsj_obs::Histogram,
    /// Framed bytes appended to the WAL.
    pub wal_appended_bytes: uqsj_obs::Counter,
    /// Records appended to the WAL.
    pub wal_records: uqsj_obs::Counter,
    /// Records replayed from a WAL during recovery.
    pub wal_replayed_records: uqsj_obs::Counter,
    /// Torn-tail bytes truncated during recovery.
    pub wal_torn_bytes: uqsj_obs::Counter,
    /// Full snapshot write latency, including fsyncs (µs).
    pub snapshot_write_us: uqsj_obs::Histogram,
    /// Full snapshot read + decode latency (µs).
    pub snapshot_read_us: uqsj_obs::Histogram,
    /// Completed compactions (generation rotations).
    pub compactions: uqsj_obs::Counter,
    /// End-to-end compaction latency (µs).
    pub compaction_us: uqsj_obs::Histogram,
}

pub(crate) fn storage_obs() -> &'static StorageObs {
    use std::sync::OnceLock;
    static OBS: OnceLock<StorageObs> = OnceLock::new();
    OBS.get_or_init(|| {
        let r = uqsj_obs::global();
        StorageObs {
            wal_append_us: r.histogram("uqsj_wal_append_us", "WAL append+fsync latency per call"),
            wal_appended_bytes: r
                .counter("uqsj_wal_appended_bytes_total", "framed bytes appended to the WAL"),
            wal_records: r.counter("uqsj_wal_records_total", "records appended to the WAL"),
            wal_replayed_records: r.counter(
                "uqsj_wal_replayed_records_total",
                "records replayed from the WAL during recovery",
            ),
            wal_torn_bytes: r
                .counter("uqsj_wal_torn_bytes_total", "torn-tail bytes truncated during recovery"),
            snapshot_write_us: r
                .histogram("uqsj_snapshot_write_us", "snapshot write+fsync latency"),
            snapshot_read_us: r.histogram("uqsj_snapshot_read_us", "snapshot read+decode latency"),
            compactions: r
                .counter("uqsj_storage_compactions_total", "completed generation rotations"),
            compaction_us: r
                .histogram("uqsj_storage_compaction_us", "end-to-end compaction latency"),
        }
    })
}
