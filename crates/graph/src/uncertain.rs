//! Uncertain graphs and the possible-world model (Defs. 2 and 3).
//!
//! An [`UncertainGraph`] has a fixed structure (vertices and labeled edges)
//! but each vertex carries one or more mutually exclusive labels, each with
//! an existence probability. A *possible world* fixes one label per vertex;
//! its appearance probability is the product of the chosen labels'
//! probabilities (Def. 3).

use crate::certain::{Edge, Graph, VertexId};
use crate::interner::Symbol;
use serde::{Deserialize, Serialize};

/// One alternative label of an uncertain vertex together with its
/// existence probability `l(v).p ∈ (0, 1]`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct LabelAlternative {
    /// The candidate label.
    pub label: Symbol,
    /// Its existence probability.
    pub prob: f64,
}

/// A vertex of an uncertain graph: a non-empty set of mutually exclusive
/// label alternatives whose probabilities sum to at most 1.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct UncertainVertex {
    /// Alternatives, in insertion order. Never empty in a valid graph.
    pub alternatives: Vec<LabelAlternative>,
}

impl UncertainVertex {
    /// A vertex with a single certain label (probability 1).
    pub fn certain(label: Symbol) -> Self {
        Self { alternatives: vec![LabelAlternative { label, prob: 1.0 }] }
    }

    /// Total probability mass of the listed alternatives.
    pub fn mass(&self) -> f64 {
        self.alternatives.iter().map(|a| a.prob).sum()
    }

    /// Number of alternative labels `|L(v)|`.
    pub fn label_count(&self) -> usize {
        self.alternatives.len()
    }
}

/// An uncertain graph (Def. 2): fixed structure, uncertain vertex labels.
///
/// Edge labels are certain, following the paper's presentation (Sec. 3.1.1:
/// "we do not discuss the edge label uncertainty ... it is straightforward
/// to handle the general case" by reifying edges as vertices).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct UncertainGraph {
    vertices: Vec<UncertainVertex>,
    edges: Vec<Edge>,
    degrees: Vec<u32>,
}

/// A materialized possible world: the certain graph instance plus its
/// appearance probability.
#[derive(Clone, Debug)]
pub struct PossibleWorld {
    /// The deterministic instance.
    pub graph: Graph,
    /// `Pr{pw(g)}` per Def. 3.
    pub prob: f64,
    /// Which alternative index was chosen for each vertex.
    pub choice: Vec<u32>,
}

impl UncertainGraph {
    /// Create an empty uncertain graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add an uncertain vertex.
    ///
    /// # Panics
    /// Panics if `vertex` has no alternatives, any probability outside
    /// `(0, 1]`, or total mass above `1 + 1e-9`.
    pub fn add_vertex(&mut self, vertex: UncertainVertex) -> VertexId {
        assert!(!vertex.alternatives.is_empty(), "vertex needs >= 1 label");
        for a in &vertex.alternatives {
            assert!(a.prob > 0.0 && a.prob <= 1.0, "probability out of range");
        }
        assert!(vertex.mass() <= 1.0 + 1e-9, "label mass exceeds 1");
        let id = u32::try_from(self.vertices.len()).expect("too many vertices");
        self.vertices.push(vertex);
        self.degrees.push(0);
        VertexId(id)
    }

    /// Convenience: add a vertex with one certain label.
    pub fn add_certain_vertex(&mut self, label: Symbol) -> VertexId {
        self.add_vertex(UncertainVertex::certain(label))
    }

    /// Add a directed edge with a certain label.
    pub fn add_edge(&mut self, src: VertexId, dst: VertexId, label: Symbol) {
        assert!(src.index() < self.vertices.len(), "src out of range");
        assert!(dst.index() < self.vertices.len(), "dst out of range");
        self.edges.push(Edge { src, dst, label });
        self.degrees[src.index()] += 1;
        self.degrees[dst.index()] += 1;
    }

    /// Number of vertices.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.vertices.len()
    }

    /// Number of edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// `|V| + |E|`.
    #[inline]
    pub fn size(&self) -> usize {
        self.vertex_count() + self.edge_count()
    }

    /// The uncertain vertices.
    #[inline]
    pub fn vertices(&self) -> &[UncertainVertex] {
        &self.vertices
    }

    /// The (certain) edges.
    #[inline]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Total degree of `v` (structure is certain, so degrees are too).
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.degrees[v.index()] as usize
    }

    /// Sorted (non-increasing) total degree sequence.
    pub fn sorted_degrees(&self) -> Vec<u32> {
        let mut d = self.degrees.clone();
        d.sort_unstable_by(|a, b| b.cmp(a));
        d
    }

    /// Multiset of all edge labels, sorted.
    pub fn edge_label_multiset(&self) -> Vec<Symbol> {
        let mut v: Vec<Symbol> = self.edges.iter().map(|e| e.label).collect();
        v.sort_unstable();
        v
    }

    /// Number of possible worlds: the product of per-vertex label counts.
    ///
    /// The product **saturates** at [`u128::MAX`] instead of wrapping:
    /// graphs with hundreds of multi-label vertices overflow `u128`, and a
    /// wrapped count (possibly small, or even 0 once a factor of 2^128
    /// accumulates) would silently route an enumeration-infeasible graph
    /// to the exact verifier. A saturated count is detectable via
    /// [`Self::world_count_saturated`] and compares greater than every
    /// real threshold, so tier dispatch always sends it to sampling.
    pub fn world_count(&self) -> u128 {
        self.vertices
            .iter()
            .map(|v| v.alternatives.len() as u128)
            .fold(1u128, |a, b| a.saturating_mul(b))
    }

    /// Whether [`Self::world_count`] overflowed `u128` and clamped. The
    /// true count then exceeds `2^128 − 1`; exact enumeration is
    /// impossible and callers must use the sampling tier.
    pub fn world_count_saturated(&self) -> bool {
        self.world_count() == u128::MAX
    }

    /// Average number of alternatives per vertex (`avg |L(v)|` in Table 2).
    pub fn avg_label_count(&self) -> f64 {
        if self.vertices.is_empty() {
            return 0.0;
        }
        self.vertices.iter().map(|v| v.alternatives.len()).sum::<usize>() as f64
            / self.vertices.len() as f64
    }

    /// Lift a certain graph into the uncertain model (every label has
    /// probability 1) — a certain graph is a special case of Def. 2.
    pub fn from_certain(g: &Graph) -> Self {
        let mut u = Self::new();
        for v in g.vertices() {
            u.add_certain_vertex(g.label(v));
        }
        for e in g.edges() {
            u.add_edge(e.src, e.dst, e.label);
        }
        u
    }

    /// Materialize the possible world selected by `choice` (one alternative
    /// index per vertex).
    ///
    /// # Panics
    /// Panics if `choice` has the wrong length or any index is out of range.
    pub fn materialize(&self, choice: &[u32]) -> PossibleWorld {
        assert_eq!(choice.len(), self.vertices.len(), "choice length mismatch");
        let mut g = Graph::new();
        let mut prob = 1.0;
        for (v, &c) in self.vertices.iter().zip(choice) {
            let alt = &v.alternatives[c as usize];
            g.add_vertex(alt.label);
            prob *= alt.prob;
        }
        for e in &self.edges {
            g.add_edge(e.src, e.dst, e.label);
        }
        PossibleWorld { graph: g, prob, choice: choice.to_vec() }
    }

    /// Exact iterator over all possible worlds (Def. 3).
    ///
    /// The number of worlds is exponential in the number of ambiguous
    /// vertices; callers should consult [`Self::world_count`] first.
    pub fn possible_worlds(&self) -> PossibleWorldIter<'_> {
        PossibleWorldIter {
            graph: self,
            choice: vec![0; self.vertices.len()],
            done: self.vertices.is_empty(),
        }
    }

    /// Allocation-free cursor over all possible worlds: yields each choice
    /// vector and its appearance probability in the same lexicographic
    /// order as [`Self::possible_worlds`], without materializing a
    /// [`Graph`] per world. Verification paths that only patch labels onto
    /// a shared skeleton should prefer this.
    pub fn world_choices(&self) -> WorldChoices<'_> {
        WorldChoices { graph: self, choice: vec![0; self.vertices.len()], started: false }
    }
}

/// Lending cursor over the possible worlds of an [`UncertainGraph`]; see
/// [`UncertainGraph::world_choices`].
pub struct WorldChoices<'a> {
    graph: &'a UncertainGraph,
    choice: Vec<u32>,
    started: bool,
}

impl WorldChoices<'_> {
    /// The next world's choice vector and appearance probability, or
    /// `None` when exhausted. An empty graph has zero worlds, mirroring
    /// [`UncertainGraph::possible_worlds`].
    pub fn next_world(&mut self) -> Option<(&[u32], f64)> {
        if !self.started {
            self.started = true;
            if self.graph.vertices.is_empty() {
                return None;
            }
        } else {
            // Advance the mixed-radix counter; wrap-around is exhaustion.
            let mut i = self.choice.len();
            loop {
                if i == 0 {
                    return None;
                }
                i -= 1;
                let radix = self.graph.vertices[i].alternatives.len() as u32;
                if self.choice[i] + 1 < radix {
                    self.choice[i] += 1;
                    for c in &mut self.choice[i + 1..] {
                        *c = 0;
                    }
                    break;
                }
                self.choice[i] = 0;
            }
        }
        // Same ordered product as `materialize`, for bit-identical floats.
        let mut prob = 1.0;
        for (v, &c) in self.graph.vertices.iter().zip(&self.choice) {
            prob *= v.alternatives[c as usize].prob;
        }
        Some((&self.choice, prob))
    }
}

/// Iterator over every possible world of an [`UncertainGraph`], in
/// lexicographic order of the per-vertex choice vector.
pub struct PossibleWorldIter<'a> {
    graph: &'a UncertainGraph,
    choice: Vec<u32>,
    done: bool,
}

impl Iterator for PossibleWorldIter<'_> {
    type Item = PossibleWorld;

    fn next(&mut self) -> Option<PossibleWorld> {
        if self.done {
            return None;
        }
        let world = self.graph.materialize(&self.choice);
        // Advance the mixed-radix counter.
        let mut i = self.choice.len();
        loop {
            if i == 0 {
                self.done = true;
                break;
            }
            i -= 1;
            let radix = self.graph.vertices[i].alternatives.len() as u32;
            if self.choice[i] + 1 < radix {
                self.choice[i] += 1;
                for c in &mut self.choice[i + 1..] {
                    *c = 0;
                }
                break;
            }
        }
        Some(world)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interner::SymbolTable;

    fn jordan_graph(t: &mut SymbolTable) -> UncertainGraph {
        // Simplified version of Fig. 2: one ambiguous vertex with 3 labels,
        // one with 2, two certain ones.
        let mut g = UncertainGraph::new();
        let v0 = g.add_vertex(UncertainVertex {
            alternatives: vec![
                LabelAlternative { label: t.intern("NBA_Player"), prob: 0.6 },
                LabelAlternative { label: t.intern("Professor"), prob: 0.3 },
                LabelAlternative { label: t.intern("Actor"), prob: 0.1 },
            ],
        });
        let v1 = g.add_vertex(UncertainVertex {
            alternatives: vec![
                LabelAlternative { label: t.intern("State"), prob: 0.7 },
                LabelAlternative { label: t.intern("City"), prob: 0.3 },
            ],
        });
        let v2 = g.add_certain_vertex(t.intern("?x"));
        let v3 = g.add_certain_vertex(t.intern("City"));
        g.add_edge(v2, v0, t.intern("spouse"));
        g.add_edge(v0, v3, t.intern("birthPlace"));
        g.add_edge(v3, v1, t.intern("locatedIn"));
        g
    }

    #[test]
    fn world_count_saturates_instead_of_wrapping() {
        // 2^130 worlds: a wrapping product would land on 0 (128 factors
        // of 2 zero out every u128 bit); saturation must clamp at MAX.
        let mut t = SymbolTable::new();
        let a = t.intern("A");
        let b = t.intern("B");
        let mut g = UncertainGraph::new();
        for _ in 0..130 {
            g.add_vertex(UncertainVertex {
                alternatives: vec![
                    LabelAlternative { label: a, prob: 0.5 },
                    LabelAlternative { label: b, prob: 0.5 },
                ],
            });
        }
        assert_eq!(g.world_count(), u128::MAX, "count must saturate, not wrap");
        assert!(g.world_count_saturated());
        // Any graph that actually fits in u128 reports a faithful count.
        let mut small = UncertainGraph::new();
        small.add_certain_vertex(a);
        assert_eq!(small.world_count(), 1);
        assert!(!small.world_count_saturated());
    }

    #[test]
    fn world_count_and_enumeration() {
        let mut t = SymbolTable::new();
        let g = jordan_graph(&mut t);
        assert_eq!(g.world_count(), 6);
        let worlds: Vec<_> = g.possible_worlds().collect();
        assert_eq!(worlds.len(), 6);
        let total: f64 = worlds.iter().map(|w| w.prob).sum();
        assert!((total - 1.0).abs() < 1e-9, "probabilities must sum to 1, got {total}");
    }

    #[test]
    fn world_probability_is_product() {
        let mut t = SymbolTable::new();
        let g = jordan_graph(&mut t);
        // Example 2 of the paper: the highest-probability world combines
        // the most likely labels: 0.6 * 0.7 = 0.42.
        let best = g.possible_worlds().map(|w| w.prob).fold(f64::MIN, f64::max);
        assert!((best - 0.42).abs() < 1e-9);
    }

    #[test]
    fn materialized_world_keeps_structure() {
        let mut t = SymbolTable::new();
        let g = jordan_graph(&mut t);
        let w = g.possible_worlds().next().unwrap();
        assert_eq!(w.graph.vertex_count(), g.vertex_count());
        assert_eq!(w.graph.edge_count(), g.edge_count());
        assert_eq!(w.choice, vec![0, 0, 0, 0]);
    }

    #[test]
    fn from_certain_roundtrip() {
        let mut t = SymbolTable::new();
        let mut g = Graph::new();
        let a = g.add_vertex(t.intern("A"));
        let b = g.add_vertex(t.intern("B"));
        g.add_edge(a, b, t.intern("p"));
        let u = UncertainGraph::from_certain(&g);
        assert_eq!(u.world_count(), 1);
        let w = u.possible_worlds().next().unwrap();
        assert_eq!(w.graph, g);
        assert!((w.prob - 1.0).abs() < 1e-12);
    }

    #[test]
    fn world_choices_matches_possible_worlds() {
        let mut t = SymbolTable::new();
        let g = jordan_graph(&mut t);
        let mut cursor = g.world_choices();
        let mut count = 0;
        for world in g.possible_worlds() {
            let (choice, prob) = cursor.next_world().expect("same world count");
            assert_eq!(choice, world.choice.as_slice());
            assert_eq!(prob.to_bits(), world.prob.to_bits(), "identical float product");
            count += 1;
        }
        assert!(cursor.next_world().is_none());
        assert_eq!(count, 6);
        // Zero-vertex graphs have zero worlds through both APIs.
        let empty = UncertainGraph::new();
        assert!(empty.world_choices().next_world().is_none());
        assert_eq!(empty.possible_worlds().count(), 0);
    }

    #[test]
    #[should_panic(expected = "label mass exceeds 1")]
    fn rejects_overweight_vertex() {
        let mut t = SymbolTable::new();
        let mut g = UncertainGraph::new();
        g.add_vertex(UncertainVertex {
            alternatives: vec![
                LabelAlternative { label: t.intern("A"), prob: 0.8 },
                LabelAlternative { label: t.intern("B"), prob: 0.4 },
            ],
        });
    }
}
