//! Graph substrate for the uncertain graph similarity join system.
//!
//! This crate provides the two graph models of the paper:
//!
//! * [`Graph`] — a *certain* labeled directed graph. SPARQL queries in the
//!   workload `D` are represented this way (Sec. 3.2 of the paper).
//! * [`UncertainGraph`] — an uncertain graph (Def. 2): the structure is
//!   fixed, every vertex carries one or more mutually exclusive labels each
//!   with an existence probability. Natural-language questions are
//!   represented this way after entity linking.
//!
//! Labels are interned in a [`SymbolTable`]; labels whose name begins with
//! `?` or `_:` are *wildcards* (SPARQL variables) and compare equal to any
//! other label, as prescribed in Sec. 2.1 of the paper ("all the labels
//! starting with `?` can match any vertex label").
//!
//! The possible-world semantics of Def. 3 is exposed through
//! [`UncertainGraph::possible_worlds`], an exact iterator over materialized
//! [`Graph`] instances together with their appearance probabilities.

pub mod builder;
pub mod certain;
pub mod dot;
pub mod interner;
pub mod reify;
pub mod uncertain;

pub use builder::{BuildError, GraphBuilder};
pub use certain::{Edge, Graph, VertexId};
pub use interner::{Symbol, SymbolTable};
pub use reify::{reify_certain, reify_uncertain, UncertainEdge};
pub use uncertain::{
    LabelAlternative, PossibleWorld, PossibleWorldIter, UncertainGraph, UncertainVertex,
    WorldChoices,
};

/// Compare two labels under the wildcard rule of the paper.
///
/// Two labels match if they are the same symbol, or if either one is a
/// wildcard (a SPARQL variable such as `?x`). Wildcard status is a property
/// of the symbol recorded at interning time.
#[inline]
pub fn labels_match(table: &SymbolTable, a: Symbol, b: Symbol) -> bool {
    a == b || table.is_wildcard(a) || table.is_wildcard(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wildcard_matches_everything() {
        let mut t = SymbolTable::new();
        let x = t.intern("?x");
        let a = t.intern("Actor");
        let b = t.intern("City");
        assert!(labels_match(&t, x, a));
        assert!(labels_match(&t, a, x));
        assert!(labels_match(&t, a, a));
        assert!(!labels_match(&t, a, b));
    }
}
