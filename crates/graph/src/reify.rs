//! Edge-label uncertainty by reification.
//!
//! The paper restricts the presentation to uncertain *vertex* labels and
//! notes (Sec. 3.1.1) that the general case is handled by "introduc\[ing\]
//! fictitious vertices to represent (uncertain) edges and assigning
//! uncertain labels of edges to these new vertices". This module
//! implements that transform: every (possibly uncertain) edge becomes a
//! fictitious vertex carrying the edge's label alternatives, connected to
//! its endpoints by two marker-labeled structural edges.
//!
//! Both join sides must be reified with the same marker symbols for GED
//! values to be comparable; use one [`SymbolTable`] for the pair.

use crate::certain::{Graph, VertexId};
use crate::interner::{Symbol, SymbolTable};
use crate::uncertain::{LabelAlternative, UncertainGraph, UncertainVertex};

/// Marker label on the connector from the source endpoint to the
/// fictitious edge-vertex.
pub const EDGE_IN: &str = "__edge_in__";
/// Marker label on the connector from the fictitious edge-vertex to the
/// destination endpoint.
pub const EDGE_OUT: &str = "__edge_out__";

/// An edge whose label is uncertain.
#[derive(Clone, Debug)]
pub struct UncertainEdge {
    /// Source vertex.
    pub src: VertexId,
    /// Destination vertex.
    pub dst: VertexId,
    /// Label alternatives with probabilities (non-empty; mass <= 1).
    pub alternatives: Vec<LabelAlternative>,
}

/// Reify an uncertain graph with uncertain edges: `vertices` keep their
/// alternatives, every [`UncertainEdge`] becomes a fictitious vertex.
pub fn reify_uncertain(
    table: &mut SymbolTable,
    vertices: &[UncertainVertex],
    edges: &[UncertainEdge],
) -> UncertainGraph {
    let e_in = table.intern(EDGE_IN);
    let e_out = table.intern(EDGE_OUT);
    let mut g = UncertainGraph::new();
    for v in vertices {
        g.add_vertex(v.clone());
    }
    for e in edges {
        let f = g.add_vertex(UncertainVertex { alternatives: e.alternatives.clone() });
        g.add_edge(e.src, f, e_in);
        g.add_edge(f, e.dst, e_out);
    }
    g
}

/// Reify a certain graph with the same transform (for the `q` side of a
/// join against a reified uncertain graph).
pub fn reify_certain(table: &mut SymbolTable, g: &Graph) -> Graph {
    let e_in = table.intern(EDGE_IN);
    let e_out = table.intern(EDGE_OUT);
    let mut out = Graph::new();
    for v in g.vertices() {
        out.add_vertex(g.label(v));
    }
    for e in g.edges() {
        let f = out.add_vertex(e.label);
        out.add_edge(e.src, f, e_in);
        out.add_edge(f, e.dst, e_out);
    }
    out
}

/// Convenience: a single certain alternative.
pub fn certain_edge(src: VertexId, dst: VertexId, label: Symbol) -> UncertainEdge {
    UncertainEdge { src, dst, alternatives: vec![LabelAlternative { label, prob: 1.0 }] }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reified_certain_graph_shape() {
        let mut t = SymbolTable::new();
        let mut g = Graph::new();
        let a = g.add_vertex(t.intern("A"));
        let b = g.add_vertex(t.intern("B"));
        g.add_edge(a, b, t.intern("p"));
        let r = reify_certain(&mut t, &g);
        // 2 original vertices + 1 fictitious; 2 connector edges.
        assert_eq!(r.vertex_count(), 3);
        assert_eq!(r.edge_count(), 2);
        assert_eq!(t.name(r.label(VertexId(2))), "p");
    }

    #[test]
    fn reified_uncertain_edge_worlds() {
        let mut t = SymbolTable::new();
        let p = t.intern("p");
        let q = t.intern("q");
        let a = UncertainVertex::certain(t.intern("A"));
        let b = UncertainVertex::certain(t.intern("B"));
        let edge = UncertainEdge {
            src: VertexId(0),
            dst: VertexId(1),
            alternatives: vec![
                LabelAlternative { label: p, prob: 0.7 },
                LabelAlternative { label: q, prob: 0.3 },
            ],
        };
        let g = reify_uncertain(&mut t, &[a, b], &[edge]);
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.world_count(), 2);
        let probs: Vec<f64> = g.possible_worlds().map(|w| w.prob).collect();
        assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }
}
