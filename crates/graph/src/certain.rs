//! Certain (deterministic) labeled directed graphs.
//!
//! These model SPARQL basic graph patterns: each vertex carries exactly one
//! label (an entity, class or variable) and each directed edge carries a
//! predicate label. Multi-edges between the same ordered vertex pair are
//! allowed (a SPARQL query may constrain the same pair with several
//! predicates).

use crate::interner::Symbol;
use serde::{Deserialize, Serialize};

/// Index of a vertex within one graph.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Serialize, Deserialize)]
pub struct VertexId(pub u32);

impl VertexId {
    /// Raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A directed labeled edge.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct Edge {
    /// Source vertex.
    pub src: VertexId,
    /// Destination vertex.
    pub dst: VertexId,
    /// Edge (predicate) label.
    pub label: Symbol,
}

/// A certain labeled directed multigraph.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Graph {
    labels: Vec<Symbol>,
    edges: Vec<Edge>,
    /// `out[v]` / `in_[v]`: indexes into `edges`.
    out: Vec<Vec<u32>>,
    in_: Vec<Vec<u32>>,
}

impl Graph {
    /// Create an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a vertex with the given label; returns its id.
    pub fn add_vertex(&mut self, label: Symbol) -> VertexId {
        let id = u32::try_from(self.labels.len()).expect("too many vertices");
        self.labels.push(label);
        self.out.push(Vec::new());
        self.in_.push(Vec::new());
        VertexId(id)
    }

    /// Add a directed edge. Endpoints must already exist.
    ///
    /// # Panics
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, src: VertexId, dst: VertexId, label: Symbol) {
        assert!(src.index() < self.labels.len(), "src out of range");
        assert!(dst.index() < self.labels.len(), "dst out of range");
        let idx = u32::try_from(self.edges.len()).expect("too many edges");
        self.edges.push(Edge { src, dst, label });
        self.out[src.index()].push(idx);
        self.in_[dst.index()].push(idx);
    }

    /// Number of vertices.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.labels.len()
    }

    /// Number of edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Label of vertex `v`.
    #[inline]
    pub fn label(&self, v: VertexId) -> Symbol {
        self.labels[v.index()]
    }

    /// Replace the label of vertex `v` (used when materializing possible
    /// worlds and when slotting templates).
    pub fn set_label(&mut self, v: VertexId, label: Symbol) {
        self.labels[v.index()] = label;
    }

    /// All vertex labels, indexed by vertex.
    #[inline]
    pub fn vertex_labels(&self) -> &[Symbol] {
        &self.labels
    }

    /// All edges.
    #[inline]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Iterator over vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.labels.len() as u32).map(VertexId)
    }

    /// Outgoing edges of `v`.
    pub fn out_edges(&self, v: VertexId) -> impl Iterator<Item = &Edge> + '_ {
        self.out[v.index()].iter().map(move |&i| &self.edges[i as usize])
    }

    /// Incoming edges of `v`.
    pub fn in_edges(&self, v: VertexId) -> impl Iterator<Item = &Edge> + '_ {
        self.in_[v.index()].iter().map(move |&i| &self.edges[i as usize])
    }

    /// Out-degree of `v`.
    pub fn out_degree(&self, v: VertexId) -> usize {
        self.out[v.index()].len()
    }

    /// In-degree of `v`.
    pub fn in_degree(&self, v: VertexId) -> usize {
        self.in_[v.index()].len()
    }

    /// Total degree (in + out) of `v` — the degree notion used by the
    /// degree-distance bound (Def. 9 of the paper).
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.out_degree(v) + self.in_degree(v)
    }

    /// Total degrees of all vertices, sorted in non-increasing order
    /// (the sorted degree sequence of Def. 9).
    pub fn sorted_degrees(&self) -> Vec<u32> {
        let mut d: Vec<u32> =
            (0..self.labels.len() as u32).map(|v| self.degree(VertexId(v)) as u32).collect();
        d.sort_unstable_by(|a, b| b.cmp(a));
        d
    }

    /// Labels of edges between the ordered pair `(src, dst)`.
    pub fn edge_labels_between(&self, src: VertexId, dst: VertexId) -> Vec<Symbol> {
        self.out[src.index()]
            .iter()
            .map(|&i| &self.edges[i as usize])
            .filter(|e| e.dst == dst)
            .map(|e| e.label)
            .collect()
    }

    /// Multiset of all edge labels, sorted.
    pub fn edge_label_multiset(&self) -> Vec<Symbol> {
        let mut v: Vec<Symbol> = self.edges.iter().map(|e| e.label).collect();
        v.sort_unstable();
        v
    }

    /// Multiset of all vertex labels, sorted.
    pub fn vertex_label_multiset(&self) -> Vec<Symbol> {
        let mut v = self.labels.clone();
        v.sort_unstable();
        v
    }

    /// `|V| + |E|` — the "size" of the graph as used in Lemma 1.
    #[inline]
    pub fn size(&self) -> usize {
        self.vertex_count() + self.edge_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interner::SymbolTable;

    fn toy() -> (SymbolTable, Graph) {
        let mut t = SymbolTable::new();
        let mut g = Graph::new();
        let a = g.add_vertex(t.intern("?x"));
        let b = g.add_vertex(t.intern("Actor"));
        let c = g.add_vertex(t.intern("USA"));
        g.add_edge(a, b, t.intern("type"));
        g.add_edge(a, c, t.intern("birthPlace"));
        (t, g)
    }

    #[test]
    fn basic_accounting() {
        let (_, g) = toy();
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.size(), 5);
        assert_eq!(g.degree(VertexId(0)), 2);
        assert_eq!(g.degree(VertexId(1)), 1);
        assert_eq!(g.sorted_degrees(), vec![2, 1, 1]);
    }

    #[test]
    fn edge_queries() {
        let (mut t, g) = toy();
        let ty = t.intern("type");
        assert_eq!(g.edge_labels_between(VertexId(0), VertexId(1)), vec![ty]);
        assert!(g.edge_labels_between(VertexId(1), VertexId(0)).is_empty());
        assert_eq!(g.out_degree(VertexId(0)), 2);
        assert_eq!(g.in_degree(VertexId(1)), 1);
    }

    #[test]
    fn multi_edges_are_kept() {
        let mut t = SymbolTable::new();
        let mut g = Graph::new();
        let a = g.add_vertex(t.intern("?x"));
        let b = g.add_vertex(t.intern("?y"));
        g.add_edge(a, b, t.intern("p"));
        g.add_edge(a, b, t.intern("q"));
        assert_eq!(g.edge_labels_between(a, b).len(), 2);
        assert_eq!(g.degree(a), 2);
    }
}
