//! Ergonomic string-based construction of graphs for tests, examples and
//! workload generators.

use crate::certain::{Graph, VertexId};
use crate::interner::SymbolTable;
use crate::uncertain::{LabelAlternative, UncertainGraph, UncertainVertex};
use std::collections::HashMap;

/// Builds a [`Graph`] (and optionally an [`UncertainGraph`]) from string
/// labels, interning through a shared [`SymbolTable`].
///
/// Vertices are identified by a caller-chosen string key, so edges can be
/// declared before worrying about vertex ids:
///
/// ```
/// use uqsj_graph::{GraphBuilder, SymbolTable};
/// let mut table = SymbolTable::new();
/// let mut b = GraphBuilder::new(&mut table);
/// b.vertex("x", "?x");
/// b.vertex("c", "City");
/// b.edge("x", "c", "locatedIn");
/// let g = b.into_graph();
/// assert_eq!(g.vertex_count(), 2);
/// ```
pub struct GraphBuilder<'t> {
    table: &'t mut SymbolTable,
    graph: Graph,
    uncertain: UncertainGraph,
    keys: HashMap<String, VertexId>,
}

impl<'t> GraphBuilder<'t> {
    /// Start building with the given symbol table.
    pub fn new(table: &'t mut SymbolTable) -> Self {
        Self { table, graph: Graph::new(), uncertain: UncertainGraph::new(), keys: HashMap::new() }
    }

    /// Declare a certain vertex with key `key` and label `label`.
    /// Re-declaring an existing key is an error.
    ///
    /// # Panics
    /// Panics if `key` was already declared.
    pub fn vertex(&mut self, key: &str, label: &str) -> VertexId {
        let sym = self.table.intern(label);
        let id = self.graph.add_vertex(sym);
        let uid = self.uncertain.add_certain_vertex(sym);
        debug_assert_eq!(id, uid);
        let prev = self.keys.insert(key.to_owned(), id);
        assert!(prev.is_none(), "duplicate vertex key {key:?}");
        id
    }

    /// Declare an uncertain vertex with alternatives `(label, prob)`.
    /// In the certain view the highest-probability label is used.
    ///
    /// # Panics
    /// Panics if `key` is duplicated or `alts` is empty.
    pub fn uncertain_vertex(&mut self, key: &str, alts: &[(&str, f64)]) -> VertexId {
        assert!(!alts.is_empty(), "uncertain vertex needs alternatives");
        let alternatives: Vec<LabelAlternative> = alts
            .iter()
            .map(|(l, p)| LabelAlternative { label: self.table.intern(l), prob: *p })
            .collect();
        let best = alternatives
            .iter()
            .max_by(|a, b| a.prob.partial_cmp(&b.prob).expect("NaN probability"))
            .expect("non-empty")
            .label;
        let id = self.graph.add_vertex(best);
        let uid = self.uncertain.add_vertex(UncertainVertex { alternatives });
        debug_assert_eq!(id, uid);
        let prev = self.keys.insert(key.to_owned(), id);
        assert!(prev.is_none(), "duplicate vertex key {key:?}");
        id
    }

    /// Add a directed edge between two declared keys.
    ///
    /// # Panics
    /// Panics if either key is undeclared.
    pub fn edge(&mut self, src: &str, dst: &str, label: &str) {
        let s = *self.keys.get(src).unwrap_or_else(|| panic!("unknown vertex key {src:?}"));
        let d = *self.keys.get(dst).unwrap_or_else(|| panic!("unknown vertex key {dst:?}"));
        let l = self.table.intern(label);
        self.graph.add_edge(s, d, l);
        self.uncertain.add_edge(s, d, l);
    }

    /// Vertex id for a declared key.
    pub fn id(&self, key: &str) -> Option<VertexId> {
        self.keys.get(key).copied()
    }

    /// Finish, returning the certain graph (uncertain vertices collapse to
    /// their most probable label).
    pub fn into_graph(self) -> Graph {
        self.graph
    }

    /// Finish, returning the uncertain graph.
    pub fn into_uncertain(self) -> UncertainGraph {
        self.uncertain
    }

    /// Finish, returning both views.
    pub fn into_both(self) -> (Graph, UncertainGraph) {
        (self.graph, self.uncertain)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_both_views() {
        let mut t = SymbolTable::new();
        let mut b = GraphBuilder::new(&mut t);
        b.vertex("x", "?x");
        b.uncertain_vertex("m", &[("NBA_Player", 0.6), ("Actor", 0.4)]);
        b.edge("x", "m", "spouse");
        let (g, u) = b.into_both();
        assert_eq!(g.vertex_count(), 2);
        assert_eq!(u.world_count(), 2);
        // Certain view picks the most probable alternative.
        assert_eq!(t.name(g.label(crate::VertexId(1))), "NBA_Player");
    }

    #[test]
    #[should_panic(expected = "duplicate vertex key")]
    fn rejects_duplicate_keys() {
        let mut t = SymbolTable::new();
        let mut b = GraphBuilder::new(&mut t);
        b.vertex("x", "?x");
        b.vertex("x", "?y");
    }

    #[test]
    #[should_panic(expected = "unknown vertex key")]
    fn rejects_unknown_edge_endpoint() {
        let mut t = SymbolTable::new();
        let mut b = GraphBuilder::new(&mut t);
        b.vertex("x", "?x");
        b.edge("x", "nope", "p");
    }
}
