//! Ergonomic string-based construction of graphs for tests, examples and
//! workload generators.

use crate::certain::{Graph, VertexId};
use crate::interner::SymbolTable;
use crate::uncertain::{LabelAlternative, UncertainGraph, UncertainVertex};
use std::collections::HashMap;
use std::fmt;

/// A rejected vertex declaration: the builder validates probabilities at
/// build time so invalid inputs fail with a describable error here instead
/// of a panic deep inside world enumeration.
#[derive(Clone, Debug, PartialEq)]
pub enum BuildError {
    /// An alternative's probability is NaN, infinite, or outside `(0, 1]`.
    InvalidProbability {
        /// The offending label.
        label: String,
        /// The offending probability (NaN survives the round-trip).
        prob: f64,
    },
    /// The alternatives' probabilities sum to more than 1.
    MassExceedsOne {
        /// Total mass of the declared alternatives.
        mass: f64,
    },
    /// No alternatives were given.
    NoAlternatives,
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::InvalidProbability { label, prob } => {
                write!(f, "label {label:?} has probability {prob}, need a finite value in (0, 1]")
            }
            BuildError::MassExceedsOne { mass } => {
                write!(f, "alternative probabilities sum to {mass}, which exceeds 1")
            }
            BuildError::NoAlternatives => write!(f, "uncertain vertex needs >= 1 alternative"),
        }
    }
}

impl std::error::Error for BuildError {}

/// Builds a [`Graph`] (and optionally an [`UncertainGraph`]) from string
/// labels, interning through a shared [`SymbolTable`].
///
/// Vertices are identified by a caller-chosen string key, so edges can be
/// declared before worrying about vertex ids:
///
/// ```
/// use uqsj_graph::{GraphBuilder, SymbolTable};
/// let mut table = SymbolTable::new();
/// let mut b = GraphBuilder::new(&mut table);
/// b.vertex("x", "?x");
/// b.vertex("c", "City");
/// b.edge("x", "c", "locatedIn");
/// let g = b.into_graph();
/// assert_eq!(g.vertex_count(), 2);
/// ```
pub struct GraphBuilder<'t> {
    table: &'t mut SymbolTable,
    graph: Graph,
    uncertain: UncertainGraph,
    keys: HashMap<String, VertexId>,
}

impl<'t> GraphBuilder<'t> {
    /// Start building with the given symbol table.
    pub fn new(table: &'t mut SymbolTable) -> Self {
        Self { table, graph: Graph::new(), uncertain: UncertainGraph::new(), keys: HashMap::new() }
    }

    /// Declare a certain vertex with key `key` and label `label`.
    /// Re-declaring an existing key is an error.
    ///
    /// # Panics
    /// Panics if `key` was already declared.
    pub fn vertex(&mut self, key: &str, label: &str) -> VertexId {
        let sym = self.table.intern(label);
        let id = self.graph.add_vertex(sym);
        let uid = self.uncertain.add_certain_vertex(sym);
        debug_assert_eq!(id, uid);
        let prev = self.keys.insert(key.to_owned(), id);
        assert!(prev.is_none(), "duplicate vertex key {key:?}");
        id
    }

    /// Declare an uncertain vertex with alternatives `(label, prob)`.
    /// In the certain view the highest-probability label is used.
    ///
    /// # Panics
    /// Panics if `key` is duplicated or the alternatives are invalid (see
    /// [`Self::try_uncertain_vertex`] for the non-panicking form).
    pub fn uncertain_vertex(&mut self, key: &str, alts: &[(&str, f64)]) -> VertexId {
        match self.try_uncertain_vertex(key, alts) {
            Ok(id) => id,
            Err(e) => panic!("invalid uncertain vertex {key:?}: {e}"),
        }
    }

    /// Declare an uncertain vertex, rejecting invalid probabilities with a
    /// [`BuildError`] instead of panicking: every probability must be a
    /// finite value in `(0, 1]` and the total mass at most 1 (Def. 2). In
    /// particular a NaN probability is reported here, at build time, rather
    /// than poisoning a comparison somewhere downstream.
    ///
    /// # Panics
    /// Panics if `key` was already declared (a caller bug, not a data
    /// error, so it stays a panic).
    pub fn try_uncertain_vertex(
        &mut self,
        key: &str,
        alts: &[(&str, f64)],
    ) -> Result<VertexId, BuildError> {
        if alts.is_empty() {
            return Err(BuildError::NoAlternatives);
        }
        for &(label, prob) in alts {
            // `!(..)` so that NaN (for which every comparison is false)
            // lands in the error branch.
            if !(prob.is_finite() && prob > 0.0 && prob <= 1.0) {
                return Err(BuildError::InvalidProbability { label: label.to_owned(), prob });
            }
        }
        let mass: f64 = alts.iter().map(|&(_, p)| p).sum();
        if mass > 1.0 + 1e-9 {
            return Err(BuildError::MassExceedsOne { mass });
        }
        let alternatives: Vec<LabelAlternative> = alts
            .iter()
            .map(|(l, p)| LabelAlternative { label: self.table.intern(l), prob: *p })
            .collect();
        let best = alternatives
            .iter()
            .max_by(|a, b| a.prob.partial_cmp(&b.prob).expect("probabilities are finite"))
            .expect("non-empty")
            .label;
        let id = self.graph.add_vertex(best);
        let uid = self.uncertain.add_vertex(UncertainVertex { alternatives });
        debug_assert_eq!(id, uid);
        let prev = self.keys.insert(key.to_owned(), id);
        assert!(prev.is_none(), "duplicate vertex key {key:?}");
        Ok(id)
    }

    /// Add a directed edge between two declared keys.
    ///
    /// # Panics
    /// Panics if either key is undeclared.
    pub fn edge(&mut self, src: &str, dst: &str, label: &str) {
        let s = *self.keys.get(src).unwrap_or_else(|| panic!("unknown vertex key {src:?}"));
        let d = *self.keys.get(dst).unwrap_or_else(|| panic!("unknown vertex key {dst:?}"));
        let l = self.table.intern(label);
        self.graph.add_edge(s, d, l);
        self.uncertain.add_edge(s, d, l);
    }

    /// Vertex id for a declared key.
    pub fn id(&self, key: &str) -> Option<VertexId> {
        self.keys.get(key).copied()
    }

    /// Finish, returning the certain graph (uncertain vertices collapse to
    /// their most probable label).
    pub fn into_graph(self) -> Graph {
        self.graph
    }

    /// Finish, returning the uncertain graph.
    pub fn into_uncertain(self) -> UncertainGraph {
        self.uncertain
    }

    /// Finish, returning both views.
    pub fn into_both(self) -> (Graph, UncertainGraph) {
        (self.graph, self.uncertain)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_both_views() {
        let mut t = SymbolTable::new();
        let mut b = GraphBuilder::new(&mut t);
        b.vertex("x", "?x");
        b.uncertain_vertex("m", &[("NBA_Player", 0.6), ("Actor", 0.4)]);
        b.edge("x", "m", "spouse");
        let (g, u) = b.into_both();
        assert_eq!(g.vertex_count(), 2);
        assert_eq!(u.world_count(), 2);
        // Certain view picks the most probable alternative.
        assert_eq!(t.name(g.label(crate::VertexId(1))), "NBA_Player");
    }

    #[test]
    #[should_panic(expected = "duplicate vertex key")]
    fn rejects_duplicate_keys() {
        let mut t = SymbolTable::new();
        let mut b = GraphBuilder::new(&mut t);
        b.vertex("x", "?x");
        b.vertex("x", "?y");
    }

    #[test]
    #[should_panic(expected = "unknown vertex key")]
    fn rejects_unknown_edge_endpoint() {
        let mut t = SymbolTable::new();
        let mut b = GraphBuilder::new(&mut t);
        b.vertex("x", "?x");
        b.edge("x", "nope", "p");
    }

    #[test]
    fn try_uncertain_vertex_rejects_bad_probabilities() {
        let mut t = SymbolTable::new();
        let mut b = GraphBuilder::new(&mut t);
        let nan = b.try_uncertain_vertex("a", &[("A", f64::NAN), ("B", 0.5)]);
        assert!(
            matches!(&nan, Err(BuildError::InvalidProbability { label, prob })
                if label == "A" && prob.is_nan()),
            "{nan:?}"
        );
        for bad in [0.0, -0.2, 1.5, f64::INFINITY, f64::NEG_INFINITY] {
            let err = b.try_uncertain_vertex("a", &[("A", bad)]);
            assert!(matches!(err, Err(BuildError::InvalidProbability { .. })), "p={bad}: {err:?}");
        }
        let heavy = b.try_uncertain_vertex("a", &[("A", 0.7), ("B", 0.7)]);
        assert!(matches!(heavy, Err(BuildError::MassExceedsOne { .. })), "{heavy:?}");
        let empty = b.try_uncertain_vertex("a", &[]);
        assert_eq!(empty, Err(BuildError::NoAlternatives));
        // Rejected declarations leave no partial state behind: the key is
        // still free and the graphs grew by nothing.
        assert!(b.id("a").is_none());
        let ok = b.try_uncertain_vertex("a", &[("A", 0.6), ("B", 0.4)]);
        assert!(ok.is_ok());
        let (g, u) = b.into_both();
        assert_eq!(g.vertex_count(), 1);
        assert_eq!(u.vertex_count(), 1);
    }

    #[test]
    #[should_panic(expected = "need a finite value in (0, 1]")]
    fn uncertain_vertex_panics_with_description_on_nan() {
        let mut t = SymbolTable::new();
        let mut b = GraphBuilder::new(&mut t);
        b.uncertain_vertex("a", &[("A", f64::NAN)]);
    }
}
