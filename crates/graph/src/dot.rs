//! Graphviz `dot` export, for debugging and for rendering the case-study
//! figures (Figs. 2–4 of the paper).

use crate::certain::Graph;
use crate::interner::SymbolTable;
use crate::uncertain::UncertainGraph;
use std::fmt::Write as _;

/// Render a certain graph in Graphviz `dot` syntax.
pub fn graph_to_dot(g: &Graph, table: &SymbolTable, name: &str) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "digraph \"{name}\" {{");
    for v in g.vertices() {
        let _ = writeln!(s, "  v{} [label=\"{}\"];", v.0, escape(table.name(g.label(v))));
    }
    for e in g.edges() {
        let _ = writeln!(
            s,
            "  v{} -> v{} [label=\"{}\"];",
            e.src.0,
            e.dst.0,
            escape(table.name(e.label))
        );
    }
    s.push_str("}\n");
    s
}

/// Render an uncertain graph; each vertex shows all alternatives with
/// probabilities, as in Fig. 2(b) of the paper.
pub fn uncertain_to_dot(g: &UncertainGraph, table: &SymbolTable, name: &str) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "digraph \"{name}\" {{");
    for (i, v) in g.vertices().iter().enumerate() {
        let label = v
            .alternatives
            .iter()
            .map(|a| format!("{}:{:.2}", escape(table.name(a.label)), a.prob))
            .collect::<Vec<_>>()
            .join("\\n");
        let _ = writeln!(s, "  v{i} [label=\"{label}\"];");
    }
    for e in g.edges() {
        let _ = writeln!(
            s,
            "  v{} -> v{} [label=\"{}\"];",
            e.src.0,
            e.dst.0,
            escape(table.name(e.label))
        );
    }
    s.push_str("}\n");
    s
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    #[test]
    fn dot_output_contains_labels() {
        let mut t = SymbolTable::new();
        let mut b = GraphBuilder::new(&mut t);
        b.vertex("x", "?x");
        b.uncertain_vertex("m", &[("NBA_Player", 0.6), ("Actor", 0.4)]);
        b.edge("x", "m", "spouse");
        let (g, u) = b.into_both();
        let d1 = graph_to_dot(&g, &t, "q");
        assert!(d1.contains("?x") && d1.contains("spouse"));
        let d2 = uncertain_to_dot(&u, &t, "g");
        assert!(d2.contains("NBA_Player:0.60") && d2.contains("Actor:0.40"));
    }

    #[test]
    fn escaping_quotes() {
        assert_eq!(escape("a\"b"), "a\\\"b");
    }
}
