//! String interning for vertex and edge labels.
//!
//! All graphs in a join share one [`SymbolTable`], so label equality is a
//! `u32` comparison. The table also records, per symbol, whether the label
//! is a *wildcard* (a SPARQL variable like `?x` or a blank node `_:b`),
//! which the graph-edit-distance machinery treats as matching any label.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// An interned label.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Symbol(pub u32);

impl Symbol {
    /// Raw index into the owning [`SymbolTable`].
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol({})", self.0)
    }
}

/// Interner mapping label strings to dense [`Symbol`] ids.
#[derive(Default, Clone, Serialize, Deserialize)]
pub struct SymbolTable {
    map: HashMap<String, u32>,
    names: Vec<String>,
    wildcard: Vec<bool>,
}

impl SymbolTable {
    /// Create an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `name`, returning its symbol. Idempotent.
    ///
    /// Names beginning with `?` or `_:` are flagged as wildcards.
    pub fn intern(&mut self, name: &str) -> Symbol {
        if let Some(&id) = self.map.get(name) {
            return Symbol(id);
        }
        let id = u32::try_from(self.names.len()).expect("symbol table overflow");
        self.map.insert(name.to_owned(), id);
        self.names.push(name.to_owned());
        self.wildcard.push(name.starts_with('?') || name.starts_with("_:"));
        Symbol(id)
    }

    /// Look up a symbol without interning.
    pub fn get(&self, name: &str) -> Option<Symbol> {
        self.map.get(name).copied().map(Symbol)
    }

    /// The string for `sym`.
    ///
    /// # Panics
    /// Panics if `sym` was not produced by this table.
    pub fn name(&self, sym: Symbol) -> &str {
        &self.names[sym.index()]
    }

    /// Whether `sym` is a wildcard label (SPARQL variable / blank node).
    #[inline]
    pub fn is_wildcard(&self, sym: Symbol) -> bool {
        self.wildcard[sym.index()]
    }

    /// Number of interned symbols.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

impl fmt::Debug for SymbolTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SymbolTable").field("len", &self.names.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut t = SymbolTable::new();
        let a1 = t.intern("Actor");
        let a2 = t.intern("Actor");
        assert_eq!(a1, a2);
        assert_eq!(t.len(), 1);
        assert_eq!(t.name(a1), "Actor");
    }

    #[test]
    fn wildcard_detection() {
        let mut t = SymbolTable::new();
        let var = t.intern("?x");
        let blank = t.intern("_:b0");
        let city = t.intern("City");
        // Question marks elsewhere do not make a wildcard.
        let odd = t.intern("what?");
        assert!(t.is_wildcard(var));
        assert!(t.is_wildcard(blank));
        assert!(!t.is_wildcard(city));
        assert!(!t.is_wildcard(odd));
    }

    #[test]
    fn get_does_not_intern() {
        let mut t = SymbolTable::new();
        assert!(t.get("Actor").is_none());
        let a = t.intern("Actor");
        assert_eq!(t.get("Actor"), Some(a));
        assert_eq!(t.len(), 1);
    }
}
