//! Property tests of the possible-world model (Defs. 2 and 3).

use proptest::prelude::*;
use uqsj_graph::{Graph, LabelAlternative, SymbolTable, UncertainGraph, UncertainVertex, VertexId};

const LABELS: [&str; 5] = ["A", "B", "C", "D", "?x"];

#[derive(Clone, Debug)]
struct RawGraph {
    vertices: Vec<Vec<u8>>,
    edges: Vec<(u8, u8, u8)>,
}

fn raw_strategy() -> impl Strategy<Value = RawGraph> {
    (1usize..5).prop_flat_map(|n| {
        (
            prop::collection::vec(prop::collection::vec(0u8..LABELS.len() as u8, 1..4), n),
            prop::collection::vec((0..n as u8, 0..n as u8, 0u8..3), 0..6),
        )
            .prop_map(|(vertices, edges)| RawGraph { vertices, edges })
    })
}

fn build(t: &mut SymbolTable, raw: &RawGraph) -> UncertainGraph {
    let mut g = UncertainGraph::new();
    for alts in &raw.vertices {
        let mut labels = alts.clone();
        labels.sort_unstable();
        labels.dedup();
        let p = 1.0 / labels.len() as f64;
        g.add_vertex(UncertainVertex {
            alternatives: labels
                .iter()
                .map(|&l| LabelAlternative { label: t.intern(LABELS[l as usize]), prob: p })
                .collect(),
        });
    }
    for &(s, d, l) in &raw.edges {
        if s != d {
            let sym = t.intern(&format!("e{l}"));
            g.add_edge(VertexId(s as u32), VertexId(d as u32), sym);
        }
    }
    g
}

proptest! {
    #[test]
    fn world_probabilities_sum_to_total_mass(raw in raw_strategy()) {
        let mut t = SymbolTable::new();
        let g = build(&mut t, &raw);
        let expected: f64 = g.vertices().iter().map(UncertainVertex::mass).product();
        let total: f64 = g.possible_worlds().map(|w| w.prob).sum();
        prop_assert!((total - expected).abs() < 1e-9, "{} vs {}", total, expected);
    }

    #[test]
    fn world_count_matches_enumeration(raw in raw_strategy()) {
        let mut t = SymbolTable::new();
        let g = build(&mut t, &raw);
        prop_assert_eq!(g.world_count(), g.possible_worlds().count() as u128);
    }

    #[test]
    fn worlds_preserve_structure_and_are_distinct(raw in raw_strategy()) {
        let mut t = SymbolTable::new();
        let g = build(&mut t, &raw);
        let mut seen = std::collections::HashSet::new();
        for w in g.possible_worlds() {
            prop_assert_eq!(w.graph.vertex_count(), g.vertex_count());
            prop_assert_eq!(w.graph.edge_count(), g.edge_count());
            prop_assert!(seen.insert(w.choice.clone()), "duplicate world");
            // The chosen label really is the alternative named by choice.
            for (i, &c) in w.choice.iter().enumerate() {
                let expected = g.vertices()[i].alternatives[c as usize].label;
                prop_assert_eq!(w.graph.label(VertexId(i as u32)), expected);
            }
        }
    }

    #[test]
    fn degree_sequence_is_sorted_and_consistent(raw in raw_strategy()) {
        let mut t = SymbolTable::new();
        let g = build(&mut t, &raw);
        let degrees = g.sorted_degrees();
        prop_assert!(degrees.windows(2).all(|w| w[0] >= w[1]), "not sorted");
        prop_assert_eq!(
            degrees.iter().sum::<u32>() as usize,
            2 * g.edge_count(),
            "handshake lemma"
        );
        // Certain view of any world has the same degree sequence.
        if let Some(w) = g.possible_worlds().next() {
            prop_assert_eq!(w.graph.sorted_degrees(), degrees);
        }
    }

    #[test]
    fn from_certain_is_inverse_of_single_world(raw in raw_strategy()) {
        let mut t = SymbolTable::new();
        let g = build(&mut t, &raw);
        let w = g.possible_worlds().next().unwrap();
        let lifted = UncertainGraph::from_certain(&w.graph);
        prop_assert_eq!(lifted.world_count(), 1);
        let back = lifted.possible_worlds().next().unwrap();
        prop_assert_eq!(back.graph, w.graph);
    }
}

/// The same invariants exercised once on a plain certain graph, to pin
/// down the degenerate case.
#[test]
fn certain_graph_has_exactly_one_world() {
    let mut t = SymbolTable::new();
    let mut g = Graph::new();
    let a = g.add_vertex(t.intern("A"));
    let b = g.add_vertex(t.intern("B"));
    g.add_edge(a, b, t.intern("p"));
    let u = UncertainGraph::from_certain(&g);
    assert_eq!(u.world_count(), 1);
    assert_eq!(u.possible_worlds().next().unwrap().prob, 1.0);
}
