//! Acceptance: incremental ingestion — joining each newly arriving
//! question against `D` one at a time through `JoinIndex::join_one` —
//! reproduces *exactly* the matches and the template library a full batch
//! re-join over the augmented workload builds.

use uqsj_serve::Ingestor;
use uqsj_simjoin::{sim_join, JoinMatch, JoinParams, SimpPolicy};
use uqsj_template::{generate_template, Template, TemplateLibrary, TemplateSource};
use uqsj_workload::{qald_like, Dataset, DatasetConfig};

fn dataset() -> Dataset {
    qald_like(&DatasetConfig { questions: 40, distractors: 30, ..Default::default() })
}

fn params() -> JoinParams {
    JoinParams::simj(1, 0.5)
}

/// Batch join over the first `n` questions, template library in match
/// order — the pipeline the incremental path must replicate.
fn batch(dataset: &Dataset, n: usize) -> (Vec<JoinMatch>, Vec<Template>) {
    let (matches, _) =
        sim_join(&dataset.table, &dataset.d_graphs, &dataset.u_graphs[..n], params());
    let templates = matches
        .iter()
        .filter_map(|m| {
            generate_template(&TemplateSource {
                analysis: &dataset.analyses[m.g_index],
                query: &dataset.d_queries[m.q_index],
                query_terms: &dataset.d_terms[m.q_index],
                mapping: &m.mapping,
                confidence: m.prob,
            })
        })
        .collect();
    (matches, templates)
}

fn library_of(templates: &[Template]) -> TemplateLibrary {
    let mut lib = TemplateLibrary::new();
    for t in templates {
        lib.add(t.clone());
    }
    lib
}

/// The acceptance scenario: a workload of n-1 questions is already joined;
/// question n arrives online. Ingesting it must produce the same final
/// library as re-running the batch join over all n questions.
#[test]
fn ingesting_the_new_question_equals_full_rejoin() {
    let d = dataset();
    let n = d.u_len();
    assert!(n >= 2, "dataset too small to split");

    // Offline state: batch over the first n-1 questions.
    let (_, prefix_templates) = batch(&d, n - 1);
    let mut incremental = library_of(&prefix_templates);

    // The new question arrives; incremental SimJ against the same D.
    let mut ingestor = Ingestor::new(
        d.table.clone(),
        d.d_graphs.clone(),
        d.d_queries.clone(),
        d.d_terms.clone(),
        params(),
        n - 1,
    );
    let outcome = ingestor
        .ingest(&d.kb.lexicon, &d.pairs[n - 1].question)
        .expect("dataset questions are analyzable");
    assert_eq!(outcome.g_index, n - 1);
    assert_eq!(outcome.stats.pairs_total, d.d_len() as u64);
    for t in &outcome.templates {
        incremental.add(t.clone());
    }

    // Ground truth: full batch re-join over the augmented workload.
    let (full_matches, full_templates) = batch(&d, n);
    let full = library_of(&full_templates);

    // The ingested matches are exactly the full join's matches for the
    // last question, in the same order.
    let expected_tail: Vec<&JoinMatch> =
        full_matches.iter().filter(|m| m.g_index == n - 1).collect();
    assert_eq!(outcome.matches.len(), expected_tail.len());
    for (got, want) in outcome.matches.iter().zip(expected_tail) {
        assert_eq!(got, want, "incremental match diverged from batch match");
    }

    assert_eq!(incremental.templates(), full.templates(), "incremental library != batch library");
}

/// Stronger form: growing the whole workload one question at a time from
/// an empty library converges to the batch library — so incremental
/// ingestion composes over any number of arrivals.
#[test]
fn replaying_every_question_incrementally_rebuilds_the_batch_library() {
    let d = dataset();
    let (full_matches, full_templates) = batch(&d, d.u_len());
    assert!(!full_matches.is_empty(), "batch join found nothing — test is vacuous");
    let full = library_of(&full_templates);

    let mut ingestor = Ingestor::new(
        d.table.clone(),
        d.d_graphs.clone(),
        d.d_queries.clone(),
        d.d_terms.clone(),
        params(),
        0,
    );
    let mut incremental = TemplateLibrary::new();
    let mut all_matches: Vec<JoinMatch> = Vec::new();
    let mut ingested_any_templates = false;
    for pair in &d.pairs {
        let outcome = ingestor.ingest(&d.kb.lexicon, &pair.question).expect("analyzable");
        ingested_any_templates |= !outcome.templates.is_empty();
        all_matches.extend(outcome.matches);
        for t in outcome.templates {
            incremental.add(t);
        }
    }
    assert!(ingested_any_templates);
    assert_eq!(all_matches, full_matches, "concatenated ingest matches != batch matches");
    assert_eq!(incremental.templates(), full.templates());
}

/// The sampling verification tier through the serving path: an ingestor
/// whose policy forces Monte-Carlo SimP decisions must reproduce the
/// exact ingestor's match set on enumerable questions — except possibly
/// on pairs whose exact probability sits inside the tier's ε band around
/// α, where the (ε,δ) contract permits either verdict.
#[test]
fn sampled_policy_ingestor_agrees_with_exact_ingestor() {
    let d = dataset();
    let exact_params = params();
    let eps = 0.01;
    // δ so small that an out-of-band disagreement means a sampler bug,
    // not sampling noise; threshold 2 forces the tier onto every refined
    // pair with any uncertainty at all.
    let sampled_params =
        JoinParams { simp: SimpPolicy::auto(eps, 1e-9, 7).with_threshold(2), ..exact_params };

    let ingest = |p: JoinParams| -> Vec<JoinMatch> {
        let mut ing = Ingestor::new(
            d.table.clone(),
            d.d_graphs.clone(),
            d.d_queries.clone(),
            d.d_terms.clone(),
            p,
            0,
        );
        let mut matches = Vec::new();
        for pair in &d.pairs {
            let outcome = ing.ingest(&d.kb.lexicon, &pair.question).expect("analyzable");
            matches.extend(outcome.matches);
        }
        matches
    };
    let exact_matches = ingest(exact_params);
    let sampled_matches = ingest(sampled_params);
    assert!(!exact_matches.is_empty(), "exact ingestor found nothing — test is vacuous");

    let keys = |ms: &[JoinMatch]| -> Vec<(usize, usize)> {
        let mut ks: Vec<_> = ms.iter().map(|m| (m.q_index, m.g_index)).collect();
        ks.sort_unstable();
        ks
    };
    let exact_keys = keys(&exact_matches);
    let sampled_keys = keys(&sampled_matches);

    // Any disagreement must lie inside the ε band around α.
    for &(qi, gi) in exact_keys
        .iter()
        .filter(|k| !sampled_keys.contains(k))
        .chain(sampled_keys.iter().filter(|k| !exact_keys.contains(k)))
    {
        let p = uqsj_uncertain::verify_simp(
            &d.table,
            &d.d_graphs[qi],
            &d.u_graphs[gi],
            exact_params.tau,
            f64::INFINITY,
        )
        .prob;
        assert!(
            (p - exact_params.alpha).abs() <= eps + 1e-9,
            "pair ({qi}, {gi}) disagreed with exact SimP {p}, which is outside \
             the ε={eps} band around α={}",
            exact_params.alpha
        );
    }

    // Coverage: the band exemption must not have excused everything.
    let agreed = sampled_keys.iter().filter(|k| exact_keys.contains(k)).count();
    assert!(agreed > 0, "no pair was matched by both tiers");
}
