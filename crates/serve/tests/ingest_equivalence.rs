//! Acceptance: incremental ingestion — joining each newly arriving
//! question against `D` one at a time through `JoinIndex::join_one` —
//! reproduces *exactly* the matches and the template library a full batch
//! re-join over the augmented workload builds.

use uqsj_serve::Ingestor;
use uqsj_simjoin::{sim_join, JoinMatch, JoinParams};
use uqsj_template::{generate_template, Template, TemplateLibrary, TemplateSource};
use uqsj_workload::{qald_like, Dataset, DatasetConfig};

fn dataset() -> Dataset {
    qald_like(&DatasetConfig { questions: 40, distractors: 30, ..Default::default() })
}

fn params() -> JoinParams {
    JoinParams::simj(1, 0.5)
}

/// Batch join over the first `n` questions, template library in match
/// order — the pipeline the incremental path must replicate.
fn batch(dataset: &Dataset, n: usize) -> (Vec<JoinMatch>, Vec<Template>) {
    let (matches, _) =
        sim_join(&dataset.table, &dataset.d_graphs, &dataset.u_graphs[..n], params());
    let templates = matches
        .iter()
        .filter_map(|m| {
            generate_template(&TemplateSource {
                analysis: &dataset.analyses[m.g_index],
                query: &dataset.d_queries[m.q_index],
                query_terms: &dataset.d_terms[m.q_index],
                mapping: &m.mapping,
                confidence: m.prob,
            })
        })
        .collect();
    (matches, templates)
}

fn library_of(templates: &[Template]) -> TemplateLibrary {
    let mut lib = TemplateLibrary::new();
    for t in templates {
        lib.add(t.clone());
    }
    lib
}

/// The acceptance scenario: a workload of n-1 questions is already joined;
/// question n arrives online. Ingesting it must produce the same final
/// library as re-running the batch join over all n questions.
#[test]
fn ingesting_the_new_question_equals_full_rejoin() {
    let d = dataset();
    let n = d.u_len();
    assert!(n >= 2, "dataset too small to split");

    // Offline state: batch over the first n-1 questions.
    let (_, prefix_templates) = batch(&d, n - 1);
    let mut incremental = library_of(&prefix_templates);

    // The new question arrives; incremental SimJ against the same D.
    let mut ingestor = Ingestor::new(
        d.table.clone(),
        d.d_graphs.clone(),
        d.d_queries.clone(),
        d.d_terms.clone(),
        params(),
        n - 1,
    );
    let outcome = ingestor
        .ingest(&d.kb.lexicon, &d.pairs[n - 1].question)
        .expect("dataset questions are analyzable");
    assert_eq!(outcome.g_index, n - 1);
    assert_eq!(outcome.stats.pairs_total, d.d_len() as u64);
    for t in &outcome.templates {
        incremental.add(t.clone());
    }

    // Ground truth: full batch re-join over the augmented workload.
    let (full_matches, full_templates) = batch(&d, n);
    let full = library_of(&full_templates);

    // The ingested matches are exactly the full join's matches for the
    // last question, in the same order.
    let expected_tail: Vec<&JoinMatch> =
        full_matches.iter().filter(|m| m.g_index == n - 1).collect();
    assert_eq!(outcome.matches.len(), expected_tail.len());
    for (got, want) in outcome.matches.iter().zip(expected_tail) {
        assert_eq!(got, want, "incremental match diverged from batch match");
    }

    assert_eq!(incremental.templates(), full.templates(), "incremental library != batch library");
}

/// Stronger form: growing the whole workload one question at a time from
/// an empty library converges to the batch library — so incremental
/// ingestion composes over any number of arrivals.
#[test]
fn replaying_every_question_incrementally_rebuilds_the_batch_library() {
    let d = dataset();
    let (full_matches, full_templates) = batch(&d, d.u_len());
    assert!(!full_matches.is_empty(), "batch join found nothing — test is vacuous");
    let full = library_of(&full_templates);

    let mut ingestor = Ingestor::new(
        d.table.clone(),
        d.d_graphs.clone(),
        d.d_queries.clone(),
        d.d_terms.clone(),
        params(),
        0,
    );
    let mut incremental = TemplateLibrary::new();
    let mut all_matches: Vec<JoinMatch> = Vec::new();
    let mut ingested_any_templates = false;
    for pair in &d.pairs {
        let outcome = ingestor.ingest(&d.kb.lexicon, &pair.question).expect("analyzable");
        ingested_any_templates |= !outcome.templates.is_empty();
        all_matches.extend(outcome.matches);
        for t in outcome.templates {
            incremental.add(t);
        }
    }
    assert!(ingested_any_templates);
    assert_eq!(all_matches, full_matches, "concatenated ingest matches != batch matches");
    assert_eq!(incremental.templates(), full.templates());
}
