//! Regression test for answer-cache staleness (ISSUE 6 satellite): a
//! cached answer computed against the pre-ingest library must not survive
//! an ingest that adds a better-matching template — the fresh answer wins
//! on the very next question.

use uqsj_serve::{QaServer, ServeConfig, TemplateStore};
use uqsj_sparql::{SparqlQuery, Term, Triple};
use uqsj_template::template::{slot_term, SlotBinding};
use uqsj_template::Template;

const SLOT: &str = "<_>";

/// "Which <_> graduated from <_> ?" over the given predicate and
/// confidence. Both templates share tokens (same φ, same TED), so ranking
/// falls through to the confidence tiebreak.
fn graduated_template(predicate: &str, confidence: f64) -> Template {
    let sparql = SparqlQuery {
        select: vec!["x".into()],
        triples: vec![
            Triple {
                subject: Term::Var("x".into()),
                predicate: Term::Iri("type".into()),
                object: slot_term(0),
            },
            Triple {
                subject: Term::Var("x".into()),
                predicate: Term::Iri(predicate.into()),
                object: slot_term(1),
            },
        ],
    };
    Template::new(
        ["Which", SLOT, "graduated", "from", SLOT, "?"].map(String::from).to_vec(),
        sparql,
        vec![SlotBinding::Bound, SlotBinding::Bound],
        confidence,
    )
}

fn server() -> QaServer {
    let mut lexicon = uqsj_nlp::lexicon::paper_lexicon();
    lexicon.add_class("physicist", "Physicist");
    let mut triples = uqsj_rdf::TripleStore::new();
    triples.insert("Alice", "type", "Physicist");
    triples.insert("Alice", "graduatedFrom", "Carnegie_Mellon_University");
    triples.ensure_indexes();
    let mut store = TemplateStore::new();
    // The weak seed template queries a predicate the KB never uses, so it
    // "answers" with an empty result set (the fallback instantiation).
    store.insert(graduated_template("wrongPredicate", 0.5));
    QaServer::new(
        store,
        lexicon,
        triples,
        ServeConfig { min_phi: 1.0, cache_capacity: 16, bgp_eval: None },
    )
}

#[test]
fn ingest_invalidates_cached_answers() {
    let qa = server();
    let question = "Which physicist graduated from CMU?";

    // Pre-ingest: the weak template matches but finds nothing.
    let stale = qa.answer(question);
    assert!(stale.answers.is_empty(), "seed template must not answer");
    // The empty outcome is cached now.
    qa.answer(question);
    assert_eq!(qa.metrics().cache_hits, 1, "second ask must be a cache hit");

    // Ingest a better-matching template (higher confidence, same tokens).
    let added = qa
        .insert_templates([graduated_template("graduatedFrom", 0.99)])
        .expect("in-memory ingest cannot fail");
    assert_eq!(added, 1);

    // Post-ingest: the cached stale outcome must be gone — the fresh
    // template answers.
    let fresh = qa.answer(question);
    assert_eq!(fresh.answers, vec!["Alice".to_string()], "fresh answer must win after ingest");
}

#[test]
fn answer_batch_clamps_thread_hint() {
    let qa = server();
    let questions: Vec<String> =
        vec!["Which physicist graduated from CMU?".into(), "Name every mountain on Mars".into()];
    // threads == 0 and threads >> batch length are both valid hints now.
    let a = qa.answer_batch(&questions, 0);
    let b = qa.answer_batch(&questions, 64);
    assert_eq!(a.len(), 2);
    assert_eq!(b.len(), 2);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.answers, y.answers);
    }
    // Empty batches spawn nothing and return nothing.
    assert!(qa.answer_batch(&[], 8).is_empty());
}
