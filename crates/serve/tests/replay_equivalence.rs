//! Acceptance: replaying a 1,000-question stream through the indexed
//! `QaServer` yields, for every single question, exactly the answer the
//! linear-scan `answer_question` baseline produces — while the signature
//! filter keeps the measured candidate ratio strictly below 1.0.

use uqsj_serve::{QaServer, ServeConfig, TemplateStore};
use uqsj_simjoin::{sim_join, JoinParams};
use uqsj_template::{
    answer_question, generate_template, QaOutcome, TemplateLibrary, TemplateSource,
};
use uqsj_workload::{qald_like, Dataset, DatasetConfig};

/// The offline pipeline (join + template generation), as `uqsj::pipeline`
/// runs it — the baseline library the server must answer identically to.
fn batch_library(dataset: &Dataset, params: JoinParams) -> TemplateLibrary {
    let (matches, _) = sim_join(&dataset.table, &dataset.d_graphs, &dataset.u_graphs, params);
    let mut library = TemplateLibrary::new();
    for m in &matches {
        let source = TemplateSource {
            analysis: &dataset.analyses[m.g_index],
            query: &dataset.d_queries[m.q_index],
            query_terms: &dataset.d_terms[m.q_index],
            mapping: &m.mapping,
            confidence: m.prob,
        };
        if let Some(t) = generate_template(&source) {
            library.add(t);
        }
    }
    library
}

fn assert_same_outcome(got: &QaOutcome, want: &QaOutcome, context: &str) {
    assert_eq!(
        got.sparql.as_ref().map(ToString::to_string),
        want.sparql.as_ref().map(ToString::to_string),
        "sparql diverged: {context}"
    );
    assert_eq!(got.answers, want.answers, "answers diverged: {context}");
    assert_eq!(got.template_index, want.template_index, "template diverged: {context}");
    assert!((got.phi - want.phi).abs() < 1e-12, "phi diverged: {context}");
}

fn build(questions: usize) -> (Dataset, TemplateLibrary) {
    let dataset = qald_like(&DatasetConfig { questions, distractors: 40, ..Default::default() });
    let library = batch_library(&dataset, JoinParams::simj(1, 0.5));
    (dataset, library)
}

#[test]
fn thousand_question_replay_matches_linear_scan() {
    let (dataset, library) = build(60);
    assert!(!library.is_empty(), "no templates to serve");
    let lexicon = dataset.kb.lexicon.clone();
    let triples = dataset.kb.triple_store();
    let config = ServeConfig { min_phi: 1.0, cache_capacity: 256, bgp_eval: None };
    let server = QaServer::new(
        TemplateStore::from_library(clone_library(&library)),
        lexicon.clone(),
        dataset.kb.triple_store(),
        config,
    );

    // 1,000 sends cycling the dataset's questions (plus a few misses).
    let mut stream: Vec<String> = Vec::with_capacity(1000);
    let base: Vec<&str> = dataset.pairs.iter().map(|p| p.question.as_str()).collect();
    for i in 0..1000usize {
        if i % 97 == 0 {
            stream.push(format!("Name every mountain on planet number {}", i % 7));
        } else {
            stream.push(base[i % base.len()].to_owned());
        }
    }

    for (i, q) in stream.iter().enumerate() {
        let got = server.answer(q);
        let want = answer_question(&library, &lexicon, &triples, q, config.min_phi);
        assert_same_outcome(&got, &want, &format!("question #{i}: {q:?}"));
    }

    let m = server.metrics();
    assert_eq!(m.questions, 1000);
    assert!(m.cache_hits > 0, "cycling stream must hit the cache");
    assert!(m.library_total > 0, "at least one miss must scan the store");
    assert!(
        m.candidate_ratio < 1.0,
        "signature index pruned nothing: ratio {} ({}/{})",
        m.candidate_ratio,
        m.candidates_total,
        m.library_total
    );
}

#[test]
fn partial_match_serving_matches_linear_scan() {
    let (dataset, library) = build(40);
    assert!(!library.is_empty());
    let lexicon = dataset.kb.lexicon.clone();
    let triples = dataset.kb.triple_store();
    // Cache off so every question exercises the filtered ranking path.
    let config = ServeConfig { min_phi: 0.5, cache_capacity: 0, bgp_eval: None };
    let server = QaServer::new(
        TemplateStore::from_library(clone_library(&library)),
        lexicon.clone(),
        dataset.kb.triple_store(),
        config,
    );
    for (i, p) in dataset.pairs.iter().enumerate() {
        let noisy = format!("{} according to the records", p.question);
        for q in [p.question.as_str(), noisy.as_str()] {
            let got = server.answer(q);
            let want = answer_question(&library, &lexicon, &triples, q, config.min_phi);
            assert_same_outcome(&got, &want, &format!("question #{i}: {q:?}"));
        }
    }
}

#[test]
fn batch_answers_equal_sequential_answers() {
    let (dataset, library) = build(30);
    let lexicon = dataset.kb.lexicon.clone();
    let triples = dataset.kb.triple_store();
    let server = QaServer::new(
        TemplateStore::from_library(library),
        lexicon,
        triples,
        ServeConfig::default(),
    );
    let questions: Vec<String> = dataset.pairs.iter().map(|p| p.question.clone()).collect();
    let sequential: Vec<_> = questions.iter().map(|q| server.answer(q)).collect();
    let batch = server.answer_batch(&questions, 4);
    assert_eq!(batch.len(), sequential.len());
    for (i, (got, want)) in batch.iter().zip(&sequential).enumerate() {
        assert_same_outcome(got, want, &format!("batch position {i}"));
    }
}

fn clone_library(library: &TemplateLibrary) -> TemplateLibrary {
    let mut out = TemplateLibrary::new();
    for t in library.templates() {
        out.add(t.clone());
    }
    out
}
