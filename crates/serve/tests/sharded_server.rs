//! Sharded-server conformance (ISSUE 6 tentpole): a `ShardedQaServer`
//! must answer *exactly* like a single store over the shard libraries
//! concatenated in shard order, for any shard count; a durable sharded
//! directory must recover equivalently after a kill, including with a
//! corrupted replica.

use std::path::PathBuf;
use uqsj_serve::{ServeConfig, ShardedQaServer};
use uqsj_simjoin::{sim_join, JoinParams};
use uqsj_template::{
    answer_question, generate_template, QaOutcome, TemplateLibrary, TemplateSource,
};
use uqsj_testkit::gen::qa_dataset;
use uqsj_workload::Dataset;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("uqsj-sharded-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn batch_library(dataset: &Dataset, n: usize, params: JoinParams) -> TemplateLibrary {
    let (matches, _) = sim_join(
        &dataset.table,
        &dataset.d_graphs,
        &dataset.u_graphs[..n.min(dataset.u_graphs.len())],
        params,
    );
    let mut library = TemplateLibrary::new();
    for m in &matches {
        let source = TemplateSource {
            analysis: &dataset.analyses[m.g_index],
            query: &dataset.d_queries[m.q_index],
            query_terms: &dataset.d_terms[m.q_index],
            mapping: &m.mapping,
            confidence: m.prob,
        };
        if let Some(t) = generate_template(&source) {
            library.add(t);
        }
    }
    library
}

fn clone_library(library: &TemplateLibrary) -> TemplateLibrary {
    let mut clone = TemplateLibrary::new();
    for t in library.templates() {
        clone.add(t.clone());
    }
    clone
}

/// Map a sharded answer's (shard, local index) to the index in the
/// canonical concatenated library.
fn global_index(
    server: &ShardedQaServer,
    shard: Option<usize>,
    local: Option<usize>,
) -> Option<usize> {
    let (shard, local) = (shard?, local?);
    let offset: usize = server.shard_template_counts()[..shard].iter().sum();
    Some(offset + local)
}

fn assert_matches_oracle(
    server: &ShardedQaServer,
    got: &uqsj_serve::ShardedAnswer,
    want: &QaOutcome,
    context: &str,
) {
    assert_eq!(
        got.outcome.sparql.as_ref().map(ToString::to_string),
        want.sparql.as_ref().map(ToString::to_string),
        "sparql diverged: {context}"
    );
    assert_eq!(got.outcome.answers, want.answers, "answers diverged: {context}");
    assert_eq!(
        global_index(server, got.shard, got.outcome.template_index),
        want.template_index,
        "template diverged: {context}\ngot={got:?}\nwant={want:?}"
    );
    assert!((got.outcome.phi - want.phi).abs() < 1e-12, "phi diverged: {context}");
}

/// The tentpole consistency contract: for shard counts 1, 2, 4, 7, every
/// question answers identically to `answer_question` over the canonical
/// concatenated library — including the chosen template, mapped through
/// the shard's offset.
#[test]
fn sharded_answers_equal_canonical_library_for_any_shard_count() {
    let dataset = qa_dataset(777, 40, 25);
    let params = JoinParams::simj(1, 0.5);
    let library = batch_library(&dataset, 40, params);
    assert!(library.len() >= 4, "need a non-trivial library, got {}", library.len());
    let lexicon = dataset.kb.lexicon.clone();
    let config = ServeConfig { min_phi: 1.0, cache_capacity: 0, bgp_eval: None };

    for shards in [1usize, 2, 4, 7] {
        let server = ShardedQaServer::new(
            clone_library(&library),
            lexicon.clone(),
            dataset.kb.triple_store(),
            shards,
            config,
        );
        assert_eq!(server.shard_count(), shards);
        assert_eq!(server.template_count(), library.len());
        let canonical = server.canonical_library();
        let triples = dataset.kb.triple_store();
        for pair in &dataset.pairs {
            let want = answer_question(&canonical, &lexicon, &triples, &pair.question, 1.0);
            let got = server.answer(&pair.question);
            assert_matches_oracle(
                &server,
                &got,
                &want,
                &format!("shards={shards} question={:?}", pair.question),
            );
        }
    }
}

/// Kill-and-restart (ISSUE 6 acceptance): a sharded, replicated durable
/// server that ingests templates and is dropped without ceremony (the
/// WAL appends are already fsynced) must reopen to a state equivalent to
/// replaying the surviving WALs — answering exactly like a server that
/// never went down.
#[test]
fn reopened_sharded_directory_answers_like_an_uninterrupted_server() {
    let dir = scratch_dir("reopen");
    let dataset = qa_dataset(778, 40, 25);
    let params = JoinParams::simj(1, 0.5);
    let seed_library = batch_library(&dataset, 20, params);
    let full_library = batch_library(&dataset, 40, params);
    assert!(full_library.len() > seed_library.len(), "need templates to ingest");
    let lexicon = dataset.kb.lexicon.clone();
    let config = ServeConfig { min_phi: 1.0, cache_capacity: 64, bgp_eval: None };

    let uninterrupted = ShardedQaServer::new(
        clone_library(&seed_library),
        lexicon.clone(),
        dataset.kb.triple_store(),
        3,
        config,
    );
    let durable = ShardedQaServer::create(
        &dir,
        clone_library(&seed_library),
        lexicon.clone(),
        dataset.kb.triple_store(),
        3,
        2,
        config,
    )
    .expect("bootstrap sharded dir");
    assert_eq!(durable.replica_count(), 2);

    // Both servers ingest the same batch; the durable one journals it to
    // every replica WAL of each touched shard.
    let batch: Vec<_> = full_library.templates().to_vec();
    let added_mem = uninterrupted.insert_templates(batch.clone()).expect("in-memory ingest");
    let added_durable = durable.insert_templates(batch).expect("durable ingest");
    assert_eq!(added_mem, added_durable);
    assert!(added_durable > 0);

    // Kill: drop without compaction or shutdown. Appends are durable.
    drop(durable);

    let reopened = ShardedQaServer::open(&dir, config).expect("recover sharded dir");
    assert_eq!(reopened.template_count(), uninterrupted.template_count());
    assert_eq!(reopened.shard_template_counts(), uninterrupted.shard_template_counts());
    let triples = dataset.kb.triple_store();
    let canonical = uninterrupted.canonical_library();
    for pair in &dataset.pairs {
        let want = answer_question(&canonical, &lexicon, &triples, &pair.question, 1.0);
        let got = reopened.answer(&pair.question);
        assert_matches_oracle(&reopened, &got, &want, &format!("question={:?}", pair.question));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A cache hit must preserve the (shard, local template index)
/// attribution the uncached answer carried — a repeated question used to
/// come back with `shard: None`, making the local index unmappable.
#[test]
fn cached_answers_keep_shard_attribution() {
    let dataset = qa_dataset(780, 40, 25);
    let params = JoinParams::simj(1, 0.5);
    let library = batch_library(&dataset, 40, params);
    assert!(library.len() >= 4);
    let lexicon = dataset.kb.lexicon.clone();
    let config = ServeConfig { min_phi: 1.0, cache_capacity: 8, bgp_eval: None };
    let server = ShardedQaServer::new(
        clone_library(&library),
        lexicon,
        dataset.kb.triple_store(),
        3,
        config,
    );
    let answered = dataset
        .pairs
        .iter()
        .find(|p| server.answer(&p.question).outcome.template_index.is_some())
        .expect("at least one answerable question");
    let cold = server.answer(&answered.question);
    let hot = server.answer(&answered.question); // second ask: cache hit
    assert_eq!(hot.shards_touched, 0, "second ask should be served from cache");
    assert_eq!(hot.shard, cold.shard, "cache hit lost shard attribution");
    assert_eq!(hot.outcome.template_index, cold.outcome.template_index);
    assert_eq!(
        global_index(&server, hot.shard, hot.outcome.template_index),
        global_index(&server, cold.shard, cold.outcome.template_index),
    );
}

/// Replica failover: trashing one replica of every shard (bit-flipped
/// snapshot, truncated WAL, even a deleted directory) must not lose
/// state — recovery adopts a surviving replica and re-converges the
/// damaged one.
#[test]
fn recovery_survives_a_corrupted_replica_per_shard() {
    let dir = scratch_dir("failover");
    let dataset = qa_dataset(779, 30, 20);
    let params = JoinParams::simj(1, 0.5);
    let library = batch_library(&dataset, 30, params);
    assert!(!library.is_empty());
    let lexicon = dataset.kb.lexicon.clone();
    let config = ServeConfig { min_phi: 1.0, cache_capacity: 0, bgp_eval: None };

    let durable = ShardedQaServer::create(
        &dir,
        clone_library(&library),
        lexicon.clone(),
        dataset.kb.triple_store(),
        2,
        2,
        config,
    )
    .expect("bootstrap sharded dir");
    let counts = durable.shard_template_counts();
    drop(durable);

    // Shard 0: flip bytes in the middle of replica-00's snapshot.
    let r0 = dir.join("shard-0000").join("replica-00");
    let snapshot = std::fs::read_dir(&r0)
        .expect("replica dir")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|p| p.file_name().is_some_and(|n| n.to_string_lossy().starts_with("snapshot-")))
        .expect("snapshot file");
    let mut bytes = std::fs::read(&snapshot).expect("read snapshot");
    let mid = bytes.len() / 2;
    let end = (mid + 16).min(bytes.len());
    for b in &mut bytes[mid..end] {
        *b ^= 0xff;
    }
    std::fs::write(&snapshot, bytes).expect("corrupt snapshot");
    // Shard 1: delete replica-00 wholesale.
    std::fs::remove_dir_all(dir.join("shard-0001").join("replica-00")).expect("drop replica");

    let reopened = ShardedQaServer::open(&dir, config).expect("failover recovery");
    assert_eq!(reopened.shard_template_counts(), counts, "failover lost templates");
    let triples = dataset.kb.triple_store();
    let canonical = reopened.canonical_library();
    for pair in dataset.pairs.iter().take(10) {
        let want = answer_question(&canonical, &lexicon, &triples, &pair.question, 1.0);
        let got = reopened.answer(&pair.question);
        assert_matches_oracle(&reopened, &got, &want, &format!("question={:?}", pair.question));
    }

    // And the convergence compaction healed both damaged replicas: a
    // second recovery (no corruption this time) sees identical state.
    drop(reopened);
    let again = ShardedQaServer::open(&dir, config).expect("second recovery");
    assert_eq!(again.shard_template_counts(), counts);
    let _ = std::fs::remove_dir_all(&dir);
}
