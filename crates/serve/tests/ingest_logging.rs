//! The ingest path emits one structured JSON line per generated template
//! when a log sink is installed — and stays silent (and allocation-free on
//! the logging path) when none is.

use uqsj_serve::Ingestor;
use uqsj_simjoin::JoinParams;
use uqsj_workload::{qald_like, DatasetConfig};

#[test]
fn ingest_logs_one_json_line_per_template() {
    let d = qald_like(&DatasetConfig { questions: 20, distractors: 10, ..Default::default() });
    let mut ingestor = Ingestor::from_dataset(&d, JoinParams::simj(1, 0.5));

    // Quiet by default: no sink, nothing captured anywhere.
    assert!(!uqsj_obs::log::enabled());

    let buf = uqsj_obs::log::SharedBuf::new();
    uqsj_obs::log::set_sink(Some(Box::new(buf.clone())));
    let mut total_templates = 0usize;
    for pair in &d.pairs {
        let outcome = ingestor.ingest(&d.kb.lexicon, &pair.question).expect("analyzable");
        total_templates += outcome.templates.len();
    }
    uqsj_obs::log::set_sink(None);

    let captured = buf.take_string();
    let lines: Vec<&str> = captured.lines().collect();
    assert!(total_templates > 0, "workload produced no templates — test is vacuous");
    assert_eq!(lines.len(), total_templates, "one line per template:\n{captured}");
    for line in lines {
        assert!(line.starts_with('{') && line.ends_with('}'), "not a JSON object: {line}");
        for field in [
            "\"event\":\"template_ingested\"",
            "\"g_index\":",
            "\"template\":",
            "\"confidence\":",
            "\"join_candidates\":",
            "\"verify_us\":",
        ] {
            assert!(line.contains(field), "missing {field} in {line}");
        }
    }

    // Sink removed: further ingests emit nothing.
    let outcome = ingestor.ingest(&d.kb.lexicon, &d.pairs[0].question).expect("analyzable");
    let _ = outcome;
    assert_eq!(buf.take_string(), "");
}
