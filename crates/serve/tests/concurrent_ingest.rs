//! Concurrent ingest vs. answer conformance (ISSUE 6 satellite): while
//! one thread ingests a template batch into a sharded server, racing
//! answer threads must each see either the complete pre-ingest library
//! or the complete post-ingest library — never a torn state where only
//! some of the batch's shards are visible.

use std::sync::atomic::{AtomicBool, Ordering};
use uqsj_serve::{ServeConfig, ShardedQaServer};
use uqsj_simjoin::{sim_join, JoinParams};
use uqsj_template::{
    answer_question, generate_template, QaOutcome, TemplateLibrary, TemplateSource,
};
use uqsj_testkit::gen::qa_dataset;
use uqsj_workload::Dataset;

fn batch_library(dataset: &Dataset, n: usize, params: JoinParams) -> TemplateLibrary {
    let (matches, _) = sim_join(
        &dataset.table,
        &dataset.d_graphs,
        &dataset.u_graphs[..n.min(dataset.u_graphs.len())],
        params,
    );
    let mut library = TemplateLibrary::new();
    for m in &matches {
        let source = TemplateSource {
            analysis: &dataset.analyses[m.g_index],
            query: &dataset.d_queries[m.q_index],
            query_terms: &dataset.d_terms[m.q_index],
            mapping: &m.mapping,
            confidence: m.prob,
        };
        if let Some(t) = generate_template(&source) {
            library.add(t);
        }
    }
    library
}

fn clone_library(library: &TemplateLibrary) -> TemplateLibrary {
    let mut clone = TemplateLibrary::new();
    for t in library.templates() {
        clone.add(t.clone());
    }
    clone
}

fn same_outcome(a: &QaOutcome, b: &QaOutcome) -> bool {
    a.sparql.as_ref().map(ToString::to_string) == b.sparql.as_ref().map(ToString::to_string)
        && a.answers == b.answers
        && (a.phi - b.phi).abs() < 1e-12
}

#[test]
fn racing_answers_see_pre_or_post_ingest_library_never_torn() {
    let dataset = qa_dataset(515, 40, 25);
    let params = JoinParams::simj(1, 0.5);
    let seed_library = batch_library(&dataset, 18, params);
    let full_library = batch_library(&dataset, 40, params);
    assert!(full_library.len() > seed_library.len(), "the race needs a non-empty ingest batch");
    let lexicon = dataset.kb.lexicon.clone();
    let shards = 5usize;
    // No cache: every racing answer must hit the store, not a memoized
    // outcome (cache correctness is covered elsewhere).
    let config = ServeConfig { min_phi: 1.0, cache_capacity: 0, bgp_eval: None };

    let server = ShardedQaServer::new(
        clone_library(&seed_library),
        lexicon.clone(),
        dataset.kb.triple_store(),
        shards,
        config,
    );

    // Oracles: the canonical (shard-concatenated) library before the
    // ingest, and after it — computed on a twin server that performs the
    // identical ingest sequentially.
    let pre_canonical = server.canonical_library();
    let post_canonical = {
        let twin = ShardedQaServer::new(
            clone_library(&seed_library),
            lexicon.clone(),
            dataset.kb.triple_store(),
            shards,
            config,
        );
        twin.insert_templates(full_library.templates().to_vec()).expect("twin ingest");
        twin.canonical_library()
    };
    let triples = dataset.kb.triple_store();
    let questions: Vec<String> = dataset.pairs.iter().map(|p| p.question.clone()).collect();
    let pre_oracle: Vec<QaOutcome> = questions
        .iter()
        .map(|q| answer_question(&pre_canonical, &lexicon, &triples, q, 1.0))
        .collect();
    let post_oracle: Vec<QaOutcome> = questions
        .iter()
        .map(|q| answer_question(&post_canonical, &lexicon, &triples, q, 1.0))
        .collect();
    let diverging = questions
        .iter()
        .zip(pre_oracle.iter().zip(&post_oracle))
        .filter(|(_, (a, b))| !same_outcome(a, b))
        .count();
    assert!(diverging > 0, "the ingest must change at least one answer for the race to bite");

    // The race: reader threads hammer `answer` and `answer_batch` while
    // the writer lands the whole batch in one `insert_templates` call.
    let ingest_done = AtomicBool::new(false);
    let readers = 4usize;
    let observations: Vec<Vec<(usize, QaOutcome)>> = std::thread::scope(|scope| {
        let writer = {
            let (server, full_library, ingest_done) = (&server, &full_library, &ingest_done);
            scope.spawn(move || {
                // Give readers a head start into their loops.
                std::thread::sleep(std::time::Duration::from_millis(5));
                let added =
                    server.insert_templates(full_library.templates().to_vec()).expect("ingest");
                ingest_done.store(true, Ordering::SeqCst);
                added
            })
        };
        let handles: Vec<_> = (0..readers)
            .map(|r| {
                let (server, questions, ingest_done) = (&server, &questions, &ingest_done);
                scope.spawn(move || {
                    let mut seen: Vec<(usize, QaOutcome)> = Vec::new();
                    let mut round = 0usize;
                    // Keep racing until we have observed rounds on both
                    // sides of the ingest (bounded, in case the ingest
                    // wins instantly).
                    while round < 12 && !(round >= 4 && ingest_done.load(Ordering::SeqCst)) {
                        if r % 2 == 0 {
                            for (qi, q) in questions.iter().enumerate() {
                                seen.push((qi, server.answer(q).outcome));
                            }
                        } else {
                            for (qi, o) in server.answer_batch(questions, 3).into_iter().enumerate()
                            {
                                seen.push((qi, o));
                            }
                        }
                        round += 1;
                    }
                    seen
                })
            })
            .collect();
        let added = writer.join().expect("writer thread");
        assert!(added > 0, "ingest added nothing — race degenerate");
        handles.into_iter().map(|h| h.join().expect("reader thread")).collect()
    });

    // Every observed outcome is valid under the pre- or post-ingest
    // canonical library. A torn cross-shard read would produce an
    // outcome matching neither.
    let mut checked = 0usize;
    for seen in &observations {
        for (qi, outcome) in seen {
            assert!(
                same_outcome(outcome, &pre_oracle[*qi]) || same_outcome(outcome, &post_oracle[*qi]),
                "question {:?} answered outside both pre- and post-ingest libraries:\n\
                 got answers {:?} phi {}\npre {:?}\npost {:?}",
                questions[*qi],
                outcome.answers,
                outcome.phi,
                pre_oracle[*qi].answers,
                post_oracle[*qi].answers,
            );
            checked += 1;
        }
    }
    assert!(checked > 0, "readers observed nothing");

    // Settled state: answers equal the post-ingest oracle exactly.
    for (qi, q) in questions.iter().enumerate() {
        assert!(
            same_outcome(&server.answer(q).outcome, &post_oracle[qi]),
            "post-race answer diverged for {q:?}"
        );
    }
}
