//! Serving-layer conformance: restart and compaction answer equivalence
//! on the *testkit*'s seeded Q/A dataset, so the serving checks replay
//! from the same seed discipline as the rest of the conformance suite.

use std::path::PathBuf;
use uqsj_serve::{Ingestor, QaServer, ServeConfig, TemplateStore};
use uqsj_simjoin::{sim_join, JoinParams};
use uqsj_template::{generate_template, QaOutcome, TemplateLibrary, TemplateSource};
use uqsj_testkit::gen::qa_dataset;
use uqsj_workload::Dataset;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("uqsj-conf-serve-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn batch_library(dataset: &Dataset, n: usize, params: JoinParams) -> TemplateLibrary {
    let (matches, _) = sim_join(&dataset.table, &dataset.d_graphs, &dataset.u_graphs[..n], params);
    let mut library = TemplateLibrary::new();
    for m in &matches {
        let source = TemplateSource {
            analysis: &dataset.analyses[m.g_index],
            query: &dataset.d_queries[m.q_index],
            query_terms: &dataset.d_terms[m.q_index],
            mapping: &m.mapping,
            confidence: m.prob,
        };
        if let Some(t) = generate_template(&source) {
            library.add(t);
        }
    }
    library
}

fn store_of(library: &TemplateLibrary) -> TemplateStore {
    let mut clone = TemplateLibrary::new();
    for t in library.templates() {
        clone.add(t.clone());
    }
    TemplateStore::from_library(clone)
}

fn assert_same_outcome(got: &QaOutcome, want: &QaOutcome, context: &str) {
    assert_eq!(
        got.sparql.as_ref().map(ToString::to_string),
        want.sparql.as_ref().map(ToString::to_string),
        "sparql diverged: {context}"
    );
    assert_eq!(got.answers, want.answers, "answers diverged: {context}");
    assert_eq!(got.template_index, want.template_index, "template diverged: {context}");
    assert!((got.phi - want.phi).abs() < 1e-12, "phi diverged: {context}");
}

/// Restart + compaction equivalence on the conformance dataset: an
/// in-memory baseline, a durable server that restarts, and a durable
/// server that compacts mid-stream must answer every replayed question
/// identically.
#[test]
fn restart_and_compaction_preserve_answers_on_testkit_dataset() {
    let dataset = qa_dataset(4242, 40, 25);
    let params = JoinParams::simj(1, 0.5);
    let seed = 20usize;
    let library = batch_library(&dataset, seed, params);
    assert!(!library.is_empty(), "no templates generated from the testkit dataset");
    let lexicon = dataset.kb.lexicon.clone();
    let config = ServeConfig { min_phi: 1.0, cache_capacity: 64, bgp_eval: None };

    let baseline =
        QaServer::new(store_of(&library), lexicon.clone(), dataset.kb.triple_store(), config);
    let restart_dir = scratch_dir("restart");
    let compact_dir = scratch_dir("compact");
    let durable = QaServer::create(
        &restart_dir,
        store_of(&library),
        lexicon.clone(),
        dataset.kb.triple_store(),
        config,
    )
    .expect("bootstrap restart dir");
    let compacting = QaServer::create(
        &compact_dir,
        store_of(&library),
        lexicon.clone(),
        dataset.kb.triple_store(),
        config,
    )
    .expect("bootstrap compact dir");

    let mut ingestor = Ingestor::new(
        dataset.table.clone(),
        dataset.d_graphs.clone(),
        dataset.d_queries.clone(),
        dataset.d_terms.clone(),
        params,
        seed,
    );
    let mut ingested = 0usize;
    for (i, pair) in dataset.pairs[seed..].iter().enumerate() {
        let Ok(outcome) = ingestor.ingest(&lexicon, &pair.question) else {
            continue;
        };
        ingested += outcome.templates.len();
        baseline.insert_templates(outcome.templates.clone()).expect("in-memory insert");
        durable.insert_templates(outcome.templates.clone()).expect("journaled insert");
        compacting.insert_templates(outcome.templates).expect("journaled insert");
        // Compact mid-stream a couple of times, with live WAL entries on
        // both sides of each compaction.
        if i % 7 == 3 {
            compacting.compact().expect("mid-stream compaction");
        }
    }
    assert!(ingested > 0, "ingestion produced no templates");
    assert_eq!(baseline.template_count(), durable.template_count());
    assert_eq!(baseline.template_count(), compacting.template_count());

    // Crash-drop both durable servers and recover from disk; the
    // compacted directory must recover past its folded generations too.
    drop(durable);
    drop(compacting);
    let reopened = QaServer::open(&restart_dir, config).expect("recover restart dir");
    let recompacted = QaServer::open(&compact_dir, config).expect("recover compact dir");
    assert_eq!(reopened.template_count(), baseline.template_count());
    assert_eq!(recompacted.template_count(), baseline.template_count());
    assert!(
        recompacted.storage_generation() > reopened.storage_generation(),
        "compaction never advanced the snapshot generation"
    );

    let base: Vec<&str> = dataset.pairs.iter().map(|p| p.question.as_str()).collect();
    for i in 0..120usize {
        let question = if i % 17 == 0 {
            format!("Name every mountain on planet number {}", i % 5)
        } else {
            base[i % base.len()].to_owned()
        };
        let want = baseline.answer(&question);
        assert_same_outcome(&reopened.answer(&question), &want, &format!("restart q{i}"));
        assert_same_outcome(&recompacted.answer(&question), &want, &format!("compaction q{i}"));
    }

    let _ = std::fs::remove_dir_all(&restart_dir);
    let _ = std::fs::remove_dir_all(&compact_dir);
}

/// A server pinned to the nested-loop reference evaluator must answer
/// every question identically to one on the default leapfrog join — the
/// serving-layer face of the lftj ≡ reference oracle.
#[test]
fn bgp_evaluator_choice_does_not_change_answers() {
    let dataset = qa_dataset(77, 30, 20);
    let params = JoinParams::simj(1, 0.5);
    let library = batch_library(&dataset, dataset.pairs.len(), params);
    assert!(!library.is_empty(), "no templates generated from the testkit dataset");
    let lexicon = dataset.kb.lexicon.clone();

    let lftj = QaServer::new(
        store_of(&library),
        lexicon.clone(),
        dataset.kb.triple_store(),
        ServeConfig { min_phi: 1.0, cache_capacity: 0, bgp_eval: Some(uqsj_rdf::BgpEval::Lftj) },
    );
    let reference = QaServer::new(
        store_of(&library),
        lexicon,
        dataset.kb.triple_store(),
        ServeConfig {
            min_phi: 1.0,
            cache_capacity: 0,
            bgp_eval: Some(uqsj_rdf::BgpEval::Reference),
        },
    );

    for (i, pair) in dataset.pairs.iter().enumerate() {
        let want = lftj.answer(&pair.question);
        assert_same_outcome(&reference.answer(&pair.question), &want, &format!("q{i}"));
    }
    // The batch path installs the scoped override per worker thread too.
    let questions: Vec<String> = dataset.pairs.iter().map(|p| p.question.clone()).collect();
    let a = lftj.answer_batch(&questions, 4);
    let b = reference.answer_batch(&questions, 4);
    for (i, (x, y)) in a.iter().zip(&b).enumerate() {
        assert_same_outcome(y, x, &format!("batch q{i}"));
    }
}
