//! Restart equivalence (ISSUE 2 acceptance): a durable `QaServer` that
//! ingests questions, shuts down, and reopens from its data directory
//! answers a 200-question replay *identically* to a server that never
//! restarted.

use std::path::PathBuf;
use uqsj_serve::{Ingestor, QaServer, ServeConfig, TemplateStore};
use uqsj_simjoin::{sim_join, JoinParams};
use uqsj_template::{generate_template, QaOutcome, TemplateLibrary, TemplateSource};
use uqsj_workload::{qald_like, Dataset, DatasetConfig};

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("uqsj-serve-restart-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Batch library over the first `n` questions (the offline seed state).
fn batch_library(dataset: &Dataset, n: usize, params: JoinParams) -> TemplateLibrary {
    let (matches, _) = sim_join(&dataset.table, &dataset.d_graphs, &dataset.u_graphs[..n], params);
    let mut library = TemplateLibrary::new();
    for m in &matches {
        let source = TemplateSource {
            analysis: &dataset.analyses[m.g_index],
            query: &dataset.d_queries[m.q_index],
            query_terms: &dataset.d_terms[m.q_index],
            mapping: &m.mapping,
            confidence: m.prob,
        };
        if let Some(t) = generate_template(&source) {
            library.add(t);
        }
    }
    library
}

fn store_of(library: &TemplateLibrary) -> TemplateStore {
    let mut clone = TemplateLibrary::new();
    for t in library.templates() {
        clone.add(t.clone());
    }
    TemplateStore::from_library(clone)
}

fn assert_same_outcome(got: &QaOutcome, want: &QaOutcome, context: &str) {
    assert_eq!(
        got.sparql.as_ref().map(ToString::to_string),
        want.sparql.as_ref().map(ToString::to_string),
        "sparql diverged: {context}"
    );
    assert_eq!(got.answers, want.answers, "answers diverged: {context}");
    assert_eq!(got.template_index, want.template_index, "template diverged: {context}");
    assert!((got.phi - want.phi).abs() < 1e-12, "phi diverged: {context}");
}

#[test]
fn reopened_server_replays_identically_to_uninterrupted_one() {
    let dir = scratch_dir("replay");
    let dataset =
        qald_like(&DatasetConfig { questions: 60, distractors: 40, ..Default::default() });
    let params = JoinParams::simj(1, 0.5);
    let seed = 30usize;
    let library = batch_library(&dataset, seed, params);
    assert!(!library.is_empty(), "no templates to seed the server");
    let lexicon = dataset.kb.lexicon.clone();
    let config = ServeConfig { min_phi: 1.0, cache_capacity: 128, bgp_eval: None };

    // Two servers with the same seed state: one in-memory (never
    // restarted), one durable in the data directory.
    let baseline =
        QaServer::new(store_of(&library), lexicon.clone(), dataset.kb.triple_store(), config);
    let durable = QaServer::create(
        &dir,
        store_of(&library),
        lexicon.clone(),
        dataset.kb.triple_store(),
        config,
    )
    .expect("bootstrap data dir");
    assert_eq!(durable.storage_generation(), Some(1));

    // The remaining questions arrive online; both servers ingest the
    // same templates. The durable one journals each batch to its WAL.
    let mut ingestor = Ingestor::new(
        dataset.table.clone(),
        dataset.d_graphs.clone(),
        dataset.d_queries.clone(),
        dataset.d_terms.clone(),
        params,
        seed,
    );
    let mut ingested = 0usize;
    for pair in &dataset.pairs[seed..] {
        let Ok(outcome) = ingestor.ingest(&lexicon, &pair.question) else {
            continue;
        };
        ingested += outcome.templates.len();
        baseline.insert_templates(outcome.templates.clone()).expect("in-memory insert");
        durable.insert_templates(outcome.templates).expect("journaled insert");
    }
    assert!(ingested > 0, "ingestion produced no templates");
    assert_eq!(baseline.template_count(), durable.template_count());

    // Kill the durable server (drop = no shutdown hook, like a crash
    // after the last acknowledged ingest) and recover from disk.
    drop(durable);
    let reopened = QaServer::open(&dir, config).expect("recover from data dir");
    assert_eq!(reopened.template_count(), baseline.template_count());

    // 200-question replay: every dataset question plus periodic misses.
    let base: Vec<&str> = dataset.pairs.iter().map(|p| p.question.as_str()).collect();
    for i in 0..200usize {
        let question = if i % 23 == 0 {
            format!("Name every mountain on planet number {}", i % 5)
        } else {
            base[i % base.len()].to_owned()
        };
        let got = reopened.answer(&question);
        let want = baseline.answer(&question);
        assert_same_outcome(&got, &want, &format!("replay #{i}: {question:?}"));
    }

    // Compacting the recovered state and reopening once more still
    // serves the same answers (WAL folded into the new snapshot).
    let generation = reopened.compact().expect("compact").expect("durable server");
    assert_eq!(generation, 2);
    drop(reopened);
    let recompacted = QaServer::open(&dir, config).expect("reopen after compaction");
    assert_eq!(recompacted.template_count(), baseline.template_count());
    for question in base.iter().take(40) {
        let got = recompacted.answer(question);
        let want = baseline.answer(question);
        assert_same_outcome(&got, &want, &format!("post-compaction: {question:?}"));
    }
    let _ = std::fs::remove_dir_all(&dir);
}
