//! uqsj-serve: the online Q/A serving layer.
//!
//! The batch pipeline (`uqsj::pipeline`) produces a `TemplateLibrary`
//! offline; this crate turns that artifact into a long-lived service:
//!
//! - [`TemplateStore`]: signature index over templates (token-count window
//!   and label-multiset bounds) so each question is verified against a
//!   pruned candidate set instead of the whole library.
//! - [`QaServer`]: thread-safe façade adding a bounded LRU answer cache,
//!   a `crossbeam`-scoped `answer_batch`, and latency/candidate metrics.
//! - [`Ingestor`]: incremental SimJ of a newly arrived question against the
//!   existing `D` side via `JoinIndex` — no full re-join — feeding freshly
//!   mined templates back into the live store.
//! - Durability (via `uqsj-storage`): [`QaServer::open`] recovers a
//!   snapshot + WAL data directory; `insert_templates` journals accepted
//!   templates before applying them; [`QaServer::compact`] folds the WAL
//!   into a fresh snapshot generation.

pub mod cache;
pub mod ingest;
pub mod metrics;
pub mod report;
pub mod server;
pub mod shard;
pub mod store;

pub use cache::AnswerCache;
pub use ingest::{IngestError, IngestOutcome, Ingestor};
pub use metrics::{MetricsSnapshot, ServeMetrics};
pub use report::{JoinReport, QueryReport, SlowLog, StageReport};
pub use server::{QaServer, ServeConfig};
pub use shard::{shard_of_tokens, ShardedAnswer, ShardedQaServer};
pub use store::{StoreAnswer, TemplateStore};
