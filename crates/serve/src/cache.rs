//! A bounded LRU cache over normalized question text. Capacity is small
//! and fixed, so eviction scans for the stalest stamp instead of keeping
//! a linked list — O(capacity) on insert, zero extra allocation per hit.

use std::collections::HashMap;
use uqsj_template::QaOutcome;

/// Normalize a question for cache keying: lowercase, whitespace collapsed.
/// "Which physicist  graduated from CMU?" and
/// "which physicist graduated from cmu?" share one entry (the tokenizer
/// lowercases comparisons anyway, so the answers are identical).
pub fn normalize_question(question: &str) -> String {
    question.split_whitespace().collect::<Vec<_>>().join(" ").to_lowercase()
}

/// Bounded LRU map from normalized question to its outcome.
#[derive(Debug)]
pub struct AnswerCache {
    capacity: usize,
    clock: u64,
    entries: HashMap<String, (QaOutcome, u64)>,
}

impl AnswerCache {
    /// A cache holding at most `capacity` answers. `capacity == 0`
    /// disables caching entirely.
    pub fn new(capacity: usize) -> Self {
        Self { capacity, clock: 0, entries: HashMap::with_capacity(capacity) }
    }

    /// Look up a *normalized* key, refreshing its recency on hit.
    pub fn get(&mut self, key: &str) -> Option<QaOutcome> {
        self.clock += 1;
        let clock = self.clock;
        self.entries.get_mut(key).map(|(outcome, stamp)| {
            *stamp = clock;
            outcome.clone()
        })
    }

    /// Insert under a *normalized* key, evicting the least recently used
    /// entry when full.
    pub fn put(&mut self, key: String, outcome: QaOutcome) {
        if self.capacity == 0 {
            return;
        }
        self.clock += 1;
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&key) {
            if let Some(stalest) =
                self.entries.iter().min_by_key(|(_, (_, stamp))| *stamp).map(|(k, _)| k.clone())
            {
                self.entries.remove(&stalest);
            }
        }
        self.entries.insert(key, (outcome, self.clock));
    }

    /// Drop everything — called when the template store changes, since any
    /// cached outcome may be stale against the new library.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Current number of cached answers.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(tag: usize) -> QaOutcome {
        QaOutcome { template_index: Some(tag), ..Default::default() }
    }

    #[test]
    fn normalization_merges_case_and_spacing() {
        assert_eq!(
            normalize_question("Which  physicist\tgraduated from CMU?"),
            normalize_question("which physicist graduated from cmu?"),
        );
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = AnswerCache::new(2);
        c.put("a".into(), outcome(0));
        c.put("b".into(), outcome(1));
        assert!(c.get("a").is_some()); // refresh "a": "b" is now stalest
        c.put("c".into(), outcome(2));
        assert_eq!(c.len(), 2);
        assert!(c.get("b").is_none(), "LRU entry must be evicted");
        assert!(c.get("a").is_some());
        assert!(c.get("c").is_some());
    }

    #[test]
    fn zero_capacity_never_stores() {
        let mut c = AnswerCache::new(0);
        c.put("a".into(), outcome(0));
        assert!(c.is_empty());
        assert!(c.get("a").is_none());
    }

    #[test]
    fn clear_empties_the_cache() {
        let mut c = AnswerCache::new(4);
        c.put("a".into(), outcome(0));
        c.clear();
        assert!(c.get("a").is_none());
    }
}
