//! A bounded LRU cache over normalized question text. Capacity is small
//! and fixed, so eviction scans for the stalest stamp instead of keeping
//! a linked list — O(capacity) on insert, zero extra allocation per hit.

use std::collections::HashMap;
use uqsj_template::QaOutcome;

/// Normalize a question for cache keying: lowercase, whitespace collapsed.
/// "Which physicist  graduated from CMU?" and
/// "which physicist graduated from cmu?" share one entry (the tokenizer
/// lowercases comparisons anyway, so the answers are identical).
pub fn normalize_question(question: &str) -> String {
    question.split_whitespace().collect::<Vec<_>>().join(" ").to_lowercase()
}

/// Bounded LRU map from normalized question to its outcome.
///
/// The cache is **generation-versioned** against the template library it
/// caches answers for: [`AnswerCache::invalidate`] (called on every
/// ingest that changes the library) empties the cache *and* bumps the
/// generation, and [`AnswerCache::put_at`] drops any insert stamped with
/// an older generation. This closes the read-compute-put race where an
/// answer computed against the pre-ingest library would be cached *after*
/// the ingest's clear and then served stale forever.
///
/// Generic over the cached value so callers can attach routing metadata
/// to the outcome (the sharded server caches which shard answered, so a
/// cache hit keeps its template attribution); plain servers use the
/// default `QaOutcome`.
#[derive(Debug)]
pub struct AnswerCache<V = QaOutcome> {
    capacity: usize,
    clock: u64,
    generation: u64,
    entries: HashMap<String, (V, u64)>,
}

impl<V: Clone> AnswerCache<V> {
    /// A cache holding at most `capacity` answers. `capacity == 0`
    /// disables caching entirely.
    pub fn new(capacity: usize) -> Self {
        Self { capacity, clock: 0, generation: 0, entries: HashMap::with_capacity(capacity) }
    }

    /// The current library generation. Capture this *before* computing an
    /// answer and hand it back to [`AnswerCache::put_at`] so an ingest
    /// that lands in between invalidates the insert.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Empty the cache and advance the generation — call whenever the
    /// template library changes. Outstanding computations that started
    /// before this call carry an older generation and their
    /// [`AnswerCache::put_at`] becomes a no-op.
    pub fn invalidate(&mut self) {
        self.generation += 1;
        self.entries.clear();
    }

    /// Insert under a *normalized* key, unless the library generation has
    /// advanced past the one the outcome was computed against.
    pub fn put_at(&mut self, generation: u64, key: String, outcome: V) {
        if generation != self.generation {
            return;
        }
        self.put(key, outcome);
    }

    /// Look up a *normalized* key, refreshing its recency on hit.
    pub fn get(&mut self, key: &str) -> Option<V> {
        self.clock += 1;
        let clock = self.clock;
        self.entries.get_mut(key).map(|(outcome, stamp)| {
            *stamp = clock;
            outcome.clone()
        })
    }

    /// Insert under a *normalized* key, evicting the least recently used
    /// entry when full.
    pub fn put(&mut self, key: String, outcome: V) {
        if self.capacity == 0 {
            return;
        }
        self.clock += 1;
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&key) {
            if let Some(stalest) =
                self.entries.iter().min_by_key(|(_, (_, stamp))| *stamp).map(|(k, _)| k.clone())
            {
                self.entries.remove(&stalest);
            }
        }
        self.entries.insert(key, (outcome, self.clock));
    }

    /// Drop everything — called when the template store changes, since any
    /// cached outcome may be stale against the new library.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Current number of cached answers.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(tag: usize) -> QaOutcome {
        QaOutcome { template_index: Some(tag), ..Default::default() }
    }

    #[test]
    fn normalization_merges_case_and_spacing() {
        assert_eq!(
            normalize_question("Which  physicist\tgraduated from CMU?"),
            normalize_question("which physicist graduated from cmu?"),
        );
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = AnswerCache::new(2);
        c.put("a".into(), outcome(0));
        c.put("b".into(), outcome(1));
        assert!(c.get("a").is_some()); // refresh "a": "b" is now stalest
        c.put("c".into(), outcome(2));
        assert_eq!(c.len(), 2);
        assert!(c.get("b").is_none(), "LRU entry must be evicted");
        assert!(c.get("a").is_some());
        assert!(c.get("c").is_some());
    }

    #[test]
    fn zero_capacity_never_stores() {
        let mut c = AnswerCache::new(0);
        c.put("a".into(), outcome(0));
        assert!(c.is_empty());
        assert!(c.get("a").is_none());
    }

    #[test]
    fn clear_empties_the_cache() {
        let mut c = AnswerCache::new(4);
        c.put("a".into(), outcome(0));
        c.clear();
        assert!(c.get("a").is_none());
    }

    #[test]
    fn invalidate_discards_stale_generation_puts() {
        let mut c = AnswerCache::new(4);
        // An answer computation captures the generation, then an ingest
        // invalidates before the put lands: the stale outcome must not be
        // cached.
        let stale_generation = c.generation();
        c.invalidate();
        c.put_at(stale_generation, "a".into(), outcome(0));
        assert!(c.get("a").is_none(), "stale-generation put must be dropped");
        // A put stamped with the fresh generation is accepted.
        let fresh = c.generation();
        c.put_at(fresh, "a".into(), outcome(1));
        assert_eq!(c.get("a").map(|o| o.template_index), Some(Some(1)));
    }

    #[test]
    fn invalidate_empties_and_advances() {
        let mut c = AnswerCache::new(4);
        let g0 = c.generation();
        c.put("a".into(), outcome(0));
        c.invalidate();
        assert!(c.is_empty());
        assert_eq!(c.generation(), g0 + 1);
    }
}
