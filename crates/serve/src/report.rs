//! Per-question EXPLAIN: a structured [`QueryReport`] describing exactly
//! how one answer was produced — shard routing, cache behaviour, and a
//! per-stage funnel whose pruned counts sum back to the library size —
//! plus the [`SlowLog`] worst-N ring behind `GET /debug/slow`.
//!
//! The report is assembled from counters the pipeline already keeps
//! ([`uqsj_template::AnswerStats`], `uqsj_simjoin::JoinStats`,
//! `CascadeReport`), so EXPLAIN never changes what work runs — it only
//! snapshots the numbers the metrics layer would aggregate anyway.

use parking_lot::Mutex;
use uqsj_obs::push_json_string;
use uqsj_simjoin::JoinStats;

/// One row of a report's stage funnel: `input` items entered the stage,
/// `pruned` of them were discarded, and the stage spent `us`
/// microseconds (0 where the pipeline does not time the stage
/// separately).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StageReport {
    /// Stage label — the same names the `stage=...` metric labels use.
    pub label: &'static str,
    /// Items entering the stage.
    pub input: u64,
    /// Items the stage discarded.
    pub pruned: u64,
    /// Microseconds spent in the stage (0 when not timed separately).
    pub us: u64,
}

/// The join-side section of a report: everything `JoinStats` knows about
/// one `join_one` call, reshaped as a funnel. Present on ingest-path
/// reports (`uqsj-cli join --explain`); absent on pure serving answers,
/// which never run the similarity join.
#[derive(Clone, Debug, Default)]
pub struct JoinReport {
    /// Pairs that entered the cascade.
    pub pairs: u64,
    /// Pairs that survived every filter.
    pub candidates: u64,
    /// Pairs verified with `SimP >= alpha`.
    pub results: u64,
    /// Per-stage pruned counts, in the order the stages first fired —
    /// sums to `pairs - candidates`.
    pub stages: Vec<StageReport>,
    /// Cascade plan in execution order (empty when no cascade report was
    /// stamped).
    pub plan: Vec<&'static str>,
    /// Adopted plan changes over the cascade's lifetime.
    pub plan_epochs: u64,
    /// Candidates decided by exact enumeration.
    pub verified_exact: u64,
    /// Candidates decided by the sampling tier.
    pub verified_sampled: u64,
    /// Possible worlds on which A* ran.
    pub worlds_verified: u64,
    /// Worlds drawn by the Monte-Carlo sampler.
    pub worlds_sampled: u64,
    /// Verification decisions per confidence-sequence stopping reason.
    pub stop_reasons: Vec<(&'static str, u64)>,
    /// A* states expanded during verification.
    pub ged_expanded: u64,
    /// Microseconds spent filtering.
    pub pruning_us: u64,
    /// Microseconds spent verifying.
    pub verification_us: u64,
}

impl JoinReport {
    /// Reshape one run's `JoinStats` into the report funnel. Stage rows
    /// carry the stats' name-keyed pruned counters verbatim, so the
    /// report's per-stage sum always reconciles with
    /// [`JoinStats::pruned_total`].
    pub fn from_stats(stats: &JoinStats) -> Self {
        let mut entering = stats.pairs_total;
        let stages = stats
            .pruned_stages()
            .iter()
            .map(|&(label, pruned)| {
                let row = StageReport { label, input: entering, pruned, us: 0 };
                entering = entering.saturating_sub(pruned);
                row
            })
            .collect();
        let (plan, plan_epochs) = match &stats.cascade {
            Some(c) => (c.plan.clone(), c.plan_epochs),
            None => (Vec::new(), 0),
        };
        Self {
            pairs: stats.pairs_total,
            candidates: stats.candidates,
            results: stats.results,
            stages,
            plan,
            plan_epochs,
            verified_exact: stats.verified_exact,
            verified_sampled: stats.verified_sampled,
            worlds_verified: stats.worlds_verified,
            worlds_sampled: stats.worlds_sampled,
            stop_reasons: stats.stop_reasons().to_vec(),
            ged_expanded: stats.ged_expanded,
            pruning_us: stats.pruning_time.as_micros() as u64,
            verification_us: stats.verification_time.as_micros() as u64,
        }
    }
}

/// Everything EXPLAIN reports about one answered question.
#[derive(Clone, Debug, Default)]
pub struct QueryReport {
    /// The request's trace id (0 when no request context was installed);
    /// matches the `X-Request-Id` response header and keys
    /// `/debug/trace?id=`.
    pub trace_id: u64,
    /// The question as asked.
    pub question: String,
    /// Whether the answer came from the cache (the stage funnel is empty
    /// on hits — no filtering ran).
    pub cache_hit: bool,
    /// Shard holding the chosen template, if one applied.
    pub shard: Option<usize>,
    /// Shards whose signature filter left at least one candidate.
    pub shards_touched: usize,
    /// End-to-end answer latency, microseconds.
    pub total_us: u64,
    /// The serving funnel: `signature` (library -> candidates), `align`
    /// (candidates -> aligned), `ted` (aligned -> chosen). Pruned counts
    /// plus the chosen template sum back to the library size.
    pub stages: Vec<StageReport>,
    /// Exact tree-edit-distance computations spent ranking.
    pub ted_computed: u64,
    /// Answers decoded.
    pub answers: usize,
    /// Matching proportion of the chosen alignment.
    pub phi: f64,
    /// Chosen template index, local to `shard`.
    pub template_index: Option<usize>,
    /// The join-side section, on reports explaining a join run.
    pub join: Option<JoinReport>,
}

impl QueryReport {
    /// Hand-formatted single-object JSON (the workspace convention — no
    /// serde in-tree). Strings go through the shared escape helper.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(256);
        s.push('{');
        s.push_str(&format!("\"trace_id\":\"{:016x}\"", self.trace_id));
        s.push_str(",\"question\":");
        push_json_string(&mut s, &self.question);
        s.push_str(&format!(",\"cache_hit\":{}", self.cache_hit));
        match self.shard {
            Some(shard) => s.push_str(&format!(",\"shard\":{shard}")),
            None => s.push_str(",\"shard\":null"),
        }
        s.push_str(&format!(",\"shards_touched\":{}", self.shards_touched));
        s.push_str(&format!(",\"total_us\":{}", self.total_us));
        s.push_str(",\"stages\":");
        push_stages(&mut s, &self.stages);
        s.push_str(&format!(",\"ted_computed\":{}", self.ted_computed));
        s.push_str(&format!(",\"answers\":{}", self.answers));
        if self.phi.is_finite() {
            s.push_str(&format!(",\"phi\":{}", self.phi));
        } else {
            s.push_str(",\"phi\":null");
        }
        match self.template_index {
            Some(i) => s.push_str(&format!(",\"template_index\":{i}")),
            None => s.push_str(",\"template_index\":null"),
        }
        match &self.join {
            Some(j) => {
                s.push_str(",\"join\":{");
                s.push_str(&format!("\"pairs\":{}", j.pairs));
                s.push_str(&format!(",\"candidates\":{}", j.candidates));
                s.push_str(&format!(",\"results\":{}", j.results));
                s.push_str(",\"stages\":");
                push_stages(&mut s, &j.stages);
                s.push_str(",\"plan\":[");
                for (i, label) in j.plan.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    push_json_string(&mut s, label);
                }
                s.push(']');
                s.push_str(&format!(",\"plan_epochs\":{}", j.plan_epochs));
                s.push_str(&format!(",\"verified_exact\":{}", j.verified_exact));
                s.push_str(&format!(",\"verified_sampled\":{}", j.verified_sampled));
                s.push_str(&format!(",\"worlds_verified\":{}", j.worlds_verified));
                s.push_str(&format!(",\"worlds_sampled\":{}", j.worlds_sampled));
                s.push_str(",\"stop_reasons\":{");
                for (i, (label, n)) in j.stop_reasons.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    push_json_string(&mut s, label);
                    s.push_str(&format!(":{n}"));
                }
                s.push('}');
                s.push_str(&format!(",\"ged_expanded\":{}", j.ged_expanded));
                s.push_str(&format!(",\"pruning_us\":{}", j.pruning_us));
                s.push_str(&format!(",\"verification_us\":{}", j.verification_us));
                s.push('}');
            }
            None => s.push_str(",\"join\":null"),
        }
        s.push('}');
        s
    }

    /// Multi-line human rendering for `uqsj-cli join --explain`.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "query {:016x}  {:?}  {}us  cache={}\n",
            self.trace_id,
            self.question,
            self.total_us,
            if self.cache_hit { "hit" } else { "miss" },
        ));
        for st in &self.stages {
            out.push_str(&format!(
                "  stage {:<14} in={:<8} pruned={:<8} {}us\n",
                st.label, st.input, st.pruned, st.us
            ));
        }
        if let Some(j) = &self.join {
            out.push_str(&format!(
                "  join pairs={} candidates={} results={} plan=[{}] epochs={}\n",
                j.pairs,
                j.candidates,
                j.results,
                j.plan.join(","),
                j.plan_epochs
            ));
            for st in &j.stages {
                out.push_str(&format!(
                    "    filter {:<14} in={:<8} pruned={:<8}\n",
                    st.label, st.input, st.pruned
                ));
            }
            out.push_str(&format!(
                "    verify exact={} sampled={} worlds={} drawn={} ged_expanded={}\n",
                j.verified_exact,
                j.verified_sampled,
                j.worlds_verified,
                j.worlds_sampled,
                j.ged_expanded
            ));
            for (label, n) in &j.stop_reasons {
                out.push_str(&format!("    stop {label}={n}\n"));
            }
        }
        out
    }
}

fn push_stages(s: &mut String, stages: &[StageReport]) {
    s.push('[');
    for (i, st) in stages.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str("{\"stage\":");
        push_json_string(s, st.label);
        s.push_str(&format!(",\"input\":{},\"pruned\":{},\"us\":{}}}", st.input, st.pruned, st.us));
    }
    s.push(']');
}

/// A bounded ring of the worst (slowest) reports seen, behind
/// `GET /debug/slow`. Admission is by `total_us`: once full, a report
/// must beat the fastest resident to enter.
#[derive(Debug)]
pub struct SlowLog {
    capacity: usize,
    /// Sorted slowest-first; length <= capacity.
    worst: Mutex<Vec<QueryReport>>,
}

impl SlowLog {
    /// A log retaining the `capacity` slowest reports.
    pub fn new(capacity: usize) -> Self {
        Self { capacity, worst: Mutex::new(Vec::new()) }
    }

    /// Offer one report; returns whether it was admitted.
    pub fn offer(&self, report: QueryReport) -> bool {
        if self.capacity == 0 {
            return false;
        }
        let mut worst = self.worst.lock();
        if worst.len() >= self.capacity {
            match worst.last() {
                Some(fastest) if fastest.total_us >= report.total_us => return false,
                _ => {
                    worst.pop();
                }
            }
        }
        let pos = worst.partition_point(|r| r.total_us >= report.total_us);
        worst.insert(pos, report);
        true
    }

    /// Snapshot the resident reports, slowest first.
    pub fn snapshot(&self) -> Vec<QueryReport> {
        self.worst.lock().clone()
    }

    /// JSON array of the resident reports, slowest first.
    pub fn to_json(&self) -> String {
        let worst = self.worst.lock();
        let mut s = String::from("[");
        for (i, r) in worst.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&r.to_json());
        }
        s.push(']');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(us: u64) -> QueryReport {
        QueryReport {
            trace_id: us,
            question: format!("q{us}"),
            total_us: us,
            stages: vec![StageReport { label: "signature", input: 10, pruned: 8, us: 1 }],
            ..Default::default()
        }
    }

    #[test]
    fn slow_log_keeps_the_worst_n() {
        let log = SlowLog::new(3);
        for us in [5, 1, 9, 3, 7] {
            log.offer(report(us));
        }
        let kept: Vec<u64> = log.snapshot().iter().map(|r| r.total_us).collect();
        assert_eq!(kept, vec![9, 7, 5]);
        // Too fast to displace anything.
        assert!(!log.offer(report(2)));
        assert!(log.offer(report(100)));
        let kept: Vec<u64> = log.snapshot().iter().map(|r| r.total_us).collect();
        assert_eq!(kept, vec![100, 9, 7]);
    }

    #[test]
    fn zero_capacity_log_admits_nothing() {
        let log = SlowLog::new(0);
        assert!(!log.offer(report(1)));
        assert!(log.snapshot().is_empty());
        assert_eq!(log.to_json(), "[]");
    }

    #[test]
    fn report_json_escapes_and_nests() {
        let mut r = report(4);
        r.question = "who \"starred\"?".into();
        r.join = Some(JoinReport {
            pairs: 6,
            candidates: 2,
            results: 1,
            plan: vec!["size", "css"],
            stop_reasons: vec![("exact_only", 2)],
            ..Default::default()
        });
        let json = r.to_json();
        assert!(json.contains("\"question\":\"who \\\"starred\\\"?\""), "{json}");
        assert!(json.contains("\"trace_id\":\"0000000000000004\""), "{json}");
        assert!(json.contains("\"plan\":[\"size\",\"css\"]"), "{json}");
        assert!(json.contains("\"stop_reasons\":{\"exact_only\":2}"), "{json}");
        assert!(json.contains("\"stages\":[{\"stage\":\"signature\",\"input\":10"), "{json}");
    }

    #[test]
    fn join_report_funnel_reconciles_with_stats() {
        let mut stats = JoinStats::default();
        stats.pairs_total = 20;
        stats.candidates = 5;
        stats.results = 2;
        stats.record_pruned("size", 10);
        stats.record_pruned("css", 5);
        stats.record_stop("exact_only");
        stats.ged_expanded = 33;
        let j = JoinReport::from_stats(&stats);
        assert_eq!(j.stages[0], StageReport { label: "size", input: 20, pruned: 10, us: 0 });
        assert_eq!(j.stages[1], StageReport { label: "css", input: 10, pruned: 5, us: 0 });
        let pruned: u64 = j.stages.iter().map(|s| s.pruned).sum();
        assert_eq!(pruned, stats.pruned_total());
        assert_eq!(j.pairs - pruned, j.candidates);
        assert_eq!(j.ged_expanded, 33);
        assert_eq!(j.stop_reasons, vec![("exact_only", 1)]);
    }
}
