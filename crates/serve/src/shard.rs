//! The sharded, replicated template store behind the network front end.
//!
//! [`ShardedQaServer`] partitions the template library by a stable hash
//! of each template's NL pattern into `N` shards. Every shard is an
//! independent [`TemplateStore`] behind its own lock, and — when durable —
//! an independent snapshot + WAL data directory *per replica*:
//!
//! ```text
//! data-dir/
//!   SHARDS                         # "shards=N\nreplicas=R\n"
//!   shard-0000/replica-00/         # a full uqsj-storage generation dir
//!   shard-0000/replica-01/         #   (CURRENT, snapshot-*.uqsj, wal-*.log)
//!   shard-0001/replica-00/
//!   ...
//! ```
//!
//! **Ingestion** fans a batch out to the owning shards: write locks are
//! taken in ascending shard order (so concurrent batches and the
//! all-shards read path cannot deadlock), each shard's records are
//! journaled to *every* replica WAL before they are applied, and the
//! whole batch becomes visible atomically with respect to any reader
//! that snapshots the shard set (readers take all read locks before
//! looking at any shard).
//!
//! **Answering** snapshots all shard locks (shared, cheap), runs the
//! per-shard signature filter, and ranks the surviving candidates with
//! [`uqsj_template::answer_across`] — producing *exactly* the outcome a
//! single [`TemplateStore`] over the shard libraries concatenated in
//! shard order would produce. The filter prunes non-owning shards down to
//! nothing for most questions, so verification work (alignment + TED)
//! lands on the few shards — usually one — that hold plausible templates;
//! `uqsj_shard_touched` tracks that number.
//!
//! **Recovery** opens every replica of a shard, adopts the replica with
//! the most templates (a crash can leave late replicas one append
//! behind), re-initializes any replica that fails to open (bit-flipped
//! snapshot, lost directory), and compacts all replicas to a fresh
//! common generation — after which every replica of the shard is
//! byte-equivalent again. Per shard, the adopted state is always the
//! replay of one surviving WAL over its snapshot, exactly like the
//! single-store engine.

use crate::cache::{normalize_question, AnswerCache};
use crate::metrics::{MetricsSnapshot, ServeMetrics};
use crate::report::{QueryReport, SlowLog, StageReport};
use crate::server::ServeConfig;
use crate::store::TemplateStore;
use parking_lot::{Mutex, RwLock};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;
use uqsj_nlp::signature::NlSignature;
use uqsj_nlp::token::tokenize;
use uqsj_nlp::Lexicon;
use uqsj_obs::{span, Gauge, Histogram};
use uqsj_rdf::TripleStore;
use uqsj_simjoin::cascade::{CascadeReport, CascadeRuntime};
use uqsj_storage::{StorageEngine, StorageError};
use uqsj_template::{answer_across, CandidateRef, QaOutcome, Template, TemplateLibrary};

/// How many worst-latency reports the slow-query log retains.
const SLOW_LOG_CAPACITY: usize = 32;

/// Name of the shard-topology file under a sharded data directory.
const SHARDS_FILE: &str = "SHARDS";

/// Stable FNV-1a hash of a template's NL pattern — the shard routing key.
/// Independent of process, platform, and `HashMap` seeding, so a data
/// directory written by one process routes identically in the next.
fn route_hash(tokens: &[String]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for t in tokens {
        for &b in t.as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
        // Token separator so ["ab","c"] and ["a","bc"] route apart.
        h ^= 0x1f;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// The shard owning a template with the given NL tokens.
pub fn shard_of_tokens(tokens: &[String], shards: usize) -> usize {
    (route_hash(tokens) % shards.max(1) as u64) as usize
}

/// One shard: an indexed store plus its replica storage engines
/// (empty for an in-memory server; `replicas[0]` is the primary).
struct Shard {
    store: RwLock<TemplateStore>,
    replicas: Vec<Mutex<StorageEngine>>,
}

/// How a sharded server answers, beyond the plain [`QaOutcome`].
#[derive(Clone, Debug, Default)]
pub struct ShardedAnswer {
    /// The outcome; `template_index` is *local to* `shard`.
    pub outcome: QaOutcome,
    /// Which shard the chosen template lives in, if one applied.
    pub shard: Option<usize>,
    /// Shards whose signature filter left at least one candidate — the
    /// number of shards verification actually touched.
    pub shards_touched: usize,
}

/// A sharded, optionally replicated Q/A server: the serving core the
/// `uqsj-net` HTTP front end wraps.
pub struct ShardedQaServer {
    shards: Vec<Shard>,
    lexicon: Arc<Lexicon>,
    triples: Arc<TripleStore>,
    config: ServeConfig,
    replicas: usize,
    /// Caches the answering shard alongside the outcome, so a cache hit
    /// keeps the (shard, local template index) attribution an uncached
    /// answer carries.
    cache: Mutex<AnswerCache<(QaOutcome, Option<usize>)>>,
    metrics: ServeMetrics,
    shard_touched: Histogram,
    ingest_fanout: Histogram,
    shard_templates: Gauge,
    /// Worst-N answer reports, behind `GET /debug/slow`.
    slow_log: SlowLog,
    /// Labelled cascade planners attached for `/debug/cascade` — the
    /// serving path itself never joins, but the ingest pipeline feeding
    /// this server does, and its live plan is operator-relevant.
    cascades: Mutex<Vec<(String, Arc<CascadeRuntime>)>>,
}

fn shard_dir(data_dir: &Path, shard: usize) -> PathBuf {
    data_dir.join(format!("shard-{shard:04}"))
}

fn replica_dir(data_dir: &Path, shard: usize, replica: usize) -> PathBuf {
    shard_dir(data_dir, shard).join(format!("replica-{replica:02}"))
}

/// Parse the `SHARDS` topology file: `shards=N\nreplicas=R\n`.
fn read_topology(data_dir: &Path) -> Result<(usize, usize), StorageError> {
    let text = std::fs::read_to_string(data_dir.join(SHARDS_FILE))?;
    let mut shards = None;
    let mut replicas = None;
    for line in text.lines() {
        match line.trim().split_once('=') {
            Some(("shards", v)) => shards = v.parse().ok(),
            Some(("replicas", v)) => replicas = v.parse().ok(),
            _ => {}
        }
    }
    match (shards, replicas) {
        (Some(s), Some(r)) if s >= 1 && r >= 1 => Ok((s, r)),
        _ => Err(StorageError::corrupt(format!("malformed SHARDS topology file: {text:?}"))),
    }
}

fn write_topology(data_dir: &Path, shards: usize, replicas: usize) -> Result<(), StorageError> {
    std::fs::write(data_dir.join(SHARDS_FILE), format!("shards={shards}\nreplicas={replicas}\n"))?;
    Ok(())
}

/// Partition a library into per-shard stores by NL-pattern hash.
fn partition(library: &TemplateLibrary, shards: usize) -> Vec<TemplateStore> {
    let mut stores: Vec<TemplateStore> = (0..shards).map(|_| TemplateStore::new()).collect();
    for t in library.templates() {
        stores[shard_of_tokens(&t.nl_tokens, shards)].insert(t.clone());
    }
    stores
}

impl ShardedQaServer {
    fn build(
        stores: Vec<TemplateStore>,
        replicas: Vec<Vec<StorageEngine>>,
        lexicon: Arc<Lexicon>,
        triples: Arc<TripleStore>,
        config: ServeConfig,
        replica_count: usize,
    ) -> Self {
        let metrics = ServeMetrics::new();
        let registry = metrics.registry();
        let shard_count = registry.gauge("uqsj_shard_count", "number of template-store shards");
        shard_count.set(stores.len() as i64);
        let replica_gauge = registry.gauge("uqsj_shard_replicas", "replica dirs per shard");
        replica_gauge.set(replica_count as i64);
        let shard_touched = registry.histogram(
            "uqsj_shard_touched",
            "shards with surviving candidates per answered question",
        );
        let ingest_fanout =
            registry.histogram("uqsj_shard_ingest_fanout", "shards written per ingest batch");
        let shard_templates = registry.gauge("uqsj_shard_templates", "templates across all shards");
        let shards: Vec<Shard> = stores
            .into_iter()
            .zip(replicas)
            .map(|(store, engines)| Shard {
                store: RwLock::new(store),
                replicas: engines.into_iter().map(Mutex::new).collect(),
            })
            .collect();
        let server = Self {
            shards,
            lexicon,
            triples,
            config,
            replicas: replica_count,
            cache: Mutex::new(AnswerCache::new(config.cache_capacity)),
            metrics,
            shard_touched,
            ingest_fanout,
            shard_templates,
            slow_log: SlowLog::new(SLOW_LOG_CAPACITY),
            cascades: Mutex::new(Vec::new()),
        };
        server.shard_templates.set(server.template_count() as i64);
        server
    }

    /// An in-memory sharded server: the library is partitioned by
    /// NL-pattern hash; restarts lose ingested templates.
    pub fn new(
        library: TemplateLibrary,
        lexicon: Lexicon,
        triples: TripleStore,
        shards: usize,
        config: ServeConfig,
    ) -> Self {
        let shards = shards.max(1);
        let stores = partition(&library, shards);
        let engines = (0..shards).map(|_| Vec::new()).collect();
        Self::build(stores, engines, Arc::new(lexicon), Arc::new(triples), config, 0)
    }

    /// Bootstrap (or overwrite) a sharded data directory from in-memory
    /// artifacts: the library is partitioned, every shard's state is
    /// written as a fresh snapshot generation in each of its `replicas`
    /// directories, and the topology is recorded in `SHARDS`.
    pub fn create(
        data_dir: &Path,
        library: TemplateLibrary,
        lexicon: Lexicon,
        triples: TripleStore,
        shards: usize,
        replicas: usize,
        config: ServeConfig,
    ) -> Result<Self, StorageError> {
        let shards = shards.max(1);
        let replicas = replicas.max(1);
        std::fs::create_dir_all(data_dir)?;
        write_topology(data_dir, shards, replicas)?;
        let stores = partition(&library, shards);
        let lexicon = Arc::new(lexicon);
        let triples = Arc::new(triples);
        let mut engines: Vec<Vec<StorageEngine>> = Vec::with_capacity(shards);
        for (si, store) in stores.iter().enumerate() {
            let mut shard_engines = Vec::with_capacity(replicas);
            for ri in 0..replicas {
                let (mut engine, _) = StorageEngine::open(&replica_dir(data_dir, si, ri))?;
                engine.compact(store.library(), &lexicon, &triples)?;
                shard_engines.push(engine);
            }
            engines.push(shard_engines);
        }
        Ok(Self::build(stores, engines, lexicon, triples, config, replicas))
    }

    /// Recover a sharded data directory: per shard, open every replica,
    /// adopt the most advanced one, re-initialize unreadable replicas,
    /// and compact all replicas to a common fresh generation. The lexicon
    /// and RDF store are taken from shard 0 (every replica snapshot
    /// carries a full copy, so each shard directory is self-contained).
    pub fn open(data_dir: &Path, config: ServeConfig) -> Result<Self, StorageError> {
        let (shards, replicas) = read_topology(data_dir)?;
        let mut stores = Vec::with_capacity(shards);
        let mut engines = Vec::with_capacity(shards);
        let mut shared: Option<(Arc<Lexicon>, Arc<TripleStore>)> = None;
        for si in 0..shards {
            let mut opened: Vec<(StorageEngine, uqsj_storage::RecoveredState)> =
                Vec::with_capacity(replicas);
            for ri in 0..replicas {
                let dir = replica_dir(data_dir, si, ri);
                let result = StorageEngine::open(&dir).or_else(|_| {
                    // A replica that cannot open (corrupt snapshot, torn
                    // header) is re-initialized empty and caught up by the
                    // convergence compaction below. At least one replica
                    // per shard must recover for `?` not to fire here.
                    std::fs::remove_dir_all(&dir)?;
                    StorageEngine::open(&dir)
                })?;
                opened.push((result.0, result.1));
            }
            // Adopt the replica holding the most templates: a crash
            // between replica appends leaves later replicas at most one
            // batch behind the first.
            let best = opened
                .iter()
                .enumerate()
                .max_by_key(|(ri, (_, r))| (r.state.library.len(), usize::MAX - ri))
                .map(|(ri, _)| ri)
                .expect("replicas >= 1");
            let state = std::mem::take(&mut opened[best].1.state);
            let library = state.library;
            if shared.is_none() {
                // Every replica snapshot carries the full lexicon + RDF
                // store; adopt the first recovered copy for the whole
                // server (they are identical by construction).
                shared = Some((Arc::new(state.lexicon), Arc::new(state.triples)));
            }
            let (lexicon, triples) = shared.as_ref().expect("set above");
            // Converge every replica on the adopted state.
            let mut shard_engines = Vec::with_capacity(replicas);
            for (mut engine, _) in opened {
                engine.compact(&library, lexicon, triples)?;
                shard_engines.push(engine);
            }
            stores.push(TemplateStore::from_library(library));
            engines.push(shard_engines);
        }
        let (lexicon, triples) =
            shared.unwrap_or_else(|| (Arc::new(Lexicon::default()), Arc::new(TripleStore::new())));
        Ok(Self::build(stores, engines, lexicon, triples, config, replicas))
    }

    /// Answer one question across the shards. Equivalent to answering
    /// over the shard libraries concatenated in shard order — see the
    /// module docs for the consistency argument.
    pub fn answer(&self, question: &str) -> ShardedAnswer {
        self.answer_explained(question).0
    }

    /// [`ShardedQaServer::answer`] plus the per-question EXPLAIN report.
    /// The report is built for every answer (its counters are ones the
    /// pipeline tracks anyway) and offered to the slow-query log; callers
    /// that requested EXPLAIN get it back verbatim.
    pub fn answer_explained(&self, question: &str) -> (ShardedAnswer, QueryReport) {
        let _span = span("serve.answer");
        let started = Instant::now();
        let trace_id = uqsj_obs::ctx::trace_id();
        let key = normalize_question(question);
        let generation = {
            let mut cache = self.cache.lock();
            if let Some((outcome, shard)) = cache.get(&key) {
                let elapsed = started.elapsed();
                self.metrics.record_hit(elapsed);
                let report = QueryReport {
                    trace_id,
                    question: question.to_owned(),
                    cache_hit: true,
                    shard,
                    shards_touched: 0,
                    total_us: elapsed.as_micros() as u64,
                    ted_computed: 0,
                    answers: outcome.answers.len(),
                    phi: outcome.phi,
                    template_index: outcome.template_index,
                    ..Default::default()
                };
                return (ShardedAnswer { outcome, shard, shards_touched: 0 }, report);
            }
            cache.generation()
        };
        let filter_started = Instant::now();
        let tokens = tokenize(question);
        let sig = NlSignature::of_tokens(&tokens);
        // Snapshot the shard set: all read locks, ascending shard order
        // (the same order ingestion takes write locks), so a concurrent
        // batch is either fully visible or not at all — no torn reads.
        let guards: Vec<_> = self.shards.iter().map(|s| s.store.read()).collect();
        let mut candidates: Vec<CandidateRef> = Vec::new();
        let mut shards_touched = 0usize;
        let mut library_size = 0usize;
        {
            let _span = span("serve.filter");
            for (si, guard) in guards.iter().enumerate() {
                library_size += guard.len();
                let local = guard.candidates(&sig, self.config.min_phi);
                if !local.is_empty() {
                    shards_touched += 1;
                }
                candidates
                    .extend(local.into_iter().map(|index| CandidateRef { library: si, index }));
            }
        }
        let filter_us = filter_started.elapsed().as_micros() as u64;
        let n_candidates = candidates.len();
        let libraries: Vec<&TemplateLibrary> = guards.iter().map(|g| g.library()).collect();
        let rank_started = Instant::now();
        let (multi, stats) = {
            let _span = span("serve.rank");
            answer_across(
                &libraries,
                candidates,
                &self.lexicon,
                &self.triples,
                question,
                self.config.min_phi,
            )
        };
        let rank_us = rank_started.elapsed().as_micros() as u64;
        drop(guards);
        let elapsed = started.elapsed();
        self.metrics.record_miss(elapsed, n_candidates, library_size, stats.ted_computed);
        self.shard_touched.observe(shards_touched as u64);
        self.cache.lock().put_at(generation, key, (multi.outcome.clone(), multi.library));
        // The serving funnel: pruned counts plus the chosen template sum
        // back to the library size, so EXPLAIN output reconciles with the
        // aggregated `uqsj_serve_*` counters.
        let examined = stats.candidates_examined as u64;
        let aligned = stats.candidates_aligned as u64;
        let chosen = u64::from(multi.outcome.template_index.is_some());
        let report = QueryReport {
            trace_id,
            question: question.to_owned(),
            cache_hit: false,
            shard: multi.library,
            shards_touched,
            total_us: elapsed.as_micros() as u64,
            stages: vec![
                StageReport {
                    label: "signature",
                    input: library_size as u64,
                    pruned: (library_size as u64).saturating_sub(examined),
                    us: filter_us,
                },
                StageReport {
                    label: "align",
                    input: examined,
                    pruned: examined.saturating_sub(aligned),
                    us: rank_us,
                },
                StageReport {
                    label: "ted",
                    input: aligned,
                    pruned: aligned.saturating_sub(chosen),
                    us: 0,
                },
            ],
            ted_computed: stats.ted_computed as u64,
            answers: multi.outcome.answers.len(),
            phi: multi.outcome.phi,
            template_index: multi.outcome.template_index,
            join: None,
        };
        if self.slow_log.offer(report.clone()) {
            self.metrics.record_slow_query();
        }
        (ShardedAnswer { outcome: multi.outcome, shard: multi.library, shards_touched }, report)
    }

    /// Answer a batch across worker threads; same contract as
    /// [`crate::QaServer::answer_batch`] (the hint is clamped to
    /// `1..=questions.len()`), with each answer routed through the
    /// sharded path.
    pub fn answer_batch(&self, questions: &[String], threads: usize) -> Vec<QaOutcome> {
        let threads = threads.max(1).min(questions.len().max(1));
        if threads == 1 || questions.len() <= 1 {
            return questions.iter().map(|q| self.answer(q).outcome).collect();
        }
        let chunk = questions.len().div_ceil(threads);
        let slots: Vec<Mutex<Vec<QaOutcome>>> =
            questions.chunks(chunk).map(|_| Mutex::new(Vec::new())).collect();
        // Re-install the caller's request context on each worker: the
        // batch's trace id (and EXPLAIN/deadline flags) must follow the
        // questions across threads for `events_for` and exemplars.
        let ctx = uqsj_obs::ctx::current();
        crossbeam::thread::scope(|scope| {
            for (ci, slice) in questions.chunks(chunk).enumerate() {
                let slot = &slots[ci];
                scope.spawn(move |_| {
                    let _ctx = ctx.map(uqsj_obs::ctx::install);
                    let outcomes: Vec<QaOutcome> =
                        slice.iter().map(|q| self.answer(q).outcome).collect();
                    *slot.lock() = outcomes;
                });
            }
        })
        .expect("answer worker panicked");
        slots.into_iter().flat_map(Mutex::into_inner).collect()
    }

    /// Ingest a template batch. The batch is grouped by owning shard;
    /// write locks are taken in ascending shard order, each group is
    /// journaled to every replica WAL of its shard (fsynced before
    /// apply), and all groups are applied before any lock is released —
    /// so any reader that snapshots the shard set sees the whole batch
    /// or none of it. Returns how many templates were new.
    pub fn insert_templates(
        &self,
        templates: impl IntoIterator<Item = Template>,
    ) -> Result<usize, StorageError> {
        let mut groups: Vec<Vec<Template>> = (0..self.shards.len()).map(|_| Vec::new()).collect();
        for t in templates.into_iter() {
            groups[shard_of_tokens(&t.nl_tokens, self.shards.len())].push(t);
        }
        let touched: Vec<usize> = (0..groups.len()).filter(|&si| !groups[si].is_empty()).collect();
        if touched.is_empty() {
            return Ok(0);
        }
        // Ascending shard order, matching the answer path's read-lock
        // order — the global lock order that makes the snapshot safe.
        let mut guards: Vec<_> = touched.iter().map(|&si| self.shards[si].store.write()).collect();
        for &si in &touched {
            for engine in &self.shards[si].replicas {
                engine.lock().append_templates(&groups[si])?;
            }
        }
        let mut added = 0usize;
        for (slot, &si) in touched.iter().enumerate() {
            for t in std::mem::take(&mut groups[si]) {
                if guards[slot].insert(t) {
                    added += 1;
                }
            }
        }
        drop(guards);
        self.ingest_fanout.observe(touched.len() as u64);
        if added > 0 {
            self.shard_templates.set(self.template_count() as i64);
            self.cache.lock().invalidate();
        }
        Ok(added)
    }

    /// Fold every shard's WAL into a fresh snapshot generation on each of
    /// its replicas. Returns the new generation per shard (empty for an
    /// in-memory server).
    pub fn compact(&self) -> Result<Vec<u64>, StorageError> {
        let mut generations = Vec::new();
        for shard in &self.shards {
            if shard.replicas.is_empty() {
                continue;
            }
            let store = shard.store.read();
            let mut generation = 0;
            for engine in &shard.replicas {
                generation =
                    engine.lock().compact(store.library(), &self.lexicon, &self.triples)?;
            }
            generations.push(generation);
        }
        Ok(generations)
    }

    /// Fsync barrier across every replica WAL — the drain path's explicit
    /// flush point. Appends are already durable when `insert_templates`
    /// returns, so this never loses or gains records.
    pub fn sync_wals(&self) -> Result<(), StorageError> {
        for shard in &self.shards {
            for engine in &shard.replicas {
                engine.lock().sync()?;
            }
        }
        Ok(())
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Replica directories per shard (0 for an in-memory server).
    pub fn replica_count(&self) -> usize {
        self.replicas
    }

    /// Templates currently served, across all shards.
    pub fn template_count(&self) -> usize {
        self.shards.iter().map(|s| s.store.read().len()).sum()
    }

    /// Per-shard template counts, in shard order.
    pub fn shard_template_counts(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.store.read().len()).collect()
    }

    /// The shard libraries concatenated in shard order — the canonical
    /// single-library view of the sharded store. `answer` is exactly
    /// equivalent to `uqsj_template::answer_question` over this library
    /// (the conformance tests' oracle).
    pub fn canonical_library(&self) -> TemplateLibrary {
        let mut library = TemplateLibrary::new();
        for shard in &self.shards {
            for t in shard.store.read().library().templates() {
                library.add(t.clone());
            }
        }
        library
    }

    /// The worst-N slow-query log behind `GET /debug/slow`.
    pub fn slow_log(&self) -> &SlowLog {
        &self.slow_log
    }

    /// Attach a labelled cascade planner (typically the ingest
    /// pipeline's) so [`ShardedQaServer::cascade_reports`] — and thus
    /// `GET /debug/cascade` — can snapshot its live plan and estimates.
    pub fn attach_cascade(&self, label: impl Into<String>, cascade: Arc<CascadeRuntime>) {
        self.cascades.lock().push((label.into(), cascade));
    }

    /// Live plan + estimate snapshots of every attached cascade planner.
    pub fn cascade_reports(&self) -> Vec<(String, CascadeReport)> {
        self.cascades.lock().iter().map(|(label, rt)| (label.clone(), rt.report())).collect()
    }

    /// Answer-cache introspection for `GET /debug/cache`:
    /// `(entries, capacity, generation)`.
    pub fn cache_debug(&self) -> (usize, usize, u64) {
        let cache = self.cache.lock();
        (cache.len(), self.config.cache_capacity, cache.generation())
    }

    /// Current serving counters.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// The serving metrics handles (counter access for the front end).
    pub fn serve_metrics(&self) -> &ServeMetrics {
        &self.metrics
    }

    /// This server's private metric registry (`uqsj_serve_*` plus the
    /// `uqsj_shard_*` families).
    pub fn metrics_registry(&self) -> &uqsj_obs::Registry {
        self.metrics.registry()
    }

    /// The serving configuration.
    pub fn config(&self) -> ServeConfig {
        self.config
    }

    /// The shared lexicon.
    pub fn lexicon(&self) -> &Arc<Lexicon> {
        &self.lexicon
    }

    /// The shared RDF store.
    pub fn triples(&self) -> &Arc<TripleStore> {
        &self.triples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_stable_and_in_range() {
        let tokens: Vec<String> =
            ["Which", "<_>", "graduated", "from", "<_>", "?"].map(String::from).to_vec();
        for shards in [1, 2, 7, 16] {
            let s = shard_of_tokens(&tokens, shards);
            assert!(s < shards);
            assert_eq!(s, shard_of_tokens(&tokens, shards), "routing must be deterministic");
        }
        // Separator matters: re-splitting token bytes must not collide by
        // construction of the hash.
        let a: Vec<String> = ["ab", "c"].map(String::from).to_vec();
        let b: Vec<String> = ["a", "bc"].map(String::from).to_vec();
        assert_ne!(route_hash(&a), route_hash(&b));
    }

    #[test]
    fn topology_roundtrip() {
        let dir = std::env::temp_dir().join(format!("uqsj-shards-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        write_topology(&dir, 4, 2).unwrap();
        assert_eq!(read_topology(&dir).unwrap(), (4, 2));
        std::fs::write(dir.join(SHARDS_FILE), "shards=0\nreplicas=1\n").unwrap();
        assert!(read_topology(&dir).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
