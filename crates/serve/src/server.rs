//! The Q/A server: indexed store behind a read/write lock, answer cache,
//! metrics, and a thread-pooled batch API mirroring the parallel join
//! driver's `crossbeam::scope` chunking. Optionally durable: opened from
//! a `uqsj-storage` data directory, the server recovers its state on
//! start and journals every ingested template to the WAL before applying
//! it.

use crate::cache::{normalize_question, AnswerCache};
use crate::metrics::{MetricsSnapshot, ServeMetrics};
use crate::store::TemplateStore;
use parking_lot::{Mutex, RwLock};
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;
use uqsj_nlp::Lexicon;
use uqsj_rdf::TripleStore;
use uqsj_storage::{StorageEngine, StorageError};
use uqsj_template::{QaOutcome, Template};

/// Serving knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Minimum matching proportion φ (Table 5's knob; 1.0 = full matches).
    pub min_phi: f64,
    /// Answer-cache capacity; 0 disables caching.
    pub cache_capacity: usize,
    /// Which BGP evaluator answers SPARQL retrieval for this server;
    /// `None` follows the process default (normally the leapfrog join).
    pub bgp_eval: Option<uqsj_rdf::BgpEval>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self { min_phi: 1.0, cache_capacity: 1024, bgp_eval: None }
    }
}

/// An online question-answering endpoint over a template store.
pub struct QaServer {
    store: RwLock<TemplateStore>,
    lexicon: Arc<Lexicon>,
    triples: Arc<TripleStore>,
    config: ServeConfig,
    cache: Mutex<AnswerCache>,
    metrics: ServeMetrics,
    /// Present when the server is durable: the WAL ingests are journaled
    /// to and the snapshot target for [`QaServer::compact`].
    storage: Option<Mutex<StorageEngine>>,
}

impl QaServer {
    /// Serve an indexed store over the given lexicon and RDF store
    /// (in-memory only; restarts lose ingested templates).
    pub fn new(
        store: TemplateStore,
        lexicon: Lexicon,
        triples: TripleStore,
        config: ServeConfig,
    ) -> Self {
        Self::with_shared(store, Arc::new(lexicon), Arc::new(triples), config)
    }

    /// Like [`QaServer::new`] but sharing the lexicon and RDF store with
    /// other servers — the sharded front end keeps one copy of both for
    /// all of its shards.
    pub fn with_shared(
        store: TemplateStore,
        lexicon: Arc<Lexicon>,
        triples: Arc<TripleStore>,
        config: ServeConfig,
    ) -> Self {
        Self {
            store: RwLock::new(store),
            lexicon,
            triples,
            config,
            cache: Mutex::new(AnswerCache::new(config.cache_capacity)),
            metrics: ServeMetrics::new(),
            storage: None,
        }
    }

    /// Open a durable server from a storage data directory: recover the
    /// snapshot, replay the WAL (truncating a torn tail), and serve the
    /// result. Subsequent [`QaServer::insert_templates`] calls are
    /// journaled before they are applied.
    pub fn open(data_dir: &Path, config: ServeConfig) -> Result<Self, StorageError> {
        let (engine, recovered) = StorageEngine::open(data_dir)?;
        let state = recovered.state;
        let mut server = Self::new(
            TemplateStore::from_library(state.library),
            state.lexicon,
            state.triples,
            config,
        );
        server.storage = Some(Mutex::new(engine));
        Ok(server)
    }

    /// Bootstrap (or overwrite) a data directory from in-memory
    /// artifacts — the import path from the text formats — and serve it.
    /// The state is written as a fresh snapshot generation before the
    /// server starts.
    pub fn create(
        data_dir: &Path,
        store: TemplateStore,
        lexicon: Lexicon,
        triples: TripleStore,
        config: ServeConfig,
    ) -> Result<Self, StorageError> {
        let (mut engine, _) = StorageEngine::open(data_dir)?;
        engine.compact(store.library(), &lexicon, &triples)?;
        let mut server = Self::new(store, lexicon, triples, config);
        server.storage = Some(Mutex::new(engine));
        Ok(server)
    }

    /// Answer one question: cache lookup, then signature-filtered template
    /// ranking. Identical outcomes to the linear-scan
    /// `uqsj_template::answer_question` on the same library.
    pub fn answer(&self, question: &str) -> QaOutcome {
        let started = Instant::now();
        let key = normalize_question(question);
        // Capture the cache generation *before* computing: if an ingest
        // changes the library while this answer is in flight, the
        // generation moves on and the stale put below is dropped.
        let generation = {
            let mut cache = self.cache.lock();
            if let Some(hit) = cache.get(&key) {
                self.metrics.record_hit(started.elapsed());
                return hit;
            }
            cache.generation()
        };
        // Per-server evaluator choice rides a thread-local scope so batch
        // workers and co-located servers with different configs don't
        // fight over a process global.
        let _eval = self.config.bgp_eval.map(uqsj_rdf::bgp::scoped);
        let answered =
            self.store.read().answer(&self.lexicon, &self.triples, question, self.config.min_phi);
        self.metrics.record_miss(
            started.elapsed(),
            answered.candidates,
            answered.library_size,
            answered.stats.ted_computed,
        );
        self.cache.lock().put_at(generation, key, answered.outcome.clone());
        answered.outcome
    }

    /// Answer a batch across worker threads. Output order matches input
    /// order; each worker takes a contiguous chunk, like the parallel join
    /// driver partitions the uncertain side.
    ///
    /// # Contract
    /// `threads` is a *hint*: it is clamped to `1..=questions.len()`
    /// (never below one worker, never more workers than questions), so
    /// `threads == 0`, oversized thread counts, and empty batches are all
    /// well-defined and never spawn an idle scoped worker.
    pub fn answer_batch(&self, questions: &[String], threads: usize) -> Vec<QaOutcome> {
        let threads = threads.max(1).min(questions.len().max(1));
        if threads == 1 || questions.len() <= 1 {
            return questions.iter().map(|q| self.answer(q)).collect();
        }
        let chunk = questions.len().div_ceil(threads);
        let slots: Vec<Mutex<Vec<QaOutcome>>> =
            questions.chunks(chunk).map(|_| Mutex::new(Vec::new())).collect();
        crossbeam::thread::scope(|scope| {
            for (ci, slice) in questions.chunks(chunk).enumerate() {
                let slot = &slots[ci];
                scope.spawn(move |_| {
                    let outcomes: Vec<QaOutcome> = slice.iter().map(|q| self.answer(q)).collect();
                    *slot.lock() = outcomes;
                });
            }
        })
        .expect("answer worker panicked");
        slots.into_iter().flat_map(Mutex::into_inner).collect()
    }

    /// Add templates to the live store (e.g. from incremental ingestion).
    /// Returns how many were new; the answer cache is invalidated
    /// (generation-bumped, see [`AnswerCache::invalidate`]) whenever the
    /// library changed, since cached outcomes — including ones still being
    /// computed — were ranked against the old template set.
    ///
    /// On a durable server the templates are appended to the WAL and
    /// fsynced *before* they are applied: a crash after this returns
    /// replays the same inserts on reopen; a crash before the append
    /// leaves the previous state. The store lock is held across the
    /// journal write so the WAL order always matches the apply order
    /// (replay reproduces identical template indices).
    pub fn insert_templates(
        &self,
        templates: impl IntoIterator<Item = Template>,
    ) -> Result<usize, StorageError> {
        let templates: Vec<Template> = templates.into_iter().collect();
        let mut store = self.store.write();
        if let Some(engine) = &self.storage {
            engine.lock().append_templates(&templates)?;
        }
        let mut added = 0usize;
        for t in templates {
            if store.insert(t) {
                added += 1;
            }
        }
        drop(store);
        if added > 0 {
            // Invalidate (not just clear): bumping the generation also
            // voids in-flight answers computed against the old library,
            // whose put_at would otherwise re-cache a stale outcome after
            // this clear.
            self.cache.lock().invalidate();
        }
        Ok(added)
    }

    /// Fold the WAL into a fresh snapshot of the current serving state
    /// and rotate storage generations. Returns the new generation, or
    /// `None` for an in-memory server.
    pub fn compact(&self) -> Result<Option<u64>, StorageError> {
        let Some(engine) = &self.storage else {
            return Ok(None);
        };
        // Lock order mirrors insert_templates (store, then engine) so a
        // concurrent ingest cannot deadlock with a compaction; the store
        // read lock keeps the snapshotted library and the folded WAL
        // consistent.
        let store = self.store.read();
        let generation = engine.lock().compact(store.library(), &self.lexicon, &self.triples)?;
        Ok(Some(generation))
    }

    /// The active storage generation, or `None` for an in-memory server.
    pub fn storage_generation(&self) -> Option<u64> {
        self.storage.as_ref().map(|engine| engine.lock().generation())
    }

    /// Number of templates currently served.
    pub fn template_count(&self) -> usize {
        self.store.read().len()
    }

    /// Current serving counters.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// This server's private metric registry, for Prometheus-text or JSON
    /// exposition (`render_prometheus()` / `snapshot_json()`).
    pub fn metrics_registry(&self) -> &uqsj_obs::Registry {
        self.metrics.registry()
    }

    /// The serving configuration.
    pub fn config(&self) -> ServeConfig {
        self.config
    }
}
