//! The Q/A server: indexed store behind a read/write lock, answer cache,
//! metrics, and a thread-pooled batch API mirroring the parallel join
//! driver's `crossbeam::scope` chunking.

use crate::cache::{normalize_question, AnswerCache};
use crate::metrics::{MetricsSnapshot, ServeMetrics};
use crate::store::TemplateStore;
use parking_lot::{Mutex, RwLock};
use std::time::Instant;
use uqsj_nlp::Lexicon;
use uqsj_rdf::TripleStore;
use uqsj_template::{QaOutcome, Template};

/// Serving knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Minimum matching proportion φ (Table 5's knob; 1.0 = full matches).
    pub min_phi: f64,
    /// Answer-cache capacity; 0 disables caching.
    pub cache_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self { min_phi: 1.0, cache_capacity: 1024 }
    }
}

/// An online question-answering endpoint over a template store.
pub struct QaServer {
    store: RwLock<TemplateStore>,
    lexicon: Lexicon,
    triples: TripleStore,
    config: ServeConfig,
    cache: Mutex<AnswerCache>,
    metrics: ServeMetrics,
}

impl QaServer {
    /// Serve an indexed store over the given lexicon and RDF store.
    pub fn new(
        store: TemplateStore,
        lexicon: Lexicon,
        triples: TripleStore,
        config: ServeConfig,
    ) -> Self {
        Self {
            store: RwLock::new(store),
            lexicon,
            triples,
            config,
            cache: Mutex::new(AnswerCache::new(config.cache_capacity)),
            metrics: ServeMetrics::new(),
        }
    }

    /// Answer one question: cache lookup, then signature-filtered template
    /// ranking. Identical outcomes to the linear-scan
    /// `uqsj_template::answer_question` on the same library.
    pub fn answer(&self, question: &str) -> QaOutcome {
        let started = Instant::now();
        let key = normalize_question(question);
        if let Some(hit) = self.cache.lock().get(&key) {
            self.metrics.record_hit(started.elapsed());
            return hit;
        }
        let answered =
            self.store.read().answer(&self.lexicon, &self.triples, question, self.config.min_phi);
        self.metrics.record_miss(
            started.elapsed(),
            answered.candidates,
            answered.library_size,
            answered.stats.ted_computed,
        );
        self.cache.lock().put(key, answered.outcome.clone());
        answered.outcome
    }

    /// Answer a batch across `threads` workers. Output order matches input
    /// order; each worker takes a contiguous chunk, like the parallel join
    /// driver partitions the uncertain side.
    ///
    /// # Panics
    /// Panics if `threads == 0`.
    pub fn answer_batch(&self, questions: &[String], threads: usize) -> Vec<QaOutcome> {
        assert!(threads >= 1, "need at least one thread");
        if threads == 1 || questions.len() <= 1 {
            return questions.iter().map(|q| self.answer(q)).collect();
        }
        let chunk = questions.len().div_ceil(threads);
        let slots: Vec<Mutex<Vec<QaOutcome>>> =
            questions.chunks(chunk).map(|_| Mutex::new(Vec::new())).collect();
        crossbeam::thread::scope(|scope| {
            for (ci, slice) in questions.chunks(chunk).enumerate() {
                let slot = &slots[ci];
                scope.spawn(move |_| {
                    let outcomes: Vec<QaOutcome> = slice.iter().map(|q| self.answer(q)).collect();
                    *slot.lock() = outcomes;
                });
            }
        })
        .expect("answer worker panicked");
        slots.into_iter().flat_map(Mutex::into_inner).collect()
    }

    /// Add templates to the live store (e.g. from incremental ingestion).
    /// Returns how many were new; the answer cache is cleared whenever the
    /// library changed, since cached outcomes were ranked against the old
    /// template set.
    pub fn insert_templates(&self, templates: impl IntoIterator<Item = Template>) -> usize {
        let mut store = self.store.write();
        let mut added = 0usize;
        for t in templates {
            if store.insert(t) {
                added += 1;
            }
        }
        drop(store);
        if added > 0 {
            self.cache.lock().clear();
        }
        added
    }

    /// Number of templates currently served.
    pub fn template_count(&self) -> usize {
        self.store.read().len()
    }

    /// Current serving counters.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// The serving configuration.
    pub fn config(&self) -> ServeConfig {
        self.config
    }
}
