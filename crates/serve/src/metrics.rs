//! Serving metrics: question counts, cache effectiveness, signature-filter
//! effectiveness, and answer-latency percentiles.
//!
//! Backed by a **per-instance** [`uqsj_obs::Registry`] rather than the
//! process-global one: each [`ServeMetrics`] (and therefore each
//! [`crate::QaServer`]) owns its counters, so parallel tests and
//! side-by-side servers never contaminate each other, while still getting
//! the registry's Prometheus/JSON exposition for free via
//! [`ServeMetrics::registry`]. The latency histogram is the same
//! power-of-two-bucket structure this module used to hand-roll — it was
//! generalized into [`uqsj_obs::Histogram`], and the percentile estimates
//! are bit-identical for any sane latency (the old 30-bucket table capped
//! at ~9 minutes; the shared one covers all of `u64`).

use std::time::Duration;
use uqsj_obs::{Counter, Histogram, Registry};

/// Thread-safe serving counters over a private metric registry.
#[derive(Debug)]
pub struct ServeMetrics {
    registry: Registry,
    questions: Counter,
    cache_hits: Counter,
    candidates_total: Counter,
    library_total: Counter,
    ted_total: Counter,
    slow_queries: Counter,
    explains: Counter,
    latency: Histogram,
}

impl Default for ServeMetrics {
    fn default() -> Self {
        Self::new()
    }
}

/// A point-in-time copy of the counters, with derived rates.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Questions served (hits + misses).
    pub questions: u64,
    /// Questions answered from the cache.
    pub cache_hits: u64,
    /// Cache hit rate in `[0, 1]` (0 when nothing served).
    pub cache_hit_rate: f64,
    /// Templates examined after filtering, summed over misses.
    pub candidates_total: u64,
    /// Templates a linear scan would have examined, summed over misses.
    pub library_total: u64,
    /// `candidates_total / library_total` — below 1.0 means the signature
    /// index is pruning (the serving analogue of Fig. 11(b)'s candidate
    /// ratio).
    pub candidate_ratio: f64,
    /// Exact TED computations, summed over misses.
    pub ted_total: u64,
    /// Median answer latency.
    pub p50: Duration,
    /// 99th-percentile answer latency.
    pub p99: Duration,
}

impl ServeMetrics {
    /// Fresh, zeroed metrics over a private registry.
    pub fn new() -> Self {
        let registry = Registry::new();
        Self {
            questions: registry
                .counter("uqsj_serve_questions_total", "questions served (hits + misses)"),
            cache_hits: registry
                .counter("uqsj_serve_cache_hits_total", "questions answered from the cache"),
            candidates_total: registry.counter(
                "uqsj_serve_candidates_total",
                "templates examined after filtering, summed over misses",
            ),
            library_total: registry.counter(
                "uqsj_serve_library_total",
                "templates a linear scan would have examined, summed over misses",
            ),
            ted_total: registry
                .counter("uqsj_serve_ted_total", "exact TED computations, summed over misses"),
            slow_queries: registry.counter(
                "uqsj_serve_slow_queries_total",
                "answers admitted to the worst-N slow-query log",
            ),
            explains: registry
                .counter("uqsj_serve_explain_total", "answers that carried an EXPLAIN request"),
            latency: {
                let h = registry.histogram("uqsj_serve_answer_us", "answer latency per question");
                // Retain the trace id of the worst recent observation per
                // bucket, so a latency spike in the exposition points
                // straight at a replayable request.
                h.enable_exemplars();
                h
            },
            registry,
        }
    }

    /// The registry backing these metrics — exposable as Prometheus text
    /// ([`Registry::render_prometheus`]) or JSON
    /// ([`Registry::snapshot_json`]) without touching the snapshot API.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Record a question served from the cache.
    pub fn record_hit(&self, latency: Duration) {
        self.questions.inc();
        self.cache_hits.inc();
        self.latency.observe_duration(latency);
    }

    /// Record a question that went through the store: `candidates` is the
    /// filtered set size, `library` the full library size, `ted` the exact
    /// TED computations spent.
    pub fn record_miss(&self, latency: Duration, candidates: usize, library: usize, ted: usize) {
        self.questions.inc();
        self.candidates_total.add(candidates as u64);
        self.library_total.add(library as u64);
        self.ted_total.add(ted as u64);
        self.latency.observe_duration(latency);
    }

    /// Record an answer admitted to the slow-query log.
    pub fn record_slow_query(&self) {
        self.slow_queries.inc();
    }

    /// Record an answer that carried `"explain": true`.
    pub fn record_explain(&self) {
        self.explains.inc();
    }

    /// Copy out the counters. Every derived ratio is zero (never NaN or
    /// infinite) when its denominator is zero, so zero-traffic snapshots
    /// format and compare cleanly.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let questions = self.questions.value();
        let cache_hits = self.cache_hits.value();
        let candidates_total = self.candidates_total.value();
        let library_total = self.library_total.value();
        MetricsSnapshot {
            questions,
            cache_hits,
            cache_hit_rate: uqsj_obs::ratio(cache_hits, questions),
            candidates_total,
            library_total,
            candidate_ratio: uqsj_obs::ratio(candidates_total, library_total),
            ted_total: self.ted_total.value(),
            p50: self.latency.quantile_duration(0.50),
            p99: self.latency.quantile_duration(0.99),
        }
    }
}

impl std::fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "questions {} | cache hits {} ({:.1}%) | candidate ratio {:.3} ({}/{}) | \
             ted {} | p50 {:?} | p99 {:?}",
            self.questions,
            self.cache_hits,
            self.cache_hit_rate * 100.0,
            self.candidate_ratio,
            self.candidates_total,
            self.library_total,
            self.ted_total,
            self.p50,
            self.p99,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_and_candidate_ratio() {
        let m = ServeMetrics::new();
        m.record_miss(Duration::from_micros(100), 2, 10, 1);
        m.record_miss(Duration::from_micros(100), 3, 10, 0);
        m.record_hit(Duration::from_micros(3));
        let s = m.snapshot();
        assert_eq!(s.questions, 3);
        assert_eq!(s.cache_hits, 1);
        assert!((s.cache_hit_rate - 1.0 / 3.0).abs() < 1e-12);
        assert!((s.candidate_ratio - 0.25).abs() < 1e-12);
        assert_eq!(s.ted_total, 1);
    }

    #[test]
    fn percentiles_track_bucket_edges() {
        let m = ServeMetrics::new();
        // 98 fast samples, 2 slow ones: the p99 rank (99 of 100) lands in
        // the slow bucket, the p50 rank in the fast one.
        for _ in 0..98 {
            m.record_hit(Duration::from_micros(10));
        }
        m.record_hit(Duration::from_millis(50));
        m.record_hit(Duration::from_millis(50));
        let s = m.snapshot();
        assert!(s.p50 <= Duration::from_micros(16), "p50 {:?}", s.p50);
        assert!(s.p99 >= Duration::from_millis(32), "p99 {:?}", s.p99);
    }

    #[test]
    fn empty_metrics_snapshot_is_zeroed() {
        let s = ServeMetrics::new().snapshot();
        assert_eq!(s.questions, 0);
        assert_eq!(s.candidate_ratio, 0.0);
        assert!(s.cache_hit_rate.is_finite());
        assert!(s.candidate_ratio.is_finite());
        assert_eq!(s.p50, Duration::ZERO);
        // A zero-traffic snapshot still formats NaN-free.
        let text = s.to_string();
        assert!(!text.contains("NaN"), "{text}");
    }

    #[test]
    fn instances_are_isolated_and_exposable() {
        let a = ServeMetrics::new();
        let b = ServeMetrics::new();
        a.record_hit(Duration::from_micros(5));
        assert_eq!(a.snapshot().questions, 1);
        assert_eq!(b.snapshot().questions, 0, "per-instance registries must not share state");
        let text = a.registry().render_prometheus();
        assert!(text.contains("uqsj_serve_questions_total 1"), "{text}");
        assert!(text.contains("uqsj_serve_answer_us_count 1"), "{text}");
    }
}
