//! Serving metrics: question counts, cache effectiveness, signature-filter
//! effectiveness, and a fixed-bucket latency histogram giving p50/p99
//! without any dependency beyond the standard library.

use parking_lot::Mutex;
use std::time::Duration;

/// Power-of-two microsecond buckets: bucket `i` holds latencies in
/// `[2^i, 2^(i+1))` µs, bucket 0 additionally absorbs sub-microsecond
/// samples. 2^29 µs ≈ 9 minutes — far beyond any sane answer latency.
const BUCKETS: usize = 30;

#[derive(Debug, Default)]
struct Inner {
    questions: u64,
    cache_hits: u64,
    /// Sum over cache misses of the templates that survived the filter.
    candidates_total: u64,
    /// Sum over cache misses of the library size (the linear-scan cost).
    library_total: u64,
    /// Exact tree-edit-distance computations performed.
    ted_total: u64,
    latency: [u64; BUCKETS],
}

/// Thread-safe serving counters.
#[derive(Debug, Default)]
pub struct ServeMetrics {
    inner: Mutex<Inner>,
}

/// A point-in-time copy of the counters, with derived rates.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Questions served (hits + misses).
    pub questions: u64,
    /// Questions answered from the cache.
    pub cache_hits: u64,
    /// Cache hit rate in `[0, 1]` (0 when nothing served).
    pub cache_hit_rate: f64,
    /// Templates examined after filtering, summed over misses.
    pub candidates_total: u64,
    /// Templates a linear scan would have examined, summed over misses.
    pub library_total: u64,
    /// `candidates_total / library_total` — below 1.0 means the signature
    /// index is pruning (the serving analogue of Fig. 11(b)'s candidate
    /// ratio).
    pub candidate_ratio: f64,
    /// Exact TED computations, summed over misses.
    pub ted_total: u64,
    /// Median answer latency.
    pub p50: Duration,
    /// 99th-percentile answer latency.
    pub p99: Duration,
}

impl ServeMetrics {
    /// Fresh, zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a question served from the cache.
    pub fn record_hit(&self, latency: Duration) {
        let mut m = self.inner.lock();
        m.questions += 1;
        m.cache_hits += 1;
        m.latency[bucket_of(latency)] += 1;
    }

    /// Record a question that went through the store: `candidates` is the
    /// filtered set size, `library` the full library size, `ted` the exact
    /// TED computations spent.
    pub fn record_miss(&self, latency: Duration, candidates: usize, library: usize, ted: usize) {
        let mut m = self.inner.lock();
        m.questions += 1;
        m.candidates_total += candidates as u64;
        m.library_total += library as u64;
        m.ted_total += ted as u64;
        m.latency[bucket_of(latency)] += 1;
    }

    /// Copy out the counters.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let m = self.inner.lock();
        let ratio = |num: u64, den: u64| if den == 0 { 0.0 } else { num as f64 / den as f64 };
        MetricsSnapshot {
            questions: m.questions,
            cache_hits: m.cache_hits,
            cache_hit_rate: ratio(m.cache_hits, m.questions),
            candidates_total: m.candidates_total,
            library_total: m.library_total,
            candidate_ratio: ratio(m.candidates_total, m.library_total),
            ted_total: m.ted_total,
            p50: percentile(&m.latency, 0.50),
            p99: percentile(&m.latency, 0.99),
        }
    }
}

fn bucket_of(latency: Duration) -> usize {
    let us = latency.as_micros().max(1) as u64;
    ((63 - us.leading_zeros()) as usize).min(BUCKETS - 1)
}

/// Upper edge of the bucket containing the q-th sample — an upper bound on
/// the true percentile, tight to a factor of 2.
fn percentile(latency: &[u64; BUCKETS], q: f64) -> Duration {
    let total: u64 = latency.iter().sum();
    if total == 0 {
        return Duration::ZERO;
    }
    let rank = ((total as f64 * q).ceil() as u64).clamp(1, total);
    let mut seen = 0u64;
    for (i, &count) in latency.iter().enumerate() {
        seen += count;
        if seen >= rank {
            return Duration::from_micros(1u64 << (i + 1));
        }
    }
    Duration::from_micros(1u64 << BUCKETS)
}

impl std::fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "questions {} | cache hits {} ({:.1}%) | candidate ratio {:.3} ({}/{}) | \
             ted {} | p50 {:?} | p99 {:?}",
            self.questions,
            self.cache_hits,
            self.cache_hit_rate * 100.0,
            self.candidate_ratio,
            self.candidates_total,
            self.library_total,
            self.ted_total,
            self.p50,
            self.p99,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_and_candidate_ratio() {
        let m = ServeMetrics::new();
        m.record_miss(Duration::from_micros(100), 2, 10, 1);
        m.record_miss(Duration::from_micros(100), 3, 10, 0);
        m.record_hit(Duration::from_micros(3));
        let s = m.snapshot();
        assert_eq!(s.questions, 3);
        assert_eq!(s.cache_hits, 1);
        assert!((s.cache_hit_rate - 1.0 / 3.0).abs() < 1e-12);
        assert!((s.candidate_ratio - 0.25).abs() < 1e-12);
        assert_eq!(s.ted_total, 1);
    }

    #[test]
    fn percentiles_track_bucket_edges() {
        let m = ServeMetrics::new();
        // 98 fast samples, 2 slow ones: the p99 rank (99 of 100) lands in
        // the slow bucket, the p50 rank in the fast one.
        for _ in 0..98 {
            m.record_hit(Duration::from_micros(10));
        }
        m.record_hit(Duration::from_millis(50));
        m.record_hit(Duration::from_millis(50));
        let s = m.snapshot();
        assert!(s.p50 <= Duration::from_micros(16), "p50 {:?}", s.p50);
        assert!(s.p99 >= Duration::from_millis(32), "p99 {:?}", s.p99);
    }

    #[test]
    fn empty_metrics_snapshot_is_zeroed() {
        let s = ServeMetrics::new().snapshot();
        assert_eq!(s.questions, 0);
        assert_eq!(s.candidate_ratio, 0.0);
        assert_eq!(s.p50, Duration::ZERO);
    }
}
