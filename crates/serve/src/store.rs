//! The indexed template store: a [`TemplateLibrary`] plus one
//! [`NlSignature`] per template and a token-count-sorted window index, so
//! an incoming question verifies alignment and TED only against templates
//! that could possibly match — the serving-side analogue of
//! `uqsj_simjoin::JoinIndex` on the join side.

use uqsj_nlp::signature::NlSignature;
use uqsj_nlp::token::tokenize;
use uqsj_nlp::Lexicon;
use uqsj_rdf::TripleStore;
use uqsj_template::qa::answer_with_candidates;
use uqsj_template::{AnswerStats, QaOutcome, Template, TemplateLibrary};

/// A template library with a signature index over its NL patterns.
#[derive(Debug, Default)]
pub struct TemplateStore {
    library: TemplateLibrary,
    /// `signatures[i]` summarizes `library.templates()[i].nl_tokens`.
    signatures: Vec<NlSignature>,
    /// `(token_count, template index)` sorted — the window index: a
    /// question of `n` tokens can only fully align with templates of at
    /// most `n` tokens (every non-slot token consumes one question token,
    /// every slot at least one).
    by_len: Vec<(u32, u32)>,
}

/// The outcome of answering one question through the store, with the
/// filter effectiveness the metrics layer aggregates.
#[derive(Clone, Debug)]
pub struct StoreAnswer {
    /// The Q/A outcome — identical to what the linear scan would return.
    pub outcome: QaOutcome,
    /// Verification counters from the ranking core.
    pub stats: AnswerStats,
    /// Templates that survived the signature filter.
    pub candidates: usize,
    /// Library size at answer time (the linear scan's denominator).
    pub library_size: usize,
}

impl TemplateStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Index an existing library.
    pub fn from_library(library: TemplateLibrary) -> Self {
        let mut store = Self::new();
        for i in 0..library.len() {
            store.index_template(&library.templates()[i], i);
        }
        store.library = library;
        store
    }

    fn index_template(&mut self, t: &Template, index: usize) {
        let sig = NlSignature::of_tokens(&t.nl_tokens);
        let entry = (sig.token_count(), index as u32);
        let pos = self.by_len.partition_point(|&e| e < entry);
        self.by_len.insert(pos, entry);
        debug_assert_eq!(self.signatures.len(), index);
        self.signatures.push(sig);
    }

    /// Insert a template into the live store, keeping the index in sync.
    /// Returns `false` when the library deduplicated it (the signature set
    /// is unchanged — an identical pattern is already indexed).
    pub fn insert(&mut self, t: Template) -> bool {
        let sig = NlSignature::of_tokens(&t.nl_tokens);
        let index = self.library.len();
        if !self.library.add(t) {
            return false;
        }
        let entry = (sig.token_count(), index as u32);
        let pos = self.by_len.partition_point(|&e| e < entry);
        self.by_len.insert(pos, entry);
        self.signatures.push(sig);
        true
    }

    /// The indexed library.
    pub fn library(&self) -> &TemplateLibrary {
        &self.library
    }

    /// Number of templates.
    pub fn len(&self) -> usize {
        self.library.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.library.is_empty()
    }

    /// Template indexes (ascending) that could answer a question with
    /// signature `question`, given the serving `min_phi`. Admissible: any
    /// template pruned here can neither fully align (window + multiset
    /// containment fail) nor reach a partial φ of `min_phi` (upper bound
    /// below threshold), so [`answer_with_candidates`] over this set
    /// returns exactly what the full scan would.
    pub fn candidates(&self, question: &NlSignature, min_phi: f64) -> Vec<usize> {
        if min_phi >= 1.0 {
            // Full matches only: walk the token-count window m <= n.
            let n = question.token_count();
            let hi = self.by_len.partition_point(|&(m, _)| m <= n);
            let mut out: Vec<usize> = self.by_len[..hi]
                .iter()
                .map(|&(_, i)| i as usize)
                .filter(|&i| self.signatures[i].could_fully_align(question))
                .collect();
            out.sort_unstable();
            return out;
        }
        // Partial mode: the φ upper bound screens every template; the
        // window check still short-circuits full-align survivors.
        self.signatures
            .iter()
            .enumerate()
            .filter(|(_, sig)| {
                sig.could_fully_align(question) || sig.phi_upper_bound(question) + 1e-12 >= min_phi
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// Answer a question through the signature filter. Equivalent to
    /// `uqsj_template::answer_question` on the same library.
    pub fn answer(
        &self,
        lexicon: &Lexicon,
        triples: &TripleStore,
        question: &str,
        min_phi: f64,
    ) -> StoreAnswer {
        let tokens = tokenize(question);
        let sig = NlSignature::of_tokens(&tokens);
        let candidates = self.candidates(&sig, min_phi);
        let n_candidates = candidates.len();
        let (outcome, stats) =
            answer_with_candidates(&self.library, candidates, lexicon, triples, question, min_phi);
        StoreAnswer { outcome, stats, candidates: n_candidates, library_size: self.len() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uqsj_sparql::{SparqlQuery, Term, Triple};
    use uqsj_template::template::{slot_term, SlotBinding};

    fn template(tokens: &[&str], predicate: &str) -> Template {
        let slots = tokens.iter().filter(|t| **t == "<_>").count();
        let sparql = SparqlQuery {
            select: vec!["x".into()],
            triples: (0..slots)
                .map(|i| Triple {
                    subject: Term::Var("x".into()),
                    predicate: Term::Iri(predicate.into()),
                    object: slot_term(i),
                })
                .collect(),
        };
        Template::new(
            tokens.iter().map(|t| (*t).to_owned()).collect(),
            sparql,
            vec![SlotBinding::Bound; slots],
            0.8,
        )
    }

    #[test]
    fn insert_keeps_index_aligned_with_library() {
        let mut store = TemplateStore::new();
        assert!(store.insert(template(&["Which", "<_>", "graduated", "from", "<_>", "?"], "p")));
        assert!(store.insert(template(&["Who", "is", "married", "to", "<_>", "?"], "q")));
        // Duplicate: library dedups, index must not grow.
        assert!(!store.insert(template(&["Who", "is", "married", "to", "<_>", "?"], "q")));
        assert_eq!(store.len(), 2);
        assert_eq!(store.signatures.len(), 2);
        assert_eq!(store.by_len.len(), 2);
    }

    #[test]
    fn candidates_prune_impossible_templates() {
        let mut store = TemplateStore::new();
        store.insert(template(&["Which", "<_>", "graduated", "from", "<_>", "?"], "p"));
        store.insert(template(&["Who", "is", "married", "to", "<_>", "?"], "q"));
        let q = tokenize("Which physicist graduated from CMU?");
        let sig = NlSignature::of_tokens(&q);
        let c = store.candidates(&sig, 1.0);
        assert_eq!(c, vec![0], "only the graduated-from template can align");
    }

    #[test]
    fn from_library_indexes_everything() {
        let mut lib = TemplateLibrary::new();
        lib.add(template(&["Which", "<_>", "born", "in", "<_>", "?"], "p"));
        lib.add(template(&["Who", "graduated", "from", "<_>", "?"], "q"));
        let store = TemplateStore::from_library(lib);
        assert_eq!(store.len(), 2);
        assert_eq!(store.signatures.len(), 2);
        assert_eq!(store.by_len.len(), 2);
    }
}
