//! Incremental workload ingestion: a newly arriving NL question is joined
//! against the existing SPARQL workload `D` through the size-signature
//! `JoinIndex` — one `join_one` call instead of re-running the full
//! `|D| × |U|` batch join — and the qualifying pairs become templates for
//! the live store. Processing new questions one at a time in arrival
//! order reproduces exactly the library a full batch re-join over the
//! augmented workload would build (see `tests/ingest_equivalence.rs`).

use uqsj_graph::{Graph, SymbolTable};
use uqsj_nlp::semantic::AnalysisError;
use uqsj_nlp::{analyze_question, Lexicon};
use uqsj_simjoin::{
    CascadeCursor, CascadeRuntime, GedEngine, JoinIndex, JoinMatch, JoinParams, JoinStats,
};
use uqsj_sparql::{SparqlQuery, Term};
use uqsj_template::{generate_template, Template, TemplateSource};
use uqsj_workload::Dataset;

/// Why a question could not be ingested.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IngestError {
    /// The question's semantic analysis failed (unsupported pattern,
    /// unlinkable argument, …) — no uncertain graph, nothing to join.
    Analysis(AnalysisError),
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestError::Analysis(e) => write!(f, "question analysis failed: {e}"),
        }
    }
}

impl std::error::Error for IngestError {}

impl From<AnalysisError> for IngestError {
    fn from(e: AnalysisError) -> Self {
        IngestError::Analysis(e)
    }
}

/// What one ingested question produced.
#[derive(Debug)]
pub struct IngestOutcome {
    /// The uncertain-graph index stamped into `matches` (the position the
    /// question would occupy in the batch workload's `U`).
    pub g_index: usize,
    /// Qualifying `⟨q, g⟩` pairs, sorted by `q_index` — the order a batch
    /// join visits them.
    pub matches: Vec<JoinMatch>,
    /// Templates generated from the matches, in match order, *before*
    /// library deduplication.
    pub templates: Vec<Template>,
    /// Join counters for this single question (pairs_total = |D|).
    pub stats: JoinStats,
}

/// Joins newly arriving questions against a fixed SPARQL workload.
pub struct Ingestor {
    table: SymbolTable,
    d_graphs: Vec<Graph>,
    d_queries: Vec<SparqlQuery>,
    d_terms: Vec<Vec<Term>>,
    params: JoinParams,
    next_g_index: usize,
    /// GED search workspace reused across every ingested question.
    engine: GedEngine,
    /// Cascade planner shared across every ingested question, so under an
    /// adaptive policy the selectivity/cost estimates learned on earlier
    /// arrivals keep steering the filter order for later ones instead of
    /// restarting cold per question. Shared (`Arc`) so a serving front
    /// end can expose the live plan through `/debug/cascade`.
    cascade: std::sync::Arc<CascadeRuntime>,
    cursor: CascadeCursor,
}

impl Ingestor {
    /// Ingest against a dataset's `D` side; new questions are numbered
    /// after its existing `U` side.
    pub fn from_dataset(dataset: &Dataset, params: JoinParams) -> Self {
        Self::new(
            dataset.table.clone(),
            dataset.d_graphs.clone(),
            dataset.d_queries.clone(),
            dataset.d_terms.clone(),
            params,
            dataset.u_len(),
        )
    }

    /// Ingest against an explicit workload. `next_g_index` numbers the
    /// first ingested question.
    pub fn new(
        table: SymbolTable,
        d_graphs: Vec<Graph>,
        d_queries: Vec<SparqlQuery>,
        d_terms: Vec<Vec<Term>>,
        params: JoinParams,
        next_g_index: usize,
    ) -> Self {
        assert_eq!(d_graphs.len(), d_queries.len());
        assert_eq!(d_graphs.len(), d_terms.len());
        let cascade = std::sync::Arc::new(CascadeRuntime::new(params.cascade, params.strategy));
        Self {
            table,
            d_graphs,
            d_queries,
            d_terms,
            params,
            next_g_index,
            engine: GedEngine::new(),
            cascade,
            cursor: CascadeCursor::new(),
        }
    }

    /// Size of the SPARQL workload joined against.
    pub fn d_len(&self) -> usize {
        self.d_graphs.len()
    }

    /// The shared cascade planner — attach it to a
    /// [`crate::ShardedQaServer`] so `/debug/cascade` reports this
    /// ingestor's live plan and estimates.
    pub fn cascade(&self) -> std::sync::Arc<CascadeRuntime> {
        std::sync::Arc::clone(&self.cascade)
    }

    /// Analyze one new question, join its uncertain graph against `D`
    /// through the size index, and generate a template per qualifying
    /// pair. Feed `outcome.templates` to the server's `insert_templates`.
    pub fn ingest(
        &mut self,
        lexicon: &Lexicon,
        question: &str,
    ) -> Result<IngestOutcome, IngestError> {
        let analysis = analyze_question(lexicon, question)?;
        let g = analysis.uncertain_graph(&mut self.table);
        let g_index = self.next_g_index;
        self.next_g_index += 1;

        let index = JoinIndex::build(&self.d_graphs);
        let (matches, stats) = index.join_one_in(
            &mut self.engine,
            &self.cascade,
            &mut self.cursor,
            &self.table,
            g_index,
            &g,
            self.params,
        );

        let templates: Vec<Template> = matches
            .iter()
            .filter_map(|m| {
                generate_template(&TemplateSource {
                    analysis: &analysis,
                    query: &self.d_queries[m.q_index],
                    query_terms: &self.d_terms[m.q_index],
                    mapping: &m.mapping,
                    confidence: m.prob,
                })
            })
            .collect();
        // One structured line per generated template — quiet (a single
        // atomic load) unless a log sink is installed, e.g. by the CLI's
        // serve command or a test's `SharedBuf`.
        if uqsj_obs::log::enabled() {
            for t in &templates {
                uqsj_obs::log::emit(
                    &uqsj_obs::log::JsonRecord::new("template_ingested")
                        .u64("g_index", g_index as u64)
                        .str("template", &t.nl_pattern())
                        .f64("confidence", t.confidence)
                        .u64("join_candidates", stats.candidates)
                        .u64("worlds_verified", stats.worlds_verified)
                        .u64("verify_us", stats.verification_time.as_micros() as u64)
                        .finish(),
                );
            }
        }
        Ok(IngestOutcome { g_index, matches, templates, stats })
    }
}
