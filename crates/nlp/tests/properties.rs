//! Property tests for the NLP substrate: tokenizer invariants, tree edit
//! distance metric properties, and alignment consistency.

use proptest::prelude::*;
use uqsj_nlp::align::{
    align_with_slots, matching_proportion, partial_align_with_slots, SLOT_TOKEN,
};
use uqsj_nlp::deptree::parse_dependency_tokens;
use uqsj_nlp::ted::tree_edit_distance;
use uqsj_nlp::token::tokenize;

const WORDS: [&str; 10] =
    ["which", "actor", "from", "usa", "married", "to", "jordan", "born", "in", "city"];

fn sentence_strategy() -> impl Strategy<Value = Vec<String>> {
    prop::collection::vec(0usize..WORDS.len(), 1..10)
        .prop_map(|ix| ix.into_iter().map(|i| WORDS[i].to_owned()).collect())
}

proptest! {
    #[test]
    fn tokenizer_never_emits_empty_tokens(s in "[ -~]{0,60}") {
        for t in tokenize(&s) {
            prop_assert!(!t.is_empty());
            prop_assert!(t == "?" || t.chars().any(|c| c.is_alphanumeric() || c == '\'' || c == '_' || c == '-'));
        }
    }

    #[test]
    fn tokenizer_is_idempotent_on_joined_output(s in "[a-zA-Z ?]{0,60}") {
        let once = tokenize(&s);
        let twice = tokenize(&once.join(" "));
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn ted_is_a_semimetric(a in sentence_strategy(), b in sentence_strategy()) {
        let ta = parse_dependency_tokens(&a);
        let tb = parse_dependency_tokens(&b);
        prop_assert_eq!(tree_edit_distance(&ta, &ta), 0, "identity");
        prop_assert_eq!(tree_edit_distance(&ta, &tb), tree_edit_distance(&tb, &ta), "symmetry");
        // TED is bounded by delete-all + insert-all.
        prop_assert!(tree_edit_distance(&ta, &tb) <= (ta.len() + tb.len()) as u32);
    }

    #[test]
    fn ted_triangle_inequality(
        a in sentence_strategy(),
        b in sentence_strategy(),
        c in sentence_strategy(),
    ) {
        let ta = parse_dependency_tokens(&a);
        let tb = parse_dependency_tokens(&b);
        let tc = parse_dependency_tokens(&c);
        let ab = tree_edit_distance(&ta, &tb);
        let bc = tree_edit_distance(&tb, &tc);
        let ac = tree_edit_distance(&ta, &tc);
        prop_assert!(ac <= ab + bc, "triangle violated: {} > {} + {}", ac, ab, bc);
    }

    #[test]
    fn full_alignment_implies_phi_one(
        words in prop::collection::vec(0usize..WORDS.len(), 2..8),
        slot_at in 0usize..8,
    ) {
        // Build a template from the sentence by slotting one position.
        let question: Vec<String> = words.iter().map(|&i| WORDS[i].to_owned()).collect();
        let slot_at = slot_at % question.len();
        let mut template = question.clone();
        template[slot_at] = SLOT_TOKEN.to_owned();
        let slots = align_with_slots(&template, &question).expect("must align");
        prop_assert_eq!(slots.len(), 1);
        prop_assert_eq!(&slots[0], &question[slot_at..slot_at + 1]);
        let phi = matching_proportion(&template, &question);
        prop_assert!((phi - 1.0).abs() < 1e-12);
        // Partial alignment agrees on full matches.
        let (pphi, pslots) = partial_align_with_slots(&template, &question).expect("partial");
        prop_assert!((pphi - 1.0).abs() < 1e-12);
        prop_assert_eq!(pslots, slots);
    }

    #[test]
    fn partial_phi_never_exceeds_one(
        t_words in prop::collection::vec(0usize..WORDS.len(), 1..6),
        q_words in prop::collection::vec(0usize..WORDS.len(), 1..10),
    ) {
        let template: Vec<String> = t_words.iter().map(|&i| WORDS[i].to_owned()).collect();
        let question: Vec<String> = q_words.iter().map(|&i| WORDS[i].to_owned()).collect();
        if let Some((phi, slots)) = partial_align_with_slots(&template, &question) {
            prop_assert!(phi > 0.0 && phi <= 1.0 + 1e-12);
            prop_assert!(slots.is_empty()); // template had no slots
        }
    }
}
