//! Zhang–Shasha ordered tree edit distance.
//!
//! Used to pick, for a new question, the template whose dependency tree
//! aligns best (minimum TED), per Sec. 2.2 of the paper. Unit costs:
//! insert 1, delete 1, relabel 1 (0 when labels are equal; a template
//! slot label matches any word with the same dependency relation).

use crate::deptree::DepTree;

/// Tree edit distance between two dependency trees.
///
/// Labels are `word/relation` pairs; slot words (`<_>` or `slotN`) match
/// any word carrying the same relation.
///
/// ```
/// use uqsj_nlp::{parse_dependencies, tree_edit_distance};
/// let q = parse_dependencies("Which physicist graduated from CMU?");
/// let t = parse_dependencies("Which SLOT0 graduated from SLOT1?");
/// assert_eq!(tree_edit_distance(&q, &t), 0); // Fig. 5 alignment
/// ```
pub fn tree_edit_distance(a: &DepTree, b: &DepTree) -> u32 {
    let fa = Flat::new(a);
    let fb = Flat::new(b);
    zhang_shasha(&fa, &fb)
}

/// A tree flattened to postorder arrays for Zhang–Shasha.
struct Flat {
    /// `labels[i]` — label of the i-th postorder node.
    labels: Vec<(String, String)>, // (word lowercase, relation)
    /// `lml[i]` — postorder index of the leftmost leaf of the subtree
    /// rooted at i.
    lml: Vec<usize>,
    /// Keyroots in increasing postorder.
    keyroots: Vec<usize>,
}

impl Flat {
    fn new(t: &DepTree) -> Self {
        let order = t.postorder();
        let n = order.len();
        let mut pos_of = vec![0usize; t.len().max(1)];
        for (i, &node) in order.iter().enumerate() {
            pos_of[node] = i;
        }
        let mut labels = Vec::with_capacity(n);
        let mut lml = vec![0usize; n];
        for (i, &node) in order.iter().enumerate() {
            let d = &t.nodes[node];
            labels.push((d.word.to_lowercase(), d.relation.clone()));
            // Leftmost leaf: descend through first children.
            let mut cur = node;
            while let Some(&first) = t.nodes[cur].children.first() {
                cur = first;
            }
            lml[i] = pos_of[cur];
        }
        // Keyroots: nodes with no parent, or not the leftmost child —
        // equivalently, the last node with each distinct lml value.
        let mut keyroots = Vec::new();
        for i in 0..n {
            let is_last = (i + 1..n).all(|j| lml[j] != lml[i]);
            if is_last {
                keyroots.push(i);
            }
        }
        Flat { labels, lml, keyroots }
    }

    fn len(&self) -> usize {
        self.labels.len()
    }
}

/// Whether a (lowercased) word is a template slot marker: `<_>` in NL
/// patterns, `slotN` in template dependency trees. Exposed for the
/// signature index, which must treat slots as wildcards exactly like the
/// relabel cost below does.
pub fn is_slot_word(word: &str) -> bool {
    word == "<_>" || (word.starts_with("slot") && word[4..].chars().all(|c| c.is_ascii_digit()))
}

fn is_slot(word: &str) -> bool {
    is_slot_word(word)
}

fn relabel_cost(a: &(String, String), b: &(String, String)) -> u32 {
    if a.1 == b.1 && (a.0 == b.0 || is_slot(&a.0) || is_slot(&b.0)) {
        0
    } else {
        1
    }
}

fn zhang_shasha(a: &Flat, b: &Flat) -> u32 {
    let (na, nb) = (a.len(), b.len());
    if na == 0 {
        return nb as u32;
    }
    if nb == 0 {
        return na as u32;
    }
    let mut td = vec![vec![0u32; nb]; na];

    for &i in &a.keyroots {
        for &j in &b.keyroots {
            // Forest distance over [lml(i)..i] x [lml(j)..j].
            let (li, lj) = (a.lml[i], b.lml[j]);
            let (m, n) = (i - li + 2, j - lj + 2);
            let mut fd = vec![vec![0u32; n]; m];
            for x in 1..m {
                fd[x][0] = fd[x - 1][0] + 1;
            }
            for y in 1..n {
                fd[0][y] = fd[0][y - 1] + 1;
            }
            for x in 1..m {
                for y in 1..n {
                    let (ai, bj) = (li + x - 1, lj + y - 1);
                    if a.lml[ai] == li && b.lml[bj] == lj {
                        let sub = fd[x - 1][y - 1] + relabel_cost(&a.labels[ai], &b.labels[bj]);
                        fd[x][y] = sub.min(fd[x - 1][y] + 1).min(fd[x][y - 1] + 1);
                        td[ai][bj] = fd[x][y];
                    } else {
                        let (pai, pbj) = (a.lml[ai] - li, b.lml[bj] - lj);
                        let cross = fd[pai][pbj] + td[ai][bj];
                        fd[x][y] = cross.min(fd[x - 1][y] + 1).min(fd[x][y - 1] + 1);
                    }
                }
            }
        }
    }
    td[na - 1][nb - 1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deptree::parse_dependencies;

    #[test]
    fn identical_trees_have_zero_distance() {
        let a = parse_dependencies("Which physicist graduated from CMU?");
        let b = parse_dependencies("Which physicist graduated from CMU?");
        assert_eq!(tree_edit_distance(&a, &b), 0);
    }

    #[test]
    fn slots_match_words_fig5() {
        // Fig. 5: the template tree aligns perfectly once slots absorb the
        // concrete words.
        let q = parse_dependencies("Which physicist graduated from CMU?");
        let t = parse_dependencies("Which SLOT0 graduated from SLOT1?");
        assert_eq!(tree_edit_distance(&q, &t), 0);
    }

    #[test]
    fn different_roots_cost() {
        let a = parse_dependencies("Which physicist graduated from CMU?");
        let b = parse_dependencies("Which physicist born in CMU?");
        let d = tree_edit_distance(&a, &b);
        assert!(d >= 1, "got {d}");
    }

    #[test]
    fn distance_is_symmetric() {
        let a = parse_dependencies("Which actor from USA is married to Michael Jordan?");
        let b = parse_dependencies("Which politician graduated from CIT?");
        assert_eq!(tree_edit_distance(&a, &b), tree_edit_distance(&b, &a));
    }

    #[test]
    fn empty_tree_distance_is_size() {
        let a = parse_dependencies("");
        let b = parse_dependencies("Who is married to NY?");
        assert_eq!(tree_edit_distance(&a, &b), b.len() as u32);
        assert_eq!(tree_edit_distance(&b, &a), b.len() as u32);
        assert_eq!(tree_edit_distance(&a, &a), 0);
    }

    #[test]
    fn triangle_inequality_on_samples() {
        let ts = [
            parse_dependencies("Which physicist graduated from CMU?"),
            parse_dependencies("Which politician graduated from CIT?"),
            parse_dependencies("Who is married to Michael Jordan?"),
        ];
        for a in &ts {
            for b in &ts {
                for c in &ts {
                    let ab = tree_edit_distance(a, b);
                    let bc = tree_edit_distance(b, c);
                    let ac = tree_edit_distance(a, c);
                    assert!(ac <= ab + bc, "triangle violated");
                }
            }
        }
    }
}
