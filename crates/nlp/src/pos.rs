//! Lexicon-assisted part-of-speech tagging for the question grammar.
//!
//! The dependency parser needs only a coarse tag set; tagging is
//! rule-based with an optional lexicon pass (words known as class nouns
//! tag as nouns, words inside relation phrases as verbs/prepositions).

use crate::lexicon::Lexicon;

/// Coarse part-of-speech tags.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PosTag {
    /// WH-words: which, who, what, where, whom.
    Wh,
    /// Verbs and verb-ish participles (graduated, married, directed, …).
    Verb,
    /// Prepositions: from, in, of, to, by, at, on.
    Prep,
    /// Determiners/articles: a, an, the.
    Det,
    /// Copulas and auxiliaries: is, was, are, were, been.
    Aux,
    /// Conjunctions: and.
    Conj,
    /// Everything noun-ish (entities, class nouns, unknown words).
    Noun,
    /// `?` and other punctuation tokens.
    Punct,
}

const WH_WORDS: [&str; 5] = ["which", "who", "what", "where", "whom"];
const VERBS: [&str; 14] = [
    "graduated",
    "born",
    "married",
    "directed",
    "located",
    "give",
    "wrote",
    "founded",
    "starring",
    "studied",
    "working",
    "employed",
    "recorded",
    "performed",
];
const PREPOSITIONS: [&str; 7] = ["from", "in", "of", "to", "by", "at", "on"];
const DETERMINERS: [&str; 3] = ["a", "an", "the"];
const AUXILIARIES: [&str; 5] = ["is", "was", "are", "were", "been"];

/// Tag a single lowercase token without lexicon context.
pub fn tag_word(word: &str) -> PosTag {
    if word == "?" || word.chars().all(|c| !c.is_alphanumeric()) {
        PosTag::Punct
    } else if WH_WORDS.contains(&word) {
        PosTag::Wh
    } else if AUXILIARIES.contains(&word) {
        PosTag::Aux
    } else if word == "and" {
        PosTag::Conj
    } else if VERBS.contains(&word) {
        PosTag::Verb
    } else if PREPOSITIONS.contains(&word) {
        PosTag::Prep
    } else if DETERMINERS.contains(&word) {
        PosTag::Det
    } else {
        PosTag::Noun
    }
}

/// Tag a token sequence. With a lexicon, words appearing as class nouns
/// are forced to [`PosTag::Noun`] and first words of relation phrases
/// to [`PosTag::Verb`] — which disambiguates e.g. "playing" (verb in
/// "playing in") against unknown nouns.
pub fn tag_tokens(tokens: &[String], lexicon: Option<&Lexicon>) -> Vec<PosTag> {
    tokens
        .iter()
        .map(|t| {
            let lower = t.to_lowercase();
            if let Some(lex) = lexicon {
                if lex.class_of_noun(&lower).is_some() {
                    return PosTag::Noun;
                }
                let first_of_phrase = lex
                    .predicates
                    .iter()
                    .flat_map(|p| p.phrases.iter())
                    .any(|phrase| phrase.split_whitespace().next() == Some(lower.as_str()));
                if first_of_phrase && tag_word(&lower) == PosTag::Noun {
                    return PosTag::Verb;
                }
            }
            tag_word(&lower)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexicon::paper_lexicon;
    use crate::token::tokenize;

    #[test]
    fn tags_the_fig5_question() {
        let tokens = tokenize("Which physicist graduated from CMU?");
        let tags = tag_tokens(&tokens, None);
        assert_eq!(
            tags,
            vec![PosTag::Wh, PosTag::Noun, PosTag::Verb, PosTag::Prep, PosTag::Noun, PosTag::Punct]
        );
    }

    #[test]
    fn lexicon_forces_relation_heads_to_verbs() {
        let lex = paper_lexicon();
        let tokens = tokenize("Which singer playing in Band 3?");
        // Without a lexicon "playing" is an unknown noun; add the phrase.
        let mut lex = lex;
        lex.add_predicate("memberOf", &["playing in"]);
        let tags = tag_tokens(&tokens, Some(&lex));
        assert_eq!(tags[2], PosTag::Verb);
    }

    #[test]
    fn copulas_and_conjunctions() {
        assert_eq!(tag_word("is"), PosTag::Aux);
        assert_eq!(tag_word("and"), PosTag::Conj);
        assert_eq!(tag_word("the"), PosTag::Det);
        assert_eq!(tag_word("of"), PosTag::Prep);
        assert_eq!(tag_word("zanzibar"), PosTag::Noun);
        assert_eq!(tag_word("?"), PosTag::Punct);
    }
}
