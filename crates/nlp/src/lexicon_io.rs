//! Lexicon persistence: a tab-separated text format so a mined lexicon
//! (class nouns, relation paraphrases, entity surface forms with linking
//! confidences) can be shipped alongside a template library and an RDF
//! dump, making the Q/A stage fully file-driven.
//!
//! ```text
//! class\tactor\tActor
//! pred\tgraduatedFrom\tgraduated from|studied at
//! surface\tmichael jordan\tMichael_Jordan:NBA_Player:0.6|Michael_I_Jordan:Professor:0.3
//! ```

use crate::lexicon::{EntityCandidate, Lexicon};
use std::fmt;

/// Parse error with line number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LexiconIoError {
    /// 1-based line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for LexiconIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lexicon parse error on line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LexiconIoError {}

/// Serialize to text. Deterministic order (sorted) for stable diffs.
pub fn to_text(lex: &Lexicon) -> String {
    let mut out = String::new();
    let mut classes: Vec<(&String, &String)> = lex.class_nouns.iter().collect();
    classes.sort();
    for (noun, class) in classes {
        out.push_str(&format!("class\t{noun}\t{class}\n"));
    }
    for p in &lex.predicates {
        out.push_str(&format!("pred\t{}\t{}\n", p.name, p.phrases.join("|")));
    }
    let mut inv: Vec<(&String, &String)> = lex.inverse_nouns.iter().collect();
    inv.sort();
    for (noun, pred) in inv {
        out.push_str(&format!("inv\t{noun}\t{pred}\n"));
    }
    let mut surfaces: Vec<(&String, &Vec<EntityCandidate>)> = lex.surface_forms.iter().collect();
    surfaces.sort_by(|a, b| a.0.cmp(b.0));
    for (phrase, cands) in surfaces {
        let parts: Vec<String> =
            cands.iter().map(|c| format!("{}:{}:{}", c.entity, c.class, c.prob)).collect();
        out.push_str(&format!("surface\t{phrase}\t{}\n", parts.join("|")));
    }
    out
}

/// Parse from text.
pub fn from_text(text: &str) -> Result<Lexicon, LexiconIoError> {
    let mut lex = Lexicon::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split('\t');
        let kind = parts.next().unwrap_or_default();
        let err = |message: String| LexiconIoError { line: i + 1, message };
        match kind {
            "class" => {
                let noun = parts.next().ok_or_else(|| err("missing noun".into()))?;
                let class = parts.next().ok_or_else(|| err("missing class".into()))?;
                lex.add_class(noun, class);
            }
            "pred" => {
                let name = parts.next().ok_or_else(|| err("missing predicate".into()))?;
                let phrases_raw = parts.next().ok_or_else(|| err("missing phrases".into()))?;
                let phrases: Vec<&str> = phrases_raw.split('|').collect();
                lex.add_predicate(name, &phrases);
            }
            "inv" => {
                let noun = parts.next().ok_or_else(|| err("missing noun".into()))?;
                let pred = parts.next().ok_or_else(|| err("missing predicate".into()))?;
                lex.add_inverse_noun(noun, pred);
            }
            "surface" => {
                let phrase = parts.next().ok_or_else(|| err("missing phrase".into()))?;
                let cands_raw = parts.next().ok_or_else(|| err("missing candidates".into()))?;
                let mut cands = Vec::new();
                for c in cands_raw.split('|') {
                    let mut f = c.rsplitn(3, ':');
                    let prob: f64 = f
                        .next()
                        .and_then(|x| x.parse().ok())
                        .ok_or_else(|| err(format!("bad candidate {c:?}")))?;
                    let class = f.next().ok_or_else(|| err(format!("bad candidate {c:?}")))?;
                    let entity = f.next().ok_or_else(|| err(format!("bad candidate {c:?}")))?;
                    cands.push(EntityCandidate {
                        entity: entity.to_owned(),
                        class: class.to_owned(),
                        prob,
                    });
                }
                lex.add_surface_form(phrase, cands);
            }
            other => return Err(err(format!("unknown record kind {other:?}"))),
        }
    }
    Ok(lex)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexicon::paper_lexicon;

    #[test]
    fn roundtrip_paper_lexicon() {
        let lex = paper_lexicon();
        let text = to_text(&lex);
        let parsed = from_text(&text).unwrap();
        assert_eq!(parsed.class_nouns, lex.class_nouns);
        assert_eq!(parsed.predicates, lex.predicates);
        assert_eq!(parsed.inverse_nouns, lex.inverse_nouns);
        assert_eq!(parsed.surface_forms.len(), lex.surface_forms.len());
        let a = parsed.link("michael jordan").unwrap();
        let b = lex.link("michael jordan").unwrap();
        assert_eq!(a, b);
        // Stable: serializing the parse gives identical text.
        assert_eq!(to_text(&parsed), text);
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let lex = from_text("# header\n\nclass\tactor\tActor\n").unwrap();
        assert_eq!(lex.class_of_noun("actor"), Some("Actor"));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = from_text("class\tactor\tActor\nbogus\tx\ty").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("unknown record kind"));
        let err = from_text("surface\tx\tentity_only").unwrap_err();
        assert!(err.message.contains("bad candidate"));
    }
}
