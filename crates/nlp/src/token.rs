//! Tokenization and longest-match phrase scanning.

/// Split a question into word tokens. Punctuation is dropped except `?`,
/// which becomes its own token (templates keep it).
pub fn tokenize(text: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut word = String::new();
    for c in text.chars() {
        if c.is_alphanumeric() || c == '_' || c == '\'' || c == '-' {
            word.push(c);
        } else {
            if !word.is_empty() {
                tokens.push(std::mem::take(&mut word));
            }
            if c == '?' {
                tokens.push("?".to_owned());
            }
        }
    }
    if !word.is_empty() {
        tokens.push(word);
    }
    tokens
}

/// Join a token span back into a lowercase phrase for lexicon lookup.
pub fn span_phrase(tokens: &[String]) -> String {
    tokens.iter().map(|t| t.to_lowercase()).collect::<Vec<_>>().join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_words_and_keeps_question_mark() {
        let t = tokenize("Which politician graduated from CIT?");
        assert_eq!(t, vec!["Which", "politician", "graduated", "from", "CIT", "?"]);
    }

    #[test]
    fn keeps_underscores_and_hyphens() {
        let t = tokenize("New_York-based");
        assert_eq!(t, vec!["New_York-based"]);
    }

    #[test]
    fn empty_and_punctuation_only() {
        assert!(tokenize("").is_empty());
        assert_eq!(tokenize("?!?"), vec!["?", "?"]);
    }

    #[test]
    fn span_phrase_lowercases() {
        let t = tokenize("Michael Jordan");
        assert_eq!(span_phrase(&t), "michael jordan");
    }
}
