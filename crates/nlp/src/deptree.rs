//! Syntactic dependency trees and a rule-based parser for the question
//! grammar.
//!
//! The paper uses dependency trees in one place only: template matching,
//! where a question's tree is aligned to the tree of each template's NL
//! part by tree edit distance (Sec. 2.2, Fig. 5). The trees produced here
//! mirror the Stanford-style analysis of Fig. 5: `root` is the main
//! verb/relation head, the WH-word is a `det` of the subject noun, the
//! subject is `nsubj` of the root, prepositions hang off the root with
//! their objects as `pobj`.

use crate::token::tokenize;

/// One node of a dependency tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DepNode {
    /// The word (or `<_>` for a template slot).
    pub word: String,
    /// Dependency label to the parent (`root` for the root).
    pub relation: String,
    /// Child indexes, in surface order.
    pub children: Vec<usize>,
}

/// An ordered labeled dependency tree stored as an arena.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DepTree {
    /// Nodes; index 0 is unused unless it is the root.
    pub nodes: Vec<DepNode>,
    /// Root index.
    pub root: usize,
}

impl DepTree {
    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Postorder traversal of node indexes (what Zhang–Shasha consumes).
    pub fn postorder(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.nodes.len());
        fn rec(t: &DepTree, n: usize, out: &mut Vec<usize>) {
            for &c in &t.nodes[n].children {
                rec(t, c, out);
            }
            out.push(n);
        }
        if !self.nodes.is_empty() {
            rec(self, self.root, &mut out);
        }
        out
    }

    /// Node label used by tree edit distance: `word/relation`, lowercase.
    pub fn label(&self, n: usize) -> String {
        format!("{}/{}", self.nodes[n].word.to_lowercase(), self.nodes[n].relation)
    }
}

const WH_WORDS: [&str; 5] = ["which", "who", "what", "where", "whom"];
const VERBISH: [&str; 12] = [
    "graduated",
    "born",
    "married",
    "directed",
    "located",
    "is",
    "was",
    "are",
    "give",
    "wrote",
    "founded",
    "starring",
];
const PREPOSITIONS: [&str; 7] = ["from", "in", "of", "to", "by", "at", "on"];

/// Rule-based dependency parse of a question (or of a template NL part —
/// slot tokens `<_>` parse as nouns).
pub fn parse_dependencies(text: &str) -> DepTree {
    let tokens = tokenize(text);
    parse_dependency_tokens(&tokens)
}

/// Parse pre-tokenized input.
pub fn parse_dependency_tokens(tokens: &[String]) -> DepTree {
    let mut tree = DepTree::default();
    if tokens.is_empty() {
        return tree;
    }
    let lower: Vec<String> = tokens.iter().map(|t| t.to_lowercase()).collect();

    // Find the main verb: the first verb-ish token after the first noun.
    let root_pos = lower.iter().position(|t| VERBISH.contains(&t.as_str())).unwrap_or(0);

    // Arena construction: one node per token, then wire heads.
    for t in tokens {
        tree.nodes.push(DepNode { word: t.clone(), relation: String::new(), children: Vec::new() });
    }
    let n = tokens.len();
    let mut head: Vec<Option<usize>> = vec![None; n];
    let mut rel: Vec<&str> = vec!["dep"; n];

    rel[root_pos] = "root";
    let mut last_prep: Option<usize> = None;
    let mut subject: Option<usize> = None;

    for i in 0..n {
        if i == root_pos {
            continue;
        }
        let t = lower[i].as_str();
        if t == "?" {
            head[i] = Some(root_pos);
            rel[i] = "punct";
        } else if WH_WORDS.contains(&t) {
            // Determiner of the following noun if any, else nsubj of root.
            if i + 1 < n && !WH_WORDS.contains(&lower[i + 1].as_str()) && i + 1 != root_pos {
                head[i] = Some(i + 1);
                rel[i] = "det";
            } else {
                head[i] = Some(root_pos);
                rel[i] = "nsubj";
                subject = Some(i);
            }
        } else if PREPOSITIONS.contains(&t) {
            head[i] = Some(root_pos);
            rel[i] = "prep";
            last_prep = Some(i);
        } else {
            // Noun-ish token: subject before the root, otherwise object of
            // the last preposition (pobj) or direct object of the root.
            if i < root_pos && subject.is_none() {
                head[i] = Some(root_pos);
                rel[i] = "nsubj";
                subject = Some(i);
            } else if let Some(p) = last_prep {
                head[i] = Some(p);
                rel[i] = "pobj";
            } else {
                head[i] = Some(root_pos);
                rel[i] = "dobj";
            }
        }
    }

    // Multi-word names: successive pobj/dobj tokens with the same head
    // form a compound chain onto their predecessor.
    let orig_rel = rel.clone();
    let orig_head = head.clone();
    for i in 1..n {
        if (orig_rel[i] == "pobj" || orig_rel[i] == "dobj")
            && orig_rel[i - 1] == orig_rel[i]
            && orig_head[i] == orig_head[i - 1]
        {
            head[i] = Some(i - 1);
            rel[i] = "compound";
        }
    }

    for i in 0..n {
        tree.nodes[i].relation = rel[i].to_owned();
        if i != root_pos {
            let h = head[i].unwrap_or(root_pos);
            tree.nodes[h].children.push(i);
        }
    }
    tree.root = root_pos;
    tree
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_fig5_question_shape() {
        // "Which physicist graduated from CMU?" per Fig. 5: root =
        // graduated, nsubj = physicist with det which, prep from, pobj CMU.
        let t = parse_dependencies("Which physicist graduated from CMU?");
        let root = &t.nodes[t.root];
        assert_eq!(root.word, "graduated");
        let nsubj = t.nodes.iter().position(|x| x.relation == "nsubj").expect("nsubj");
        assert_eq!(t.nodes[nsubj].word, "physicist");
        let det = t.nodes.iter().position(|x| x.relation == "det").expect("det");
        assert_eq!(t.nodes[det].word, "Which");
        let prep = t.nodes.iter().position(|x| x.relation == "prep").expect("prep");
        assert_eq!(t.nodes[prep].word, "from");
        let pobj = t.nodes.iter().position(|x| x.relation == "pobj").expect("pobj");
        assert_eq!(t.nodes[pobj].word, "CMU");
    }

    #[test]
    fn slot_tokens_parse_like_nouns() {
        let a = parse_dependencies("Which physicist graduated from CMU?");
        let b = parse_dependencies("Which SLOT0 graduated from SLOT1?");
        assert_eq!(a.len(), b.len());
        assert_eq!(a.nodes[a.root].word, b.nodes[b.root].word);
    }

    #[test]
    fn postorder_visits_all_nodes_once() {
        let t = parse_dependencies("Which actor from USA is married to Michael Jordan?");
        let po = t.postorder();
        assert_eq!(po.len(), t.len());
        let mut seen = vec![false; t.len()];
        for i in po {
            assert!(!seen[i]);
            seen[i] = true;
        }
    }

    #[test]
    fn empty_input() {
        let t = parse_dependencies("");
        assert!(t.is_empty());
        assert!(t.postorder().is_empty());
    }

    #[test]
    fn multiword_names_compound() {
        let t = parse_dependencies("Which movie directed by Francis Ford Coppola?");
        let compounds = t.nodes.iter().filter(|x| x.relation == "compound").count();
        assert_eq!(compounds, 2); // Ford, Coppola onto Francis
    }
}
