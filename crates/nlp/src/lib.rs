//! Natural-language question processing — the substrate standing in for
//! the Stanford parser, the entity linker \[4\] and the relation
//! paraphrasing of gAnswer \[33\] used by the paper.
//!
//! * [`lexicon`] — the linguistic knowledge the pipeline runs on: class
//!   nouns, relation phrases per predicate, and ambiguous entity surface
//!   forms with linking confidences.
//! * [`token`] — tokenizer and longest-match phrase scanning.
//! * [`deptree`] — syntactic dependency trees and a rule-based parser for
//!   the question grammar (Sec. 2.2 uses dependency trees only for
//!   template/question alignment, which this supports).
//! * [`ted`] — Zhang–Shasha ordered tree edit distance for ranking
//!   template/question alignments.
//! * [`align`] — token-level alignment with slots, used for slot filling
//!   and the matching proportion φ (Appendix F.2).
//! * [`semantic`] — semantic relation extraction, semantic query graphs
//!   (Def. 1) and the uncertain graph construction of Sec. 2.1 Step 1.

pub mod align;
pub mod deptree;
pub mod lexicon;
pub mod lexicon_io;
pub mod pos;
pub mod semantic;
pub mod signature;
pub mod ted;
pub mod token;

pub use align::{align_with_slots, matching_proportion};
pub use deptree::{parse_dependencies, DepTree};
pub use lexicon::{EntityCandidate, Lexicon, PredicateInfo};
pub use semantic::{analyze_question, QuestionAnalysis, VertexInfo};
pub use signature::NlSignature;
pub use ted::tree_edit_distance;
pub use token::tokenize;
