//! Token-level alignment of a question against a template's NL pattern,
//! used for slot filling and the matching proportion φ.
//!
//! The paper ranks candidate templates by dependency-tree edit distance
//! (Sec. 2.2) and then "fill\[s\] the slot with the corresponding phrases".
//! The filling itself is a sequence alignment: template tokens must match
//! question tokens exactly (case-insensitive), while each slot absorbs a
//! non-empty phrase of up to [`MAX_SLOT_WORDS`] question words.
//! φ (Appendix F.2) is the fraction of question words covered by the
//! template's non-slot words plus slot phrases under the best partial
//! alignment.

/// Maximum words one slot may absorb.
pub const MAX_SLOT_WORDS: usize = 4;

/// The token that marks a slot in template NL patterns.
pub const SLOT_TOKEN: &str = "<_>";

/// Align `template` tokens against `question` tokens. On success returns
/// the phrases captured by each slot, in template order.
pub fn align_with_slots(template: &[String], question: &[String]) -> Option<Vec<Vec<String>>> {
    let mut slots = Vec::new();
    if align_rec(template, question, &mut slots) {
        Some(slots)
    } else {
        None
    }
}

fn align_rec(template: &[String], question: &[String], slots: &mut Vec<Vec<String>>) -> bool {
    match template.first() {
        None => question.is_empty(),
        Some(t) if t == SLOT_TOKEN => {
            for take in 1..=MAX_SLOT_WORDS.min(question.len()) {
                slots.push(question[..take].to_vec());
                if align_rec(&template[1..], &question[take..], slots) {
                    return true;
                }
                slots.pop();
            }
            false
        }
        Some(t) => {
            question.first().is_some_and(|q| q.eq_ignore_ascii_case(t))
                && align_rec(&template[1..], &question[1..], slots)
        }
    }
}

/// Matching proportion φ: words of `question` covered by the best
/// *prefix-partial* alignment of `template` (Table 5 varies the minimum
/// acceptable φ; φ = 1 means a full match).
pub fn matching_proportion(template: &[String], question: &[String]) -> f64 {
    if question.is_empty() {
        return 0.0;
    }
    // Dynamic program over (template position, question position) →
    // maximum covered question words so far.
    let (m, n) = (template.len(), question.len());
    let mut best = vec![vec![0usize; n + 1]; m + 1];
    let mut reachable = vec![vec![false; n + 1]; m + 1];
    reachable[0][0] = true;
    let mut overall = 0usize;
    for i in 0..=m {
        for j in 0..=n {
            if !reachable[i][j] {
                continue;
            }
            overall = overall.max(best[i][j]);
            if i == m {
                continue;
            }
            if template[i] == SLOT_TOKEN {
                for take in 1..=MAX_SLOT_WORDS.min(n - j) {
                    let (ni, nj) = (i + 1, j + take);
                    if best[i][j] + take >= best[ni][nj] {
                        best[ni][nj] = best[i][j] + take;
                        reachable[ni][nj] = true;
                    }
                }
            } else if j < n && question[j].eq_ignore_ascii_case(&template[i]) {
                let (ni, nj) = (i + 1, j + 1);
                if best[i][j] + 1 >= best[ni][nj] {
                    best[ni][nj] = best[i][j] + 1;
                    reachable[ni][nj] = true;
                }
            }
        }
    }
    overall as f64 / n as f64
}

/// Best *partial* alignment: maximize covered question words while still
/// consuming the whole template (slots may be filled even when the
/// question has extra material the template does not cover). Returns the
/// coverage φ and the phrase filled into each slot, or `None` when the
/// template cannot be laid over the question at all.
///
/// This implements the partial-match Q/A mode of Appendix F.2 ("we can
/// also generate SPARQL queries based on this partial match").
pub fn partial_align_with_slots(
    template: &[String],
    question: &[String],
) -> Option<(f64, Vec<Vec<String>>)> {
    if question.is_empty() || template.is_empty() {
        return None;
    }
    let (m, n) = (template.len(), question.len());
    // State: (template position i, question position j). Transitions:
    //  - match template word:   (i, j) -> (i+1, j+1)
    //  - fill slot with k words (i, j) -> (i+1, j+k)
    //  - skip a question word:  (i, j) -> (i, j+1)   (extra material)
    // Goal: i == m. Score tiers: maximize exact word matches; then
    // penalize skipped template words; then minimize total slot length;
    // then prefer slots that start early — so slots capture the argument
    // phrase next to their matched context instead of hoovering up
    // whatever trailing material is available. A valid partial alignment
    // must contain at least one exact match (positive final score).
    const NEG: i64 = i64::MIN / 2;
    let mut best = vec![vec![NEG; n + 1]; m + 1];
    let mut back: Vec<Vec<(usize, usize)>> = vec![vec![(usize::MAX, usize::MAX); n + 1]; m + 1];
    best[0][0] = 0;
    for i in 0..=m {
        for j in 0..=n {
            if best[i][j] == NEG {
                continue;
            }
            // Skip question word.
            if j < n && best[i][j] > best[i][j + 1] {
                best[i][j + 1] = best[i][j];
                back[i][j + 1] = (i, j);
            }
            if i == m {
                continue;
            }
            // Skip a non-slot template word (e.g. a trailing "?").
            if template[i] != SLOT_TOKEN {
                let v = best[i][j] - 256;
                if v > best[i + 1][j] {
                    best[i + 1][j] = v;
                    back[i + 1][j] = (i, j);
                }
            }
            if template[i] == SLOT_TOKEN {
                for take in 1..=MAX_SLOT_WORDS.min(n - j) {
                    // Tier 2: slot length; tier 3: slot start position.
                    let v = best[i][j] - 64 * take as i64 - j as i64;
                    if v > best[i + 1][j + take] {
                        best[i + 1][j + take] = v;
                        back[i + 1][j + take] = (i, j);
                    }
                }
            } else if j < n && question[j].eq_ignore_ascii_case(&template[i]) {
                let v = best[i][j] + 65536; // tier 1: one exact match
                if v > best[i + 1][j + 1] {
                    best[i + 1][j + 1] = v;
                    back[i + 1][j + 1] = (i, j);
                }
            }
        }
    }
    // Best full-template end state; require at least one exact match
    // (penalty tiers are bounded well below one match's worth).
    let (mut j, best_score) = (0..=n).map(|j| (j, best[m][j])).max_by_key(|&(_, v)| v)?;
    if best_score <= 0 {
        return None;
    }
    // Recover slot phrases by walking backpointers, counting coverage.
    let mut i = m;
    let mut covered = 0usize;
    let mut slots_rev: Vec<Vec<String>> = Vec::new();
    while i != 0 || j != 0 {
        let (pi, pj) = back[i][j];
        if pi == usize::MAX {
            return None; // unreachable state (defensive)
        }
        if pi + 1 == i {
            covered += j - pj; // matched word or slot words
            if template[pi] == SLOT_TOKEN {
                slots_rev.push(question[pj..j].to_vec());
            }
        }
        i = pi;
        j = pj;
    }
    slots_rev.reverse();
    let slot_count = template.iter().filter(|t| *t == SLOT_TOKEN).count();
    if slots_rev.len() != slot_count {
        return None;
    }
    Some((covered as f64 / n as f64, slots_rev))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::tokenize;

    fn toks(s: &str) -> Vec<String> {
        tokenize(s)
    }

    fn template(s: &str) -> Vec<String> {
        s.split_whitespace().map(|w| w.to_owned()).collect()
    }

    #[test]
    fn example1_of_the_paper() {
        // "Which physicist graduated from CMU?" vs
        // "Which <_> graduated from <_>?"
        let t = template("Which <_> graduated from <_> ?");
        let q = toks("Which physicist graduated from CMU?");
        let slots = align_with_slots(&t, &q).expect("must align");
        assert_eq!(slots.len(), 2);
        assert_eq!(slots[0], vec!["physicist"]);
        assert_eq!(slots[1], vec!["CMU"]);
    }

    #[test]
    fn slot_absorbs_multiword_phrases() {
        let t = template("Who is married to <_> ?");
        let q = toks("Who is married to Michael Jordan?");
        let slots = align_with_slots(&t, &q).unwrap();
        assert_eq!(slots[0], vec!["Michael", "Jordan"]);
    }

    #[test]
    fn mismatch_fails() {
        let t = template("Which <_> graduated from <_> ?");
        let q = toks("Who directed Jaws?");
        assert!(align_with_slots(&t, &q).is_none());
    }

    #[test]
    fn phi_is_one_on_full_match() {
        let t = template("Which <_> graduated from <_> ?");
        let q = toks("Which physicist graduated from CMU?");
        assert!((matching_proportion(&t, &q) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn phi_partial_when_question_has_extra_tail() {
        let t = template("Which <_> graduated from <_>");
        // The trailing slot absorbs at most MAX_SLOT_WORDS words, so a
        // five-word tail cannot be fully covered.
        let q = toks("Which physicist graduated from CMU in the year 1990 exactly");
        let phi = matching_proportion(&t, &q);
        assert!(phi > 0.5 && phi < 1.0, "phi={phi}");
    }

    #[test]
    fn partial_alignment_fills_slots_despite_extra_tail() {
        let t = template("Which <_> graduated from <_>");
        let q = toks("Which physicist graduated from CMU in the year 1990 exactly");
        let (phi, slots) = partial_align_with_slots(&t, &q).unwrap();
        assert!(phi < 1.0 && phi > 0.4, "phi={phi}");
        assert_eq!(slots[0], vec!["physicist"]);
        assert!(slots[1].starts_with(&["CMU".to_string()]), "{:?}", slots[1]);
    }

    #[test]
    fn partial_alignment_agrees_with_full_on_exact_matches() {
        let t = template("Which <_> graduated from <_> ?");
        let q = toks("Which physicist graduated from CMU?");
        let (phi, slots) = partial_align_with_slots(&t, &q).unwrap();
        assert!((phi - 1.0).abs() < 1e-12);
        assert_eq!(slots, align_with_slots(&t, &q).unwrap());
    }

    #[test]
    fn partial_alignment_fails_when_template_cannot_lay_over() {
        let t = template("Which <_> graduated from <_>");
        let q = toks("name every mountain");
        assert!(partial_align_with_slots(&t, &q).is_none());
    }

    #[test]
    fn phi_zero_on_disjoint_text() {
        let t = template("Which <_> graduated from <_>");
        let q = toks("name every mountain");
        // Only a slot could cover anything, but the first template token
        // "Which" never matches, so nothing is covered.
        assert_eq!(matching_proportion(&t, &q), 0.0);
    }
}
