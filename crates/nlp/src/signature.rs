//! Cheap token/label signatures for template matching.
//!
//! The serving layer (`uqsj-serve`) keeps one [`NlSignature`] per template
//! and one per incoming question, and uses them the way `JoinIndex` uses
//! `(|V|, |E|)` on the join side: a constant-or-log-time filter that can
//! only discard templates which provably cannot match, never one that
//! could. Three bounds are exposed:
//!
//! - [`NlSignature::could_fully_align`] — necessary condition for
//!   `align_with_slots` to succeed (token-count window + multiset
//!   containment of the template's non-slot words);
//! - [`NlSignature::phi_upper_bound`] — upper bound on the matching
//!   proportion φ any (partial) alignment can reach;
//! - [`NlSignature::ted_lower_bound`] — lower bound on the dependency-tree
//!   edit distance, used to order exact TED verification best-first.
//!
//! All three are proven admissible by the property tests below against the
//! exact routines in [`crate::align`] and [`crate::ted`].

use crate::align::MAX_SLOT_WORDS;
use crate::ted::is_slot_word;

/// Multiset summary of a token sequence: length, slot count, and sorted
/// (lowercased word, multiplicity) pairs over the non-slot tokens.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NlSignature {
    token_count: u32,
    slot_count: u32,
    counts: Vec<(String, u32)>,
}

impl NlSignature {
    /// Build the signature of a token sequence. Slot tokens (`<_>` or
    /// `SLOTn`, as they appear in template NL patterns and template
    /// dependency trees respectively) are counted separately and excluded
    /// from the word multiset.
    pub fn of_tokens(tokens: &[String]) -> Self {
        let mut words: Vec<String> = Vec::with_capacity(tokens.len());
        let mut slot_count = 0u32;
        for t in tokens {
            let lower = t.to_lowercase();
            if is_slot_word(&lower) {
                slot_count += 1;
            } else {
                words.push(lower);
            }
        }
        words.sort_unstable();
        let mut counts: Vec<(String, u32)> = Vec::with_capacity(words.len());
        for w in words {
            match counts.last_mut() {
                Some((prev, c)) if *prev == w => *c += 1,
                _ => counts.push((w, 1)),
            }
        }
        NlSignature { token_count: tokens.len() as u32, slot_count, counts }
    }

    pub fn token_count(&self) -> u32 {
        self.token_count
    }

    pub fn slot_count(&self) -> u32 {
        self.slot_count
    }

    /// Number of non-slot tokens (with multiplicity).
    pub fn non_slot_count(&self) -> u32 {
        self.token_count - self.slot_count
    }

    /// Size of the multiset intersection of the two word multisets.
    pub fn word_overlap(&self, other: &Self) -> u32 {
        let (mut i, mut j, mut total) = (0, 0, 0);
        while i < self.counts.len() && j < other.counts.len() {
            match self.counts[i].0.cmp(&other.counts[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    total += self.counts[i].1.min(other.counts[j].1);
                    i += 1;
                    j += 1;
                }
            }
        }
        total
    }

    /// Necessary condition for `align_with_slots(self_tokens, question)`
    /// to succeed: the question length must fall in the window a full
    /// alignment can produce (each of the `s` slots absorbs between 1 and
    /// `MAX_SLOT_WORDS` words, every non-slot token exactly one), and every
    /// non-slot template word must be available in the question multiset.
    pub fn could_fully_align(&self, question: &Self) -> bool {
        let min_len = self.token_count;
        let max_len = self.token_count + (MAX_SLOT_WORDS as u32 - 1) * self.slot_count;
        (min_len..=max_len).contains(&question.token_count)
            && self.word_overlap(question) == self.non_slot_count()
    }

    /// Upper bound on the matching proportion φ that
    /// [`crate::align::partial_align_with_slots`] can report for this
    /// template over `question`: covered words are exact matches (at most
    /// the word overlap) plus slot phrases (at most `MAX_SLOT_WORDS` per
    /// slot), and a valid partial alignment needs at least one exact
    /// match, so zero overlap caps φ at 0. (The laxer
    /// [`crate::align::matching_proportion`] has no exact-match
    /// requirement and is *not* bounded by this.)
    pub fn phi_upper_bound(&self, question: &Self) -> f64 {
        if question.token_count == 0 {
            return 0.0;
        }
        let overlap = self.word_overlap(question);
        if overlap == 0 {
            return 0.0;
        }
        let covered = (overlap + MAX_SLOT_WORDS as u32 * self.slot_count).min(question.token_count);
        f64::from(covered) / f64::from(question.token_count)
    }

    /// Lower bound on the tree edit distance between the dependency trees
    /// of the two token sequences (one tree node per token). A node pair
    /// can only be free (cost 0) if the words agree or one side is a slot,
    /// so at most `overlap + slots` nodes on either side avoid an edit
    /// operation; every remaining node costs at least one insert, delete,
    /// or relabel, and the size difference is always a floor.
    pub fn ted_lower_bound(&self, other: &Self) -> u32 {
        let overlap = self.word_overlap(other);
        let wildcards = self.slot_count + other.slot_count;
        let free = overlap + wildcards;
        let size_diff = self.token_count.abs_diff(other.token_count);
        let self_uncovered = self.token_count.saturating_sub(free);
        let other_uncovered = other.token_count.saturating_sub(free);
        size_diff.max(self_uncovered).max(other_uncovered)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::align::{
        align_with_slots, matching_proportion, partial_align_with_slots, SLOT_TOKEN,
    };
    use crate::deptree::parse_dependency_tokens;
    use crate::ted::tree_edit_distance;

    const WORDS: [&str; 10] =
        ["which", "actor", "from", "usa", "married", "to", "jordan", "born", "in", "city"];

    /// Deterministic exhaustive-ish sample of token sequences with slots.
    fn samples() -> Vec<Vec<String>> {
        let mut out = Vec::new();
        for seed in 0u64..160 {
            let len = 1 + (seed % 8) as usize;
            let mut toks = Vec::with_capacity(len);
            let mut x = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
            for _ in 0..len {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                if x % 5 == 0 {
                    toks.push(SLOT_TOKEN.to_owned());
                } else {
                    toks.push(WORDS[(x % WORDS.len() as u64) as usize].to_owned());
                }
            }
            out.push(toks);
        }
        out
    }

    fn slotless(tokens: &[String]) -> Vec<String> {
        tokens.iter().filter(|t| !is_slot_word(t)).cloned().collect()
    }

    #[test]
    fn counts_words_and_slots() {
        let toks: Vec<String> =
            ["Which", "<_>", "graduated", "from", "<_>", "?"].map(String::from).to_vec();
        let sig = NlSignature::of_tokens(&toks);
        assert_eq!(sig.token_count(), 6);
        assert_eq!(sig.slot_count(), 2);
        assert_eq!(sig.non_slot_count(), 4);
    }

    #[test]
    fn overlap_is_a_multiset_intersection() {
        let a = NlSignature::of_tokens(&["to", "to", "To", "?"].map(String::from));
        let b = NlSignature::of_tokens(&["TO", "to", "city"].map(String::from));
        assert_eq!(a.word_overlap(&b), 2);
        assert_eq!(b.word_overlap(&a), 2);
    }

    #[test]
    fn full_alignment_filter_is_admissible() {
        // Whenever the exact aligner succeeds the filter must keep the pair.
        let mut kept_hits = 0;
        for t in samples() {
            let ts = NlSignature::of_tokens(&t);
            for q in samples().iter().map(|s| slotless(s)) {
                let qs = NlSignature::of_tokens(&q);
                if align_with_slots(&t, &q).is_some() {
                    assert!(ts.could_fully_align(&qs), "pruned a true match: {t:?} vs {q:?}");
                    kept_hits += 1;
                }
            }
        }
        assert!(kept_hits > 0, "sample set never aligned — test is vacuous");
    }

    #[test]
    fn phi_upper_bound_is_admissible() {
        let mut nontrivial = 0;
        for t in samples() {
            let ts = NlSignature::of_tokens(&t);
            for q in samples().iter().map(|s| slotless(s)) {
                let qs = NlSignature::of_tokens(&q);
                let bound = ts.phi_upper_bound(&qs);
                if let Some((pphi, _)) = partial_align_with_slots(&t, &q) {
                    assert!(
                        pphi <= bound + 1e-9,
                        "partial phi {pphi} > bound {bound}: {t:?} vs {q:?}"
                    );
                    nontrivial += 1;
                }
                // matching_proportion has no exact-match floor, so only the
                // coverage part of the bound (overlap + slot capacity) holds.
                if !q.is_empty() {
                    let cap = MAX_SLOT_WORDS as u32 * ts.slot_count();
                    let coverage = f64::from((ts.word_overlap(&qs) + cap).min(qs.token_count()))
                        / f64::from(qs.token_count());
                    let phi = matching_proportion(&t, &q);
                    assert!(phi <= coverage + 1e-9, "phi {phi} > coverage {coverage}");
                }
            }
        }
        assert!(nontrivial > 0);
    }

    #[test]
    fn ted_lower_bound_is_admissible() {
        let mut positive = 0;
        for (i, a) in samples().iter().enumerate().step_by(3) {
            let sa = NlSignature::of_tokens(a);
            let ta = parse_dependency_tokens(a);
            for b in samples().iter().skip(i % 5).step_by(4) {
                let sb = NlSignature::of_tokens(b);
                let tb = parse_dependency_tokens(b);
                let lb = sa.ted_lower_bound(&sb);
                let exact = tree_edit_distance(&ta, &tb);
                assert!(lb <= exact, "lb {lb} > ted {exact}: {a:?} vs {b:?}");
                if lb > 0 {
                    positive += 1;
                }
            }
        }
        assert!(positive > 0, "lower bound never fired — test is vacuous");
    }

    #[test]
    fn window_rejects_out_of_range_questions() {
        let t: Vec<String> = ["which", "<_>", "?"].map(String::from).to_vec();
        let sig = NlSignature::of_tokens(&t);
        // Shorter than the template: impossible.
        let short = NlSignature::of_tokens(&["which", "?"].map(String::from));
        assert!(!sig.could_fully_align(&short));
        // Longer than m + (MAX_SLOT_WORDS-1)*s: impossible.
        let long: Vec<String> = ["which", "a", "b", "c", "d", "e", "?"].map(String::from).to_vec();
        assert!(!sig.could_fully_align(&NlSignature::of_tokens(&long)));
    }
}
