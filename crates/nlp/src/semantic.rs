//! Semantic relation extraction and uncertain graph generation
//! (Sec. 2.1, Step 1 of the paper).
//!
//! A question is scanned for relation phrases, entity surface forms and
//! class nouns (longest match against the [`Lexicon`]); the semantic
//! relations `⟨rel, arg1, arg2⟩` assemble into the semantic query graph of
//! Def. 1. Entity arguments are then linked, and each becomes an uncertain
//! vertex labeled by the *classes* of its candidate entities with the
//! linker's confidences — exactly the construction of Fig. 2.
//!
//! Chaining rule (matching the paper's running example): a relation phrase
//! that immediately follows an argument attaches to that argument
//! ("… married to **Michael Jordan** born in …" hangs `born in` off the
//! Jordan vertex); an intervening copula/conjunction re-anchors it at the
//! question variable ("… from USA **is** married to …").

use crate::deptree::{parse_dependency_tokens, DepTree};
use crate::lexicon::{EntityCandidate, Lexicon};
use crate::token::{span_phrase, tokenize};
use std::fmt;
use uqsj_graph::{LabelAlternative, SymbolTable, UncertainGraph, UncertainVertex, VertexId};

/// What a vertex of the semantic query graph denotes.
#[derive(Clone, Debug, PartialEq)]
pub enum VertexInfo {
    /// The question variable (`?x`) or an auxiliary variable.
    Variable(String),
    /// A class mentioned by a noun ("actor" → `Actor`).
    ClassMention {
        /// The noun as it appeared.
        noun: String,
        /// The resolved class.
        class: String,
    },
    /// An entity mention, with its linking candidates.
    EntityMention {
        /// Surface phrase as it appeared.
        phrase: String,
        /// Linking candidates (class + confidence).
        candidates: Vec<EntityCandidate>,
    },
}

/// One semantic relation `⟨rel, arg1, arg2⟩` (an edge of the semantic
/// query graph): `arg1 --predicate--> arg2`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SemanticRelation {
    /// Predicate local name.
    pub predicate: String,
    /// Source vertex index.
    pub arg1: usize,
    /// Target vertex index.
    pub arg2: usize,
}

/// Why a question could not be analyzed — the failure classes of the
/// paper's failure analysis (Fig. 18).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AnalysisError {
    /// The sentence matches no supported question pattern.
    NoPattern,
    /// An argument phrase could not be linked to any entity or class.
    UnknownArgument(String),
    /// No relation phrase found where one was required.
    UnknownRelation(String),
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::NoPattern => write!(f, "unsupported question pattern"),
            AnalysisError::UnknownArgument(p) => write!(f, "cannot link argument {p:?}"),
            AnalysisError::UnknownRelation(p) => write!(f, "no relation phrase near {p:?}"),
        }
    }
}

impl std::error::Error for AnalysisError {}

/// The full analysis of one question.
#[derive(Clone, Debug)]
pub struct QuestionAnalysis {
    /// Original tokens.
    pub tokens: Vec<String>,
    /// Dependency tree (for template ranking).
    pub dep_tree: DepTree,
    /// Semantic query graph vertices.
    pub vertices: Vec<VertexInfo>,
    /// Semantic query graph edges.
    pub relations: Vec<SemanticRelation>,
    /// Token span `[start, end)` of each entity/class mention:
    /// `(vertex, start, end)` — used to cut slots into the NL template.
    pub mention_spans: Vec<(usize, usize, usize)>,
}

impl QuestionAnalysis {
    /// Build the uncertain graph (Def. 2) of this analysis. Vertex `i` of
    /// the graph corresponds to `self.vertices[i]`.
    pub fn uncertain_graph(&self, table: &mut SymbolTable) -> UncertainGraph {
        let mut g = UncertainGraph::new();
        for v in &self.vertices {
            match v {
                VertexInfo::Variable(name) => {
                    let sym = table.intern(name);
                    g.add_certain_vertex(sym);
                }
                VertexInfo::ClassMention { class, .. } => {
                    let sym = table.intern(class);
                    g.add_certain_vertex(sym);
                }
                VertexInfo::EntityMention { candidates, .. } => {
                    // Merge candidates sharing a class.
                    let mut alts: Vec<LabelAlternative> = Vec::new();
                    for c in candidates {
                        let sym = table.intern(&c.class);
                        if let Some(a) = alts.iter_mut().find(|a| a.label == sym) {
                            a.prob += c.prob;
                        } else {
                            alts.push(LabelAlternative { label: sym, prob: c.prob });
                        }
                    }
                    g.add_vertex(UncertainVertex { alternatives: alts });
                }
            }
        }
        for r in &self.relations {
            let sym = table.intern(&r.predicate);
            g.add_edge(VertexId(r.arg1 as u32), VertexId(r.arg2 as u32), sym);
        }
        g
    }

    /// Number of relations excluding the `type` edge from the question
    /// variable (the `k` of Fig. 17).
    pub fn relation_count(&self) -> usize {
        self.relations.iter().filter(|r| r.predicate != "type").count()
    }
}

const FILLERS: [&str; 9] = ["is", "was", "are", "were", "that", "who", "also", "and", "been"];
const ARTICLES: [&str; 3] = ["a", "an", "the"];

/// Analyze a question against the lexicon.
///
/// ```
/// use uqsj_nlp::lexicon::paper_lexicon;
/// let lex = paper_lexicon();
/// let a = uqsj_nlp::analyze_question(&lex, "Which politician graduated from CIT?").unwrap();
/// assert_eq!(a.relations.len(), 2); // type + graduatedFrom
/// let mut table = uqsj_graph::SymbolTable::new();
/// let g = a.uncertain_graph(&mut table);
/// assert_eq!(g.world_count(), 2); // CIT is ambiguous (university/company)
/// ```
pub fn analyze_question(lex: &Lexicon, text: &str) -> Result<QuestionAnalysis, AnalysisError> {
    let tokens = tokenize(text);
    let dep_tree = parse_dependency_tokens(&tokens);
    let lower: Vec<String> = tokens.iter().map(|t| t.to_lowercase()).collect();
    let mut vertices: Vec<VertexInfo> = Vec::new();
    let mut relations: Vec<SemanticRelation> = Vec::new();
    let mut mention_spans: Vec<(usize, usize, usize)> = Vec::new();
    let max_words = lex.max_phrase_words().max(4);

    let mut i = 0usize;
    // --- Inverse pattern: "Who/What is the <noun> of <arg>?" — the
    // entity is the subject (the paper's "What is the ruling party in
    // Lisbon?" shape). ---
    if lower.len() >= 6
        && (lower[0] == "who" || lower[0] == "what")
        && lower[1] == "is"
        && lower[2] == "the"
    {
        // Longest inverse-noun match starting at token 3.
        let mut found: Option<(usize, String)> = None;
        for w in (1..=3usize.min(lower.len() - 3)).rev() {
            let phrase = span_phrase(&lower[3..3 + w]);
            if let Some(p) = lex.inverse_predicate(&phrase) {
                found = Some((w, p.to_owned()));
                break;
            }
        }
        if let Some((w, predicate)) = found {
            let mut j = 3 + w;
            if j < lower.len() && (lower[j] == "of" || lower[j] == "in") {
                j += 1;
                while j < lower.len() && ARTICLES.contains(&lower[j].as_str()) {
                    j += 1;
                }
                // Argument: entity surface form or class mention.
                let mut arg: Option<(usize, VertexInfo)> = None;
                for aw in (1..=max_words.min(lower.len() - j)).rev() {
                    let phrase = span_phrase(&lower[j..j + aw]);
                    if let Some(cands) = lex.link(&phrase) {
                        arg = Some((
                            aw,
                            VertexInfo::EntityMention {
                                phrase: tokens[j..j + aw].join(" "),
                                candidates: cands.to_vec(),
                            },
                        ));
                        break;
                    }
                }
                if arg.is_none() {
                    if let Some(class) = lex.class_of_noun(&lower[j]) {
                        arg = Some((
                            1,
                            VertexInfo::ClassMention {
                                noun: tokens[j].clone(),
                                class: class.to_owned(),
                            },
                        ));
                    }
                }
                let Some((aw, info)) = arg else {
                    return Err(AnalysisError::UnknownArgument(tokens[j].clone()));
                };
                let var = vertices.len();
                vertices.push(VertexInfo::Variable("?x".into()));
                let av = vertices.len();
                vertices.push(info);
                mention_spans.push((av, j, j + aw));
                relations.push(SemanticRelation { predicate, arg1: av, arg2: var });
                return Ok(QuestionAnalysis {
                    tokens,
                    dep_tree,
                    vertices,
                    relations,
                    mention_spans,
                });
            }
        }
    }

    // --- Question head: determine the variable and optional class. ---
    let var = vertices.len();
    if i < lower.len() && (lower[i] == "which" || lower[i] == "what") && i + 1 < lower.len() {
        if let Some(class) = lex.class_of_noun(&lower[i + 1]) {
            vertices.push(VertexInfo::Variable("?x".into()));
            let cv = vertices.len();
            vertices.push(VertexInfo::ClassMention {
                noun: tokens[i + 1].clone(),
                class: class.to_owned(),
            });
            relations.push(SemanticRelation { predicate: "type".into(), arg1: var, arg2: cv });
            mention_spans.push((cv, i + 1, i + 2));
            i += 2;
        } else {
            vertices.push(VertexInfo::Variable("?x".into()));
            i += 1;
        }
    } else if i < lower.len() && (lower[i] == "who" || lower[i] == "what" || lower[i] == "where") {
        vertices.push(VertexInfo::Variable("?x".into()));
        i += 1;
    } else if lower.len() >= 4 && lower[0] == "give" && lower[1] == "me" && lower[2] == "all" {
        if let Some(class) = lex.class_of_noun(&lower[3]) {
            vertices.push(VertexInfo::Variable("?x".into()));
            let cv = vertices.len();
            vertices.push(VertexInfo::ClassMention {
                noun: tokens[3].clone(),
                class: class.to_owned(),
            });
            relations.push(SemanticRelation { predicate: "type".into(), arg1: var, arg2: cv });
            mention_spans.push((cv, 3, 4));
            i = 4;
        } else {
            vertices.push(VertexInfo::Variable("?x".into()));
            i = 3;
        }
    } else {
        return Err(AnalysisError::NoPattern);
    }

    // --- Relation/argument loop. ---
    // `chain_target`: vertex a relation attaches to if it follows an
    // argument immediately; reset to the variable by fillers.
    let mut chain_target = var;
    while i < lower.len() {
        if lower[i] == "?" {
            i += 1;
            continue;
        }
        if FILLERS.contains(&lower[i].as_str()) {
            chain_target = var;
            i += 1;
            continue;
        }
        // Longest relation-phrase match.
        let mut rel: Option<(usize, String)> = None; // (words consumed, predicate)
        for w in (1..=max_words.min(lower.len() - i)).rev() {
            let phrase = span_phrase(&lower[i..i + w]);
            if let Some(p) = lex.predicate_of_phrase(&phrase) {
                rel = Some((w, p.to_owned()));
                break;
            }
        }
        let Some((w, predicate)) = rel else {
            return Err(AnalysisError::UnknownRelation(tokens[i].clone()));
        };
        i += w;
        // Skip articles before the argument.
        while i < lower.len() && ARTICLES.contains(&lower[i].as_str()) {
            i += 1;
        }
        if i >= lower.len() || lower[i] == "?" {
            return Err(AnalysisError::UnknownArgument("<end of question>".into()));
        }
        // Argument: longest entity surface form, else a class noun.
        let mut arg: Option<(usize, VertexInfo)> = None;
        for w in (1..=max_words.min(lower.len() - i)).rev() {
            let phrase = span_phrase(&lower[i..i + w]);
            if let Some(cands) = lex.link(&phrase) {
                arg = Some((
                    w,
                    VertexInfo::EntityMention {
                        phrase: tokens[i..i + w].join(" "),
                        candidates: cands.to_vec(),
                    },
                ));
                break;
            }
        }
        if arg.is_none() {
            if let Some(class) = lex.class_of_noun(&lower[i]) {
                arg = Some((
                    1,
                    VertexInfo::ClassMention { noun: tokens[i].clone(), class: class.to_owned() },
                ));
            }
        }
        let Some((aw, info)) = arg else {
            return Err(AnalysisError::UnknownArgument(tokens[i].clone()));
        };
        let av = vertices.len();
        vertices.push(info);
        mention_spans.push((av, i, i + aw));
        relations.push(SemanticRelation { predicate, arg1: chain_target, arg2: av });
        i += aw;
        // Absent a filler, the next relation chains off this argument.
        chain_target = av;
    }

    if relations.is_empty() {
        return Err(AnalysisError::NoPattern);
    }
    Ok(QuestionAnalysis { tokens, dep_tree, vertices, relations, mention_spans })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexicon::paper_lexicon;

    #[test]
    fn analyzes_the_running_example() {
        // Fig. 2: "Which actor from USA is married to Michael Jordan born
        // in a city of NY?"
        let lex = paper_lexicon();
        let a = analyze_question(
            &lex,
            "Which actor from USA is married to Michael Jordan born in a city of NY?",
        )
        .unwrap();
        // Vertices: ?x, Actor, USA, Michael Jordan, city, NY.
        assert_eq!(a.vertices.len(), 6);
        // Relations: type, from(birthPlace), spouse, born-in(birthPlace),
        // of(locatedIn).
        assert_eq!(a.relations.len(), 5);
        let preds: Vec<&str> = a.relations.iter().map(|r| r.predicate.as_str()).collect();
        assert_eq!(preds, vec!["type", "birthPlace", "spouse", "birthPlace", "locatedIn"]);
        // Chaining: "born in" attaches to the Jordan vertex (3), not ?x.
        assert_eq!(a.relations[3].arg1, 3);
        // "of NY" chains off the city vertex (4).
        assert_eq!(a.relations[4].arg1, 4);
        // "is married to" re-anchors at ?x because of the copula.
        assert_eq!(a.relations[2].arg1, 0);
        assert_eq!(a.relation_count(), 4);
    }

    #[test]
    fn uncertain_graph_matches_fig2() {
        let lex = paper_lexicon();
        let a = analyze_question(
            &lex,
            "Which actor from USA is married to Michael Jordan born in a city of NY?",
        )
        .unwrap();
        let mut t = SymbolTable::new();
        let g = a.uncertain_graph(&mut t);
        assert_eq!(g.vertex_count(), 6);
        assert_eq!(g.edge_count(), 5);
        // 3 alternatives for Michael Jordan × 2 for NY = 6 worlds.
        assert_eq!(g.world_count(), 6);
        // Highest-probability world is 0.6 × 0.7 = 0.42 (Example 2).
        let best = g.possible_worlds().map(|w| w.prob).fold(f64::MIN, f64::max);
        assert!((best - 0.42).abs() < 1e-9);
    }

    #[test]
    fn analyzes_the_politician_question() {
        // Fig. 4: "Which politician graduated from CIT?"
        let lex = paper_lexicon();
        let a = analyze_question(&lex, "Which politician graduated from CIT?").unwrap();
        assert_eq!(a.vertices.len(), 3);
        assert_eq!(a.relations.len(), 2);
        let mut t = SymbolTable::new();
        let g = a.uncertain_graph(&mut t);
        assert_eq!(g.world_count(), 2); // University 0.8 / Company 0.2
    }

    #[test]
    fn give_me_all_pattern() {
        let lex = paper_lexicon();
        let a =
            analyze_question(&lex, "Give me all movies directed by Francis Ford Coppola").unwrap();
        assert_eq!(a.relations.len(), 2);
        assert_eq!(a.relations[1].predicate, "director");
    }

    #[test]
    fn unknown_entity_is_reported() {
        let lex = paper_lexicon();
        let err = analyze_question(&lex, "Which politician graduated from Hogwarts?").unwrap_err();
        assert!(matches!(err, AnalysisError::UnknownArgument(_)));
    }

    #[test]
    fn unknown_pattern_is_reported() {
        let lex = paper_lexicon();
        let err = analyze_question(&lex, "Do you like cheese?").unwrap_err();
        assert!(matches!(err, AnalysisError::NoPattern | AnalysisError::UnknownRelation(_)));
    }

    #[test]
    fn inverse_pattern_makes_entity_the_subject() {
        // "Who is the spouse of Michael Jordan?" → ⟨MJ⟩ --spouse--> ?x.
        let lex = paper_lexicon();
        let a = analyze_question(&lex, "Who is the spouse of Michael Jordan?").unwrap();
        assert_eq!(a.relations.len(), 1);
        let r = &a.relations[0];
        assert_eq!(r.predicate, "spouse");
        assert!(matches!(a.vertices[r.arg1], VertexInfo::EntityMention { .. }));
        assert!(matches!(a.vertices[r.arg2], VertexInfo::Variable(_)));
        // Entity ambiguity flows into the uncertain graph as usual.
        let mut t = SymbolTable::new();
        let g = a.uncertain_graph(&mut t);
        assert_eq!(g.world_count(), 3);
    }

    #[test]
    fn inverse_pattern_with_multiword_noun() {
        let lex = paper_lexicon();
        let a = analyze_question(&lex, "What is the birth place of Michael Jordan?").unwrap();
        assert_eq!(a.relations[0].predicate, "birthPlace");
    }

    #[test]
    fn mention_spans_cover_the_right_tokens() {
        let lex = paper_lexicon();
        let a = analyze_question(&lex, "Which politician graduated from CIT?").unwrap();
        // Spans: (class vertex, 1..2), (entity vertex, 4..5).
        assert_eq!(a.mention_spans.len(), 2);
        let (v, s, e) = a.mention_spans[1];
        assert_eq!(&a.tokens[s..e].join(" "), "CIT");
        assert!(matches!(a.vertices[v], VertexInfo::EntityMention { .. }));
    }
}
