//! The lexicon: everything the question pipeline knows about language.
//!
//! The paper's pipeline leans on three external resources: a class
//! vocabulary, a relation-paraphrase dictionary (gAnswer's graph-mined
//! phrases \[33\]) and an entity linker with confidence scores \[4\]. The
//! lexicon packages all three; workload generators construct it together
//! with the synthetic knowledge base so that questions, SPARQL queries and
//! RDF data agree.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One candidate resolution of an entity surface form, with the linker's
/// confidence. Confidences of one surface form sum to at most 1.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct EntityCandidate {
    /// The knowledge-base entity (e.g. `Michael_Jordan_basketball`).
    pub entity: String,
    /// Its class (e.g. `NBA_Player`) — the label the uncertain graph
    /// vertex takes (Sec. 2.1: "We use the corresponding type of entities
    /// to denote the vertex label").
    pub class: String,
    /// Linking confidence.
    pub prob: f64,
}

/// A predicate with its natural-language relation phrases.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PredicateInfo {
    /// Predicate local name (e.g. `graduatedFrom`).
    pub name: String,
    /// Relation phrases, lowercase (e.g. `graduated from`).
    pub phrases: Vec<String>,
}

/// The full lexicon.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Lexicon {
    /// Class noun → class name (`"actor"` → `"Actor"`).
    pub class_nouns: HashMap<String, String>,
    /// Predicates with their phrases.
    pub predicates: Vec<PredicateInfo>,
    /// Lowercased surface form → linking candidates.
    pub surface_forms: HashMap<String, Vec<EntityCandidate>>,
    /// Inverse noun phrase → predicate, for "What is the ⟨noun⟩ of E?"
    /// questions (the paper's "What is the ruling party in Lisbon?" case,
    /// Fig. 10): the entity is the *subject* of the predicate.
    pub inverse_nouns: HashMap<String, String>,
}

impl Lexicon {
    /// Empty lexicon.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a class with its noun.
    pub fn add_class(&mut self, noun: &str, class: &str) {
        self.class_nouns.insert(noun.to_lowercase(), class.to_owned());
    }

    /// Register a predicate with phrases.
    pub fn add_predicate(&mut self, name: &str, phrases: &[&str]) {
        self.predicates.push(PredicateInfo {
            name: name.to_owned(),
            phrases: phrases.iter().map(|p| p.to_lowercase()).collect(),
        });
    }

    /// Register an entity surface form with candidates.
    ///
    /// # Panics
    /// Panics if the candidate probabilities exceed 1.
    pub fn add_surface_form(&mut self, phrase: &str, candidates: Vec<EntityCandidate>) {
        let total: f64 = candidates.iter().map(|c| c.prob).sum();
        assert!(total <= 1.0 + 1e-9, "linking confidences exceed 1 for {phrase:?}");
        self.surface_forms.insert(phrase.to_lowercase(), candidates);
    }

    /// Look up a class noun.
    pub fn class_of_noun(&self, noun: &str) -> Option<&str> {
        self.class_nouns.get(&noun.to_lowercase()).map(String::as_str)
    }

    /// Find the predicate whose phrase matches exactly.
    pub fn predicate_of_phrase(&self, phrase: &str) -> Option<&str> {
        let p = phrase.to_lowercase();
        self.predicates.iter().find(|pi| pi.phrases.contains(&p)).map(|pi| pi.name.as_str())
    }

    /// Register an inverse noun phrase for a predicate ("spouse" →
    /// `spouse`, so "Who is the spouse of E?" emits `E spouse ?x`).
    pub fn add_inverse_noun(&mut self, noun: &str, predicate: &str) {
        self.inverse_nouns.insert(noun.to_lowercase(), predicate.to_owned());
    }

    /// Look up an inverse noun phrase.
    pub fn inverse_predicate(&self, noun: &str) -> Option<&str> {
        self.inverse_nouns.get(&noun.to_lowercase()).map(String::as_str)
    }

    /// Entity-link a phrase: the paper's step "Applying entity linking
    /// techniques \[4\], an argument ... may be linked to multiple entities
    /// associated with different existence confidences".
    pub fn link(&self, phrase: &str) -> Option<&[EntityCandidate]> {
        self.surface_forms.get(&phrase.to_lowercase()).map(Vec::as_slice)
    }

    /// Longest phrase length (in words) across relation phrases and
    /// surface forms — the scanner's lookahead window.
    pub fn max_phrase_words(&self) -> usize {
        let rel = self
            .predicates
            .iter()
            .flat_map(|p| p.phrases.iter())
            .map(|p| p.split_whitespace().count())
            .max()
            .unwrap_or(1);
        let ent =
            self.surface_forms.keys().map(|p| p.split_whitespace().count()).max().unwrap_or(1);
        rel.max(ent)
    }
}

/// A small lexicon mirroring the paper's running examples (Figs. 2–4),
/// used across the workspace's tests and the quickstart example.
pub fn paper_lexicon() -> Lexicon {
    let mut lex = Lexicon::new();
    lex.add_class("actor", "Actor");
    lex.add_class("politician", "Politician");
    lex.add_class("city", "City");
    lex.add_class("physicist", "Physicist");
    lex.add_class("movies", "Film");
    lex.add_class("movie", "Film");
    lex.add_predicate("birthPlace", &["from", "born in"]);
    lex.add_predicate("spouse", &["married to", "is married to"]);
    lex.add_predicate("locatedIn", &["of", "located in", "in"]);
    lex.add_predicate("graduatedFrom", &["graduated from"]);
    lex.add_predicate("director", &["directed by"]);
    lex.add_inverse_noun("spouse", "spouse");
    lex.add_inverse_noun("birth place", "birthPlace");
    lex.add_inverse_noun("director", "director");
    lex.add_surface_form(
        "michael jordan",
        vec![
            EntityCandidate {
                entity: "Michael_Jordan".into(),
                class: "NBA_Player".into(),
                prob: 0.6,
            },
            EntityCandidate {
                entity: "Michael_I_Jordan".into(),
                class: "Professor".into(),
                prob: 0.3,
            },
            EntityCandidate { entity: "Michael_B_Jordan".into(), class: "Actor".into(), prob: 0.1 },
        ],
    );
    lex.add_surface_form(
        "ny",
        vec![
            EntityCandidate { entity: "New_York".into(), class: "State".into(), prob: 0.7 },
            EntityCandidate { entity: "New_York_City".into(), class: "City".into(), prob: 0.3 },
        ],
    );
    lex.add_surface_form(
        "usa",
        vec![EntityCandidate {
            entity: "United_States".into(),
            class: "Country".into(),
            prob: 1.0,
        }],
    );
    lex.add_surface_form(
        "cit",
        vec![
            EntityCandidate {
                entity: "California_Institute_of_Technology".into(),
                class: "University".into(),
                prob: 0.8,
            },
            EntityCandidate { entity: "CIT_Group".into(), class: "Company".into(), prob: 0.2 },
        ],
    );
    lex.add_surface_form(
        "cmu",
        vec![EntityCandidate {
            entity: "Carnegie_Mellon_University".into(),
            class: "University".into(),
            prob: 1.0,
        }],
    );
    lex.add_surface_form(
        "francis ford coppola",
        vec![EntityCandidate {
            entity: "Francis_Ford_Coppola".into(),
            class: "Director".into(),
            prob: 1.0,
        }],
    );
    lex
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_lexicon_links_michael_jordan_three_ways() {
        let lex = paper_lexicon();
        let cands = lex.link("Michael Jordan").unwrap();
        assert_eq!(cands.len(), 3);
        let total: f64 = cands.iter().map(|c| c.prob).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert_eq!(cands[0].class, "NBA_Player");
    }

    #[test]
    fn phrase_lookups() {
        let lex = paper_lexicon();
        assert_eq!(lex.class_of_noun("Actor"), Some("Actor"));
        assert_eq!(lex.predicate_of_phrase("graduated from"), Some("graduatedFrom"));
        assert_eq!(lex.predicate_of_phrase("married to"), Some("spouse"));
        assert!(lex.predicate_of_phrase("teleported to").is_none());
        assert!(lex.max_phrase_words() >= 3);
    }

    #[test]
    #[should_panic(expected = "linking confidences exceed 1")]
    fn rejects_overweight_surface_form() {
        let mut lex = Lexicon::new();
        lex.add_surface_form(
            "x",
            vec![
                EntityCandidate { entity: "A".into(), class: "C".into(), prob: 0.7 },
                EntityCandidate { entity: "B".into(), class: "C".into(), prob: 0.7 },
            ],
        );
    }
}
