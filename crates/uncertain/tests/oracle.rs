//! Oracle for the world-incremental verifier: `verify_simp` (and the
//! grouped variant) must match a naive reference that materializes every
//! possible world as a fresh [`Graph`] and runs the retained reference
//! A\* — same probability (to 1e-12; the accumulation order is identical,
//! so in practice bit-for-bit), same pass/fail decision, same witnessing
//! mapping, and the same `worlds_verified` counter.

use rand::{rngs::SmallRng, Rng, SeedableRng};
use uqsj_ged::bounds::css::lb_ged_css_certain;
use uqsj_ged::reference::ged_bounded_reference;
use uqsj_ged::upper::ged_upper_bipartite;
use uqsj_graph::{Graph, GraphBuilder, SymbolTable, UncertainGraph};
use uqsj_uncertain::{
    partition_groups, similarity_probability, verify_simp, verify_simp_groups, SplitHeuristic,
    VerifyOutcome,
};

/// Replicates `verify_simp`'s decision procedure — total-mass accounting,
/// per-world CSS filter, bipartite upper bound, high-probability-first
/// ordering, both early exits — but materializes each world and searches
/// it with the naive reference A\* instead of patching a shared profile.
fn verify_simp_naive(
    table: &SymbolTable,
    q: &Graph,
    g: &UncertainGraph,
    tau: u32,
    alpha: f64,
) -> VerifyOutcome {
    let total_mass: f64 = g.vertices().iter().map(|v| v.mass()).product();
    let mut acc = 0.0f64;
    let mut remaining = total_mass;
    let mut best_mapping = None;
    let mut best_world_prob = 0.0f64;
    let mut worlds_verified = 0usize;
    let early = alpha.is_finite();

    let mut worlds: Vec<_> = g.possible_worlds().collect();
    // Mirror the production ordering: high-probability worlds first when
    // early termination is on (stable sort over the lexicographic
    // enumeration, so ties keep the same relative order).
    if early && g.vertex_count() > 0 && g.world_count() != 1 && g.world_count() <= 4096 {
        worlds.sort_by(|a, b| b.prob.partial_cmp(&a.prob).expect("finite probability"));
    }
    for w in &worlds {
        remaining -= w.prob;
        if lb_ged_css_certain(table, q, &w.graph) <= tau {
            worlds_verified += 1;
            let ub = ged_upper_bipartite(table, q, &w.graph);
            let result = if ub.distance == 0 {
                Some(ub)
            } else {
                ged_bounded_reference(table, q, &w.graph, tau.min(ub.distance))
            };
            if let Some(r) = result {
                acc += w.prob;
                if w.prob > best_world_prob {
                    best_world_prob = w.prob;
                    best_mapping = Some(r);
                }
            }
        }
        if early && (acc >= alpha || acc + remaining < alpha) {
            break;
        }
    }
    VerifyOutcome {
        prob: acc,
        passed: acc >= alpha,
        best_mapping,
        best_world_prob,
        worlds_verified,
    }
}

fn random_query(rng: &mut SmallRng, t: &mut SymbolTable, vpool: &[&str], epool: &[&str]) -> Graph {
    let n = rng.gen_range(1..5usize);
    let mut b = GraphBuilder::new(t);
    for i in 0..n {
        b.vertex(&format!("v{i}"), vpool[rng.gen_range(0..vpool.len())]);
    }
    for s in 0..n {
        for d in 0..n {
            if s != d && rng.gen_bool(0.3) {
                b.edge(&format!("v{s}"), &format!("v{d}"), epool[rng.gen_range(0..epool.len())]);
            }
        }
    }
    b.into_graph()
}

/// An uncertain graph with 2–3 ambiguous vertices (2–3 alternatives each,
/// sometimes with mass < 1) plus certain vertices, per the paper's Def. 2.
fn random_uncertain(
    rng: &mut SmallRng,
    t: &mut SymbolTable,
    vpool: &[&str],
    epool: &[&str],
) -> UncertainGraph {
    let n = rng.gen_range(2..5usize);
    let ambiguous = rng.gen_range(2..=3usize).min(n);
    let mut b = GraphBuilder::new(t);
    for i in 0..n {
        if i < ambiguous {
            let k = rng.gen_range(2..=3usize);
            let mut alts: Vec<(&str, f64)> = Vec::with_capacity(k);
            let mut mass_left = if rng.gen_bool(0.3) { 0.9 } else { 1.0 };
            for j in 0..k {
                let p = if j + 1 == k { mass_left } else { mass_left * 0.6 };
                alts.push((vpool[(i + j) % vpool.len()], p));
                mass_left -= p;
            }
            b.uncertain_vertex(&format!("v{i}"), &alts);
        } else {
            b.vertex(&format!("v{i}"), vpool[rng.gen_range(0..vpool.len())]);
        }
    }
    for s in 0..n {
        for d in 0..n {
            if s != d && rng.gen_bool(0.3) {
                b.edge(&format!("v{s}"), &format!("v{d}"), epool[rng.gen_range(0..epool.len())]);
            }
        }
    }
    b.into_uncertain()
}

fn assert_same(got: &VerifyOutcome, want: &VerifyOutcome, ctx: &str) {
    assert!(
        (got.prob - want.prob).abs() <= 1e-12,
        "{ctx}: prob {} vs naive {}",
        got.prob,
        want.prob
    );
    assert_eq!(got.prob.to_bits(), want.prob.to_bits(), "{ctx}: prob bits");
    assert_eq!(got.passed, want.passed, "{ctx}: passed");
    assert_eq!(got.worlds_verified, want.worlds_verified, "{ctx}: worlds_verified");
    assert_eq!(
        got.best_world_prob.to_bits(),
        want.best_world_prob.to_bits(),
        "{ctx}: best_world_prob"
    );
    assert_eq!(got.best_mapping, want.best_mapping, "{ctx}: best mapping");
}

#[test]
fn verify_simp_matches_naive_world_materialization() {
    let vpool = ["Actor", "Band", "City", "?x", "?y"];
    let epool = ["type", "birthPlace", "?p"];
    let mut t = SymbolTable::new();
    let mut rng = SmallRng::seed_from_u64(0xacc);
    let mut cases = Vec::new();
    for _ in 0..40 {
        let q = random_query(&mut rng, &mut t, &vpool, &epool);
        let g = random_uncertain(&mut rng, &mut t, &vpool, &epool);
        cases.push((q, g));
    }
    for (i, (q, g)) in cases.iter().enumerate() {
        for tau in 0..=3u32 {
            for alpha in [0.25, 0.7, f64::INFINITY] {
                let got = verify_simp(&t, q, g, tau, alpha);
                let want = verify_simp_naive(&t, q, g, tau, alpha);
                assert_same(&got, &want, &format!("case {i} tau {tau} alpha {alpha}"));
            }
            let exact = similarity_probability(&t, q, g, tau);
            let naive = verify_simp_naive(&t, q, g, tau, f64::INFINITY).prob;
            assert_eq!(exact.to_bits(), naive.to_bits(), "case {i} tau {tau}: SimP");
        }
    }
}

#[test]
fn grouped_verification_matches_naive_probability() {
    // The grouped verifier enumerates worlds in a different order, so the
    // mapping/counter fields legitimately differ; the probability and the
    // decision must still agree with the naive full enumeration.
    let vpool = ["Actor", "Band", "City", "?x"];
    let epool = ["type", "birthPlace"];
    let mut t = SymbolTable::new();
    let mut rng = SmallRng::seed_from_u64(0x96f);
    let mut cases = Vec::new();
    for _ in 0..12 {
        let q = random_query(&mut rng, &mut t, &vpool, &epool);
        let g = random_uncertain(&mut rng, &mut t, &vpool, &epool);
        cases.push((q, g));
    }
    for (i, (q, g)) in cases.iter().enumerate() {
        for tau in 0..=2u32 {
            let want = verify_simp_naive(&t, q, g, tau, f64::INFINITY);
            for heuristic in [SplitHeuristic::HighestMass, SplitHeuristic::MostLabels] {
                let groups = partition_groups(&t, q, g, tau, 3, heuristic);
                let got = verify_simp_groups(&t, q, g, tau, f64::INFINITY, &groups);
                assert!(
                    (got.prob - want.prob).abs() <= 1e-12,
                    "case {i} tau {tau}: grouped {} vs naive {}",
                    got.prob,
                    want.prob
                );
                assert_eq!(got.passed, want.passed, "case {i} tau {tau}");
            }
        }
    }
}

#[test]
fn single_and_zero_world_graphs_match_naive() {
    let mut t = SymbolTable::new();
    let mut b = GraphBuilder::new(&mut t);
    b.vertex("x", "?x");
    b.vertex("a", "Actor");
    b.edge("x", "a", "type");
    let q = b.into_graph();

    // Certain (single-world) uncertain graph: exercises the fast path.
    let mut b = GraphBuilder::new(&mut t);
    b.vertex("x", "?y");
    b.vertex("a", "Band");
    b.edge("x", "a", "type");
    let certain = b.into_uncertain();
    for tau in 0..=2u32 {
        for alpha in [0.5, f64::INFINITY] {
            let got = verify_simp(&t, &q, &certain, tau, alpha);
            let want = verify_simp_naive(&t, &q, &certain, tau, alpha);
            assert_same(&got, &want, &format!("certain tau {tau} alpha {alpha}"));
        }
    }

    // Zero-vertex graph: zero possible worlds under Def. 3.
    let empty = UncertainGraph::new();
    let got = verify_simp(&t, &q, &empty, 5, 0.5);
    let want = verify_simp_naive(&t, &q, &empty, 5, 0.5);
    assert_same(&got, &want, "empty");
}
