//! Property tests: the Markov bound (Theorem 4) and its grouped
//! refinement (Algorithm 2) must dominate the exact similarity
//! probability, and grouped verification must agree with plain
//! enumeration.

use proptest::prelude::*;
use uqsj_graph::{Graph, LabelAlternative, SymbolTable, UncertainGraph, UncertainVertex, VertexId};
use uqsj_uncertain::groups::{partition_groups, verify_simp_groups, SplitHeuristic};
use uqsj_uncertain::{similarity_probability, ub_simp, ub_simp_exact_tail, ub_simp_grouped};

const VLABELS: [&str; 5] = ["A", "B", "C", "D", "?x"];
const ELABELS: [&str; 2] = ["p", "q"];

#[derive(Clone, Debug)]
struct RawUncertain {
    vertices: Vec<Vec<u8>>, // label indexes per vertex (1..=3 alternatives)
    edges: Vec<(u8, u8, u8)>,
}

fn uncertain_strategy(max_v: usize) -> impl Strategy<Value = RawUncertain> {
    (1..=max_v).prop_flat_map(move |n| {
        let vertices =
            prop::collection::vec(prop::collection::vec(0u8..VLABELS.len() as u8, 1..=3), n);
        let edges = prop::collection::vec(
            (0..n as u8, 0..n as u8, 0u8..ELABELS.len() as u8),
            0..=(n * 2).min(4),
        );
        (vertices, edges).prop_map(|(vertices, edges)| RawUncertain { vertices, edges })
    })
}

fn graph_strategy(max_v: usize) -> impl Strategy<Value = (Vec<u8>, Vec<(u8, u8, u8)>)> {
    (1..=max_v).prop_flat_map(move |n| {
        (
            prop::collection::vec(0u8..VLABELS.len() as u8, n),
            prop::collection::vec((0..n as u8, 0..n as u8, 0u8..ELABELS.len() as u8), 0..=4),
        )
    })
}

fn build_certain(t: &mut SymbolTable, vl: &[u8], el: &[(u8, u8, u8)]) -> Graph {
    let mut g = Graph::new();
    for &v in vl {
        let s = t.intern(VLABELS[v as usize]);
        g.add_vertex(s);
    }
    for &(s, d, l) in el {
        if s != d {
            let sym = t.intern(ELABELS[l as usize]);
            g.add_edge(VertexId(s as u32), VertexId(d as u32), sym);
        }
    }
    g
}

fn build_uncertain(t: &mut SymbolTable, raw: &RawUncertain) -> UncertainGraph {
    let mut g = UncertainGraph::new();
    for alts in &raw.vertices {
        // Dedup labels; spread probability uniformly.
        let mut labels: Vec<u8> = alts.clone();
        labels.dedup();
        labels.sort_unstable();
        labels.dedup();
        let p = 1.0 / labels.len() as f64;
        g.add_vertex(UncertainVertex {
            alternatives: labels
                .iter()
                .map(|&l| LabelAlternative { label: t.intern(VLABELS[l as usize]), prob: p })
                .collect(),
        });
    }
    for &(s, d, l) in &raw.edges {
        if s != d {
            let sym = t.intern(ELABELS[l as usize]);
            g.add_edge(VertexId(s as u32), VertexId(d as u32), sym);
        }
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn markov_bound_dominates_exact(
        a in graph_strategy(3),
        b in uncertain_strategy(3),
        tau in 0u32..4,
    ) {
        let mut t = SymbolTable::new();
        let q = build_certain(&mut t, &a.0, &a.1);
        let g = build_uncertain(&mut t, &b);
        let exact = similarity_probability(&t, &q, &g, tau);
        let ub = ub_simp(&t, &q, &g, tau);
        prop_assert!(ub + 1e-9 >= exact, "ub={} exact={}", ub, exact);
    }

    #[test]
    fn exact_tail_sits_between_simp_and_markov(
        a in graph_strategy(3),
        b in uncertain_strategy(3),
        tau in 0u32..4,
    ) {
        let mut t = SymbolTable::new();
        let q = build_certain(&mut t, &a.0, &a.1);
        let g = build_uncertain(&mut t, &b);
        let exact = similarity_probability(&t, &q, &g, tau);
        let markov = ub_simp(&t, &q, &g, tau);
        let tail = ub_simp_exact_tail(&t, &q, &g, tau);
        prop_assert!(tail + 1e-9 >= exact, "tail={} exact={}", tail, exact);
        prop_assert!(tail <= markov + 1e-9, "tail={} markov={}", tail, markov);
    }

    #[test]
    fn grouped_bound_dominates_exact(
        a in graph_strategy(3),
        b in uncertain_strategy(3),
        tau in 0u32..4,
        gn in 1usize..6,
    ) {
        let mut t = SymbolTable::new();
        let q = build_certain(&mut t, &a.0, &a.1);
        let g = build_uncertain(&mut t, &b);
        let exact = similarity_probability(&t, &q, &g, tau);
        let (ub, _) = ub_simp_grouped(&t, &q, &g, tau, gn);
        prop_assert!(ub + 1e-9 >= exact, "gn={} ub={} exact={}", gn, ub, exact);
    }

    #[test]
    fn grouped_verification_agrees_with_enumeration(
        a in graph_strategy(3),
        b in uncertain_strategy(3),
        tau in 0u32..4,
        gn in 1usize..6,
    ) {
        let mut t = SymbolTable::new();
        let q = build_certain(&mut t, &a.0, &a.1);
        let g = build_uncertain(&mut t, &b);
        let exact = similarity_probability(&t, &q, &g, tau);
        for h in [SplitHeuristic::HighestMass, SplitHeuristic::MostLabels] {
            let groups = partition_groups(&t, &q, &g, tau, gn, h);
            let out = verify_simp_groups(&t, &q, &g, tau, f64::INFINITY, &groups);
            prop_assert!((out.prob - exact).abs() < 1e-9,
                "heuristic {:?}: grouped={} exact={}", h, out.prob, exact);
        }
    }
}
