//! Exact similarity probability `SimP_τ(q, g)` (Def. 6) and the
//! verification routine of Algorithm 1.
//!
//! ```text
//! SimP_τ(q, g) = Σ_{pw(g) ∈ PW(g)}  Pr{ pw(g) | ged(q, pw(g)) <= τ }
//! ```
//!
//! Enumeration is exponential in the number of ambiguous vertices, so the
//! verifier (a) filters each world with the certain CSS bound before
//! running A\*, (b) uses the τ-bounded A\* rather than the exact distance,
//! and (c) terminates early once the accumulated probability reaches `α`
//! or the remaining mass cannot reach it.

use uqsj_ged::astar::{ged_bounded, GedResult};
use uqsj_ged::bounds::css::lb_ged_css_certain;
use uqsj_ged::upper::ged_upper_bipartite;
use uqsj_graph::{Graph, SymbolTable, UncertainGraph};

/// Decide whether one materialized world is within τ of `q`, returning
/// the *optimal* witnessing mapping. The cheap bipartite upper bound is
/// computed first: a zero-cost assignment is already optimal and skips
/// A\* entirely, and any bound below τ tightens the A\* search limit
/// (pruning the open list harder) while still yielding the exact
/// distance and mapping — which template generation depends on.
pub(crate) fn world_within_tau(
    table: &SymbolTable,
    q: &Graph,
    world: &Graph,
    tau: u32,
) -> Option<GedResult> {
    let ub = ged_upper_bipartite(table, q, world);
    if ub.distance == 0 {
        return Some(ub);
    }
    let limit = tau.min(ub.distance);
    ged_bounded(table, q, world, limit)
}

/// Outcome of verifying one `(q, g)` candidate pair.
#[derive(Clone, Debug)]
pub struct VerifyOutcome {
    /// `SimP_τ(q, g)`; exact unless an early exit fired, in which case it
    /// is a certified one-sided value (see [`VerifyOutcome::passed`]).
    pub prob: f64,
    /// Whether `SimP_τ(q, g) >= α` — this field is always exact.
    pub passed: bool,
    /// The GED mapping of the highest-probability world within τ, if any
    /// world qualified. This is the mapping template generation consumes
    /// (Sec. 2.1, Step 3).
    pub best_mapping: Option<GedResult>,
    /// Probability of the world that produced `best_mapping`.
    pub best_world_prob: f64,
    /// Number of worlds on which A\* actually ran (after the per-world
    /// CSS filter) — reported by the efficiency experiments.
    pub worlds_verified: usize,
}

/// Exact `SimP_τ(q, g)` by full enumeration (no early exit).
///
/// ```
/// use uqsj_graph::{GraphBuilder, SymbolTable};
/// let mut t = SymbolTable::new();
/// let mut b = GraphBuilder::new(&mut t);
/// b.vertex("x", "?x");
/// b.vertex("a", "Actor");
/// b.edge("x", "a", "type");
/// let q = b.into_graph();
/// let mut b = GraphBuilder::new(&mut t);
/// b.vertex("x", "?y");
/// b.uncertain_vertex("m", &[("NBA_Player", 0.6), ("Actor", 0.4)]);
/// b.edge("x", "m", "type");
/// let g = b.into_uncertain();
/// // Only the Actor world (probability 0.4) matches exactly.
/// let p = uqsj_uncertain::similarity_probability(&t, &q, &g, 0);
/// assert!((p - 0.4).abs() < 1e-9);
/// ```
pub fn similarity_probability(table: &SymbolTable, q: &Graph, g: &UncertainGraph, tau: u32) -> f64 {
    verify_simp(table, q, g, tau, f64::INFINITY).prob
}

/// Verify whether `SimP_τ(q, g) >= alpha`, with early termination in both
/// directions. Pass `alpha = f64::INFINITY` to force full enumeration and
/// an exact probability.
pub fn verify_simp(
    table: &SymbolTable,
    q: &Graph,
    g: &UncertainGraph,
    tau: u32,
    alpha: f64,
) -> VerifyOutcome {
    let mut acc = 0.0f64;
    // Total mass of all worlds (<= 1 when some labels carry slack).
    let total_mass: f64 = g.vertices().iter().map(|v| v.mass()).product();
    let mut remaining = total_mass;
    let mut best_mapping: Option<GedResult> = None;
    let mut best_world_prob = 0.0f64;
    let mut worlds_verified = 0usize;
    let early = alpha.is_finite();

    // Verifying high-probability worlds first makes both early exits
    // trigger sooner (the pass exit accumulates mass fastest; the fail
    // exit sheds `remaining` fastest). Only worth materializing for
    // moderate world counts.
    let worlds: Box<dyn Iterator<Item = uqsj_graph::PossibleWorld>> =
        if early && g.world_count() <= 4096 {
            let mut all: Vec<_> = g.possible_worlds().collect();
            all.sort_by(|a, b| b.prob.partial_cmp(&a.prob).expect("finite probability"));
            Box::new(all.into_iter())
        } else {
            Box::new(g.possible_worlds())
        };

    for world in worlds {
        remaining -= world.prob;
        // Per-world structural filter (Algorithm 1, line 9).
        if lb_ged_css_certain(table, q, &world.graph) <= tau {
            worlds_verified += 1;
            if let Some(result) = world_within_tau(table, q, &world.graph, tau) {
                acc += world.prob;
                if world.prob > best_world_prob {
                    best_world_prob = world.prob;
                    best_mapping = Some(result);
                }
            }
        }
        if early {
            if acc >= alpha {
                // Keep scanning only if we still lack a mapping; we have
                // one whenever acc > 0, so we can stop.
                return VerifyOutcome {
                    prob: acc,
                    passed: true,
                    best_mapping,
                    best_world_prob,
                    worlds_verified,
                };
            }
            if acc + remaining < alpha {
                return VerifyOutcome {
                    prob: acc,
                    passed: false,
                    best_mapping,
                    best_world_prob,
                    worlds_verified,
                };
            }
        }
    }
    VerifyOutcome {
        prob: acc,
        passed: acc >= alpha,
        best_mapping,
        best_world_prob,
        worlds_verified,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uqsj_graph::GraphBuilder;

    /// The running example of the paper (Example 3): SimP_4(q2, g1) should
    /// sum the probabilities of the worlds within GED 4.
    fn example_pair(t: &mut SymbolTable) -> (Graph, UncertainGraph) {
        // q: ?x --type--> Actor, ?x --birthPlace--> Country
        let mut bq = GraphBuilder::new(t);
        bq.vertex("x", "?x");
        bq.vertex("a", "Actor");
        bq.vertex("c", "Country");
        bq.edge("x", "a", "type");
        bq.edge("x", "c", "birthPlace");
        let q = bq.into_graph();
        // g: ?y --type--> {NBA_Player 0.6, Actor 0.4}, ?y --birthPlace--> Country
        let mut bg = GraphBuilder::new(t);
        bg.vertex("y", "?y");
        bg.uncertain_vertex("m", &[("NBA_Player", 0.6), ("Actor", 0.4)]);
        bg.vertex("c", "Country");
        bg.edge("y", "m", "type");
        bg.edge("y", "c", "birthPlace");
        let g = bg.into_uncertain();
        (q, g)
    }

    #[test]
    fn simp_sums_passing_world_probabilities() {
        let mut t = SymbolTable::new();
        let (q, g) = example_pair(&mut t);
        // tau = 0: only the Actor world (prob 0.4) matches exactly.
        let p0 = similarity_probability(&t, &q, &g, 0);
        assert!((p0 - 0.4).abs() < 1e-9, "got {p0}");
        // tau = 1: both worlds pass (NBA_Player needs one substitution).
        let p1 = similarity_probability(&t, &q, &g, 1);
        assert!((p1 - 1.0).abs() < 1e-9, "got {p1}");
    }

    #[test]
    fn verify_threshold_and_mapping() {
        let mut t = SymbolTable::new();
        let (q, g) = example_pair(&mut t);
        let out = verify_simp(&t, &q, &g, 0, 0.3);
        assert!(out.passed);
        assert!(out.best_mapping.is_some());
        let out2 = verify_simp(&t, &q, &g, 0, 0.5);
        assert!(!out2.passed);
    }

    #[test]
    fn early_exit_pass_is_sound() {
        let mut t = SymbolTable::new();
        let (q, g) = example_pair(&mut t);
        // alpha far below the exact probability: must pass, and the
        // reported probability is a valid lower estimate.
        let out = verify_simp(&t, &q, &g, 1, 0.1);
        assert!(out.passed);
        assert!(out.prob >= 0.1);
    }

    #[test]
    fn certain_graph_has_simp_zero_or_one() {
        let mut t = SymbolTable::new();
        let mut bq = GraphBuilder::new(&mut t);
        bq.vertex("a", "A");
        let q = bq.into_graph();
        let mut bg = GraphBuilder::new(&mut t);
        bg.vertex("a", "B");
        let g = bg.into_uncertain();
        assert_eq!(similarity_probability(&t, &q, &g, 0), 0.0);
        assert_eq!(similarity_probability(&t, &q, &g, 1), 1.0);
    }
}
