//! Exact similarity probability `SimP_τ(q, g)` (Def. 6) and the
//! verification routine of Algorithm 1.
//!
//! ```text
//! SimP_τ(q, g) = Σ_{pw(g) ∈ PW(g)}  Pr{ pw(g) | ged(q, pw(g)) <= τ }
//! ```
//!
//! Enumeration is exponential in the number of ambiguous vertices, so the
//! verifier (a) filters each world with the certain CSS bound before
//! running A\*, (b) uses the τ-bounded A\* rather than the exact distance,
//! and (c) terminates early once the accumulated probability reaches `α`
//! or the remaining mass cannot reach it.
//!
//! Verification is world-incremental: a per-pair [`WorldVerifier`] builds
//! the search structure once and patches only the uncertain-vertex labels
//! per world, and the τ-bounded A\* runs on a caller-supplied
//! [`GedEngine`] ([`verify_simp_with`]) so one workspace serves a whole
//! candidate stream. Certain graphs (a single possible world) bypass
//! enumeration entirely.

use crate::verifier::WorldVerifier;
use uqsj_ged::astar::GedResult;
use uqsj_ged::bounds::css::lb_ged_css_certain;
use uqsj_ged::engine::{with_thread_engine, GedEngine};
use uqsj_graph::{Graph, SymbolTable, UncertainGraph};

/// Outcome of verifying one `(q, g)` candidate pair.
#[derive(Clone, Debug)]
pub struct VerifyOutcome {
    /// `SimP_τ(q, g)`; exact unless an early exit fired, in which case it
    /// is a certified one-sided value (see [`VerifyOutcome::passed`]).
    pub prob: f64,
    /// Whether `SimP_τ(q, g) >= α` — this field is always exact.
    pub passed: bool,
    /// The GED mapping of the highest-probability world within τ, if any
    /// world qualified. This is the mapping template generation consumes
    /// (Sec. 2.1, Step 3).
    pub best_mapping: Option<GedResult>,
    /// Probability of the world that produced `best_mapping`.
    pub best_world_prob: f64,
    /// Number of worlds on which A\* actually ran (after the per-world
    /// CSS filter) — reported by the efficiency experiments.
    pub worlds_verified: usize,
}

/// Exact `SimP_τ(q, g)` by full enumeration (no early exit).
///
/// ```
/// use uqsj_graph::{GraphBuilder, SymbolTable};
/// let mut t = SymbolTable::new();
/// let mut b = GraphBuilder::new(&mut t);
/// b.vertex("x", "?x");
/// b.vertex("a", "Actor");
/// b.edge("x", "a", "type");
/// let q = b.into_graph();
/// let mut b = GraphBuilder::new(&mut t);
/// b.vertex("x", "?y");
/// b.uncertain_vertex("m", &[("NBA_Player", 0.6), ("Actor", 0.4)]);
/// b.edge("x", "m", "type");
/// let g = b.into_uncertain();
/// // Only the Actor world (probability 0.4) matches exactly.
/// let p = uqsj_uncertain::similarity_probability(&t, &q, &g, 0);
/// assert!((p - 0.4).abs() < 1e-9);
/// ```
pub fn similarity_probability(table: &SymbolTable, q: &Graph, g: &UncertainGraph, tau: u32) -> f64 {
    verify_simp(table, q, g, tau, f64::INFINITY).prob
}

/// Verify whether `SimP_τ(q, g) >= alpha`, with early termination in both
/// directions. Pass `alpha = f64::INFINITY` to force full enumeration and
/// an exact probability.
///
/// Uses the thread-local [`GedEngine`]; join drivers that own an engine
/// should call [`verify_simp_with`] directly.
pub fn verify_simp(
    table: &SymbolTable,
    q: &Graph,
    g: &UncertainGraph,
    tau: u32,
    alpha: f64,
) -> VerifyOutcome {
    with_thread_engine(|engine| verify_simp_with(engine, table, q, g, tau, alpha))
}

/// Accumulator threaded through the per-world verification steps.
struct SimpState {
    acc: f64,
    remaining: f64,
    best_mapping: Option<GedResult>,
    best_world_prob: f64,
    worlds_verified: usize,
}

impl SimpState {
    /// Verify one world: shed its mass from `remaining`, CSS-filter it,
    /// and on success fold its probability and best mapping in.
    #[allow(clippy::too_many_arguments)] // engine + verifier + the pair + one world
    fn step(
        &mut self,
        engine: &mut GedEngine,
        verifier: &mut WorldVerifier<'_>,
        table: &SymbolTable,
        q: &Graph,
        tau: u32,
        choice: &[u32],
        prob: f64,
    ) {
        self.remaining -= prob;
        verifier.set_choice(choice);
        let obs = crate::obs::world_obs();
        obs.enumerated.inc();
        // Per-world structural filter (Algorithm 1, line 9).
        if lb_ged_css_certain(table, q, verifier.world_graph()) <= tau {
            self.worlds_verified += 1;
            obs.verified.inc();
            if let Some(result) = verifier.within_tau(engine, tau) {
                self.acc += prob;
                if prob > self.best_world_prob {
                    self.best_world_prob = prob;
                    self.best_mapping = Some(result);
                }
            }
        } else {
            obs.css_pruned.inc();
        }
    }

    fn into_outcome(self, alpha: f64) -> VerifyOutcome {
        VerifyOutcome {
            prob: self.acc,
            passed: self.acc >= alpha,
            best_mapping: self.best_mapping,
            best_world_prob: self.best_world_prob,
            worlds_verified: self.worlds_verified,
        }
    }
}

/// [`verify_simp`] on a caller-owned [`GedEngine`], amortizing the search
/// workspace across an arbitrary candidate stream.
pub fn verify_simp_with(
    engine: &mut GedEngine,
    table: &SymbolTable,
    q: &Graph,
    g: &UncertainGraph,
    tau: u32,
    alpha: f64,
) -> VerifyOutcome {
    // Total mass of all worlds (<= 1 when some labels carry slack).
    let total_mass: f64 = g.vertices().iter().map(|v| v.mass()).product();
    let mut st = SimpState {
        acc: 0.0,
        remaining: total_mass,
        best_mapping: None,
        best_world_prob: 0.0,
        worlds_verified: 0,
    };
    let early = alpha.is_finite();

    // Fast path: a certain graph has exactly one world — verify it
    // directly, no enumeration, no sorting. (A zero-vertex graph has zero
    // worlds under Def. 3 and must fall through to the empty loop below.)
    if g.vertex_count() > 0 && g.world_count() == 1 {
        let mut verifier = WorldVerifier::new(table, q, g);
        let choice = vec![0u32; g.vertex_count()];
        st.step(engine, &mut verifier, table, q, tau, &choice, total_mass);
        return st.into_outcome(alpha);
    }

    let mut verifier = WorldVerifier::new(table, q, g);
    // Verifying high-probability worlds first makes both early exits
    // trigger sooner (the pass exit accumulates mass fastest; the fail
    // exit sheds `remaining` fastest). Only worth collecting for moderate
    // world counts, and pointless without early termination.
    if early && g.world_count() <= 4096 {
        let mut all: Vec<(Vec<u32>, f64)> = Vec::new();
        let mut cursor = g.world_choices();
        while let Some((choice, prob)) = cursor.next_world() {
            all.push((choice.to_vec(), prob));
        }
        all.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite probability"));
        for (choice, prob) in &all {
            st.step(engine, &mut verifier, table, q, tau, choice, *prob);
            if st.acc >= alpha {
                crate::obs::world_obs().early_exit_pass.inc();
                return st.into_outcome(alpha);
            }
            if st.acc + st.remaining < alpha {
                crate::obs::world_obs().early_exit_fail.inc();
                return st.into_outcome(alpha);
            }
        }
    } else {
        let mut cursor = g.world_choices();
        while let Some((choice, prob)) = cursor.next_world() {
            // The cursor lends `choice`, but `step` only reads it.
            st.step(engine, &mut verifier, table, q, tau, choice, prob);
            if early {
                if st.acc >= alpha {
                    crate::obs::world_obs().early_exit_pass.inc();
                    return st.into_outcome(alpha);
                }
                if st.acc + st.remaining < alpha {
                    crate::obs::world_obs().early_exit_fail.inc();
                    return st.into_outcome(alpha);
                }
            }
        }
    }
    st.into_outcome(alpha)
}

#[cfg(test)]
mod tests {
    use super::*;
    use uqsj_graph::GraphBuilder;

    /// The running example of the paper (Example 3): SimP_4(q2, g1) should
    /// sum the probabilities of the worlds within GED 4.
    fn example_pair(t: &mut SymbolTable) -> (Graph, UncertainGraph) {
        // q: ?x --type--> Actor, ?x --birthPlace--> Country
        let mut bq = GraphBuilder::new(t);
        bq.vertex("x", "?x");
        bq.vertex("a", "Actor");
        bq.vertex("c", "Country");
        bq.edge("x", "a", "type");
        bq.edge("x", "c", "birthPlace");
        let q = bq.into_graph();
        // g: ?y --type--> {NBA_Player 0.6, Actor 0.4}, ?y --birthPlace--> Country
        let mut bg = GraphBuilder::new(t);
        bg.vertex("y", "?y");
        bg.uncertain_vertex("m", &[("NBA_Player", 0.6), ("Actor", 0.4)]);
        bg.vertex("c", "Country");
        bg.edge("y", "m", "type");
        bg.edge("y", "c", "birthPlace");
        let g = bg.into_uncertain();
        (q, g)
    }

    #[test]
    fn simp_sums_passing_world_probabilities() {
        let mut t = SymbolTable::new();
        let (q, g) = example_pair(&mut t);
        // tau = 0: only the Actor world (prob 0.4) matches exactly.
        let p0 = similarity_probability(&t, &q, &g, 0);
        assert!((p0 - 0.4).abs() < 1e-9, "got {p0}");
        // tau = 1: both worlds pass (NBA_Player needs one substitution).
        let p1 = similarity_probability(&t, &q, &g, 1);
        assert!((p1 - 1.0).abs() < 1e-9, "got {p1}");
    }

    #[test]
    fn verify_threshold_and_mapping() {
        let mut t = SymbolTable::new();
        let (q, g) = example_pair(&mut t);
        let out = verify_simp(&t, &q, &g, 0, 0.3);
        assert!(out.passed);
        assert!(out.best_mapping.is_some());
        let out2 = verify_simp(&t, &q, &g, 0, 0.5);
        assert!(!out2.passed);
    }

    #[test]
    fn early_exit_pass_is_sound() {
        let mut t = SymbolTable::new();
        let (q, g) = example_pair(&mut t);
        // alpha far below the exact probability: must pass, and the
        // reported probability is a valid lower estimate.
        let out = verify_simp(&t, &q, &g, 1, 0.1);
        assert!(out.passed);
        assert!(out.prob >= 0.1);
    }

    #[test]
    fn certain_graph_has_simp_zero_or_one() {
        let mut t = SymbolTable::new();
        let mut bq = GraphBuilder::new(&mut t);
        bq.vertex("a", "A");
        let q = bq.into_graph();
        let mut bg = GraphBuilder::new(&mut t);
        bg.vertex("a", "B");
        let g = bg.into_uncertain();
        assert_eq!(similarity_probability(&t, &q, &g, 0), 0.0);
        assert_eq!(similarity_probability(&t, &q, &g, 1), 1.0);
    }

    #[test]
    fn empty_uncertain_graph_has_zero_worlds() {
        // Def. 3 quirk preserved by the single-world fast path: a graph
        // with no vertices enumerates zero worlds, so SimP is 0 even at
        // large tau and against an empty query.
        let t = SymbolTable::new();
        let q = Graph::new();
        let g = UncertainGraph::new();
        assert_eq!(similarity_probability(&t, &q, &g, 10), 0.0);
        let out = verify_simp(&t, &q, &g, 10, 0.5);
        assert!(!out.passed);
        assert_eq!(out.worlds_verified, 0);
    }

    #[test]
    fn single_world_fast_path_matches_enumeration_shape() {
        // A certain (single-world) graph must produce the same outcome as
        // the general enumeration used to: exact prob, mapping, counters.
        let mut t = SymbolTable::new();
        let mut bq = GraphBuilder::new(&mut t);
        bq.vertex("x", "?x");
        bq.vertex("a", "Actor");
        bq.edge("x", "a", "type");
        let q = bq.into_graph();
        let mut bg = GraphBuilder::new(&mut t);
        bg.vertex("x", "?y");
        bg.vertex("a", "Politician");
        bg.edge("x", "a", "type");
        let g = bg.into_uncertain();
        let out = verify_simp(&t, &q, &g, 1, 0.5);
        assert!(out.passed);
        assert!((out.prob - 1.0).abs() < 1e-12);
        assert_eq!(out.worlds_verified, 1);
        assert!(out.best_mapping.is_some());
        let miss = verify_simp(&t, &q, &g, 0, 0.5);
        assert!(!miss.passed);
        assert_eq!(miss.prob, 0.0);
    }
}
