//! Similarity probability under possible-world semantics, the
//! probabilistic pruning bound and the cost-based possible-world-group
//! optimization.
//!
//! * [`prob`] — exact `SimP_τ(q, g)` (Def. 6) by enumeration with
//!   per-world filtering and early termination against the threshold `α`
//!   (the refinement phase of Algorithm 1, lines 7–15).
//! * [`prob_bound`] — the Markov upper bound on `SimP_τ(q, g)`
//!   (Lemmas 5/6 and Theorem 4): the probabilistic pruning filter.
//! * [`groups`] — possible-world groups, the two split heuristics of
//!   Sec. 6.2 and the cost model that picks between them (Algorithm 2).
//! * [`verifier`] — the per-pair [`WorldVerifier`]: q-side structure and
//!   g-side topology are built once per candidate, and each possible
//!   world is verified by patching only the uncertain-vertex labels.

pub mod groups;
mod obs;
pub mod prob;
pub mod prob_bound;
pub mod verifier;

pub use groups::{
    partition_groups, ub_simp_grouped, verify_simp_groups, verify_simp_groups_with,
    PossibleWorldGroup, SplitHeuristic,
};
pub use prob::{similarity_probability, verify_simp, verify_simp_with, VerifyOutcome};
pub use prob_bound::{ub_simp, ub_simp_exact_tail};
pub use uqsj_ged::GedEngine;
pub use verifier::WorldVerifier;
