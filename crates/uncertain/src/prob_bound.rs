//! Probabilistic pruning: the Markov upper bound on the similarity
//! probability (Sec. 5, Lemmas 5/6, Theorem 4).
//!
//! A possible world can only satisfy `ged(q, pw(g)) <= τ` if its common
//! vertex-label count satisfies `λ_V(q, pw(g)) >= C(q, g) − τ`, where
//! `C(q, g) = |V| + |E| − λ_E + dif/2` collects the structural CSS terms.
//! Relaxing the matching variables `x_i` to independent indicator
//! variables `y_i` (`y_i = 1` iff the label chosen at vertex `v_i` appears
//! anywhere in `q`) and applying Markov's inequality yields
//!
//! ```text
//! SimP_τ(q, g) <= E(Y) / (C(q, g) − τ),    Y = Σ_i y_i .
//! ```

use uqsj_ged::bounds::css::{css_terms_uncertain, CssTerms};
use uqsj_graph::{Graph, Symbol, SymbolTable, UncertainGraph};

/// `E(y_i)` for one uncertain vertex: the probability mass of its
/// alternatives whose label matches *some* vertex label of `q` under the
/// wildcard rule.
fn expected_y(table: &SymbolTable, q_labels: &[Symbol], alts: &[(Symbol, f64)]) -> f64 {
    alts.iter()
        .filter(|(l, _)| q_labels.iter().any(|&ql| uqsj_graph::labels_match(table, *l, ql)))
        .map(|(_, p)| *p)
        .sum()
}

/// `E(Y) = Σ_i E(y_i)` over all vertices of `g`.
pub fn expected_y_total(table: &SymbolTable, q: &Graph, g: &UncertainGraph) -> f64 {
    let q_labels = q.vertex_labels();
    g.vertices()
        .iter()
        .map(|v| {
            let alts: Vec<(Symbol, f64)> =
                v.alternatives.iter().map(|a| (a.label, a.prob)).collect();
            expected_y(table, q_labels, &alts)
        })
        .sum()
}

/// The wildcard-refined expectation `E(Z)` and wildcard count `W_q`.
///
/// A maximum matching can use each *wildcard* vertex of `q` at most once,
/// so `λ_V(q, pw(g)) <= W_q + Z(pw(g))`, where `z_i = 1` iff vertex `v_i`
/// of `g` could match a **non-wildcard** vertex of `q` (its chosen label
/// equals one of `q`'s ground labels, or is itself a variable). This is
/// the sharper accounting behind the paper's Example 4 (`E(Y) = 5` on a
/// 10-vertex graph with 5 variables) and it is what lets the filter bite
/// when `q` contains variables — with naive wildcard matching every
/// `E(y_i)` saturates at 1 and the bound is vacuous.
pub fn expected_z_total(table: &SymbolTable, q: &Graph, g: &UncertainGraph) -> (f64, u32) {
    let ground: Vec<Symbol> =
        q.vertex_labels().iter().copied().filter(|&l| !table.is_wildcard(l)).collect();
    let wq = (q.vertex_count() - ground.len()) as u32;
    let ez = g
        .vertices()
        .iter()
        .map(|v| {
            v.alternatives
                .iter()
                .filter(|a| table.is_wildcard(a.label) || ground.contains(&a.label))
                .map(|a| a.prob)
                .sum::<f64>()
        })
        .sum();
    (ez, wq)
}

/// Theorem 4: upper bound on `SimP_τ(q, g)`, clamped to `[0, 1]`. When
/// `C(q, g) − τ <= 0` Markov's inequality is vacuous and `1.0` is
/// returned. Returns the minimum of the plain bound `E(Y)/(C−τ)` and the
/// wildcard-refined bound `E(Z)/(C−τ−W_q)`.
pub fn ub_simp(table: &SymbolTable, q: &Graph, g: &UncertainGraph, tau: u32) -> f64 {
    let terms = css_terms_uncertain(table, q, g);
    ub_simp_with_terms(table, q, g, tau, &terms)
}

/// Same as [`ub_simp`] with precomputed [`CssTerms`] (shared with the
/// structural filter in the join inner loop).
pub fn ub_simp_with_terms(
    table: &SymbolTable,
    q: &Graph,
    g: &UncertainGraph,
    tau: u32,
    terms: &CssTerms,
) -> f64 {
    let t = terms.c_value() - i64::from(tau);
    if t <= 0 {
        return 1.0;
    }
    let ey = expected_y_total(table, q, g);
    let plain = ey / t as f64;
    let (ez, wq) = expected_z_total(table, q, g);
    let tz = t - i64::from(wq);
    let refined = if tz <= 0 { 1.0 } else { ez / tz as f64 };
    plain.min(refined).clamp(0.0, 1.0)
}

/// Exact tail probability `Pr{Σ_i Bernoulli(p_i) >= t}` of a
/// Poisson–binomial distribution, by the standard O(n·t) convolution DP.
pub fn poisson_binomial_tail(probs: &[f64], t: i64) -> f64 {
    if t <= 0 {
        return 1.0;
    }
    let t = t as usize;
    if t > probs.len() {
        return 0.0;
    }
    // dist[k] = Pr{exactly k successes so far}, capped at t ("t or more"
    // mass accumulates in the last bucket).
    let mut dist = vec![0.0f64; t + 1];
    dist[0] = 1.0;
    for &p in probs {
        for k in (0..=t).rev() {
            let up = if k == 0 { 0.0 } else { dist[k - 1] * p };
            let stay = if k == t { dist[k] } else { dist[k] * (1.0 - p) };
            dist[k] = stay + up;
        }
    }
    dist[t].clamp(0.0, 1.0)
}

/// The "exact tail" probabilistic bound — the tightening the paper defers
/// to future work ("we also consider correlations among variables x_i
/// directly and derive tight upper bounds by the law of total
/// probability"). The independent indicators `y_i` (and the
/// wildcard-refined `z_i`) have an exactly computable Poisson–binomial
/// tail, which dominates the Markov estimate:
///
/// ```text
/// SimP_τ(q, g) <= min( Pr{Y >= C−τ}, Pr{Z >= C−τ−W_q} )
/// ```
///
/// Always `<=` [`ub_simp`] and `>=` the exact similarity probability.
pub fn ub_simp_exact_tail(table: &SymbolTable, q: &Graph, g: &UncertainGraph, tau: u32) -> f64 {
    let terms = css_terms_uncertain(table, q, g);
    let t = terms.c_value() - i64::from(tau);
    if t <= 0 {
        return 1.0;
    }
    let q_labels = q.vertex_labels();
    // Per-vertex success probabilities for Y (wildcard matching).
    let py: Vec<f64> = g
        .vertices()
        .iter()
        .map(|v| {
            v.alternatives
                .iter()
                .filter(|a| q_labels.iter().any(|&ql| uqsj_graph::labels_match(table, a.label, ql)))
                .map(|a| a.prob)
                .sum::<f64>()
                .min(1.0)
        })
        .collect();
    let tail_y = poisson_binomial_tail(&py, t);
    // Per-vertex success probabilities for Z (ground-label matching).
    let ground: Vec<Symbol> = q_labels.iter().copied().filter(|&l| !table.is_wildcard(l)).collect();
    let wq = (q.vertex_count() - ground.len()) as i64;
    let pz: Vec<f64> = g
        .vertices()
        .iter()
        .map(|v| {
            v.alternatives
                .iter()
                .filter(|a| table.is_wildcard(a.label) || ground.contains(&a.label))
                .map(|a| a.prob)
                .sum::<f64>()
                .min(1.0)
        })
        .collect();
    let tail_z = poisson_binomial_tail(&pz, t - wq);
    tail_y.min(tail_z).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prob::similarity_probability;
    use uqsj_graph::GraphBuilder;

    #[test]
    fn poisson_binomial_matches_binomial() {
        // 4 fair coins: Pr{>=2} = 11/16.
        let p = [0.5; 4];
        assert!((poisson_binomial_tail(&p, 2) - 11.0 / 16.0).abs() < 1e-12);
        assert_eq!(poisson_binomial_tail(&p, 0), 1.0);
        assert_eq!(poisson_binomial_tail(&p, 5), 0.0);
        assert!((poisson_binomial_tail(&p, 4) - 1.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn exact_tail_dominated_by_markov_and_dominates_simp() {
        let mut t = SymbolTable::new();
        let mut bq = GraphBuilder::new(&mut t);
        bq.vertex("x", "?x");
        bq.vertex("a", "Actor");
        bq.edge("x", "a", "type");
        let q = bq.into_graph();
        let mut bg = GraphBuilder::new(&mut t);
        bg.vertex("y", "?y");
        bg.uncertain_vertex("m", &[("NBA_Player", 0.6), ("Actor", 0.4)]);
        bg.uncertain_vertex("n", &[("City", 0.5), ("State", 0.5)]);
        bg.edge("y", "m", "type");
        bg.edge("m", "n", "birthPlace");
        let g = bg.into_uncertain();
        for tau in 0..4u32 {
            let exact = similarity_probability(&t, &q, &g, tau);
            let markov = ub_simp(&t, &q, &g, tau);
            let tail = ub_simp_exact_tail(&t, &q, &g, tau);
            assert!(tail + 1e-12 >= exact, "tau={tau}: tail {tail} < exact {exact}");
            assert!(tail <= markov + 1e-12, "tau={tau}: tail {tail} > markov {markov}");
        }
    }

    #[test]
    fn bound_is_one_when_vacuous() {
        let mut t = SymbolTable::new();
        let mut bq = GraphBuilder::new(&mut t);
        bq.vertex("a", "A");
        let q = bq.into_graph();
        let mut bg = GraphBuilder::new(&mut t);
        bg.vertex("a", "A");
        let g = bg.into_uncertain();
        // Identical graphs: C = 1 + 0 - 0 + 0 = 1, tau = 4 => vacuous.
        assert_eq!(ub_simp(&t, &q, &g, 4), 1.0);
    }

    #[test]
    fn bound_dominates_exact_probability() {
        let mut t = SymbolTable::new();
        let mut bq = GraphBuilder::new(&mut t);
        bq.vertex("x", "?x");
        bq.vertex("a", "Actor");
        bq.edge("x", "a", "type");
        let q = bq.into_graph();
        let mut bg = GraphBuilder::new(&mut t);
        bg.vertex("y", "?y");
        bg.uncertain_vertex("m", &[("NBA_Player", 0.6), ("Actor", 0.4)]);
        bg.edge("y", "m", "type");
        let g = bg.into_uncertain();
        for tau in 0..4 {
            let exact = similarity_probability(&t, &q, &g, tau);
            let ub = ub_simp(&t, &q, &g, tau);
            assert!(ub + 1e-12 >= exact, "tau={tau}: ub={ub} < exact={exact}");
        }
    }

    #[test]
    fn dissimilar_pair_gets_small_bound() {
        // In the spirit of Example 4: a structurally larger mismatch gives
        // an upper bound below common thresholds.
        let mut t = SymbolTable::new();
        let mut bq = GraphBuilder::new(&mut t);
        bq.vertex("a", "A");
        let q = bq.into_graph();
        let mut bg = GraphBuilder::new(&mut t);
        for i in 0..6 {
            bg.uncertain_vertex(&format!("v{i}"), &[("X", 0.5), ("Y", 0.5)]);
        }
        for i in 0..5 {
            bg.edge(&format!("v{i}"), &format!("v{}", i + 1), "p");
        }
        let g = bg.into_uncertain();
        let ub = ub_simp(&t, &q, &g, 1);
        assert!(ub < 0.6, "expected strong pruning, got {ub}");
        // And it is still an upper bound.
        assert!(ub >= similarity_probability(&t, &q, &g, 1));
    }
}
