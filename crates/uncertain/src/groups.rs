//! Possible-world groups and the cost-based query optimization of
//! Sec. 6.2 (Algorithm 2).
//!
//! All possible worlds of an uncertain graph are divided into disjoint
//! groups `PWG_1 … PWG_k`; each group restricts every vertex to a subset
//! of its label alternatives. Per group we obtain a *tighter* structural
//! bound (the Def. 10 bipartite graph shrinks) and a tighter Markov bound
//! (conditional expectations), so groups whose structural bound exceeds τ
//! are discarded entirely and the remaining upper bounds are summed:
//!
//! ```text
//! ub_SimP(q, g) = Σ_{i : lb_gedCSS(q, PWG_i) <= τ}  ub_SimP(q, PWG_i)
//! ```
//!
//! The split strategy follows the paper's two principles: split the vertex
//! with the highest total existence probability, or the vertex with the
//! most alternative labels; the cost model
//! `argmin Σ ub_SimP(q, PWG_i)` selects between them.

use crate::prob_bound::{self};
use uqsj_ged::bounds::css::{
    css_terms_uncertain, lb_ged_css_certain, lb_ged_css_restricted, CssTerms,
};
use uqsj_graph::{Graph, Symbol, SymbolTable, UncertainGraph};

/// One possible-world group: per-vertex allowed alternatives with their
/// *unconditional* probabilities, so group masses over a partition sum to
/// the total world mass.
#[derive(Clone, Debug)]
pub struct PossibleWorldGroup {
    /// `label_sets[i]` — the alternatives vertex `i` may take within this
    /// group. Never empty.
    pub label_sets: Vec<Vec<(Symbol, f64)>>,
}

/// Which vertex-selection principle to use when splitting a group.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SplitHeuristic {
    /// Split the vertex with the highest total existence probability
    /// among its remaining alternatives (first principle in Sec. 6.2).
    HighestMass,
    /// Split the vertex with the most remaining alternatives (second
    /// principle).
    MostLabels,
}

impl PossibleWorldGroup {
    /// The group covering every possible world of `g`.
    pub fn full(g: &UncertainGraph) -> Self {
        Self {
            label_sets: g
                .vertices()
                .iter()
                .map(|v| v.alternatives.iter().map(|a| (a.label, a.prob)).collect())
                .collect(),
        }
    }

    /// Total (unconditional) probability mass of the group's worlds.
    pub fn mass(&self) -> f64 {
        self.label_sets.iter().map(|s| s.iter().map(|(_, p)| p).sum::<f64>()).product()
    }

    /// Number of possible worlds in the group.
    ///
    /// Saturates at [`u128::MAX`] instead of wrapping (mirroring
    /// `UncertainGraph::world_count`): a wrapped product on a group with
    /// hundreds of multi-label vertices could masquerade as a tiny —
    /// enumerable-looking — count and stall the verifier. A saturated
    /// count is detectable via [`Self::world_count_saturated`] and always
    /// exceeds any enumeration threshold, routing the group to the
    /// sampling tier.
    pub fn world_count(&self) -> u128 {
        self.label_sets.iter().map(|s| s.len() as u128).fold(1, |a, b| a.saturating_mul(b))
    }

    /// Whether [`Self::world_count`] overflowed `u128` and clamped; the
    /// group is then enumeration-infeasible by definition.
    pub fn world_count_saturated(&self) -> bool {
        self.world_count() == u128::MAX
    }

    /// Just the labels, for the restricted CSS bound.
    pub fn labels_only(&self) -> Vec<Vec<Symbol>> {
        self.label_sets.iter().map(|s| s.iter().map(|(l, _)| *l).collect()).collect()
    }

    /// Structural lower bound for every world of the group (Theorem 3
    /// over the restricted label sets).
    pub fn lb_ged(&self, table: &SymbolTable, q: &Graph, g: &UncertainGraph) -> u32 {
        lb_ged_css_restricted(table, q, g, &self.labels_only())
    }

    /// Markov upper bound on the group's contribution to `SimP_τ(q, g)`:
    /// `mass · min(1, E[Y | group]/(C − τ), E[Z | group]/(C − τ − W_q))`,
    /// using the conditional expectations of the group's restricted label
    /// sets (and the wildcard refinement of
    /// [`crate::prob_bound::expected_z_total`]).
    pub fn ub_contribution(
        &self,
        table: &SymbolTable,
        q: &Graph,
        tau: u32,
        terms: &CssTerms,
    ) -> f64 {
        let mass = self.mass();
        let t = terms.c_value() - i64::from(tau);
        if t <= 0 {
            return mass;
        }
        let q_labels = q.vertex_labels();
        let ground: Vec<uqsj_graph::Symbol> =
            q_labels.iter().copied().filter(|&l| !table.is_wildcard(l)).collect();
        let wq = (q.vertex_count() - ground.len()) as i64;
        let mut e_y = 0.0;
        let mut e_z = 0.0;
        for set in &self.label_sets {
            let total: f64 = set.iter().map(|(_, p)| p).sum();
            if total <= 0.0 {
                continue;
            }
            let hit_y: f64 = set
                .iter()
                .filter(|(l, _)| q_labels.iter().any(|&ql| uqsj_graph::labels_match(table, *l, ql)))
                .map(|(_, p)| *p)
                .sum();
            e_y += hit_y / total;
            let hit_z: f64 = set
                .iter()
                .filter(|(l, _)| table.is_wildcard(*l) || ground.contains(l))
                .map(|(_, p)| *p)
                .sum();
            e_z += hit_z / total;
        }
        let plain = e_y / t as f64;
        let tz = t - wq;
        let refined = if tz <= 0 { 1.0 } else { e_z / tz as f64 };
        mass * plain.min(refined).min(1.0)
    }

    /// Whether any vertex still has more than one alternative.
    pub fn splittable(&self) -> bool {
        self.label_sets.iter().any(|s| s.len() > 1)
    }

    /// Split this group on `vertex`: the highest-probability alternative
    /// forms one group, the remainder the other. Returns `None` if the
    /// vertex has a single alternative.
    pub fn split_at(&self, vertex: usize) -> Option<(Self, Self)> {
        let set = &self.label_sets[vertex];
        if set.len() < 2 {
            return None;
        }
        let best = set
            .iter()
            .enumerate()
            .max_by(|a, b| a.1 .1.partial_cmp(&b.1 .1).expect("NaN probability"))
            .map(|(i, _)| i)
            .expect("non-empty");
        let mut head = self.clone();
        head.label_sets[vertex] = vec![set[best]];
        let mut tail = self.clone();
        tail.label_sets[vertex] =
            set.iter().enumerate().filter(|(i, _)| *i != best).map(|(_, a)| *a).collect();
        Some((head, tail))
    }

    /// Choose the vertex to split per the heuristic. Returns `None` when
    /// no vertex is splittable.
    pub fn pick_split_vertex(&self, heuristic: SplitHeuristic) -> Option<usize> {
        let candidates = self.label_sets.iter().enumerate().filter(|(_, s)| s.len() > 1);
        match heuristic {
            SplitHeuristic::HighestMass => candidates
                .max_by(|a, b| {
                    let ma: f64 = a.1.iter().map(|(_, p)| p).sum();
                    let mb: f64 = b.1.iter().map(|(_, p)| p).sum();
                    ma.partial_cmp(&mb).expect("NaN probability")
                })
                .map(|(i, _)| i),
            SplitHeuristic::MostLabels => candidates.max_by_key(|(_, s)| s.len()).map(|(i, _)| i),
        }
    }

    /// Iterate over the group's worlds: `(choice labels, probability)`.
    pub fn worlds(&self) -> GroupWorldIter<'_> {
        GroupWorldIter { group: self, choice: vec![0; self.label_sets.len()], done: false }
    }
}

/// Iterator over the worlds of one group (labels per vertex, probability).
pub struct GroupWorldIter<'a> {
    group: &'a PossibleWorldGroup,
    choice: Vec<usize>,
    done: bool,
}

impl Iterator for GroupWorldIter<'_> {
    type Item = (Vec<Symbol>, f64);

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        let mut labels = Vec::with_capacity(self.choice.len());
        let mut prob = 1.0;
        for (set, &c) in self.group.label_sets.iter().zip(&self.choice) {
            let (l, p) = set[c];
            labels.push(l);
            prob *= p;
        }
        // Advance mixed-radix counter.
        let mut i = self.choice.len();
        loop {
            if i == 0 {
                self.done = true;
                break;
            }
            i -= 1;
            if self.choice[i] + 1 < self.group.label_sets[i].len() {
                self.choice[i] += 1;
                for c in &mut self.choice[i + 1..] {
                    *c = 0;
                }
                break;
            }
        }
        Some((labels, prob))
    }
}

/// Partition the worlds of `g` into at most `gn` groups with the given
/// heuristic, repeatedly splitting the group with the largest upper-bound
/// contribution (the group with the least pruning power, per Sec. 6.2).
pub fn partition_groups(
    table: &SymbolTable,
    q: &Graph,
    g: &UncertainGraph,
    tau: u32,
    gn: usize,
    heuristic: SplitHeuristic,
) -> Vec<PossibleWorldGroup> {
    assert!(gn >= 1, "need at least one group");
    let terms = css_terms_uncertain(table, q, g);
    let mut groups = vec![PossibleWorldGroup::full(g)];
    while groups.len() < gn {
        // The worst group is the one contributing the largest upper bound
        // among those not already pruned structurally.
        let worst = groups
            .iter()
            .enumerate()
            .filter(|(_, grp)| grp.splittable() && grp.lb_ged(table, q, g) <= tau)
            .max_by(|a, b| {
                let ca = a.1.ub_contribution(table, q, tau, &terms);
                let cb = b.1.ub_contribution(table, q, tau, &terms);
                ca.partial_cmp(&cb).expect("NaN contribution")
            })
            .map(|(i, _)| i);
        let Some(i) = worst else { break };
        let vertex =
            groups[i].pick_split_vertex(heuristic).expect("splittable group has a split vertex");
        let (head, tail) = groups[i].split_at(vertex).expect("vertex has >1 label");
        groups[i] = head;
        groups.push(tail);
    }
    groups
}

/// Group-based upper bound on `SimP_τ(q, g)` (Algorithm 2): the cost model
/// evaluates both split heuristics and keeps the smaller total.
/// Returns the bound and the winning partition (for reuse in
/// verification).
pub fn ub_simp_grouped(
    table: &SymbolTable,
    q: &Graph,
    g: &UncertainGraph,
    tau: u32,
    gn: usize,
) -> (f64, Vec<PossibleWorldGroup>) {
    let terms = css_terms_uncertain(table, q, g);
    let evaluate = |groups: &[PossibleWorldGroup]| -> f64 {
        groups
            .iter()
            .filter(|grp| grp.lb_ged(table, q, g) <= tau)
            .map(|grp| grp.ub_contribution(table, q, tau, &terms))
            .sum::<f64>()
            .min(1.0)
    };
    let a = partition_groups(table, q, g, tau, gn, SplitHeuristic::HighestMass);
    let ub_a = evaluate(&a);
    let b = partition_groups(table, q, g, tau, gn, SplitHeuristic::MostLabels);
    let ub_b = evaluate(&b);
    if ub_a <= ub_b {
        (ub_a, a)
    } else {
        (ub_b, b)
    }
}

/// Exact verification restricted to the surviving groups: worlds of groups
/// with `lb > τ` are skipped without materialization.
///
/// Uses the thread-local [`uqsj_ged::GedEngine`]; join drivers that own
/// an engine should call [`verify_simp_groups_with`] directly.
pub fn verify_simp_groups(
    table: &SymbolTable,
    q: &Graph,
    g: &UncertainGraph,
    tau: u32,
    alpha: f64,
    groups: &[PossibleWorldGroup],
) -> crate::prob::VerifyOutcome {
    uqsj_ged::engine::with_thread_engine(|engine| {
        verify_simp_groups_with(engine, table, q, g, tau, alpha, groups)
    })
}

/// [`verify_simp_groups`] on a caller-owned [`uqsj_ged::GedEngine`].
#[allow(clippy::too_many_arguments)] // mirrors verify_simp_groups + engine
pub fn verify_simp_groups_with(
    engine: &mut uqsj_ged::GedEngine,
    table: &SymbolTable,
    q: &Graph,
    g: &UncertainGraph,
    tau: u32,
    alpha: f64,
    groups: &[PossibleWorldGroup],
) -> crate::prob::VerifyOutcome {
    let mut acc = 0.0f64;
    let mut best_mapping = None;
    let mut best_world_prob = 0.0f64;
    let mut worlds_verified = 0usize;
    let mut remaining: f64 =
        groups.iter().filter(|grp| grp.lb_ged(table, q, g) <= tau).map(|grp| grp.mass()).sum();
    let early = alpha.is_finite();

    // Shared per-pair search structure; each world only patches labels.
    let mut verifier = crate::verifier::WorldVerifier::new(table, q, g);

    'outer: for grp in groups {
        if grp.lb_ged(table, q, g) > tau {
            continue;
        }
        for (labels, prob) in grp.worlds() {
            remaining -= prob;
            verifier.set_labels(&labels);
            let obs = crate::obs::world_obs();
            obs.enumerated.inc();
            if lb_ged_css_certain(table, q, verifier.world_graph()) <= tau {
                worlds_verified += 1;
                obs.verified.inc();
                if let Some(result) = verifier.within_tau(engine, tau) {
                    acc += prob;
                    if prob > best_world_prob {
                        best_world_prob = prob;
                        best_mapping = Some(result);
                    }
                }
            } else {
                obs.css_pruned.inc();
            }
            if early && (acc >= alpha || acc + remaining < alpha) {
                if acc >= alpha {
                    obs.early_exit_pass.inc();
                } else {
                    obs.early_exit_fail.inc();
                }
                break 'outer;
            }
        }
    }
    crate::prob::VerifyOutcome {
        prob: acc,
        passed: acc >= alpha,
        best_mapping,
        best_world_prob,
        worlds_verified,
    }
}

/// Convenience wrapper mirroring [`prob_bound::ub_simp`] at `gn = 1`
/// (must coincide with Theorem 4's single-group bound).
pub fn ub_simp_single_group(table: &SymbolTable, q: &Graph, g: &UncertainGraph, tau: u32) -> f64 {
    prob_bound::ub_simp(table, q, g, tau)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prob::similarity_probability;
    use uqsj_graph::GraphBuilder;

    fn pair(t: &mut SymbolTable) -> (Graph, UncertainGraph) {
        let mut bq = GraphBuilder::new(t);
        bq.vertex("x", "?x");
        bq.vertex("a", "Actor");
        bq.vertex("c", "City");
        bq.edge("x", "a", "type");
        bq.edge("a", "c", "birthPlace");
        let q = bq.into_graph();
        let mut bg = GraphBuilder::new(t);
        bg.vertex("y", "?y");
        bg.uncertain_vertex("m", &[("NBA_Player", 0.5), ("Professor", 0.3), ("Actor", 0.2)]);
        bg.uncertain_vertex("n", &[("State", 0.7), ("City", 0.3)]);
        bg.edge("y", "m", "type");
        bg.edge("m", "n", "birthPlace");
        let g = bg.into_uncertain();
        (q, g)
    }

    #[test]
    fn groups_partition_all_worlds() {
        let mut t = SymbolTable::new();
        let (q, g) = pair(&mut t);
        for gn in [1usize, 2, 3, 4, 6] {
            let groups = partition_groups(&t, &q, &g, 2, gn, SplitHeuristic::HighestMass);
            assert!(groups.len() <= gn);
            let worlds: u128 = groups.iter().map(|g| g.world_count()).sum();
            assert_eq!(worlds, g.world_count(), "gn={gn}");
            let mass: f64 = groups.iter().map(|g| g.mass()).sum();
            assert!((mass - 1.0).abs() < 1e-9, "gn={gn}: mass={mass}");
        }
    }

    #[test]
    fn grouped_bound_dominates_exact_and_tightens() {
        let mut t = SymbolTable::new();
        let (q, g) = pair(&mut t);
        for tau in 0..3u32 {
            let exact = similarity_probability(&t, &q, &g, tau);
            let mut prev = f64::INFINITY;
            for gn in [1usize, 2, 4, 6] {
                let (ub, _) = ub_simp_grouped(&t, &q, &g, tau, gn);
                assert!(ub + 1e-9 >= exact, "tau={tau} gn={gn}: ub={ub} < exact={exact}");
                // More groups should not loosen the bound (monotone
                // refinement is the whole point of the optimization).
                assert!(ub <= prev + 1e-9, "tau={tau} gn={gn}: ub grew");
                prev = ub;
            }
        }
    }

    #[test]
    fn grouped_verification_matches_plain() {
        let mut t = SymbolTable::new();
        let (q, g) = pair(&mut t);
        for tau in 0..3u32 {
            let exact = similarity_probability(&t, &q, &g, tau);
            let groups = partition_groups(&t, &q, &g, tau, 4, SplitHeuristic::MostLabels);
            let out = verify_simp_groups(&t, &q, &g, tau, f64::INFINITY, &groups);
            assert!(
                (out.prob - exact).abs() < 1e-9,
                "tau={tau}: grouped={} plain={exact}",
                out.prob
            );
        }
    }

    #[test]
    fn split_preserves_alternatives() {
        let mut t = SymbolTable::new();
        let (_, g) = pair(&mut t);
        let full = PossibleWorldGroup::full(&g);
        let (head, tail) = full.split_at(1).unwrap();
        assert_eq!(head.label_sets[1].len(), 1);
        assert_eq!(tail.label_sets[1].len(), 2);
        // Highest-probability alternative goes to the head.
        assert!((head.label_sets[1][0].1 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn group_world_count_saturates_instead_of_wrapping() {
        // 2^130 worlds: a wrapping product would hit 0 once 128 factors
        // of 2 accumulate; the count must clamp at u128::MAX so the group
        // never looks enumerable.
        let mut t = SymbolTable::new();
        let a = t.intern("A");
        let b = t.intern("B");
        let grp = PossibleWorldGroup { label_sets: vec![vec![(a, 0.5), (b, 0.5)]; 130] };
        assert_eq!(grp.world_count(), u128::MAX);
        assert!(grp.world_count_saturated());
        // Splitting a saturated group still works and stays saturated.
        let (head, tail) = grp.split_at(0).unwrap();
        assert_eq!(head.world_count(), u128::MAX, "2^129 still saturates");
        assert!(!PossibleWorldGroup { label_sets: vec![vec![(a, 1.0)]] }.world_count_saturated());
        drop(tail);
    }

    #[test]
    fn unsplittable_vertex_returns_none() {
        let mut t = SymbolTable::new();
        let (_, g) = pair(&mut t);
        let full = PossibleWorldGroup::full(&g);
        assert!(full.split_at(0).is_none());
    }
}
