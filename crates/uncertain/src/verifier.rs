//! Per-pair world-incremental verification state.
//!
//! All possible worlds of one uncertain graph share their entire structure
//! and differ only in uncertain-vertex labels (Def. 2: structure is
//! certain). A [`WorldVerifier`] therefore builds everything the τ-bounded
//! A\* needs — the q-side vertex order, per-prefix remainder count tables,
//! pair indexes, and g-side adjacency — **once** per `(q, g)` candidate
//! via [`uqsj_ged::PairProfile::build_uncertain`], and re-verifies each
//! world by patching only the chosen vertex labels:
//!
//! * shared per pair: q-side structure, g-side topology, edge-label
//!   buckets, the label-id table (every alternative label is interned up
//!   front), and one skeleton [`Graph`] reused for the per-world CSS
//!   filter and bipartite upper bound;
//! * recomputed per world: the g vertex label assignment (O(V)) and the
//!   per-label vertex masks (O(V + L)) — nothing is allocated and no
//!   [`Graph`] is materialized.
//!
//! Results are bit-identical to rebuilding the search from a materialized
//! world: the engine's oracle tests prove it against the retained
//! reference implementation.

use uqsj_ged::astar::GedResult;
use uqsj_ged::engine::GedEngine;
use uqsj_ged::upper::ged_upper_bipartite;
use uqsj_ged::PairProfile;
use uqsj_graph::{Graph, Symbol, SymbolTable, UncertainGraph, VertexId};

/// Reusable verification state for one `(q, g)` candidate pair; see the
/// module docs for what is shared per pair vs. recomputed per world.
pub struct WorldVerifier<'a> {
    table: &'a SymbolTable,
    q: &'a Graph,
    profile: PairProfile,
    /// g's structure with the current world's labels, for the CSS filter
    /// and the bipartite upper bound (which take certain graphs).
    skeleton: Graph,
    /// Per vertex: `(symbol, profile label id)` of each alternative.
    alt: Vec<Vec<(Symbol, u32)>>,
}

impl<'a> WorldVerifier<'a> {
    /// Build the shared per-pair state; the current world starts at
    /// alternative 0 of every vertex.
    pub fn new(table: &'a SymbolTable, q: &'a Graph, g: &UncertainGraph) -> Self {
        let mut profile = PairProfile::new();
        profile.build_uncertain(table, q, g);
        let mut skeleton = Graph::new();
        for v in g.vertices() {
            skeleton.add_vertex(v.alternatives[0].label);
        }
        for e in g.edges() {
            skeleton.add_edge(e.src, e.dst, e.label);
        }
        let alt = g
            .vertices()
            .iter()
            .map(|v| {
                v.alternatives
                    .iter()
                    .map(|a| {
                        let lid = profile.lid(a.label).expect("alternative interned at build");
                        (a.label, lid)
                    })
                    .collect()
            })
            .collect();
        Self { table, q, profile, skeleton, alt }
    }

    /// Select the world given by one alternative index per vertex.
    pub fn set_choice(&mut self, choice: &[u32]) {
        debug_assert_eq!(choice.len(), self.alt.len());
        for (v, &c) in choice.iter().enumerate() {
            let (sym, lid) = self.alt[v][c as usize];
            self.skeleton.set_label(VertexId(v as u32), sym);
            self.profile.set_g_vertex_lid(v, lid);
        }
        self.profile.commit_world();
    }

    /// Select the world given by one label per vertex (the possible-world
    ///-group enumeration yields labels, not indices). Every label must be
    /// one of the vertex's alternatives.
    pub fn set_labels(&mut self, labels: &[Symbol]) {
        debug_assert_eq!(labels.len(), self.alt.len());
        for (v, &sym) in labels.iter().enumerate() {
            let lid = self.profile.lid(sym).expect("group label is a known alternative");
            self.skeleton.set_label(VertexId(v as u32), sym);
            self.profile.set_g_vertex_lid(v, lid);
        }
        self.profile.commit_world();
    }

    /// The current world as a certain graph (for the per-world CSS filter).
    #[inline]
    pub fn world_graph(&self) -> &Graph {
        &self.skeleton
    }

    /// Decide whether the current world is within τ of `q`, returning the
    /// *optimal* witnessing mapping. The cheap bipartite upper bound is
    /// computed first: a zero-cost assignment is already optimal and skips
    /// A\* entirely, and any bound below τ tightens the A\* search limit
    /// (pruning the open list harder) while still yielding the exact
    /// distance and mapping — which template generation depends on.
    pub fn within_tau(&mut self, engine: &mut GedEngine, tau: u32) -> Option<GedResult> {
        let ub = ged_upper_bipartite(self.table, self.q, &self.skeleton);
        if ub.distance == 0 {
            crate::obs::world_obs().bipartite_exact.inc();
            return Some(ub);
        }
        let limit = tau.min(ub.distance);
        engine.run_profile(&self.profile, limit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uqsj_ged::reference::ged_bounded_reference;
    use uqsj_graph::GraphBuilder;

    #[test]
    fn patched_worlds_match_materialized_reference() {
        let mut t = SymbolTable::new();
        let mut b = GraphBuilder::new(&mut t);
        b.vertex("x", "?x");
        b.vertex("a", "Actor");
        b.vertex("c", "Country");
        b.edge("x", "a", "type");
        b.edge("x", "c", "birthPlace");
        let q = b.into_graph();
        let mut b = GraphBuilder::new(&mut t);
        b.vertex("y", "?y");
        b.uncertain_vertex("m", &[("NBA_Player", 0.5), ("Professor", 0.3), ("Actor", 0.2)]);
        b.uncertain_vertex("n", &[("Country", 0.7), ("City", 0.3)]);
        b.edge("y", "m", "type");
        b.edge("y", "n", "birthPlace");
        let g = b.into_uncertain();

        let mut verifier = WorldVerifier::new(&t, &q, &g);
        let mut engine = GedEngine::new();
        for world in g.possible_worlds() {
            verifier.set_choice(&world.choice);
            assert_eq!(verifier.world_graph(), &world.graph);
            for tau in 0..4 {
                let got = verifier.within_tau(&mut engine, tau);
                // Mirror the production decision procedure on a freshly
                // materialized graph with the reference search.
                let ub = ged_upper_bipartite(&t, &q, &world.graph);
                let want = if ub.distance == 0 {
                    Some(ub)
                } else {
                    ged_bounded_reference(&t, &q, &world.graph, tau.min(ub.distance))
                };
                assert_eq!(got, want, "choice {:?} tau {tau}", world.choice);
            }
        }
    }
}
