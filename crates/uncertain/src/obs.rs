//! Metric handles for the world-verification path (Algorithm 1 lines
//! 8–14 and the grouped variant of Algorithm 2): how many possible
//! worlds were enumerated, how many the per-world CSS filter discarded,
//! how many reached a search, and how often the early exits fired.
//!
//! Handles are registered once in [`uqsj_obs::global()`] and shared; the
//! per-world increments are single striped-counter adds.

pub(crate) struct WorldObs {
    /// Worlds drawn from an enumeration cursor or group iterator.
    pub enumerated: uqsj_obs::Counter,
    /// Worlds discarded by the per-world certain CSS filter.
    pub css_pruned: uqsj_obs::Counter,
    /// Worlds that reached the τ-bounded decision (bipartite or A*).
    pub verified: uqsj_obs::Counter,
    /// Worlds decided by the bipartite upper bound alone (distance 0),
    /// short-circuiting A* entirely.
    pub bipartite_exact: uqsj_obs::Counter,
    /// Early terminations because the accumulated mass reached α.
    pub early_exit_pass: uqsj_obs::Counter,
    /// Early terminations because the remaining mass cannot reach α.
    pub early_exit_fail: uqsj_obs::Counter,
}

pub(crate) fn world_obs() -> &'static WorldObs {
    use std::sync::OnceLock;
    static OBS: OnceLock<WorldObs> = OnceLock::new();
    OBS.get_or_init(|| {
        let r = uqsj_obs::global();
        let exits = "verifications cut short by an early exit";
        WorldObs {
            enumerated: r
                .counter("uqsj_worlds_enumerated_total", "possible worlds drawn for verification"),
            css_pruned: r
                .counter("uqsj_worlds_css_pruned_total", "worlds discarded by the CSS filter"),
            verified: r
                .counter("uqsj_worlds_verified_total", "worlds reaching the tau-bounded decision"),
            bipartite_exact: r.counter(
                "uqsj_worlds_bipartite_exact_total",
                "worlds decided by the bipartite upper bound without A*",
            ),
            early_exit_pass: r.counter_with(
                "uqsj_verify_early_exit_total",
                &[("result", "pass")],
                exits,
            ),
            early_exit_fail: r.counter_with(
                "uqsj_verify_early_exit_total",
                &[("result", "fail")],
                exits,
            ),
        }
    })
}
