//! Edge-label uncertainty by reification — the generalization the paper
//! sketches in Sec. 3.1.1 ("introduce fictitious vertices to represent
//! (uncertain) edges").
//!
//! A question may be ambiguous in its *relation* as well as its entities:
//! here "plays for" could paraphrase either `memberOf` (band) or
//! `playsFor` (team). The edge is reified into a fictitious vertex with
//! two label alternatives, and the similarity probability against two
//! candidate SPARQL queries tells them apart.
//!
//! Run with: `cargo run --example edge_uncertainty`

use uqsj::graph::reify::{certain_edge, reify_certain, reify_uncertain, UncertainEdge};
use uqsj::graph::{LabelAlternative, UncertainVertex, VertexId};
use uqsj::prelude::*;

fn main() {
    let mut table = SymbolTable::new();

    // Question: "Which musician plays for X?" — the relation is ambiguous.
    let member_of = table.intern("memberOf");
    let plays_for = table.intern("playsFor");
    let vertices = vec![
        UncertainVertex::certain(table.intern("?x")),
        UncertainVertex::certain(table.intern("Band")),
    ];
    let ambiguous_edge = UncertainEdge {
        src: VertexId(0),
        dst: VertexId(1),
        alternatives: vec![
            LabelAlternative { label: member_of, prob: 0.8 },
            LabelAlternative { label: plays_for, prob: 0.2 },
        ],
    };
    let g = reify_uncertain(&mut table, &vertices, &[ambiguous_edge]);
    println!(
        "Reified uncertain graph: {} vertices ({} fictitious), {} worlds",
        g.vertex_count(),
        1,
        g.world_count()
    );

    // Two candidate SPARQL query graphs, reified the same way.
    let mut q1 = uqsj::graph::Graph::new();
    let a = q1.add_vertex(table.intern("?y"));
    let b = q1.add_vertex(table.intern("Band"));
    q1.add_edge(a, b, member_of);
    let q1r = {
        let base = q1.clone();
        reify_certain(&mut table, &base)
    };

    let mut q2 = uqsj::graph::Graph::new();
    let a = q2.add_vertex(table.intern("?y"));
    let b = q2.add_vertex(table.intern("Team"));
    q2.add_edge(a, b, plays_for);
    let q2r = reify_certain(&mut table, &q2);

    for (name, q) in [("memberOf/Band query", &q1r), ("playsFor/Team query", &q2r)] {
        for tau in [0u32, 1] {
            let p = similarity_probability(&table, q, &g, tau);
            println!("SimP_tau={tau}({name}) = {p:.2}");
        }
    }

    // The certain-edge helper produces probability-1 fictitious vertices.
    let plain = certain_edge(VertexId(0), VertexId(1), member_of);
    assert_eq!(plain.alternatives.len(), 1);
    println!("\nThe memberOf query dominates at every threshold, as expected.");
}
