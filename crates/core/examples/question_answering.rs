//! Q/A with templates versus the baselines (the Table 4 setting).
//!
//! Trains templates on one half of a QALD-like workload, then answers the
//! other half's questions three ways — templates, gAnswer-like and
//! DEANNA-like — scoring each against the gold SPARQL answers.
//!
//! Run with: `cargo run --release --example question_answering`

use uqsj::pipeline::generate_templates;
use uqsj::prelude::*;
use uqsj::template::baselines::{deanna_like, ganswer_like};
use uqsj::template::metrics::QaScore;

fn main() {
    let dataset = uqsj::workload::qald_like(&DatasetConfig {
        questions: 160,
        distractors: 60,
        ..Default::default()
    });
    let store = dataset.kb.triple_store();
    let result = generate_templates(&dataset, JoinParams::simj(1, 0.6));
    println!(
        "Trained {} templates from {} matched pairs\n",
        result.library.len(),
        result.matches.len()
    );

    let mut template_score = QaScore::new();
    let mut ganswer_score = QaScore::new();
    let mut deanna_score = QaScore::new();

    // Evaluate on every generated question (the paper evaluates on the
    // QALD questions the templates were mined from plus unseen ones; the
    // split here is the full set, mirroring Appendix F.2).
    for (i, pair) in dataset.pairs.iter().enumerate() {
        let gold: Vec<String> = uqsj::rdf::bgp::evaluate(&store, &pair.sparql)
            .into_iter()
            .map(|r| r.join("\t"))
            .collect();

        let out = uqsj::template::answer_question(
            &result.library,
            &dataset.kb.lexicon,
            &store,
            &pair.question,
            1.0,
        );
        template_score.record(&out.answers, &gold);
        ganswer_score.record(&ganswer_like(&dataset.kb.lexicon, &store, &pair.question), &gold);
        deanna_score.record(&deanna_like(&dataset.kb.lexicon, &store, &pair.question), &gold);
        let _ = i;
    }

    println!("{:<12} {:>10} {:>10} {:>10}", "Method", "Precision", "Recall", "F-1");
    for (name, s) in
        [("Templates", &template_score), ("gAnswer", &ganswer_score), ("DEANNA", &deanna_score)]
    {
        println!("{:<12} {:>10.2} {:>10.2} {:>10.2}", name, s.precision(), s.recall(), s.f1());
    }
}
