//! Synthetic uncertain-graph join: the three SimJ strategies on an
//! Erdős–Rényi workload (a miniature of the Sec. 7.3 efficiency
//! experiments).
//!
//! Run with: `cargo run --release --example uncertain_join`

use rand::rngs::SmallRng;
use rand::SeedableRng;
use uqsj::prelude::*;
use uqsj::workload::{erdos_renyi, RandomGraphConfig};

fn main() {
    let mut table = SymbolTable::new();
    let mut rng = SmallRng::seed_from_u64(2015);
    let cfg = RandomGraphConfig {
        count: 60,
        vertices: 10,
        edges: 16,
        avg_labels: 3.0,
        perturbation: 2,
        ..Default::default()
    };
    let (d, u) = erdos_renyi(&mut table, &cfg, &mut rng);
    println!(
        "ER workload: |D| = {}, |U| = {}, {} vertices each, avg |L(v)| = {:.1}\n",
        d.len(),
        u.len(),
        cfg.vertices,
        u.iter().map(|g| g.avg_label_count()).sum::<f64>() / u.len() as f64
    );

    let tau = 3;
    let alpha = 0.6;
    println!("tau = {tau}, alpha = {alpha}");
    println!(
        "{:<10} {:>10} {:>12} {:>10} {:>12} {:>12}",
        "strategy", "candidates", "cand. ratio", "results", "pruning", "verification"
    );
    for (name, strategy) in [
        ("CSS only", JoinStrategy::CssOnly),
        ("SimJ", JoinStrategy::SimJ),
        ("SimJ+opt", JoinStrategy::SimJOpt { group_count: 8 }),
    ] {
        let (matches, stats) =
            sim_join(&table, &d, &u, JoinParams { strategy, ..JoinParams::simj(tau, alpha) });
        println!(
            "{:<10} {:>10} {:>11.2}% {:>10} {:>10.1?} {:>10.1?}",
            name,
            stats.candidates,
            stats.candidate_ratio() * 100.0,
            matches.len(),
            stats.pruning_time,
            stats.verification_time
        );
    }
}
