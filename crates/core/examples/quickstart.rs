//! Quickstart: the paper's running example, end to end.
//!
//! Builds the uncertain graph of Fig. 2 from the question "Which actor
//! from USA is married to Michael Jordan born in a city of NY?", the
//! SPARQL query graphs of Fig. 3, and walks through the three SimJ
//! stages: CSS structural bound, Markov probability bound, and exact
//! similarity probability.
//!
//! Run with: `cargo run --example quickstart`

use uqsj::nlp::lexicon::paper_lexicon;
use uqsj::nlp::semantic::analyze_question;
use uqsj::prelude::*;

fn main() {
    let lexicon = paper_lexicon();
    let question = "Which actor from USA is married to Michael Jordan born in a city of NY?";
    println!("Question: {question}\n");

    // Step 1: uncertain graph generation (Sec. 2.1).
    let analysis = analyze_question(&lexicon, question).expect("analyzable");
    let mut table = SymbolTable::new();
    let g = analysis.uncertain_graph(&mut table);
    println!(
        "Uncertain graph: {} vertices, {} edges, {} possible worlds",
        g.vertex_count(),
        g.edge_count(),
        g.world_count()
    );
    for w in g.possible_worlds() {
        let labels: Vec<&str> = w.graph.vertex_labels().iter().map(|&s| table.name(s)).collect();
        println!("  world p={:.2}: {labels:?}", w.prob);
    }

    // The q2 query of Fig. 3 (entity vertices abstracted to classes).
    let mut b = GraphBuilder::new(&mut table);
    b.vertex("x", "?x");
    b.vertex("actor", "Actor");
    b.vertex("country", "Country");
    b.vertex("a", "?a");
    b.vertex("nba", "NBA_Player");
    b.vertex("city", "City");
    b.edge("x", "actor", "type");
    b.edge("x", "country", "birthPlace");
    b.edge("a", "x", "spouse");
    b.edge("a", "nba", "type");
    b.edge("a", "city", "birthPlace");
    let q = b.into_graph();
    println!("\nSPARQL query graph q: {} vertices, {} edges", q.vertex_count(), q.edge_count());

    // Step 2a: structural pruning (Theorem 3).
    let lb = lb_ged_css_uncertain(&table, &q, &g);
    println!("CSS lower bound over all worlds: {lb}");

    // Step 2b: probabilistic pruning (Theorem 4).
    for tau in [2u32, 4, 6] {
        let ub = ub_simp(&table, &q, &g, tau);
        println!("tau={tau}: Markov upper bound on SimP = {ub:.3}");
    }

    // Step 2c: exact similarity probability (Def. 6).
    for tau in [2u32, 4, 6] {
        let p = similarity_probability(&table, &q, &g, tau);
        println!("tau={tau}: exact SimP = {p:.3}");
    }

    // The full join machinery on a 1x1 workload.
    let (matches, stats) = sim_join(&table, &[q], &[g], JoinParams::simj(6, 0.3));
    println!(
        "\nSimJ(tau=6, alpha=0.3): {} match(es), {} candidate(s), {} world(s) verified",
        matches.len(),
        stats.candidates,
        stats.worlds_verified
    );
    if let Some(m) = matches.first() {
        println!("best-world probability {:.2}, GED {}", m.world_prob, m.mapping.distance);
    }
}
