//! Template generation at workload scale: generates a QALD-like dataset,
//! runs the SimJ join, builds templates and prints a case study in the
//! style of Figs. 10/16 of the paper.
//!
//! Run with: `cargo run --release --example template_generation`

use uqsj::pipeline::{generate_templates, join_quality};
use uqsj::prelude::*;

fn main() {
    let dataset = uqsj::workload::qald_like(&DatasetConfig {
        questions: 120,
        distractors: 80,
        ..Default::default()
    });
    println!(
        "Workload: |U| = {} questions ({} failed analysis), |D| = {} SPARQL queries",
        dataset.u_len(),
        dataset.failed.len(),
        dataset.d_len()
    );

    let params = JoinParams::simj(1, 0.7);
    let result = generate_templates(&dataset, params);
    let (correct, precision) = join_quality(&dataset, &result.matches);
    println!(
        "SimJ(tau={}, alpha={}): {} pairs returned, {} correct (precision {:.1}%)",
        params.tau,
        params.alpha,
        result.matches.len(),
        correct,
        precision * 100.0
    );
    println!(
        "Pruning: {} structural + {} probabilistic of {} pairs; {} candidates verified",
        result.stats.pruned_structural(),
        result.stats.pruned_probabilistic(),
        result.stats.pairs_total,
        result.stats.candidates
    );
    println!("\nGenerated {} distinct templates. A sample:\n", result.library.len());

    for t in result.library.templates().iter().take(5) {
        println!("NL pattern : {}", t.nl_pattern());
        println!("SPARQL     : {}", t.sparql.to_string().replace('\n', "\n             "));
        println!("confidence : {:.2}\n", t.confidence);
    }
}
