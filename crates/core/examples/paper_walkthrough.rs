//! The complete paper walkthrough on the curated examples dataset: the
//! Fig. 2 uncertain graph, the SimJ join, the Fig. 4 template, and the
//! Example 1 question answered through it — plus the top-k "best match"
//! view of the join.
//!
//! Run with: `cargo run --release --example paper_walkthrough`

use uqsj::pipeline::{generate_templates, join_quality};
use uqsj::prelude::*;
use uqsj::simjoin::sim_join_topk;
use uqsj::workload::paper_dataset;

fn main() {
    let d = paper_dataset();
    println!("Curated paper dataset: {} questions, {} SPARQL queries\n", d.u_len(), d.d_len());

    // The Fig. 2 running example.
    let g = &d.u_graphs[0];
    println!("Running example: {:?}", d.pairs[0].question);
    println!(
        "  uncertain graph: {} vertices, {} edges, {} worlds (best world p = {:.2})\n",
        g.vertex_count(),
        g.edge_count(),
        g.world_count(),
        g.possible_worlds().map(|w| w.prob).fold(f64::MIN, f64::max)
    );

    // SimJ + template generation.
    let result = generate_templates(&d, JoinParams::simj(2, 0.5));
    let (correct, precision) = join_quality(&d, &result.matches);
    println!(
        "SimJ(tau=2, alpha=0.5): {} pairs ({} correct, precision {:.0}%), {} templates:",
        result.matches.len(),
        correct,
        precision * 100.0,
        result.library.len()
    );
    for t in result.library.templates() {
        println!("  {}", t.nl_pattern());
    }

    // Top-1 best match per question (the paper's framing).
    let (topk, stats) = sim_join_topk(&d.table, &d.d_graphs, &d.u_graphs, 2, 1);
    println!(
        "\nTop-1 matches ({} verified, {} skipped by the TA stop):",
        stats.verified, stats.ta_skipped
    );
    for (gi, top) in topk.iter().enumerate() {
        if let Some(m) = top.first() {
            println!(
                "  {:50} -> query #{} (SimP {:.2})",
                d.pairs[gi].question.chars().take(50).collect::<String>(),
                m.q_index,
                m.prob
            );
        }
    }

    // Example 1: answer the physicist question through the mined
    // politician template.
    let store = d.kb.triple_store();
    let out = uqsj::template::answer_question(
        &result.library,
        &d.kb.lexicon,
        &store,
        "Which physicist graduated from CMU?",
        1.0,
    );
    println!("\nExample 1: \"Which physicist graduated from CMU?\"");
    if let Some(sparql) = &out.sparql {
        println!("{sparql}");
    }
    println!("answers: {:?}", out.answers);
}
