//! End-to-end check of the observability layer: one join + one storage
//! round-trip drive the process-global registry, and the deltas they
//! leave behind must agree exactly with the `JoinStats` the join itself
//! reported.
//!
//! Deliberately a single `#[test]`: the global registry is shared across
//! threads in a test binary, so this file measures deltas around the only
//! instrumented work it performs. (Other integration-test binaries run as
//! separate processes and cannot interfere.)

use std::path::PathBuf;
use uqsj::obs::global;
use uqsj::prelude::*;
use uqsj::workload::DatasetConfig;

/// The per-stage prune counters the fixed cascade reports, in cascade
/// order. `markov` is the SimJ probabilistic filter; `markov_opt` is the
/// *same computation* running as SimJOpt's pre-filter — distinct stage
/// labels so the two call sites are distinguishable in dashboards.
const STAGES: [&str; 6] = ["size", "label_multiset", "css", "markov", "markov_opt", "grouped"];

fn stage_counter(stage: &'static str) -> u64 {
    // Registration is idempotent: this returns the same handle the join
    // cascade increments (labels included).
    let labels: &'static [(&'static str, &'static str)] = match stage {
        "size" => &[("stage", "size")],
        "label_multiset" => &[("stage", "label_multiset")],
        "css" => &[("stage", "css")],
        "markov" => &[("stage", "markov")],
        "markov_opt" => &[("stage", "markov_opt")],
        _ => &[("stage", "grouped")],
    };
    global().counter_with("uqsj_join_pruned_total", labels, "").value()
}

fn counter(name: &'static str) -> u64 {
    global().counter(name, "").value()
}

fn histogram_count(name: &'static str) -> u64 {
    global().histogram(name, "").count()
}

#[test]
fn registry_deltas_match_join_stats() {
    // --- baseline ------------------------------------------------------
    let pairs0 = counter("uqsj_join_pairs_total");
    let candidates0 = counter("uqsj_join_candidates_total");
    let results0 = counter("uqsj_join_results_total");
    let stages0: Vec<u64> = STAGES.iter().map(|s| stage_counter(s)).collect();
    let ged_calls0 = counter("uqsj_ged_calls_total");
    let expanded0 = histogram_count("uqsj_ged_states_expanded");
    let worlds0 = counter("uqsj_worlds_enumerated_total");
    let wal0 = histogram_count("uqsj_wal_append_us");
    let snap0 = histogram_count("uqsj_snapshot_write_us");

    // --- the measured join --------------------------------------------
    let dataset = uqsj::workload::qald_like(&DatasetConfig {
        questions: 40,
        distractors: 20,
        ..Default::default()
    });
    let params = JoinParams {
        strategy: JoinStrategy::SimJOpt { group_count: 8 },
        ..JoinParams::simj(1, 0.5)
    };
    let (matches, stats) = sim_join(&dataset.table, &dataset.d_graphs, &dataset.u_graphs, params);

    // --- join counters agree exactly with JoinStats --------------------
    // (read before any further instrumented work muddies the deltas)
    let stage_deltas: Vec<u64> =
        STAGES.iter().zip(&stages0).map(|(s, &b)| stage_counter(s) - b).collect();
    for (stage, delta) in STAGES.iter().zip(&stage_deltas) {
        assert_eq!(*delta, stats.pruned_by(stage), "{stage}-stage counter diverged from JoinStats");
    }
    // A SimJOpt run reports its Markov prunes under `markov_opt`, never
    // under the SimJ stage label.
    assert_eq!(stats.pruned_by("markov"), 0);
    assert_eq!(stats.pruned_probabilistic(), stats.pruned_by("markov_opt"));
    assert_eq!(stage_deltas.iter().sum::<u64>(), stats.pruned_total());
    assert_eq!(counter("uqsj_join_pairs_total") - pairs0, stats.pairs_total);
    assert_eq!(counter("uqsj_join_candidates_total") - candidates0, stats.candidates);
    assert_eq!(counter("uqsj_join_results_total") - results0, matches.len() as u64);

    // --- more instrumented work: pipeline + durable serve round-trip ---
    let result = uqsj::pipeline::generate_templates(&dataset, JoinParams::simj(1, 0.5));
    let dir = scratch_dir();
    let server = QaServer::create(
        &dir,
        TemplateStore::from_library(result.library),
        dataset.kb.lexicon.clone(),
        dataset.kb.triple_store(),
        Default::default(),
    )
    .expect("create durable server");
    let mut ingestor = Ingestor::from_dataset(&dataset, JoinParams::simj(1, 0.5));
    let outcome = ingestor.ingest(&dataset.kb.lexicon, &dataset.pairs[0].question).expect("ingest");
    server.insert_templates(outcome.templates).expect("journal ingest");
    server.compact().expect("compact");
    drop(server);
    let _ = std::fs::remove_dir_all(&dir);

    // --- engine, world, and storage instrumentation all moved ----------
    assert!(counter("uqsj_ged_calls_total") > ged_calls0, "no GED calls recorded");
    assert!(histogram_count("uqsj_ged_states_expanded") > expanded0);
    assert!(counter("uqsj_worlds_enumerated_total") > worlds0);
    assert!(histogram_count("uqsj_wal_append_us") > wal0, "WAL append not observed");
    assert!(histogram_count("uqsj_snapshot_write_us") > snap0, "snapshot write not observed");

    // --- exposition carries the whole catalogue ------------------------
    let text = global().render_prometheus();
    let json = global().snapshot_json();
    for name in [
        "uqsj_join_pairs_total",
        "uqsj_join_pruned_total",
        "uqsj_join_stage_us",
        "uqsj_ged_calls_total",
        "uqsj_ged_states_expanded",
        "uqsj_worlds_enumerated_total",
        "uqsj_wal_append_us",
        "uqsj_snapshot_write_us",
    ] {
        assert!(text.contains(name), "{name} missing from Prometheus text");
        assert!(json.contains(name), "{name} missing from JSON snapshot");
    }
    for stage in STAGES {
        assert!(
            text.contains(&format!("uqsj_join_pruned_total{{stage=\"{stage}\"}}")),
            "stage {stage} missing from Prometheus text"
        );
    }
}

/// A fresh scratch directory under the system temp dir.
fn scratch_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("uqsj-metrics-export-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}
