//! End-to-end integration tests spanning every crate: workload → NLP →
//! join → templates → Q/A over the RDF store.

use uqsj::pipeline::{generate_templates, join_quality};
use uqsj::prelude::*;
use uqsj::template::metrics::QaScore;
use uqsj::workload::DatasetConfig;

fn dataset() -> Dataset {
    uqsj::workload::qald_like(&DatasetConfig {
        questions: 80,
        distractors: 50,
        seed: 7,
        ..Default::default()
    })
}

#[test]
fn full_pipeline_generates_usable_templates() {
    let d = dataset();
    let result = generate_templates(&d, JoinParams::simj(1, 0.6));
    assert!(!result.matches.is_empty());
    assert!(result.library.len() >= 5, "got {} templates", result.library.len());

    // The templates must answer questions over the KB.
    let store = d.kb.triple_store();
    let mut score = QaScore::new();
    for pair in &d.pairs {
        let gold: Vec<String> = uqsj::rdf::bgp::evaluate(&store, &pair.sparql)
            .into_iter()
            .map(|r| r.join("\t"))
            .collect();
        let out = uqsj::template::answer_question(
            &result.library,
            &d.kb.lexicon,
            &store,
            &pair.question,
            1.0,
        );
        score.record(&out.answers, &gold);
    }
    assert!(score.f1() > 0.6, "template Q/A F1 = {}", score.f1());
}

#[test]
fn join_precision_increases_with_alpha() {
    let d = dataset();
    let mut previous = 0.0f64;
    for alpha in [0.3, 0.9] {
        let result = generate_templates(&d, JoinParams::simj(1, alpha));
        let (_, precision) = join_quality(&d, &result.matches);
        assert!(
            precision + 0.08 >= previous,
            "precision dropped sharply from {previous} to {precision} at alpha={alpha}"
        );
        previous = precision;
    }
}

#[test]
fn strategies_return_identical_pairs_on_real_workload() {
    let d = dataset();
    let collect = |strategy| {
        let (m, _) = uqsj::simjoin::sim_join(
            &d.table,
            &d.d_graphs,
            &d.u_graphs,
            JoinParams { strategy, ..JoinParams::simj(1, 0.8) },
        );
        let mut pairs: Vec<(usize, usize)> = m.iter().map(|x| (x.q_index, x.g_index)).collect();
        pairs.sort_unstable();
        pairs
    };
    let css = collect(JoinStrategy::CssOnly);
    let simj = collect(JoinStrategy::SimJ);
    let opt = collect(JoinStrategy::SimJOpt { group_count: 6 });
    assert_eq!(css, simj);
    assert_eq!(simj, opt);
    assert!(!css.is_empty());
}

#[test]
fn parallel_join_agrees_with_sequential_on_real_workload() {
    let d = dataset();
    let params = JoinParams::simj(1, 0.8);
    let (seq, _) = uqsj::simjoin::sim_join(&d.table, &d.d_graphs, &d.u_graphs, params);
    let (par, _) = uqsj::simjoin::sim_join_parallel(&d.table, &d.d_graphs, &d.u_graphs, params, 4);
    let key = |m: &JoinMatch| (m.g_index, m.q_index);
    let mut a: Vec<_> = seq.iter().map(key).collect();
    a.sort_unstable();
    let b: Vec<_> = par.iter().map(key).collect();
    assert_eq!(a, b);
}

#[test]
fn gold_pairs_survive_the_join_at_reasonable_thresholds() {
    let d = dataset();
    let (matches, _) =
        uqsj::simjoin::sim_join(&d.table, &d.d_graphs, &d.u_graphs, JoinParams::simj(2, 0.3));
    // Most questions should be matched with their own gold query.
    let mut found = 0;
    for (gi, &qi) in d.gold_of.iter().enumerate() {
        if matches.iter().any(|m| m.g_index == gi && m.q_index == qi) {
            found += 1;
        }
    }
    let frac = found as f64 / d.gold_of.len() as f64;
    assert!(frac > 0.5, "only {found}/{} gold pairs found", d.gold_of.len());
}

#[test]
fn mm_domain_precision_at_least_open_domain() {
    // The paper observes the closed-domain MM workload joins with higher
    // precision than the open-domain ones (Sec. 7.2). Check the trend
    // loosely (same τ/α, same sizes).
    let cfg = DatasetConfig { questions: 70, distractors: 40, seed: 11, ..Default::default() };
    let open = uqsj::workload::qald_like(&cfg);
    let closed = uqsj::workload::mm_like(&cfg);
    let params = JoinParams::simj(1, 0.8);
    let ro = generate_templates(&open, params);
    let rc = generate_templates(&closed, params);
    let (_, po) = join_quality(&open, &ro.matches);
    let (_, pc) = join_quality(&closed, &rc.matches);
    // Loose: closed domain shouldn't be dramatically worse.
    assert!(pc + 0.25 >= po, "closed {pc} much worse than open {po}");
}
