//! The paper's own worked examples, executed end to end on the curated
//! dataset (Figs. 2–5, Example 1, the Fig. 10 case study).

use uqsj::pipeline::generate_templates;
use uqsj::prelude::*;
use uqsj::workload::paper_dataset;

#[test]
fn figure4_template_emerges_from_the_join() {
    let d = paper_dataset();
    let result = generate_templates(&d, JoinParams::simj(2, 0.5));
    // The politician/CIT question joined with a graduatedFrom query must
    // produce the Fig. 4(d) template.
    let found = result.library.templates().iter().any(|t| {
        t.nl_pattern() == "Which <_> graduated from <_> ?"
            && t.sparql.to_string().contains("graduatedFrom")
    });
    assert!(
        found,
        "Fig. 4 template missing; got: {:?}",
        result.library.templates().iter().map(|t| t.nl_pattern()).collect::<Vec<_>>()
    );
}

#[test]
fn example1_question_is_answered_via_the_template() {
    // "Which physicist graduated from CMU?" must be answered through the
    // template mined from the *politician/CIT* pair — the whole point of
    // templates (Example 1 / Fig. 5 of the paper).
    let d = paper_dataset();
    let result = generate_templates(&d, JoinParams::simj(2, 0.5));
    let store = d.kb.triple_store();
    let out = uqsj::template::answer_question(
        &result.library,
        &d.kb.lexicon,
        &store,
        "Which physicist graduated from CMU?",
        1.0,
    );
    assert_eq!(out.answers, vec!["Pete_Physicist".to_string()]);
    let sparql = out.sparql.expect("a template applied").to_string();
    assert!(sparql.contains("Physicist"), "{sparql}");
    assert!(sparql.contains("Carnegie_Mellon_University"), "{sparql}");
}

#[test]
fn running_example_question_matches_its_gold_query() {
    let d = paper_dataset();
    let (matches, _) = sim_join(&d.table, &d.d_graphs, &d.u_graphs, JoinParams::simj(2, 0.3));
    // Question 0 is the Fig. 2 running example; its gold query is
    // d_queries[gold_of[0]].
    let gold = d.gold_of[0];
    assert!(
        matches.iter().any(|m| m.g_index == 0 && m.q_index == gold),
        "running example did not match its gold query"
    );
}

#[test]
fn inverse_case_study_question_is_usable() {
    // "What is the ruling party of Lisbon?" (Fig. 10) — analyzable,
    // joinable and answerable via its own mined template.
    let d = paper_dataset();
    let idx = d
        .pairs
        .iter()
        .position(|p| p.question.contains("ruling party"))
        .expect("curated question present");
    let result = generate_templates(&d, JoinParams::simj(1, 0.5));
    let store = d.kb.triple_store();
    let out = uqsj::template::answer_question(
        &result.library,
        &d.kb.lexicon,
        &store,
        &d.pairs[idx].question,
        1.0,
    );
    assert_eq!(out.answers, vec!["Green_Party".to_string()]);
}

#[test]
fn ambiguity_resolves_to_the_nba_player_for_the_spouse_question() {
    // "Who is the spouse of Michael Jordan?" — three candidates; KB
    // validation picks the one with a spouse fact (the NBA player).
    let d = paper_dataset();
    let result = generate_templates(&d, JoinParams::simj(1, 0.5));
    let store = d.kb.triple_store();
    let out = uqsj::template::answer_question(
        &result.library,
        &d.kb.lexicon,
        &store,
        "Who is the spouse of Michael Jordan?",
        1.0,
    );
    assert_eq!(out.answers, vec!["Alice_Actor".to_string()]);
}
