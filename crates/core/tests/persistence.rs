//! Persistence round-trips at pipeline scale: a mined template library,
//! the lexicon and the RDF dump must reload into an equivalent Q/A
//! system (what `uqsj-cli generate` / `answer` rely on).

use uqsj::pipeline::generate_templates;
use uqsj::prelude::*;
use uqsj::workload::DatasetConfig;

#[test]
fn artifacts_roundtrip_preserves_answers() {
    let dataset = uqsj::workload::qald_like(&DatasetConfig {
        questions: 50,
        distractors: 20,
        seed: 31,
        ..Default::default()
    });
    let result = generate_templates(&dataset, JoinParams::simj(1, 0.6));
    assert!(result.library.len() > 3);
    let store = dataset.kb.triple_store();

    // Serialize all three artifacts.
    let templates_text = uqsj::template::io::to_text(&result.library);
    let lexicon_text = uqsj::nlp::lexicon_io::to_text(&dataset.kb.lexicon);
    let kb_text = uqsj::rdf::ntriples::to_ntriples(&store);

    // Reload.
    let library2 = uqsj::template::io::from_text(&templates_text).expect("templates parse");
    let lexicon2 = uqsj::nlp::lexicon_io::from_text(&lexicon_text).expect("lexicon parses");
    let mut store2 = uqsj::rdf::TripleStore::new();
    uqsj::rdf::ntriples::load_str(&mut store2, &kb_text).expect("kb loads");
    assert_eq!(library2.len(), result.library.len());
    assert_eq!(store2.len(), store.len());

    // Every question answered identically by the original and reloaded
    // systems.
    for pair in dataset.pairs.iter().take(30) {
        let a = uqsj::template::answer_question(
            &result.library,
            &dataset.kb.lexicon,
            &store,
            &pair.question,
            1.0,
        );
        let b = uqsj::template::answer_question(&library2, &lexicon2, &store2, &pair.question, 1.0);
        assert_eq!(a.answers, b.answers, "answers diverged for {:?}", pair.question);
        assert_eq!(a.sparql.is_some(), b.sparql.is_some());
    }
}

#[test]
fn template_text_is_stable_under_reserialization() {
    let dataset = uqsj::workload::qald_like(&DatasetConfig {
        questions: 40,
        distractors: 15,
        seed: 33,
        ..Default::default()
    });
    let result = generate_templates(&dataset, JoinParams::simj(1, 0.7));
    let text1 = uqsj::template::io::to_text(&result.library);
    let lib2 = uqsj::template::io::from_text(&text1).unwrap();
    let text2 = uqsj::template::io::to_text(&lib2);
    assert_eq!(text1, text2, "serialization must be a fixpoint");
}
