//! The end-to-end pipeline of Fig. 1: workload → similar graph pairs →
//! templates, plus the evaluation judgments the experiments report.

use uqsj_simjoin::{sim_join, JoinMatch, JoinParams, JoinStats};
use uqsj_template::{generate_template, TemplateLibrary, TemplateSource};
use uqsj_workload::Dataset;

/// Everything one pipeline run produces.
pub struct PipelineResult {
    /// Qualifying graph pairs.
    pub matches: Vec<JoinMatch>,
    /// Deduplicated templates generated from the pairs.
    pub library: TemplateLibrary,
    /// Join instrumentation.
    pub stats: JoinStats,
}

/// Run the SimJ join over a dataset and build templates from every
/// qualifying pair (Steps 2 and 3 of Sec. 2.1).
pub fn generate_templates(dataset: &Dataset, params: JoinParams) -> PipelineResult {
    let (matches, stats) = sim_join(&dataset.table, &dataset.d_graphs, &dataset.u_graphs, params);
    let mut library = TemplateLibrary::new();
    for m in &matches {
        let source = TemplateSource {
            analysis: &dataset.analyses[m.g_index],
            query: &dataset.d_queries[m.q_index],
            query_terms: &dataset.d_terms[m.q_index],
            mapping: &m.mapping,
            confidence: m.prob,
        };
        if let Some(t) = generate_template(&source) {
            library.add(t);
        }
    }
    PipelineResult { matches, library, stats }
}

/// Join-quality judgment of Sec. 7.1.2: the number of correct returned
/// pairs `|C|` and the precision `|C| / |R|`.
pub fn join_quality(dataset: &Dataset, matches: &[JoinMatch]) -> (usize, f64) {
    let correct = matches.iter().filter(|m| dataset.pair_is_correct(m.q_index, m.g_index)).count();
    let precision = if matches.is_empty() { 0.0 } else { correct as f64 / matches.len() as f64 };
    (correct, precision)
}

#[cfg(test)]
mod tests {
    use super::*;
    use uqsj_workload::{qald_like, DatasetConfig};

    #[test]
    fn pipeline_produces_templates_with_decent_precision() {
        let dataset =
            qald_like(&DatasetConfig { questions: 60, distractors: 40, ..Default::default() });
        let result = generate_templates(&dataset, JoinParams::simj(1, 0.5));
        assert!(!result.matches.is_empty(), "join found no pairs");
        assert!(!result.library.is_empty(), "no templates generated");
        let (correct, precision) = join_quality(&dataset, &result.matches);
        assert!(correct > 0);
        assert!(precision > 0.5, "precision {precision} too low");
    }

    #[test]
    fn tau_zero_yields_higher_precision_fewer_matches() {
        let dataset =
            qald_like(&DatasetConfig { questions: 60, distractors: 40, ..Default::default() });
        let strict = generate_templates(&dataset, JoinParams::simj(0, 0.9));
        let loose = generate_templates(&dataset, JoinParams::simj(2, 0.9));
        assert!(strict.matches.len() <= loose.matches.len());
        let (_, p_strict) = join_quality(&dataset, &strict.matches);
        let (_, p_loose) = join_quality(&dataset, &loose.matches);
        if !strict.matches.is_empty() && !loose.matches.is_empty() {
            assert!(p_strict + 1e-9 >= p_loose, "strict {p_strict} < loose {p_loose}");
        }
    }
}
