//! `uqsj-cli` — file-driven access to the template pipeline.
//!
//! ```text
//! uqsj-cli generate --out-dir artifacts [--questions N] [--distractors M]
//!                   [--tau T] [--alpha A] [--seed S]
//!     Generate a synthetic workload, run the SimJ join, and write
//!     artifacts/templates.txt, artifacts/lexicon.txt, artifacts/kb.nt.
//!
//! uqsj-cli answer --dir artifacts --question "Which politician ...?"
//!                 [--min-phi F] [--bgp-eval lftj|reference]
//!     Load the artifacts and answer a question with the templates.
//!
//! uqsj-cli join [--questions N] [--distractors M] [--tau T] [--alpha A]
//!               [--strategy css|simj|opt] [--metrics-out FILE]
//!               [--trace-out FILE] [--explain N]
//!               [--simp-mode exact|sample|auto]
//!               [--epsilon E] [--delta D] [--sample-seed S]
//!               [--cascade fixed|adaptive|shuffled]
//!               [--calibration-pairs K] [--epoch-pairs E]
//!               [--probe-interval P] [--hysteresis H] [--shuffle-seed S]
//!     Run the join only and print per-stage statistics plus the cascade
//!     plan and per-bound selectivity/cost table. --explain N re-joins
//!     the first N questions one at a time against the same (calibrated)
//!     cascade runtime and prints a per-question EXPLAIN report — the
//!     filter funnel, verification tiers, stopping reasons, and GED
//!     effort for that question alone. --metrics-out
//!     writes the process metric registry as Prometheus text to FILE and
//!     as JSON to FILE.json; --trace-out dumps the span flight recorder
//!     as a Chrome trace.
//!
//!     Cascade flags (join and generate): --cascade picks the filter-stage
//!     plan — the paper's fixed order (default), the adaptive
//!     selectivity/cost planner over the full bound registry, or a
//!     seed-derived shuffled plan (conformance aid). Every choice returns
//!     identical results; only cost changes. --calibration-pairs (64) sets
//!     the warm-start sample, --epoch-pairs (512) the re-plan period,
//!     --probe-interval (64) the dropped-stage refresh cadence, and
//!     --hysteresis (0.1) the adoption threshold.
//!
//!     Sampling flags (join and generate): --simp-mode picks the SimP
//!     verification tier — exact enumeration (default), Monte-Carlo
//!     sampling with an (ε,δ) guarantee, or auto (sample only pairs whose
//!     possible-world count exceeds --sample-threshold, default 4096).
//!     --epsilon and --delta (both default 0.05) set the tolerance and
//!     failure probability; --sample-seed (default 42) makes every
//!     sampled decision replayable.
//!
//!     BGP flag (generate, answer, join, serve): --bgp-eval picks the
//!     SPARQL answer-retrieval evaluator — lftj (default), the
//!     leapfrog-triejoin worst-case-optimal join under summary-based
//!     cardinality planning, or reference, the nested-loop oracle. Both
//!     return identical answers; only cost changes.
//!
//! uqsj-cli serve --dir artifacts [--file questions.txt] [--min-phi F]
//!                [--threads N] [--cache C] [--bgp-eval lftj|reference]
//!                [--metrics-out FILE]
//!                [--stats-interval N] [--log-out FILE|-]
//!     Serve questions (one per line, from --file or stdin) through the
//!     signature-indexed template store, then print serving metrics.
//!     With --data-dir DIR instead of --dir, the server opens a durable
//!     snapshot+WAL storage directory (recovering state on start).
//!     --metrics-out writes the server + process registries (Prometheus
//!     text to FILE, JSON to FILE.json); --stats-interval prints a
//!     metrics line every N questions; --log-out installs the structured
//!     JSON log sink (FILE, or - for stderr).
//!
//! uqsj-cli serve --listen HOST:PORT [--shards N] [--replicas R]
//!                [--workers W] [--queue-depth Q] [--deadline-ms D]
//!                [--dir artifacts | --data-dir DIR] [--min-phi F]
//!                [--cache C]
//!     Serve over HTTP instead of a question file: a sharded (and, with
//!     --data-dir, replicated + durable) template store behind the
//!     uqsj-net front end. With --data-dir, an existing sharded
//!     directory (holding a SHARDS file) is recovered; an empty or
//!     absent one is bootstrapped from the --dir artifacts (any other
//!     layout — e.g. a single-store dir from `snapshot` — is refused
//!     rather than mixed). Runs until SIGINT/SIGTERM,
//!     then drains gracefully: stops accepting, finishes in-flight
//!     requests, fsyncs every shard's replica WALs.
//!
//! uqsj-cli snapshot --dir artifacts --data-dir data
//!     Import text artifacts into a storage directory as a fresh binary
//!     snapshot generation.
//!
//! uqsj-cli compact --data-dir data
//!     Recover a storage directory (snapshot + WAL replay) and fold the
//!     WAL into the next snapshot generation.
//!
//! uqsj-cli conformance [--seed S] [--pairs N] [--profile quick|deep]
//!     Run the differential conformance suite: seeded boundary-biased
//!     pairs, every lower bound vs. the exact reference GED per possible
//!     world, both SimP evaluators, all six join drivers (including the
//!     forced sampling tier), the Monte-Carlo sampler vs. exact
//!     enumeration under its δ budget, and the metamorphic relations.
//!     Prints the coverage report; any violation prints the sub-seed
//!     that replays it (re-run with --seed <sub-seed> --pairs 1) and
//!     exits nonzero.
//! ```

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use uqsj::pipeline::{generate_templates, join_quality};
use uqsj::prelude::*;
use uqsj::workload::DatasetConfig;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!(
            "usage: uqsj-cli <generate|answer|join|serve|snapshot|compact|conformance> [options]"
        );
        return ExitCode::FAILURE;
    };
    let opts = Options::parse(&args[1..]);
    match command.as_str() {
        "generate" => generate(&opts),
        "answer" => answer(&opts),
        "join" => join(&opts),
        "serve" => serve(&opts),
        "snapshot" => snapshot(&opts),
        "compact" => compact(&opts),
        "conformance" => conformance(&opts),
        other => {
            eprintln!(
                "unknown command {other:?}; expected \
                 generate|answer|join|serve|snapshot|compact|conformance"
            );
            ExitCode::FAILURE
        }
    }
}

/// Minimal flag parser: `--key value` pairs.
struct Options {
    pairs: Vec<(String, String)>,
}

impl Options {
    fn parse(args: &[String]) -> Self {
        let mut pairs = Vec::new();
        let mut it = args.iter();
        while let Some(k) = it.next() {
            if let Some(key) = k.strip_prefix("--") {
                if let Some(v) = it.next() {
                    pairs.push((key.to_owned(), v.clone()));
                }
            }
        }
        Self { pairs }
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    fn num<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.get(key).and_then(|v| v.parse().ok()).unwrap_or(default)
    }
}

/// Write a registry's Prometheus text to `path` and its JSON snapshot to
/// `path.json` (sibling file, extension appended).
fn write_metrics(registry: &uqsj::obs::Registry, path: &str) -> std::io::Result<()> {
    std::fs::write(path, registry.render_prometheus())?;
    std::fs::write(format!("{path}.json"), registry.snapshot_json())
}

/// Install the structured-log sink requested by `--log-out` (a file path,
/// or `-` for stderr). Returns false if the file could not be created.
fn install_log_sink(target: &str) -> bool {
    match target {
        "-" => {
            uqsj::obs::log::set_sink(Some(Box::new(std::io::stderr())));
            true
        }
        path => match std::fs::File::create(path) {
            Ok(f) => {
                uqsj::obs::log::set_sink(Some(Box::new(f)));
                true
            }
            Err(e) => {
                eprintln!("cannot create log file {path}: {e}");
                false
            }
        },
    }
}

fn dataset_config(opts: &Options) -> DatasetConfig {
    DatasetConfig {
        questions: opts.num("questions", 150),
        distractors: opts.num("distractors", 80),
        max_relations: opts.num("max-relations", 3),
        seed: opts.num("seed", 42),
    }
}

/// `--bgp-eval lftj|reference`: set the process-default BGP evaluator
/// (answer retrieval for generate/answer/join/serve). Returns the choice
/// so `serve` can also pin it per-server through `ServeConfig`.
fn bgp_eval(opts: &Options) -> Option<uqsj::rdf::BgpEval> {
    let raw = opts.get("bgp-eval")?;
    match uqsj::rdf::BgpEval::parse(raw) {
        Some(eval) => {
            uqsj::rdf::bgp::set_default(eval);
            Some(eval)
        }
        None => {
            eprintln!("unknown --bgp-eval {raw:?}; expected lftj|reference, using lftj");
            None
        }
    }
}

fn simp_policy(opts: &Options) -> SimpPolicy {
    let epsilon = opts.num("epsilon", 0.05);
    let delta = opts.num("delta", 0.05);
    let seed = opts.num("sample-seed", 42u64);
    let policy = match opts.get("simp-mode").unwrap_or("exact") {
        "sample" => SimpPolicy::sample(epsilon, delta, seed),
        "auto" => SimpPolicy::auto(epsilon, delta, seed),
        other => {
            if other != "exact" {
                eprintln!("unknown --simp-mode {other:?}; expected exact|sample|auto, using exact");
            }
            SimpPolicy::exact()
        }
    };
    policy.with_threshold(opts.num("sample-threshold", SimpPolicy::DEFAULT_AUTO_THRESHOLD))
}

fn cascade_policy(opts: &Options) -> CascadePolicy {
    let base = match opts.get("cascade").unwrap_or("fixed") {
        "adaptive" => CascadePolicy::adaptive(),
        "shuffled" => CascadePolicy::shuffled(opts.num("shuffle-seed", 42u64)),
        other => {
            if other != "fixed" {
                eprintln!(
                    "unknown --cascade {other:?}; expected fixed|adaptive|shuffled, using fixed"
                );
            }
            CascadePolicy::fixed()
        }
    };
    base.with_calibration_pairs(opts.num("calibration-pairs", base.calibration_pairs))
        .with_epoch_pairs(opts.num("epoch-pairs", base.epoch_pairs))
        .with_probe_interval(opts.num("probe-interval", base.probe_interval))
        .with_hysteresis(opts.num("hysteresis", base.hysteresis))
}

fn join_params(opts: &Options) -> JoinParams {
    let strategy = match opts.get("strategy").unwrap_or("simj") {
        "css" => JoinStrategy::CssOnly,
        "opt" => JoinStrategy::SimJOpt { group_count: opts.num("groups", 8) },
        _ => JoinStrategy::SimJ,
    };
    JoinParams {
        tau: opts.num("tau", 1),
        alpha: opts.num("alpha", 0.7),
        strategy,
        simp: simp_policy(opts),
        cascade: cascade_policy(opts),
    }
}

fn generate(opts: &Options) -> ExitCode {
    bgp_eval(opts);
    let out_dir = PathBuf::from(opts.get("out-dir").unwrap_or("artifacts"));
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("cannot create {}: {e}", out_dir.display());
        return ExitCode::FAILURE;
    }
    let dataset = uqsj::workload::qald_like(&dataset_config(opts));
    let params = join_params(opts);
    let result = generate_templates(&dataset, params);
    let (correct, precision) = join_quality(&dataset, &result.matches);
    println!(
        "join: {} pairs, {} correct (precision {:.1}%), {} templates",
        result.matches.len(),
        correct,
        precision * 100.0,
        result.library.len()
    );

    let write = |name: &str, contents: String| -> std::io::Result<()> {
        std::fs::write(out_dir.join(name), contents)
    };
    let io = write("templates.txt", uqsj::template::io::to_text(&result.library))
        .and_then(|()| write("lexicon.txt", uqsj::nlp::lexicon_io::to_text(&dataset.kb.lexicon)))
        .and_then(|()| {
            write("kb.nt", uqsj::rdf::ntriples::to_ntriples(&dataset.kb.triple_store()))
        });
    if let Err(e) = io {
        eprintln!("write failed: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote templates.txt, lexicon.txt, kb.nt to {}", out_dir.display());
    ExitCode::SUCCESS
}

fn read(dir: &Path, name: &str) -> Result<String, ExitCode> {
    std::fs::read_to_string(dir.join(name)).map_err(|e| {
        eprintln!("cannot read {}/{name}: {e}", dir.display());
        ExitCode::FAILURE
    })
}

/// Load templates + lexicon + RDF store from a `generate` output dir.
fn load_artifacts(
    dir: &Path,
) -> Result<(uqsj::template::TemplateLibrary, uqsj::nlp::Lexicon, uqsj::rdf::TripleStore), ExitCode>
{
    let (templates, lexicon, kb) =
        match (read(dir, "templates.txt"), read(dir, "lexicon.txt"), read(dir, "kb.nt")) {
            (Ok(a), Ok(b), Ok(c)) => (a, b, c),
            _ => return Err(ExitCode::FAILURE),
        };
    let library = uqsj::template::io::from_text(&templates).map_err(|e| {
        eprintln!("{e}");
        ExitCode::FAILURE
    })?;
    let lexicon = uqsj::nlp::lexicon_io::from_text(&lexicon).map_err(|e| {
        eprintln!("{e}");
        ExitCode::FAILURE
    })?;
    let mut store = uqsj::rdf::TripleStore::new();
    uqsj::rdf::ntriples::load_str(&mut store, &kb).map_err(|e| {
        eprintln!("{e}");
        ExitCode::FAILURE
    })?;
    Ok((library, lexicon, store))
}

fn answer(opts: &Options) -> ExitCode {
    let Some(question) = opts.get("question") else {
        eprintln!("answer requires --question \"...\"");
        return ExitCode::FAILURE;
    };
    bgp_eval(opts);
    let dir = PathBuf::from(opts.get("dir").unwrap_or("artifacts"));
    let min_phi: f64 = opts.num("min-phi", 1.0);
    let (library, lexicon, store) = match load_artifacts(&dir) {
        Ok(x) => x,
        Err(code) => return code,
    };

    let out = uqsj::template::answer_question(&library, &lexicon, &store, question, min_phi);
    match out.sparql {
        Some(sparql) => {
            println!("template #{} (phi {:.2})", out.template_index.unwrap_or(0), out.phi);
            println!("{sparql}");
            if out.answers.is_empty() {
                println!("(no answers)");
            }
            for a in &out.answers {
                println!("{a}");
            }
            ExitCode::SUCCESS
        }
        None => {
            println!("no template matched the question");
            ExitCode::FAILURE
        }
    }
}

/// Cooperative shutdown flag raised by SIGINT/SIGTERM. On non-unix
/// targets installation is a no-op and the HTTP server runs until the
/// process is killed.
mod shutdown {
    use std::sync::atomic::{AtomicBool, Ordering};

    static REQUESTED: AtomicBool = AtomicBool::new(false);

    pub fn requested() -> bool {
        REQUESTED.load(Ordering::SeqCst)
    }

    #[cfg(unix)]
    pub fn install() {
        // Raw libc signal(2) via FFI — the workspace carries no libc
        // crate, and the handler only flips an atomic (async-signal-safe).
        extern "C" fn on_signal(_signum: i32) {
            REQUESTED.store(true, Ordering::SeqCst);
        }
        extern "C" {
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }

    #[cfg(not(unix))]
    pub fn install() {}
}

/// `serve --listen`: the HTTP front end over a sharded store.
fn serve_http(opts: &Options, listen: &str) -> ExitCode {
    use std::sync::Arc;
    use std::time::Duration;
    use uqsj::net::NetConfig;
    use uqsj::serve::{ServeConfig, ShardedQaServer};

    let config = ServeConfig {
        min_phi: opts.num("min-phi", 1.0),
        cache_capacity: opts.num("cache", 1024),
        bgp_eval: bgp_eval(opts),
    };
    let shards: usize = opts.num("shards", 4);
    let replicas: usize = opts.num("replicas", 1);
    let qa = if let Some(data_dir) = opts.get("data-dir") {
        let dir = Path::new(data_dir);
        if dir.join("SHARDS").exists() {
            match ShardedQaServer::open(dir, config) {
                Ok(qa) => {
                    println!(
                        "recovered {} templates from {data_dir} \
                         ({} shards x {} replicas)",
                        qa.template_count(),
                        qa.shard_count(),
                        qa.replica_count()
                    );
                    qa
                }
                Err(e) => {
                    eprintln!("cannot open sharded data dir {data_dir}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        } else {
            // Only bootstrap into a fresh directory. A non-empty one
            // without SHARDS is some other layout — most likely a
            // single-store data dir from `snapshot` — and scattering
            // shard subdirectories into it would leave two stores
            // diverging in one place.
            let occupied =
                std::fs::read_dir(dir).map(|mut entries| entries.next().is_some()).unwrap_or(false);
            if occupied {
                eprintln!(
                    "{data_dir} exists but is not a sharded data dir (no SHARDS file); \
                     if it came from `uqsj-cli snapshot`, serve it without --listen, or \
                     point --data-dir at a fresh directory to shard the --dir artifacts into"
                );
                return ExitCode::FAILURE;
            }
            let artifacts = PathBuf::from(opts.get("dir").unwrap_or("artifacts"));
            let (library, lexicon, store) = match load_artifacts(&artifacts) {
                Ok(x) => x,
                Err(code) => return code,
            };
            match ShardedQaServer::create(dir, library, lexicon, store, shards, replicas, config) {
                Ok(qa) => {
                    println!(
                        "bootstrapped {data_dir}: {} templates over {shards} shards x \
                         {replicas} replicas",
                        qa.template_count()
                    );
                    qa
                }
                Err(e) => {
                    eprintln!("cannot bootstrap sharded data dir {data_dir}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    } else {
        let artifacts = PathBuf::from(opts.get("dir").unwrap_or("artifacts"));
        let (library, lexicon, store) = match load_artifacts(&artifacts) {
            Ok(x) => x,
            Err(code) => return code,
        };
        ShardedQaServer::new(library, lexicon, store, shards, config)
    };

    let net = NetConfig {
        workers: opts.num("workers", 4),
        queue_depth: opts.num("queue-depth", 64),
        deadline: Duration::from_millis(opts.num("deadline-ms", 2000)),
        ..NetConfig::default()
    };
    let handle = match uqsj::net::serve(Arc::new(qa), listen, net) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("cannot listen on {listen}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "listening on http://{} ({} shards, {} workers, queue {}, deadline {}ms)",
        handle.local_addr(),
        handle.qa().shard_count(),
        net.workers,
        net.queue_depth,
        net.deadline.as_millis()
    );
    shutdown::install();
    while !shutdown::requested() {
        std::thread::sleep(Duration::from_millis(100));
    }
    println!("shutdown requested; draining");
    match handle.shutdown() {
        Ok(()) => {
            println!("drained: in-flight requests finished, WALs synced");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("drain failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn serve(opts: &Options) -> ExitCode {
    use uqsj::serve::{QaServer, ServeConfig, TemplateStore};

    if let Some(listen) = opts.get("listen") {
        return serve_http(opts, listen);
    }
    let config = ServeConfig {
        min_phi: opts.num("min-phi", 1.0),
        cache_capacity: opts.num("cache", 1024),
        bgp_eval: bgp_eval(opts),
    };
    let threads: usize = opts.num("threads", 1);
    if threads == 0 {
        eprintln!("--threads must be >= 1");
        return ExitCode::FAILURE;
    }
    if let Some(target) = opts.get("log-out") {
        if !install_log_sink(target) {
            return ExitCode::FAILURE;
        }
    }
    let server = if let Some(data_dir) = opts.get("data-dir") {
        match QaServer::open(Path::new(data_dir), config) {
            Ok(server) => {
                println!(
                    "recovered {} templates from {data_dir} (generation {})",
                    server.template_count(),
                    server.storage_generation().unwrap_or(0)
                );
                server
            }
            Err(e) => {
                eprintln!("cannot open data dir {data_dir}: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        let dir = PathBuf::from(opts.get("dir").unwrap_or("artifacts"));
        let (library, lexicon, store) = match load_artifacts(&dir) {
            Ok(x) => x,
            Err(code) => return code,
        };
        QaServer::new(TemplateStore::from_library(library), lexicon, store, config)
    };
    println!("serving {} templates (min-phi {})", server.template_count(), config.min_phi);

    let questions: Vec<String> = match opts.get("file") {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(text) => text.lines().map(str::to_owned).collect(),
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => {
            use std::io::BufRead;
            match std::io::stdin().lock().lines().collect::<Result<_, _>>() {
                Ok(lines) => lines,
                Err(e) => {
                    eprintln!("cannot read stdin: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    };
    let questions: Vec<String> = questions.into_iter().filter(|q| !q.trim().is_empty()).collect();
    if questions.is_empty() {
        eprintln!("no questions to serve (--file or stdin, one per line)");
        return ExitCode::FAILURE;
    }

    // --stats-interval N: answer in chunks of N questions and print a
    // metrics line after each, so a long batch shows serving counters as
    // they accumulate (0 = only the final line).
    let stats_interval: usize = opts.num("stats-interval", 0);
    let chunk = if stats_interval == 0 { questions.len() } else { stats_interval };
    let mut outcomes = Vec::with_capacity(questions.len());
    for slice in questions.chunks(chunk) {
        outcomes.extend(server.answer_batch(slice, threads));
        if stats_interval != 0 {
            println!("[stats after {}] {}", outcomes.len(), server.metrics());
        }
    }
    for (q, out) in questions.iter().zip(&outcomes) {
        match (&out.sparql, out.answers.is_empty()) {
            (None, _) => println!("{q}\t-\t(no template matched)"),
            (Some(_), true) => println!("{q}\t#{}\t(no answers)", out.template_index.unwrap_or(0)),
            (Some(_), false) => {
                println!("{q}\t#{}\t{}", out.template_index.unwrap_or(0), out.answers.join("|"));
            }
        }
    }
    println!("{}", server.metrics());
    if let Some(path) = opts.get("metrics-out") {
        // The serve counters live in the server's private registry; the
        // process-global one carries whatever the storage/join layers
        // recorded (e.g. WAL replay on a durable open). Expose both:
        // concatenated text (families are disjoint), nested JSON.
        let text = format!(
            "{}{}",
            server.metrics_registry().render_prometheus(),
            uqsj::obs::global().render_prometheus()
        );
        let json = format!(
            "{{\"serve\":{},\"process\":{}}}\n",
            server.metrics_registry().snapshot_json().trim_end(),
            uqsj::obs::global().snapshot_json().trim_end()
        );
        let io =
            std::fs::write(path, text).and_then(|()| std::fs::write(format!("{path}.json"), json));
        if let Err(e) = io {
            eprintln!("cannot write metrics to {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote metrics to {path} (Prometheus) and {path}.json (JSON)");
    }
    uqsj::obs::log::set_sink(None);
    ExitCode::SUCCESS
}

/// Import the text artifacts of a `generate` run into a storage data
/// directory as a fresh binary snapshot generation.
fn snapshot(opts: &Options) -> ExitCode {
    use uqsj::storage::StorageEngine;

    let dir = PathBuf::from(opts.get("dir").unwrap_or("artifacts"));
    let Some(data_dir) = opts.get("data-dir") else {
        eprintln!("snapshot requires --data-dir DIR");
        return ExitCode::FAILURE;
    };
    let (library, lexicon, store) = match load_artifacts(&dir) {
        Ok(x) => x,
        Err(code) => return code,
    };
    let (mut engine, _) = match StorageEngine::open(Path::new(data_dir)) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("cannot open data dir {data_dir}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match engine.compact(&library, &lexicon, &store) {
        Ok(generation) => {
            println!(
                "wrote snapshot generation {generation} to {data_dir}: {} templates, {} triples",
                library.len(),
                store.len()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("snapshot failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Recover a storage directory and fold its WAL into the next snapshot
/// generation.
fn compact(opts: &Options) -> ExitCode {
    use uqsj::storage::StorageEngine;

    let Some(data_dir) = opts.get("data-dir") else {
        eprintln!("compact requires --data-dir DIR");
        return ExitCode::FAILURE;
    };
    let (mut engine, recovered) = match StorageEngine::open(Path::new(data_dir)) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("cannot open data dir {data_dir}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let state = recovered.state;
    if recovered.wal_torn_bytes > 0 {
        println!("dropped {} bytes of torn WAL tail", recovered.wal_torn_bytes);
    }
    match engine.compact(&state.library, &state.lexicon, &state.triples) {
        Ok(generation) => {
            println!(
                "folded {} WAL records into snapshot generation {generation} ({} templates)",
                recovered.wal_records,
                state.library.len()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("compaction failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn join(opts: &Options) -> ExitCode {
    bgp_eval(opts);
    let dataset = uqsj::workload::qald_like(&dataset_config(opts));
    let params = join_params(opts);
    let cascade = uqsj::simjoin::CascadeRuntime::new(params.cascade, params.strategy);
    let (matches, stats) = uqsj::simjoin::sim_join_in(
        &cascade,
        &dataset.table,
        &dataset.d_graphs,
        &dataset.u_graphs,
        params,
    );
    let (correct, precision) = join_quality(&dataset, &matches);
    println!(
        "pairs {} | pruned: size {} lm {} css {} markov {} grouped {} | candidates {} ({:.2}%)",
        stats.pairs_total,
        stats.pruned_size(),
        stats.pruned_label_multiset(),
        stats.pruned_structural(),
        stats.pruned_probabilistic(),
        stats.pruned_grouped(),
        stats.candidates,
        stats.candidate_ratio() * 100.0
    );
    println!(
        "results {} | correct {} | precision {:.1}% | prune {:?} | verify {:?}",
        matches.len(),
        correct,
        precision * 100.0,
        stats.pruning_time,
        stats.verification_time
    );
    println!(
        "tiers: exact {} sampled {} | worlds verified {} sampled {} | seed {}",
        stats.verified_exact,
        stats.verified_sampled,
        stats.worlds_verified,
        stats.worlds_sampled,
        params.simp.seed
    );
    if let Some(report) = &stats.cascade {
        print!("{report}");
    }
    let explain: usize = opts.num("explain", 0);
    if explain > 0 {
        explain_questions(&dataset, &cascade, params, explain);
    }
    if let Some(path) = opts.get("metrics-out") {
        if let Err(e) = write_metrics(uqsj::obs::global(), path) {
            eprintln!("cannot write metrics to {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote metrics to {path} (Prometheus) and {path}.json (JSON)");
    }
    if let Some(path) = opts.get("trace-out") {
        if let Err(e) = std::fs::write(path, uqsj::obs::trace::recorder().to_chrome_trace()) {
            eprintln!("cannot write trace to {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote chrome trace to {path}");
    }
    ExitCode::SUCCESS
}

/// `join --explain N`: re-join each of the first `N` questions alone
/// against the full SPARQL workload, on the already-calibrated cascade
/// runtime, and print one EXPLAIN report per question — that question's
/// own filter funnel, verification tiers, stopping reasons, and GED
/// effort, stamped with a fresh trace id.
fn explain_questions(
    dataset: &uqsj::workload::Dataset,
    cascade: &uqsj::simjoin::CascadeRuntime,
    params: JoinParams,
    n: usize,
) {
    use uqsj::serve::{JoinReport, QueryReport};

    let count = n.min(dataset.u_graphs.len());
    println!("explain: first {count} of {} questions", dataset.u_graphs.len());
    for i in 0..count {
        let ctx = uqsj::obs::RequestCtx::new().with_explain(true);
        let trace_id = ctx.trace_id.0;
        let _ctx = uqsj::obs::ctx::install(ctx);
        let started = std::time::Instant::now();
        let one = &dataset.u_graphs[i..=i];
        let (_, q_stats) =
            uqsj::simjoin::sim_join_in(cascade, &dataset.table, &dataset.d_graphs, one, params);
        let report = QueryReport {
            trace_id,
            question: dataset.pairs[i].question.clone(),
            total_us: started.elapsed().as_micros() as u64,
            join: Some(JoinReport::from_stats(&q_stats)),
            ..Default::default()
        };
        print!("{}", report.render_text());
    }
}

fn conformance(opts: &Options) -> ExitCode {
    use uqsj::testkit::{run_conformance, ConformanceConfig};
    let seed = opts.num("seed", 42u64);
    let mut cfg = match opts.get("profile").unwrap_or("quick") {
        "deep" => ConformanceConfig::deep(seed),
        "quick" => ConformanceConfig::quick(seed),
        other => {
            eprintln!("unknown profile {other:?}; expected quick|deep");
            return ExitCode::FAILURE;
        }
    };
    cfg.pairs = opts.num("pairs", cfg.pairs);
    println!("running conformance: profile {:?}, seed {seed}, {} pairs", cfg.profile, cfg.pairs);
    let report = run_conformance(&cfg);
    println!("{report}");
    if report.passed() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
