//! `uqsj-cli` — file-driven access to the template pipeline.
//!
//! ```text
//! uqsj-cli generate --out-dir artifacts [--questions N] [--distractors M]
//!                   [--tau T] [--alpha A] [--seed S]
//!     Generate a synthetic workload, run the SimJ join, and write
//!     artifacts/templates.txt, artifacts/lexicon.txt, artifacts/kb.nt.
//!
//! uqsj-cli answer --dir artifacts --question "Which politician ...?"
//!                 [--min-phi F]
//!     Load the artifacts and answer a question with the templates.
//!
//! uqsj-cli join [--questions N] [--distractors M] [--tau T] [--alpha A]
//!               [--strategy css|simj|opt]
//!     Run the join only and print statistics.
//! ```

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use uqsj::pipeline::{generate_templates, join_quality};
use uqsj::prelude::*;
use uqsj::workload::DatasetConfig;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("usage: uqsj-cli <generate|answer|join> [options]");
        return ExitCode::FAILURE;
    };
    let opts = Options::parse(&args[1..]);
    match command.as_str() {
        "generate" => generate(&opts),
        "answer" => answer(&opts),
        "join" => join(&opts),
        other => {
            eprintln!("unknown command {other:?}; expected generate|answer|join");
            ExitCode::FAILURE
        }
    }
}

/// Minimal flag parser: `--key value` pairs.
struct Options {
    pairs: Vec<(String, String)>,
}

impl Options {
    fn parse(args: &[String]) -> Self {
        let mut pairs = Vec::new();
        let mut it = args.iter();
        while let Some(k) = it.next() {
            if let Some(key) = k.strip_prefix("--") {
                if let Some(v) = it.next() {
                    pairs.push((key.to_owned(), v.clone()));
                }
            }
        }
        Self { pairs }
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    fn num<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.get(key).and_then(|v| v.parse().ok()).unwrap_or(default)
    }
}

fn dataset_config(opts: &Options) -> DatasetConfig {
    DatasetConfig {
        questions: opts.num("questions", 150),
        distractors: opts.num("distractors", 80),
        max_relations: opts.num("max-relations", 3),
        seed: opts.num("seed", 42),
    }
}

fn join_params(opts: &Options) -> JoinParams {
    let strategy = match opts.get("strategy").unwrap_or("simj") {
        "css" => JoinStrategy::CssOnly,
        "opt" => JoinStrategy::SimJOpt { group_count: opts.num("groups", 8) },
        _ => JoinStrategy::SimJ,
    };
    JoinParams { tau: opts.num("tau", 1), alpha: opts.num("alpha", 0.7), strategy }
}

fn generate(opts: &Options) -> ExitCode {
    let out_dir = PathBuf::from(opts.get("out-dir").unwrap_or("artifacts"));
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("cannot create {}: {e}", out_dir.display());
        return ExitCode::FAILURE;
    }
    let dataset = uqsj::workload::qald_like(&dataset_config(opts));
    let params = join_params(opts);
    let result = generate_templates(&dataset, params);
    let (correct, precision) = join_quality(&dataset, &result.matches);
    println!(
        "join: {} pairs, {} correct (precision {:.1}%), {} templates",
        result.matches.len(),
        correct,
        precision * 100.0,
        result.library.len()
    );

    let write = |name: &str, contents: String| -> std::io::Result<()> {
        std::fs::write(out_dir.join(name), contents)
    };
    let io = write("templates.txt", uqsj::template::io::to_text(&result.library))
        .and_then(|()| write("lexicon.txt", uqsj::nlp::lexicon_io::to_text(&dataset.kb.lexicon)))
        .and_then(|()| {
            write("kb.nt", uqsj::rdf::ntriples::to_ntriples(&dataset.kb.triple_store()))
        });
    if let Err(e) = io {
        eprintln!("write failed: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote templates.txt, lexicon.txt, kb.nt to {}", out_dir.display());
    ExitCode::SUCCESS
}

fn read(dir: &Path, name: &str) -> Result<String, ExitCode> {
    std::fs::read_to_string(dir.join(name)).map_err(|e| {
        eprintln!("cannot read {}/{name}: {e}", dir.display());
        ExitCode::FAILURE
    })
}

fn answer(opts: &Options) -> ExitCode {
    let Some(question) = opts.get("question") else {
        eprintln!("answer requires --question \"...\"");
        return ExitCode::FAILURE;
    };
    let dir = PathBuf::from(opts.get("dir").unwrap_or("artifacts"));
    let min_phi: f64 = opts.num("min-phi", 1.0);

    let (templates, lexicon, kb) = match (
        read(&dir, "templates.txt"),
        read(&dir, "lexicon.txt"),
        read(&dir, "kb.nt"),
    ) {
        (Ok(a), Ok(b), Ok(c)) => (a, b, c),
        _ => return ExitCode::FAILURE,
    };
    let library = match uqsj::template::io::from_text(&templates) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let lexicon = match uqsj::nlp::lexicon_io::from_text(&lexicon) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let mut store = uqsj::rdf::TripleStore::new();
    if let Err(e) = uqsj::rdf::ntriples::load_str(&mut store, &kb) {
        eprintln!("{e}");
        return ExitCode::FAILURE;
    }

    let out = uqsj::template::answer_question(&library, &lexicon, &store, question, min_phi);
    match out.sparql {
        Some(sparql) => {
            println!("template #{} (phi {:.2})", out.template_index.unwrap_or(0), out.phi);
            println!("{sparql}");
            if out.answers.is_empty() {
                println!("(no answers)");
            }
            for a in &out.answers {
                println!("{a}");
            }
            ExitCode::SUCCESS
        }
        None => {
            println!("no template matched the question");
            ExitCode::FAILURE
        }
    }
}

fn join(opts: &Options) -> ExitCode {
    let dataset = uqsj::workload::qald_like(&dataset_config(opts));
    let params = join_params(opts);
    let (matches, stats) = sim_join(&dataset.table, &dataset.d_graphs, &dataset.u_graphs, params);
    let (correct, precision) = join_quality(&dataset, &matches);
    println!(
        "pairs {} | structural prunes {} | probabilistic {} | grouped {} | candidates {} ({:.2}%)",
        stats.pairs_total,
        stats.pruned_structural,
        stats.pruned_probabilistic,
        stats.pruned_grouped,
        stats.candidates,
        stats.candidate_ratio() * 100.0
    );
    println!(
        "results {} | correct {} | precision {:.1}% | prune {:?} | verify {:?}",
        matches.len(),
        correct,
        precision * 100.0,
        stats.pruning_time,
        stats.verification_time
    );
    ExitCode::SUCCESS
}
