//! # uqsj — Uncertain graph similarity join for RDF Q/A template generation
//!
//! A from-scratch reproduction of *"How to Build Templates for RDF
//! Question/Answering — An Uncertain Graph Similarity Join Approach"*
//! (SIGMOD 2015). The crate re-exports every subsystem and adds the
//! end-to-end [`pipeline`]:
//!
//! 1. **Uncertain graph generation** ([`nlp`]) — questions become
//!    semantic query graphs; entity linking makes vertex labels
//!    probabilistic.
//! 2. **Finding similar graph pairs** ([`simjoin`], [`ged`],
//!    [`uncertain`]) — the SimJ join with CSS-based structural pruning
//!    (Theorems 1/3), Markov probabilistic pruning (Theorem 4) and
//!    cost-based possible-world grouping (Algorithm 2).
//! 3. **Template generation** ([`template`]) — matched pairs plus their
//!    GED mappings become NL⇄SPARQL templates with slots.
//! 4. **Q/A with templates** ([`template`], [`rdf`]) — new questions are
//!    matched by tree edit distance, slots filled and linked, SPARQL
//!    evaluated over the in-memory RDF store.
//! 5. **Online serving** ([`serve`]) — the mined library behind a
//!    signature-indexed store with answer caching, batch answering and
//!    incremental workload ingestion.
//! 6. **Durability** ([`storage`]) — checksummed binary snapshots plus a
//!    write-ahead log so the serving state survives restarts and crashes
//!    (`uqsj-cli serve --data-dir`, `snapshot`, `compact`).
//!
//! ## Quickstart
//!
//! ```
//! use uqsj::prelude::*;
//!
//! // A tiny workload (synthetic; see DESIGN.md for the substitutions).
//! let dataset = uqsj::workload::qald_like(&DatasetConfig {
//!     questions: 30,
//!     distractors: 20,
//!     ..Default::default()
//! });
//! // Join questions with SPARQL queries and build templates.
//! let result = uqsj::pipeline::generate_templates(&dataset, JoinParams::simj(1, 0.5));
//! assert!(result.library.len() > 0);
//! ```

pub use uqsj_ged as ged;
pub use uqsj_graph as graph;
pub use uqsj_matching as matching;
pub use uqsj_net as net;
pub use uqsj_nlp as nlp;
pub use uqsj_obs as obs;
pub use uqsj_rdf as rdf;
pub use uqsj_sample as sample;
pub use uqsj_serve as serve;
pub use uqsj_simjoin as simjoin;
pub use uqsj_sparql as sparql;
pub use uqsj_storage as storage;
pub use uqsj_template as template;
pub use uqsj_testkit as testkit;
pub use uqsj_uncertain as uncertain;
pub use uqsj_workload as workload;

pub mod pipeline;

/// The names most programs need.
pub mod prelude {
    pub use crate::ged::{ged, ged_bounded, lb_ged_css_certain, lb_ged_css_uncertain};
    pub use crate::graph::{Graph, GraphBuilder, Symbol, SymbolTable, UncertainGraph, VertexId};
    pub use crate::pipeline::{generate_templates, PipelineResult};
    pub use crate::sample::{SimpMode, SimpPolicy};
    pub use crate::serve::{Ingestor, QaServer, ServeConfig, TemplateStore};
    pub use crate::simjoin::{
        sim_join, CascadeMode, CascadePolicy, JoinMatch, JoinParams, JoinStats, JoinStrategy,
    };
    pub use crate::template::{answer_question, Template, TemplateLibrary};
    pub use crate::uncertain::{similarity_probability, ub_simp, verify_simp};
    pub use crate::workload::{qald_like, webq_like, Dataset, DatasetConfig};
}
