//! Differential oracle for the Monte-Carlo sampling tier.
//!
//! On enumerable instances the exact `SimP_τ` is computable by full
//! possible-world enumeration, so every sampled accept/reject decision
//! can be cross-examined against ground truth. The sampler's contract is
//! probabilistic — a decision may be wrong with probability at most δ
//! when `|SimP_τ − α| > ε` — so single disagreements are *counted*, not
//! flagged; the runner checks the aggregate failure rate against the δ
//! budget (with a binomial slack margin). Deterministic invariants
//! (accept implies a witness mapping, estimates stay in `[0, 1]`,
//! replayability from the printed seed) are hard violations.

use crate::gen::derive_seed;
use crate::report::ConformanceReport;
use uqsj_ged::GedEngine;
use uqsj_graph::{Graph, SymbolTable, UncertainGraph};
use uqsj_sample::{sample_simp_with, SampleParams};
use uqsj_uncertain::prob::verify_simp_with;

/// Tolerance the sampled trials run with.
pub const SAMPLE_EPS: f64 = 0.05;
/// Per-decision failure budget the sampled trials run with.
pub const SAMPLE_DELTA: f64 = 0.05;
/// Extra distance beyond ε when placing α, so every trial sits strictly
/// outside the guarantee band and the δ bound applies to all of them.
const ALPHA_MARGIN: f64 = 0.01;

/// Allowed guaranteed-decision failures for `trials` attempts at
/// per-decision budget δ: the binomial mean plus three standard
/// deviations plus one (so tiny trial counts never flag on one fluke).
pub fn allowed_failures(trials: u64, delta: f64) -> u64 {
    let n = trials as f64;
    (delta * n + 3.0 * (delta * (1.0 - delta) * n).sqrt()).ceil() as u64 + 1
}

/// Run sampled accept/reject decisions against exact enumeration on one
/// enumerable pair. α is placed on both sides of the exact probability,
/// a full `ε + margin` away, so the (ε,δ) certificate covers every
/// trial; exact folding is disabled so the Monte-Carlo loop itself is
/// exercised, not the enumeration fallback.
pub fn check_sampler_pair(
    engine: &mut GedEngine,
    table: &SymbolTable,
    q: &Graph,
    g: &UncertainGraph,
    seed: u64,
    report: &mut ConformanceReport,
) {
    let params =
        SampleParams { exact_stratum_worlds: 0, ..SampleParams::new(SAMPLE_EPS, SAMPLE_DELTA) };
    for (ti, tau) in [1u32, 2].into_iter().enumerate() {
        let exact = verify_simp_with(engine, table, q, g, tau, f64::INFINITY).prob;
        let band = SAMPLE_EPS + ALPHA_MARGIN;
        for (ai, alpha) in [exact - band, exact + band].into_iter().enumerate() {
            // Degenerate thresholds make the decision trivial (α ≤ 0
            // always accepts, α > 1 always rejects) — no sampling tested.
            if alpha <= 0.0 || alpha > 1.0 {
                continue;
            }
            let sub = derive_seed(seed, 40 + (ti * 2 + ai) as u64);
            let out = sample_simp_with(engine, table, q, g, tau, alpha, None, &params, sub);

            // Deterministic invariants first — these hold regardless of
            // which worlds the RNG drew.
            if out.passed && out.best_mapping.is_none() {
                report.violation(
                    "sampler_invariants",
                    seed,
                    format!("τ={tau} α={alpha}: sampled accept without a witness mapping"),
                );
            }
            if !(0.0..=1.0 + 1e-9).contains(&out.estimate) {
                report.violation(
                    "sampler_invariants",
                    seed,
                    format!("τ={tau} α={alpha}: estimate {} outside [0, 1]", out.estimate),
                );
            }
            let replay = sample_simp_with(engine, table, q, g, tau, alpha, None, &params, sub);
            if replay.passed != out.passed || replay.worlds_sampled != out.worlds_sampled {
                report.violation(
                    "sampler_invariants",
                    seed,
                    format!(
                        "τ={tau} α={alpha}: seed {sub} did not replay \
                         (passed {}→{}, draws {}→{})",
                        out.passed, replay.passed, out.worlds_sampled, replay.worlds_sampled
                    ),
                );
            }

            // The probabilistic contract: count guaranteed decisions and
            // their failures; the runner compares the aggregate against
            // the δ budget. Budget-exhausted outcomes carry no
            // certificate and are excluded.
            if out.guaranteed {
                report.sample_trials += 1;
                if out.passed != (exact >= alpha) {
                    report.sample_failures += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{near_pair, GenConfig};

    #[test]
    fn sampler_matches_enumeration_on_seeded_pairs() {
        let cfg = GenConfig::default();
        let mut engine = GedEngine::new();
        let mut table = SymbolTable::new();
        let mut report = ConformanceReport::default();
        for seed in 0..30u64 {
            let (q, g) = near_pair(&mut table, &cfg, seed);
            check_sampler_pair(&mut engine, &table, &q, &g, seed, &mut report);
        }
        assert!(report.passed(), "violations: {:#?}", report.violations);
        assert!(report.sample_trials > 0, "no sampled decisions were exercised");
        assert!(
            report.sample_failures <= allowed_failures(report.sample_trials, SAMPLE_DELTA),
            "{} failures over {} trials exceeds the δ={} budget",
            report.sample_failures,
            report.sample_trials,
            SAMPLE_DELTA
        );
    }

    #[test]
    fn failure_allowance_scales_with_trials() {
        assert!(allowed_failures(0, 0.05) >= 1);
        let small = allowed_failures(40, 0.05);
        let large = allowed_failures(4000, 0.05);
        assert!(large > small);
        // The allowance stays a small fraction of large trial counts.
        assert!((large as f64) < 0.1 * 4000.0);
    }
}
